# Empty compiler generated dependencies file for mapreduce_test.
# This may be replaced when dependencies are built.
