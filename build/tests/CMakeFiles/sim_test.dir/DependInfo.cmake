
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/engine/CMakeFiles/dfs_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/workload/CMakeFiles/dfs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/analysis/CMakeFiles/dfs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/mapreduce/CMakeFiles/dfs_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/core/CMakeFiles/dfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/storage/CMakeFiles/dfs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/ec/CMakeFiles/dfs_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/net/CMakeFiles/dfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
