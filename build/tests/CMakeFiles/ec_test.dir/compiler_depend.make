# Empty compiler generated dependencies file for ec_test.
# This may be replaced when dependencies are built.
