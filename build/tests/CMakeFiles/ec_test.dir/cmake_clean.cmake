file(REMOVE_RECURSE
  "CMakeFiles/ec_test.dir/ec_test.cpp.o"
  "CMakeFiles/ec_test.dir/ec_test.cpp.o.d"
  "ec_test"
  "ec_test.pdb"
  "ec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
