# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
