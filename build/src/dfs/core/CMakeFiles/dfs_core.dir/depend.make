# Empty dependencies file for dfs_core.
# This may be replaced when dependencies are built.
