
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/core/degraded_first.cpp" "src/dfs/core/CMakeFiles/dfs_core.dir/degraded_first.cpp.o" "gcc" "src/dfs/core/CMakeFiles/dfs_core.dir/degraded_first.cpp.o.d"
  "/root/repo/src/dfs/core/delay_scheduler.cpp" "src/dfs/core/CMakeFiles/dfs_core.dir/delay_scheduler.cpp.o" "gcc" "src/dfs/core/CMakeFiles/dfs_core.dir/delay_scheduler.cpp.o.d"
  "/root/repo/src/dfs/core/fair_scheduler.cpp" "src/dfs/core/CMakeFiles/dfs_core.dir/fair_scheduler.cpp.o" "gcc" "src/dfs/core/CMakeFiles/dfs_core.dir/fair_scheduler.cpp.o.d"
  "/root/repo/src/dfs/core/locality_first.cpp" "src/dfs/core/CMakeFiles/dfs_core.dir/locality_first.cpp.o" "gcc" "src/dfs/core/CMakeFiles/dfs_core.dir/locality_first.cpp.o.d"
  "/root/repo/src/dfs/core/scheduler.cpp" "src/dfs/core/CMakeFiles/dfs_core.dir/scheduler.cpp.o" "gcc" "src/dfs/core/CMakeFiles/dfs_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/net/CMakeFiles/dfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
