file(REMOVE_RECURSE
  "libdfs_core.a"
)
