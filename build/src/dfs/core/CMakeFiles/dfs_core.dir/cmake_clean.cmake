file(REMOVE_RECURSE
  "CMakeFiles/dfs_core.dir/degraded_first.cpp.o"
  "CMakeFiles/dfs_core.dir/degraded_first.cpp.o.d"
  "CMakeFiles/dfs_core.dir/delay_scheduler.cpp.o"
  "CMakeFiles/dfs_core.dir/delay_scheduler.cpp.o.d"
  "CMakeFiles/dfs_core.dir/fair_scheduler.cpp.o"
  "CMakeFiles/dfs_core.dir/fair_scheduler.cpp.o.d"
  "CMakeFiles/dfs_core.dir/locality_first.cpp.o"
  "CMakeFiles/dfs_core.dir/locality_first.cpp.o.d"
  "CMakeFiles/dfs_core.dir/scheduler.cpp.o"
  "CMakeFiles/dfs_core.dir/scheduler.cpp.o.d"
  "libdfs_core.a"
  "libdfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
