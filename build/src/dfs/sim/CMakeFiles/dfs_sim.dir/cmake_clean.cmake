file(REMOVE_RECURSE
  "CMakeFiles/dfs_sim.dir/simulator.cpp.o"
  "CMakeFiles/dfs_sim.dir/simulator.cpp.o.d"
  "libdfs_sim.a"
  "libdfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
