file(REMOVE_RECURSE
  "libdfs_sim.a"
)
