# Empty dependencies file for dfs_sim.
# This may be replaced when dependencies are built.
