# Empty compiler generated dependencies file for dfs_analysis.
# This may be replaced when dependencies are built.
