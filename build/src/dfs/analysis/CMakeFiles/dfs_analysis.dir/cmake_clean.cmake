file(REMOVE_RECURSE
  "CMakeFiles/dfs_analysis.dir/model.cpp.o"
  "CMakeFiles/dfs_analysis.dir/model.cpp.o.d"
  "libdfs_analysis.a"
  "libdfs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
