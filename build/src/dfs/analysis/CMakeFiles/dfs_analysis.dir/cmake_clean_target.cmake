file(REMOVE_RECURSE
  "libdfs_analysis.a"
)
