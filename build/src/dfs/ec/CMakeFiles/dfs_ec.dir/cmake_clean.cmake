file(REMOVE_RECURSE
  "CMakeFiles/dfs_ec.dir/cauchy.cpp.o"
  "CMakeFiles/dfs_ec.dir/cauchy.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/erasure_code.cpp.o"
  "CMakeFiles/dfs_ec.dir/erasure_code.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/gf256.cpp.o"
  "CMakeFiles/dfs_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/gf65536.cpp.o"
  "CMakeFiles/dfs_ec.dir/gf65536.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/lrc.cpp.o"
  "CMakeFiles/dfs_ec.dir/lrc.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/dfs_ec.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/registry.cpp.o"
  "CMakeFiles/dfs_ec.dir/registry.cpp.o.d"
  "CMakeFiles/dfs_ec.dir/wide_rs.cpp.o"
  "CMakeFiles/dfs_ec.dir/wide_rs.cpp.o.d"
  "libdfs_ec.a"
  "libdfs_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
