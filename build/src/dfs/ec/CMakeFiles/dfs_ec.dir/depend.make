# Empty dependencies file for dfs_ec.
# This may be replaced when dependencies are built.
