file(REMOVE_RECURSE
  "libdfs_ec.a"
)
