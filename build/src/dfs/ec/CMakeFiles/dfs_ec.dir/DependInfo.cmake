
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/ec/cauchy.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/cauchy.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/cauchy.cpp.o.d"
  "/root/repo/src/dfs/ec/erasure_code.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/erasure_code.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/erasure_code.cpp.o.d"
  "/root/repo/src/dfs/ec/gf256.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/gf256.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/gf256.cpp.o.d"
  "/root/repo/src/dfs/ec/gf65536.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/gf65536.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/gf65536.cpp.o.d"
  "/root/repo/src/dfs/ec/lrc.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/lrc.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/lrc.cpp.o.d"
  "/root/repo/src/dfs/ec/reed_solomon.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/reed_solomon.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/dfs/ec/registry.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/registry.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/registry.cpp.o.d"
  "/root/repo/src/dfs/ec/wide_rs.cpp" "src/dfs/ec/CMakeFiles/dfs_ec.dir/wide_rs.cpp.o" "gcc" "src/dfs/ec/CMakeFiles/dfs_ec.dir/wide_rs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
