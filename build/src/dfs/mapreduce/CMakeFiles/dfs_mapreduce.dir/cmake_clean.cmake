file(REMOVE_RECURSE
  "CMakeFiles/dfs_mapreduce.dir/master.cpp.o"
  "CMakeFiles/dfs_mapreduce.dir/master.cpp.o.d"
  "CMakeFiles/dfs_mapreduce.dir/metrics.cpp.o"
  "CMakeFiles/dfs_mapreduce.dir/metrics.cpp.o.d"
  "CMakeFiles/dfs_mapreduce.dir/repair.cpp.o"
  "CMakeFiles/dfs_mapreduce.dir/repair.cpp.o.d"
  "CMakeFiles/dfs_mapreduce.dir/simulation.cpp.o"
  "CMakeFiles/dfs_mapreduce.dir/simulation.cpp.o.d"
  "CMakeFiles/dfs_mapreduce.dir/trace.cpp.o"
  "CMakeFiles/dfs_mapreduce.dir/trace.cpp.o.d"
  "libdfs_mapreduce.a"
  "libdfs_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
