file(REMOVE_RECURSE
  "libdfs_mapreduce.a"
)
