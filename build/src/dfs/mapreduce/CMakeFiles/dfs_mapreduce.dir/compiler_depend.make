# Empty compiler generated dependencies file for dfs_mapreduce.
# This may be replaced when dependencies are built.
