# Empty dependencies file for dfs_engine.
# This may be replaced when dependencies are built.
