file(REMOVE_RECURSE
  "CMakeFiles/dfs_engine.dir/block_store.cpp.o"
  "CMakeFiles/dfs_engine.dir/block_store.cpp.o.d"
  "CMakeFiles/dfs_engine.dir/runner.cpp.o"
  "CMakeFiles/dfs_engine.dir/runner.cpp.o.d"
  "CMakeFiles/dfs_engine.dir/text_jobs.cpp.o"
  "CMakeFiles/dfs_engine.dir/text_jobs.cpp.o.d"
  "libdfs_engine.a"
  "libdfs_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
