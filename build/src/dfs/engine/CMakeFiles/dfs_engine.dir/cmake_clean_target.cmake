file(REMOVE_RECURSE
  "libdfs_engine.a"
)
