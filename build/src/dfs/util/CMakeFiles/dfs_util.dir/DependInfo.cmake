
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/util/args.cpp" "src/dfs/util/CMakeFiles/dfs_util.dir/args.cpp.o" "gcc" "src/dfs/util/CMakeFiles/dfs_util.dir/args.cpp.o.d"
  "/root/repo/src/dfs/util/stats.cpp" "src/dfs/util/CMakeFiles/dfs_util.dir/stats.cpp.o" "gcc" "src/dfs/util/CMakeFiles/dfs_util.dir/stats.cpp.o.d"
  "/root/repo/src/dfs/util/table.cpp" "src/dfs/util/CMakeFiles/dfs_util.dir/table.cpp.o" "gcc" "src/dfs/util/CMakeFiles/dfs_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
