# Empty compiler generated dependencies file for dfs_util.
# This may be replaced when dependencies are built.
