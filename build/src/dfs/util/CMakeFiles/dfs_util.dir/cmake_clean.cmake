file(REMOVE_RECURSE
  "CMakeFiles/dfs_util.dir/args.cpp.o"
  "CMakeFiles/dfs_util.dir/args.cpp.o.d"
  "CMakeFiles/dfs_util.dir/stats.cpp.o"
  "CMakeFiles/dfs_util.dir/stats.cpp.o.d"
  "CMakeFiles/dfs_util.dir/table.cpp.o"
  "CMakeFiles/dfs_util.dir/table.cpp.o.d"
  "libdfs_util.a"
  "libdfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
