file(REMOVE_RECURSE
  "libdfs_util.a"
)
