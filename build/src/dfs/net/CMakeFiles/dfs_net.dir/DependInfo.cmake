
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/net/network.cpp" "src/dfs/net/CMakeFiles/dfs_net.dir/network.cpp.o" "gcc" "src/dfs/net/CMakeFiles/dfs_net.dir/network.cpp.o.d"
  "/root/repo/src/dfs/net/topology.cpp" "src/dfs/net/CMakeFiles/dfs_net.dir/topology.cpp.o" "gcc" "src/dfs/net/CMakeFiles/dfs_net.dir/topology.cpp.o.d"
  "/root/repo/src/dfs/net/utilization.cpp" "src/dfs/net/CMakeFiles/dfs_net.dir/utilization.cpp.o" "gcc" "src/dfs/net/CMakeFiles/dfs_net.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
