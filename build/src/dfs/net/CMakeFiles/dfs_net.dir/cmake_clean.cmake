file(REMOVE_RECURSE
  "CMakeFiles/dfs_net.dir/network.cpp.o"
  "CMakeFiles/dfs_net.dir/network.cpp.o.d"
  "CMakeFiles/dfs_net.dir/topology.cpp.o"
  "CMakeFiles/dfs_net.dir/topology.cpp.o.d"
  "CMakeFiles/dfs_net.dir/utilization.cpp.o"
  "CMakeFiles/dfs_net.dir/utilization.cpp.o.d"
  "libdfs_net.a"
  "libdfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
