file(REMOVE_RECURSE
  "libdfs_net.a"
)
