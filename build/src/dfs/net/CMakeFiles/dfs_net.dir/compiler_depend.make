# Empty compiler generated dependencies file for dfs_net.
# This may be replaced when dependencies are built.
