# Empty dependencies file for dfs_storage.
# This may be replaced when dependencies are built.
