file(REMOVE_RECURSE
  "libdfs_storage.a"
)
