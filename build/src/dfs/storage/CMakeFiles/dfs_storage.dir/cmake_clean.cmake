file(REMOVE_RECURSE
  "CMakeFiles/dfs_storage.dir/degraded.cpp.o"
  "CMakeFiles/dfs_storage.dir/degraded.cpp.o.d"
  "CMakeFiles/dfs_storage.dir/failure.cpp.o"
  "CMakeFiles/dfs_storage.dir/failure.cpp.o.d"
  "CMakeFiles/dfs_storage.dir/layout.cpp.o"
  "CMakeFiles/dfs_storage.dir/layout.cpp.o.d"
  "libdfs_storage.a"
  "libdfs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
