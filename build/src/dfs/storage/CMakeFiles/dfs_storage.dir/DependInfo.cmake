
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/storage/degraded.cpp" "src/dfs/storage/CMakeFiles/dfs_storage.dir/degraded.cpp.o" "gcc" "src/dfs/storage/CMakeFiles/dfs_storage.dir/degraded.cpp.o.d"
  "/root/repo/src/dfs/storage/failure.cpp" "src/dfs/storage/CMakeFiles/dfs_storage.dir/failure.cpp.o" "gcc" "src/dfs/storage/CMakeFiles/dfs_storage.dir/failure.cpp.o.d"
  "/root/repo/src/dfs/storage/layout.cpp" "src/dfs/storage/CMakeFiles/dfs_storage.dir/layout.cpp.o" "gcc" "src/dfs/storage/CMakeFiles/dfs_storage.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/util/CMakeFiles/dfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/net/CMakeFiles/dfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/ec/CMakeFiles/dfs_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
