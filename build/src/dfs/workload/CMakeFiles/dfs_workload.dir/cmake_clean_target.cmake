file(REMOVE_RECURSE
  "libdfs_workload.a"
)
