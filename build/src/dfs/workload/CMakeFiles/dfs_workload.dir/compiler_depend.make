# Empty compiler generated dependencies file for dfs_workload.
# This may be replaced when dependencies are built.
