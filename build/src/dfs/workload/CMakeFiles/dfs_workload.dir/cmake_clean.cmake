file(REMOVE_RECURSE
  "CMakeFiles/dfs_workload.dir/scenarios.cpp.o"
  "CMakeFiles/dfs_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/dfs_workload.dir/text.cpp.o"
  "CMakeFiles/dfs_workload.dir/text.cpp.o.d"
  "libdfs_workload.a"
  "libdfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
