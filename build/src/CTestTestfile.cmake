# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("dfs/util")
subdirs("dfs/sim")
subdirs("dfs/net")
subdirs("dfs/ec")
subdirs("dfs/storage")
subdirs("dfs/mapreduce")
subdirs("dfs/core")
subdirs("dfs/analysis")
subdirs("dfs/workload")
subdirs("dfs/engine")
