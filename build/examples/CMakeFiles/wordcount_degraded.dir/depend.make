# Empty dependencies file for wordcount_degraded.
# This may be replaced when dependencies are built.
