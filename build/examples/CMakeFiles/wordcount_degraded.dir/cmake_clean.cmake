file(REMOVE_RECURSE
  "CMakeFiles/wordcount_degraded.dir/wordcount_degraded.cpp.o"
  "CMakeFiles/wordcount_degraded.dir/wordcount_degraded.cpp.o.d"
  "wordcount_degraded"
  "wordcount_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
