# Empty dependencies file for multi_job.
# This may be replaced when dependencies are built.
