file(REMOVE_RECURSE
  "CMakeFiles/multi_job.dir/multi_job.cpp.o"
  "CMakeFiles/multi_job.dir/multi_job.cpp.o.d"
  "multi_job"
  "multi_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
