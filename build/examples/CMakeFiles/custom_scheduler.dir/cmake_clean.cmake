file(REMOVE_RECURSE
  "CMakeFiles/custom_scheduler.dir/custom_scheduler.cpp.o"
  "CMakeFiles/custom_scheduler.dir/custom_scheduler.cpp.o.d"
  "custom_scheduler"
  "custom_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
