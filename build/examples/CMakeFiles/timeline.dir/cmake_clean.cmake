file(REMOVE_RECURSE
  "CMakeFiles/timeline.dir/timeline.cpp.o"
  "CMakeFiles/timeline.dir/timeline.cpp.o.d"
  "timeline"
  "timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
