# Empty dependencies file for timeline.
# This may be replaced when dependencies are built.
