# Empty compiler generated dependencies file for fig4_pacing.
# This may be replaced when dependencies are built.
