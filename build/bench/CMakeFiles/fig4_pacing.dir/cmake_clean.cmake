file(REMOVE_RECURSE
  "CMakeFiles/fig4_pacing.dir/fig4_pacing.cpp.o"
  "CMakeFiles/fig4_pacing.dir/fig4_pacing.cpp.o.d"
  "fig4_pacing"
  "fig4_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
