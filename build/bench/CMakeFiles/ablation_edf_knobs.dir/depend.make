# Empty dependencies file for ablation_edf_knobs.
# This may be replaced when dependencies are built.
