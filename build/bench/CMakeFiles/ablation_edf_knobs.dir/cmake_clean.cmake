file(REMOVE_RECURSE
  "CMakeFiles/ablation_edf_knobs.dir/ablation_edf_knobs.cpp.o"
  "CMakeFiles/ablation_edf_knobs.dir/ablation_edf_knobs.cpp.o.d"
  "ablation_edf_knobs"
  "ablation_edf_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edf_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
