file(REMOVE_RECURSE
  "CMakeFiles/ablation_replication.dir/ablation_replication.cpp.o"
  "CMakeFiles/ablation_replication.dir/ablation_replication.cpp.o.d"
  "ablation_replication"
  "ablation_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
