# Empty dependencies file for ablation_heartbeat.
# This may be replaced when dependencies are built.
