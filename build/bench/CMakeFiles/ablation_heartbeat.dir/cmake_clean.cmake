file(REMOVE_RECURSE
  "CMakeFiles/ablation_heartbeat.dir/ablation_heartbeat.cpp.o"
  "CMakeFiles/ablation_heartbeat.dir/ablation_heartbeat.cpp.o.d"
  "ablation_heartbeat"
  "ablation_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
