file(REMOVE_RECURSE
  "CMakeFiles/ablation_repair.dir/ablation_repair.cpp.o"
  "CMakeFiles/ablation_repair.dir/ablation_repair.cpp.o.d"
  "ablation_repair"
  "ablation_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
