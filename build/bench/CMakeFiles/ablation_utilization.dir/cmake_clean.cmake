file(REMOVE_RECURSE
  "CMakeFiles/ablation_utilization.dir/ablation_utilization.cpp.o"
  "CMakeFiles/ablation_utilization.dir/ablation_utilization.cpp.o.d"
  "ablation_utilization"
  "ablation_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
