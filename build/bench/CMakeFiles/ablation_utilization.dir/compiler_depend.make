# Empty compiler generated dependencies file for ablation_utilization.
# This may be replaced when dependencies are built.
