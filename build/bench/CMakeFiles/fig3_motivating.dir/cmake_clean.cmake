file(REMOVE_RECURSE
  "CMakeFiles/fig3_motivating.dir/fig3_motivating.cpp.o"
  "CMakeFiles/fig3_motivating.dir/fig3_motivating.cpp.o.d"
  "fig3_motivating"
  "fig3_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
