# Empty compiler generated dependencies file for fig3_motivating.
# This may be replaced when dependencies are built.
