# Empty compiler generated dependencies file for ablation_speculation.
# This may be replaced when dependencies are built.
