file(REMOVE_RECURSE
  "CMakeFiles/ablation_speculation.dir/ablation_speculation.cpp.o"
  "CMakeFiles/ablation_speculation.dir/ablation_speculation.cpp.o.d"
  "ablation_speculation"
  "ablation_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
