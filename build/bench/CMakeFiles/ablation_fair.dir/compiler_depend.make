# Empty compiler generated dependencies file for ablation_fair.
# This may be replaced when dependencies are built.
