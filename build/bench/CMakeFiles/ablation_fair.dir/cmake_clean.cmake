file(REMOVE_RECURSE
  "CMakeFiles/ablation_fair.dir/ablation_fair.cpp.o"
  "CMakeFiles/ablation_fair.dir/ablation_fair.cpp.o.d"
  "ablation_fair"
  "ablation_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
