# Empty compiler generated dependencies file for ablation_contention.
# This may be replaced when dependencies are built.
