file(REMOVE_RECURSE
  "CMakeFiles/ablation_contention.dir/ablation_contention.cpp.o"
  "CMakeFiles/ablation_contention.dir/ablation_contention.cpp.o.d"
  "ablation_contention"
  "ablation_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
