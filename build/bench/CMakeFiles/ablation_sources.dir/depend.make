# Empty dependencies file for ablation_sources.
# This may be replaced when dependencies are built.
