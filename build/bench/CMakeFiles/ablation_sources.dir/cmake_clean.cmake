file(REMOVE_RECURSE
  "CMakeFiles/ablation_sources.dir/ablation_sources.cpp.o"
  "CMakeFiles/ablation_sources.dir/ablation_sources.cpp.o.d"
  "ablation_sources"
  "ablation_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
