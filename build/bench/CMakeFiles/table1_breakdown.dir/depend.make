# Empty dependencies file for table1_breakdown.
# This may be replaced when dependencies are built.
