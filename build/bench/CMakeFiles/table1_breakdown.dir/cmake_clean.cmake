file(REMOVE_RECURSE
  "CMakeFiles/table1_breakdown.dir/table1_breakdown.cpp.o"
  "CMakeFiles/table1_breakdown.dir/table1_breakdown.cpp.o.d"
  "table1_breakdown"
  "table1_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
