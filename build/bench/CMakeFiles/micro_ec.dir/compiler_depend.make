# Empty compiler generated dependencies file for micro_ec.
# This may be replaced when dependencies are built.
