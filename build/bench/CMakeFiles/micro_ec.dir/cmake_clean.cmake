file(REMOVE_RECURSE
  "CMakeFiles/micro_ec.dir/micro_ec.cpp.o"
  "CMakeFiles/micro_ec.dir/micro_ec.cpp.o.d"
  "micro_ec"
  "micro_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
