file(REMOVE_RECURSE
  "CMakeFiles/fig8_bdf_edf.dir/fig8_bdf_edf.cpp.o"
  "CMakeFiles/fig8_bdf_edf.dir/fig8_bdf_edf.cpp.o.d"
  "fig8_bdf_edf"
  "fig8_bdf_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bdf_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
