# Empty dependencies file for fig8_bdf_edf.
# This may be replaced when dependencies are built.
