# Empty compiler generated dependencies file for ablation_lrc.
# This may be replaced when dependencies are built.
