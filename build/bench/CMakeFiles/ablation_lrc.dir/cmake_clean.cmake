file(REMOVE_RECURSE
  "CMakeFiles/ablation_lrc.dir/ablation_lrc.cpp.o"
  "CMakeFiles/ablation_lrc.dir/ablation_lrc.cpp.o.d"
  "ablation_lrc"
  "ablation_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
