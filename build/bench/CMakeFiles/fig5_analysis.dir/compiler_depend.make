# Empty compiler generated dependencies file for fig5_analysis.
# This may be replaced when dependencies are built.
