file(REMOVE_RECURSE
  "CMakeFiles/fig5_analysis.dir/fig5_analysis.cpp.o"
  "CMakeFiles/fig5_analysis.dir/fig5_analysis.cpp.o.d"
  "fig5_analysis"
  "fig5_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
