# Empty dependencies file for ablation_affinity.
# This may be replaced when dependencies are built.
