file(REMOVE_RECURSE
  "CMakeFiles/ablation_affinity.dir/ablation_affinity.cpp.o"
  "CMakeFiles/ablation_affinity.dir/ablation_affinity.cpp.o.d"
  "ablation_affinity"
  "ablation_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
