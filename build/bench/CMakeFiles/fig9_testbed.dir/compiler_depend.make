# Empty compiler generated dependencies file for fig9_testbed.
# This may be replaced when dependencies are built.
