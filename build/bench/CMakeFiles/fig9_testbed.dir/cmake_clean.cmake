file(REMOVE_RECURSE
  "CMakeFiles/fig9_testbed.dir/fig9_testbed.cpp.o"
  "CMakeFiles/fig9_testbed.dir/fig9_testbed.cpp.o.d"
  "fig9_testbed"
  "fig9_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
