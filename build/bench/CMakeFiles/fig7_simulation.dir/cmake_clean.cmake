file(REMOVE_RECURSE
  "CMakeFiles/fig7_simulation.dir/fig7_simulation.cpp.o"
  "CMakeFiles/fig7_simulation.dir/fig7_simulation.cpp.o.d"
  "fig7_simulation"
  "fig7_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
