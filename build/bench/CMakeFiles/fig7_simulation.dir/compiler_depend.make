# Empty compiler generated dependencies file for fig7_simulation.
# This may be replaced when dependencies are built.
