# Empty dependencies file for ablation_delay.
# This may be replaced when dependencies are built.
