file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay.dir/ablation_delay.cpp.o"
  "CMakeFiles/ablation_delay.dir/ablation_delay.cpp.o.d"
  "ablation_delay"
  "ablation_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
