file(REMOVE_RECURSE
  "CMakeFiles/dfsec.dir/dfsec.cpp.o"
  "CMakeFiles/dfsec.dir/dfsec.cpp.o.d"
  "dfsec"
  "dfsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
