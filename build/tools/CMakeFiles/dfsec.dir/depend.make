# Empty dependencies file for dfsec.
# This may be replaced when dependencies are built.
