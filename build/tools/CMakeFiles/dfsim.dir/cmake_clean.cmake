file(REMOVE_RECURSE
  "CMakeFiles/dfsim.dir/dfsim.cpp.o"
  "CMakeFiles/dfsim.dir/dfsim.cpp.o.d"
  "dfsim"
  "dfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
