# Empty compiler generated dependencies file for dfsim.
# This may be replaced when dependencies are built.
