// AVX2 split-nibble-table GF(2^8) region kernels. Compiled with -mavx2 by
// CMake; only reachable through runtime dispatch after
// __builtin_cpu_supports("avx2") confirms the CPU.
//
// Same split-table scheme as the SSSE3 backend, but VPSHUFB shuffles both
// 128-bit lanes at once (the 16-entry table is broadcast to both lanes), so
// one step covers 32 bytes; the fused multi-source kernel holds a 64-byte
// destination chunk in registers across all k coefficient rows.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "dfs/ec/gf256_kernels_impl.h"

namespace dfs::ec::gf256::detail {

namespace {

void avx2_xor_region(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len) {
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < len; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

struct CoeffTables {
  __m256i lo;
  __m256i hi;
};

inline CoeffTables load_tables(std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  return CoeffTables{
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]))),
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c])))};
}

inline __m256i mul_block(__m256i s, const CoeffTables& t, __m256i nibble) {
  const __m256i lo = _mm256_shuffle_epi8(t.lo, _mm256_and_si256(s, nibble));
  const __m256i hi = _mm256_shuffle_epi8(
      t.hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), nibble));
  return _mm256_xor_si256(lo, hi);
}

void avx2_mul_region(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t c, std::size_t len) {
  if (len == 0) return;  // keep memset/memmove off possibly-null buffers
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const CoeffTables t = load_tables(c);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_block(s, t, nibble));
  }
  const std::uint8_t* row = full_table().mul[c];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

void avx2_mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t c, std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    avx2_xor_region(dst, src, len);
    return;
  }
  const CoeffTables t = load_tables(c);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul_block(s, t, nibble)));
  }
  const std::uint8_t* row = full_table().mul[c];
  for (; i < len; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ row[src[i]]);
}

// Fused multi-source kernel: a 64-byte destination chunk lives in two ymm
// accumulators across all k coefficient rows, so dst traffic is once per
// chunk instead of once per source — the encode inner loop of the RS family.
void avx2_mul_add_region_multi(std::uint8_t* dst,
                               const std::uint8_t* const* srcs,
                               const std::uint8_t* coeffs, std::size_t count,
                               std::size_t len) {
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint8_t c = coeffs[j];
      if (c == 0) continue;
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      const __m256i s1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[j] + i + 32));
      if (c == 1) {
        acc0 = _mm256_xor_si256(acc0, s0);
        acc1 = _mm256_xor_si256(acc1, s1);
        continue;
      }
      const CoeffTables t = load_tables(c);
      acc0 = _mm256_xor_si256(acc0, mul_block(s0, t, nibble));
      acc1 = _mm256_xor_si256(acc1, mul_block(s1, t, nibble));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  if (i < len) {
    for (std::size_t j = 0; j < count; ++j) {
      avx2_mul_add_region(dst + i, srcs[j] + i, coeffs[j], len - i);
    }
  }
}

void avx2_xor_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                           std::size_t count, std::size_t len) {
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    for (std::size_t j = 0; j < count; ++j) {
      acc0 = _mm256_xor_si256(
          acc0,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
      acc1 = _mm256_xor_si256(
          acc1, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(srcs[j] + i + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  if (i < len) {
    for (std::size_t j = 0; j < count; ++j) {
      avx2_xor_region(dst + i, srcs[j] + i, len - i);
    }
  }
}

constexpr KernelOps kAvx2Ops{avx2_mul_region, avx2_mul_add_region,
                             avx2_xor_region, avx2_mul_add_region_multi,
                             avx2_xor_region_multi};

}  // namespace

const KernelOps& avx2_kernel_ops() { return kAvx2Ops; }

}  // namespace dfs::ec::gf256::detail

#endif  // defined(__AVX2__)
