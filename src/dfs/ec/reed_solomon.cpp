#include "dfs/ec/reed_solomon.h"

#include <stdexcept>
#include <string>

namespace dfs::ec {

namespace {

Matrix systematic_vandermonde_generator(int n, int k) {
  if (k <= 0 || n <= k) {
    throw std::invalid_argument("Reed-Solomon requires 0 < k < n");
  }
  if (n > 255) throw std::invalid_argument("RS over GF(256) requires n <= 255");
  const Matrix v = Matrix::vandermonde(n, k);
  std::vector<int> top(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) top[static_cast<std::size_t>(i)] = i;
  const auto inv = v.select_rows(top).inverted();
  // A square Vandermonde with distinct evaluation points is always
  // invertible, so this cannot fail for valid (n, k).
  if (!inv) throw std::logic_error("Vandermonde top square singular");
  return v.multiply(*inv);
}

std::string rs_name(int n, int k) {
  return "RS(" + std::to_string(n) + "," + std::to_string(k) + ")";
}

}  // namespace

ReedSolomonCode::ReedSolomonCode(int n, int k)
    : LinearCode(n, k, systematic_vandermonde_generator(n, k), rs_name(n, k)) {}

std::unique_ptr<ErasureCode> make_reed_solomon(int n, int k) {
  return std::make_unique<ReedSolomonCode>(n, k);
}

std::unique_ptr<ErasureCode> make_single_parity(int k) {
  Matrix g = Matrix::identity(k);
  Matrix ones(1, k);
  for (int c = 0; c < k; ++c) ones.set(0, c, 1);
  g.append_rows(ones);
  return std::make_unique<LinearCode>(k + 1, k, std::move(g),
                                      "XOR(" + std::to_string(k + 1) + "," +
                                          std::to_string(k) + ")");
}

std::unique_ptr<ErasureCode> make_replication(int copies) {
  if (copies < 2) throw std::invalid_argument("replication needs >= 2 copies");
  Matrix g(copies, 1);
  for (int r = 0; r < copies; ++r) g.set(r, 0, 1);
  return std::make_unique<LinearCode>(copies, 1, std::move(g),
                                      "REP(" + std::to_string(copies) + ")");
}

}  // namespace dfs::ec
