#include "dfs/ec/hitchhiker.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace dfs::ec {

namespace {

/// Substripe bit layout: bit 0 = the a-half, bit 1 = the b-half.
constexpr unsigned kHalfA = 0x1;
constexpr unsigned kHalfB = 0x2;
constexpr unsigned kBothHalves = kHalfA | kHalfB;

Matrix rs_generator(int n, int k) {
  if (k <= 0 || n <= k) {
    throw std::invalid_argument("Hitchhiker-XOR requires 0 < k < n");
  }
  if (n - k < 2) {
    throw std::invalid_argument(
        "Hitchhiker-XOR requires n - k >= 2 (parity 0 carries no piggyback)");
  }
  if (n > 255) {
    throw std::invalid_argument("Hitchhiker-XOR over GF(256) requires n <= 255");
  }
  const Matrix v = Matrix::vandermonde(n, k);
  std::vector<int> top(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) top[static_cast<std::size_t>(i)] = i;
  const auto inv = v.select_rows(top).inverted();
  if (!inv) throw std::logic_error("Vandermonde top square singular");
  return v.multiply(*inv);
}

int balanced_group_start(int k, int groups, int g) {
  const int base = k / groups;
  const int rem = k % groups;
  return g * base + std::min(g, rem);
}

/// The (2n, 2k) generator: symbol 2i is a_i, symbol 2i+1 is b_i. Parity j's
/// a-row and b-row carry the RS coefficients on the a- and b-positions
/// respectively; for j >= 1 the b-row additionally XORs (coefficient 1) the
/// a-positions of piggyback group G_j.
Matrix inner_generator(int n, int k) {
  const Matrix rs = rs_generator(n, k);
  const int r = n - k;
  const int groups = r - 1;
  Matrix g(2 * n, 2 * k);
  for (int i = 0; i < 2 * k; ++i) g.set(i, i, 1);
  for (int j = 0; j < r; ++j) {
    const int a_row = 2 * (k + j);
    const int b_row = a_row + 1;
    for (int t = 0; t < k; ++t) {
      const auto c = rs.at(k + j, t);
      g.set(a_row, 2 * t, c);
      g.set(b_row, 2 * t + 1, c);
    }
    if (j >= 1) {
      const int start = balanced_group_start(k, groups, j - 1);
      const int end = balanced_group_start(k, groups, j);
      for (int t = start; t < end; ++t) {
        g.set(b_row, 2 * t, GF256Field::add(g.at(b_row, 2 * t), 1));
      }
    }
  }
  return g;
}

std::string hh_name(int n, int k) {
  return "HH-XOR(" + std::to_string(n) + "," + std::to_string(k) + ")";
}

}  // namespace

HitchhikerXorCode::HitchhikerXorCode(int n, int k)
    : ErasureCode(n, k),
      inner_(2 * n, 2 * k, inner_generator(n, k), hh_name(n, k) + "/inner") {}

std::string HitchhikerXorCode::name() const { return hh_name(n(), k()); }

int HitchhikerXorCode::group_of(int data_shard) const {
  if (data_shard < 0 || data_shard >= k()) {
    throw std::invalid_argument("group_of: not a data shard");
  }
  const int groups = piggyback_groups();
  for (int g = 0; g < groups; ++g) {
    if (data_shard < balanced_group_start(k(), groups, g + 1)) return g;
  }
  return groups - 1;  // unreachable for valid inputs
}

int HitchhikerXorCode::group_size(int group) const {
  if (group < 0 || group >= piggyback_groups()) {
    throw std::invalid_argument("group_size: bad group");
  }
  return balanced_group_start(k(), piggyback_groups(), group + 1) -
         balanced_group_start(k(), piggyback_groups(), group);
}

std::vector<Shard> HitchhikerXorCode::encode(
    const std::vector<Shard>& data) const {
  check_encode_args(data);
  const std::size_t len = data.front().size();
  if (len % 2 != 0) {
    throw std::invalid_argument("Hitchhiker shard length must be even");
  }
  // The substripes are contiguous halves of each shard, so the inner code
  // encodes straight out of the data shards and into the final parity
  // buffers via region pointers — no half-shard copies, no concatenation.
  const std::size_t half = len / 2;
  std::vector<const std::uint8_t*> srcs(static_cast<std::size_t>(2 * k()));
  for (int i = 0; i < k(); ++i) {
    const Shard& d = data[static_cast<std::size_t>(i)];
    srcs[static_cast<std::size_t>(2 * i)] = d.data();
    srcs[static_cast<std::size_t>(2 * i + 1)] = d.data() + half;
  }
  std::vector<Shard> parity(static_cast<std::size_t>(parity_count()),
                            Shard(len, 0));
  std::vector<std::uint8_t*> dsts(static_cast<std::size_t>(2 * parity_count()));
  for (int j = 0; j < parity_count(); ++j) {
    Shard& p = parity[static_cast<std::size_t>(j)];
    dsts[static_cast<std::size_t>(2 * j)] = p.data();
    dsts[static_cast<std::size_t>(2 * j + 1)] = p.data() + half;
  }
  inner_.encode_regions(srcs.data(), dsts.data(), half);
  return parity;
}

std::optional<std::vector<Shard>> HitchhikerXorCode::reconstruct(
    const std::vector<std::pair<int, const Shard*>>& present,
    const std::vector<int>& want) const {
  std::vector<PresentSlice> slices;
  slices.reserve(present.size());
  for (const auto& [id, shard] : present) {
    slices.push_back(PresentSlice{id, kBothHalves, shard});
  }
  return reconstruct_slices(slices, want);
}

std::optional<std::vector<Shard>> HitchhikerXorCode::reconstruct_slices(
    const std::vector<PresentSlice>& present,
    const std::vector<int>& want) const {
  if (present.empty()) return std::nullopt;
  // Every slice holds its fetched substripes back to back, so the half-shard
  // length is its byte count divided by the number of substripes it carries.
  std::size_t half = 0;
  for (const PresentSlice& p : present) {
    if (p.shard < 0 || p.shard >= n()) {
      throw std::invalid_argument("bad shard index");
    }
    if (p.substripes == 0 || (p.substripes & ~kBothHalves) != 0) {
      throw std::invalid_argument("bad substripe mask");
    }
    if (p.bytes == nullptr) throw std::invalid_argument("null slice bytes");
    const std::size_t parts = p.substripes == kBothHalves ? 2 : 1;
    if (p.bytes->size() % parts != 0) {
      throw std::invalid_argument("slice length must cover its substripes");
    }
    const std::size_t h = p.bytes->size() / parts;
    if (half == 0) half = h;
    if (h != half || h == 0) {
      throw std::invalid_argument("slices disagree on the substripe length");
    }
  }
  std::vector<Shard> owned;
  owned.reserve(2 * present.size());
  std::vector<std::pair<int, const Shard*>> inner_present;
  for (const PresentSlice& p : present) {
    const auto* base = p.bytes->data();
    if (p.substripes & kHalfA) {
      owned.emplace_back(base, base + half);
    }
    if (p.substripes & kHalfB) {
      const auto* b = (p.substripes & kHalfA) ? base + half : base;
      owned.emplace_back(b, b + half);
    }
  }
  std::size_t slot = 0;
  for (const PresentSlice& p : present) {
    if (p.substripes & kHalfA) {
      inner_present.emplace_back(2 * p.shard, &owned[slot++]);
    }
    if (p.substripes & kHalfB) {
      inner_present.emplace_back(2 * p.shard + 1, &owned[slot++]);
    }
  }
  std::vector<int> inner_want;
  inner_want.reserve(2 * want.size());
  for (const int w : want) {
    if (w < 0 || w >= n()) throw std::invalid_argument("bad wanted index");
    inner_want.push_back(2 * w);
    inner_want.push_back(2 * w + 1);
  }
  auto halves = inner_.reconstruct(inner_present, inner_want);
  if (!halves) return std::nullopt;
  std::vector<Shard> out;
  out.reserve(want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    Shard s = std::move((*halves)[2 * i]);
    const Shard& b = (*halves)[2 * i + 1];
    s.insert(s.end(), b.begin(), b.end());
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<RecoveryPlan> HitchhikerXorCode::recovery_plan(
    const std::vector<int>& available, int lost) const {
  if (lost < 0 || lost >= n()) throw std::invalid_argument("bad lost index");
  if (std::find(available.begin(), available.end(), lost) !=
      available.end()) {
    return RecoveryPlan{{full_shard_option({lost})}};
  }
  RecoveryPlan plan;
  if (lost < k()) {
    // Sub-shard repair: needs every other data shard, parity 0 and the
    // group's piggybacked parity alive.
    const int g = group_of(lost);
    const int piggy_parity = k() + 1 + g;
    std::vector<char> present(static_cast<std::size_t>(n()), 0);
    for (const int a : available) present[static_cast<std::size_t>(a)] = 1;
    bool feasible = present[static_cast<std::size_t>(k())] &&
                    present[static_cast<std::size_t>(piggy_parity)];
    for (int d = 0; d < k() && feasible; ++d) {
      if (d != lost) feasible = present[static_cast<std::size_t>(d)] != 0;
    }
    if (feasible) {
      RecoveryOption opt;
      for (const int a : available) {  // caller's preference order
        if (a < k() && a != lost) {
          if (group_of(a) == g) {
            opt.sources.push_back(RecoverySource{a, kBothHalves, 1.0});
          } else {
            opt.sources.push_back(RecoverySource{a, kHalfB, 0.5});
          }
        } else if (a == k() || a == piggy_parity) {
          opt.sources.push_back(RecoverySource{a, kHalfB, 0.5});
        }
      }
      plan.options.push_back(std::move(opt));
    }
  }
  // Full-shard fallback (and the only path for parity shards): a greedy
  // spanning prefix over whole survivors, via the inner half-shard code.
  {
    std::vector<int> row_ids;
    row_ids.reserve(2 * available.size());
    for (const int a : available) {
      if (a < 0 || a >= n()) throw std::invalid_argument("bad shard index");
      row_ids.push_back(2 * a);
      row_ids.push_back(2 * a + 1);
    }
    const detail::RowSolver<GF256Field> solver(inner_.generator(), row_ids);
    const auto ca = solver.express(inner_.generator().row(2 * lost));
    const auto cb = solver.express(inner_.generator().row(2 * lost + 1));
    if (ca && cb) {
      std::vector<int> chosen;
      for (std::size_t i = 0; i < available.size(); ++i) {
        if ((*ca)[2 * i] != 0 || (*ca)[2 * i + 1] != 0 ||
            (*cb)[2 * i] != 0 || (*cb)[2 * i + 1] != 0) {
          chosen.push_back(available[i]);
        }
      }
      plan.options.push_back(full_shard_option(chosen));
    }
  }
  if (plan.options.empty()) return std::nullopt;
  return plan;
}

std::unique_ptr<ErasureCode> make_hitchhiker_xor(int n, int k) {
  return std::make_unique<HitchhikerXorCode>(n, k);
}

}  // namespace dfs::ec
