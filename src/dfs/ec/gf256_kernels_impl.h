#pragma once

#include <cstddef>
#include <cstdint>

#include "dfs/ec/gf256_kernels.h"

// Internal glue between the dispatcher (gf256_kernels.cpp) and the per-ISA
// translation units (gf256_kernels_ssse3.cpp, gf256_kernels_avx2.cpp), which
// are compiled with their own -m flags and must not leak intrinsics into the
// rest of the build.

namespace dfs::ec::gf256::detail {

/// Full 256x256 product table: mul[c][v] = c * v. 64 KiB, built once.
/// Shared by the table backend, by gf256::mul_add_region's former per-call
/// row rebuild, and by the SIMD backends' unaligned head/tail handling.
struct FullTable {
  std::uint8_t mul[256][256];
};
const FullTable& full_table();

/// Split nibble tables: lo[c][v] = c * v and hi[c][v] = c * (v << 4) for
/// v in [0, 16). product = lo[c][s & 15] ^ hi[c][s >> 4] — exactly the two
/// PSHUFB lookups of the ISA-L / Jerasure-SIMD kernel. 8 KiB, built once.
/// Rows are 16-byte aligned so they load straight into vector registers.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};
const NibbleTables& nibble_tables();

/// Vtables exported by the per-ISA translation units. Only referenced when
/// the matching DFS_GF_HAVE_* macro is defined by the build.
const KernelOps& ssse3_kernel_ops();
const KernelOps& avx2_kernel_ops();

}  // namespace dfs::ec::gf256::detail
