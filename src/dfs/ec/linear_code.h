#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "dfs/ec/erasure_code.h"
#include "dfs/ec/matrix.h"

namespace dfs::ec {

namespace detail {

/// Row-reduces a chosen set of generator rows, tracking the combination of
/// original rows that produced each reduced row; can then express arbitrary
/// generator rows as linear combinations of the chosen set.
///
/// Rows are processed in the caller's order and later rows that are linearly
/// dependent on earlier ones never become pivots — this is what makes
/// recovery_plan honor the caller's source-preference order.
template <typename F>
class RowSolver {
 public:
  using Symbol = typename F::Symbol;

  RowSolver(const BasicMatrix<F>& g, const std::vector<int>& row_ids)
      : k_(g.cols()), m_(row_ids.size()) {
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      std::vector<Symbol> r(g.row(row_ids[i]),
                            g.row(row_ids[i]) + static_cast<std::size_t>(k_));
      std::vector<Symbol> c(m_, 0);
      c[i] = 1;
      eliminate(r, c);
      const int pivot = first_nonzero(r);
      if (pivot < 0) continue;  // dependent on earlier rows; skip
      normalize(r, c, pivot);
      reduced_.push_back(std::move(r));
      comb_.push_back(std::move(c));
      pivot_col_.push_back(pivot);
    }
  }

  /// Coefficients (aligned with the constructor's row_ids) expressing
  /// `target` as a combination of the chosen rows; nullopt if out of span.
  std::optional<std::vector<Symbol>> express(const Symbol* target) const {
    std::vector<Symbol> t(target, target + static_cast<std::size_t>(k_));
    std::vector<Symbol> coeff(m_, 0);
    for (std::size_t i = 0; i < reduced_.size(); ++i) {
      const Symbol f = t[static_cast<std::size_t>(pivot_col_[i])];
      if (f == 0) continue;
      add_scaled(t, reduced_[i], f);
      add_scaled(coeff, comb_[i], f);
    }
    if (first_nonzero(t) >= 0) return std::nullopt;
    return coeff;
  }

  std::size_t rank() const { return reduced_.size(); }

 private:
  void eliminate(std::vector<Symbol>& r, std::vector<Symbol>& c) const {
    for (std::size_t i = 0; i < reduced_.size(); ++i) {
      const Symbol f = r[static_cast<std::size_t>(pivot_col_[i])];
      if (f == 0) continue;
      add_scaled(r, reduced_[i], f);
      add_scaled(c, comb_[i], f);
    }
  }

  static void normalize(std::vector<Symbol>& r, std::vector<Symbol>& c,
                        int pivot) {
    const Symbol inv = F::inv(r[static_cast<std::size_t>(pivot)]);
    for (auto& v : r) v = F::mul(v, inv);
    for (auto& v : c) v = F::mul(v, inv);
  }

  static void add_scaled(std::vector<Symbol>& dst,
                         const std::vector<Symbol>& src, Symbol f) {
    if (f == 0 || dst.empty()) return;
    F::mul_add_region(reinterpret_cast<std::uint8_t*>(dst.data()),
                      reinterpret_cast<const std::uint8_t*>(src.data()), f,
                      dst.size() * sizeof(Symbol));
  }

  static int first_nonzero(const std::vector<Symbol>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] != 0) return static_cast<int>(i);
    }
    return -1;
  }

  int k_;
  std::size_t m_;
  std::vector<std::vector<Symbol>> reduced_;
  std::vector<std::vector<Symbol>> comb_;
  std::vector<int> pivot_col_;
};

}  // namespace detail

/// An erasure code defined by an n x k generator matrix over GF(2^w) whose
/// top k rows are the identity (systematic form). Reed-Solomon, single-
/// parity XOR, LRC and the wide GF(2^16) codes are all built on this.
///
/// Decoding picks k linearly independent generator rows among the present
/// shards (honoring the caller's preference order), inverts that submatrix,
/// and multiplies through — the textbook matrix method used by Jerasure.
///
/// Shard lengths must be multiples of the field's symbol width (1 byte for
/// GF(256), 2 bytes for GF(65536)).
template <typename F>
class BasicLinearCode : public ErasureCode {
 public:
  using Symbol = typename F::Symbol;

  BasicLinearCode(int n, int k, BasicMatrix<F> generator, std::string name)
      : ErasureCode(n, k),
        generator_(std::move(generator)),
        name_(std::move(name)) {
    if (generator_.rows() != n || generator_.cols() != k) {
      throw std::invalid_argument("generator must be n x k");
    }
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) {
        if (generator_.at(r, c) != (r == c ? 1 : 0)) {
          throw std::invalid_argument("generator must be systematic");
        }
      }
    }
  }

  std::string name() const override { return name_; }

  std::vector<Shard> encode(const std::vector<Shard>& data) const override {
    check_encode_args(data);
    const std::size_t len = data.front().size();
    check_alignment(len);
    std::vector<const std::uint8_t*> srcs(static_cast<std::size_t>(k()));
    for (int j = 0; j < k(); ++j) {
      srcs[static_cast<std::size_t>(j)] =
          data[static_cast<std::size_t>(j)].data();
    }
    std::vector<Shard> parity(static_cast<std::size_t>(parity_count()),
                              Shard(len, 0));
    std::vector<std::uint8_t*> dsts(parity.size());
    for (std::size_t p = 0; p < parity.size(); ++p) dsts[p] = parity[p].data();
    encode_regions(srcs.data(), dsts.data(), len);
    return parity;
  }

  /// Region-pointer encode: computes every parity row of the generator over
  /// `k()` source regions of `len` bytes each, accumulating into the
  /// `parity_count()` destination regions — which must be zero-initialized
  /// and must not alias any source. This is the raw path Hitchhiker uses to
  /// encode substripes in place without materializing half-shard copies;
  /// each parity row is one fused multi-source pass over an L1-friendly
  /// strip of all k sources.
  void encode_regions(const std::uint8_t* const* srcs,
                      std::uint8_t* const* parity_dsts,
                      std::size_t len) const {
    check_alignment(len);
    std::vector<Symbol> coeffs(static_cast<std::size_t>(k()));
    for (int p = 0; p < parity_count(); ++p) {
      for (int j = 0; j < k(); ++j) {
        coeffs[static_cast<std::size_t>(j)] = generator_.at(k() + p, j);
      }
      F::mul_add_region_multi(parity_dsts[static_cast<std::size_t>(p)], srcs,
                              coeffs.data(), static_cast<std::size_t>(k()),
                              len);
    }
  }

  std::optional<std::vector<Shard>> reconstruct(
      const std::vector<std::pair<int, const Shard*>>& present,
      const std::vector<int>& want) const override {
    if (present.empty()) return std::nullopt;
    const std::size_t len = present.front().second->size();
    check_alignment(len);
    std::vector<int> row_ids;
    row_ids.reserve(present.size());
    for (const auto& [id, shard] : present) {
      if (id < 0 || id >= n()) throw std::invalid_argument("bad shard index");
      if (shard == nullptr || shard->size() != len) {
        throw std::invalid_argument("present shards must be equally sized");
      }
      row_ids.push_back(id);
    }
    const detail::RowSolver<F> solver(generator_, row_ids);
    std::vector<const std::uint8_t*> srcs(present.size());
    for (std::size_t i = 0; i < present.size(); ++i) {
      srcs[i] = present[i].second->data();
    }
    std::vector<Shard> out;
    out.reserve(want.size());
    for (int w : want) {
      if (w < 0 || w >= n()) throw std::invalid_argument("bad wanted index");
      auto coeff = solver.express(generator_.row(w));
      if (!coeff) return std::nullopt;
      Shard shard(len, 0);
      F::mul_add_region_multi(shard.data(), srcs.data(), coeff->data(),
                              present.size(), len);
      out.push_back(std::move(shard));
    }
    return out;
  }

  std::optional<RecoveryPlan> recovery_plan(
      const std::vector<int>& available, int lost) const override {
    if (lost < 0 || lost >= n()) throw std::invalid_argument("bad lost index");
    auto chosen = spanning_subset(available, lost);
    if (!chosen) return std::nullopt;
    return RecoveryPlan{{full_shard_option(*chosen)}};
  }

  const BasicMatrix<F>& generator() const { return generator_; }

  /// True if every k-subset of rows is invertible (checked by tests, not at
  /// construction: it is an O(C(n,k)) sweep).
  bool is_mds() const {
    std::vector<int> subset(static_cast<std::size_t>(k()));
    for (int i = 0; i < k(); ++i) subset[static_cast<std::size_t>(i)] = i;
    while (true) {
      if (!generator_.select_rows(subset).inverted()) return false;
      int i = k() - 1;
      while (i >= 0 && subset[static_cast<std::size_t>(i)] == n() - k() + i) {
        --i;
      }
      if (i < 0) break;
      ++subset[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k(); ++j) {
        subset[static_cast<std::size_t>(j)] =
            subset[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
    return true;
  }

 protected:
  /// Greedily choose a minimal prefix of `candidates` (generator row ids)
  /// whose rows span the `target` generator row; nullopt if they do not.
  std::optional<std::vector<int>> spanning_subset(
      const std::vector<int>& candidates, int target) const {
    if (std::find(candidates.begin(), candidates.end(), target) !=
        candidates.end()) {
      return std::vector<int>{target};
    }
    const detail::RowSolver<F> solver(generator_, candidates);
    auto coeff = solver.express(generator_.row(target));
    if (!coeff) return std::nullopt;
    std::vector<int> chosen;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if ((*coeff)[i] != 0) chosen.push_back(candidates[i]);
    }
    return chosen;
  }

 private:
  static void check_alignment(std::size_t len) {
    if (len % F::kSymbolBytes != 0) {
      throw std::invalid_argument(
          "shard length must be a multiple of the field symbol width");
    }
  }

  BasicMatrix<F> generator_;  // n x k, top k rows identity
  std::string name_;
};

/// The GF(2^8) instantiation used by the storage stack.
using LinearCode = BasicLinearCode<GF256Field>;

}  // namespace dfs::ec
