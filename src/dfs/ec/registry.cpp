#include "dfs/ec/registry.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <optional>
#include <vector>

#include "dfs/ec/cauchy.h"
#include "dfs/ec/hitchhiker.h"
#include "dfs/ec/lrc.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/wide_rs.h"
#include "dfs/util/args.h"

namespace dfs::ec {

namespace {

/// Strict whole-string decimal parse; nullopt on empty input, stray
/// characters, or overflow — a malformed spec, not an invalid parameter.
std::optional<int> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  if (v < static_cast<long>(std::numeric_limits<int>::min()) ||
      v > static_cast<long>(std::numeric_limits<int>::max())) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

}  // namespace

std::shared_ptr<ErasureCode> make_code_from_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::vector<std::string> raw =
      colon == std::string::npos
          ? std::vector<std::string>{}
          : util::split(spec.substr(colon + 1), ',');
  std::vector<int> params;
  params.reserve(raw.size());
  for (const std::string& p : raw) {
    const auto v = parse_int(p);
    if (!v) return nullptr;  // non-numeric parameter: malformed spec
    params.push_back(*v);
  }
  const auto num = [&](std::size_t i) { return params[i]; };
  if (family == "rs" && params.size() == 2) {
    return make_reed_solomon(num(0), num(1));
  }
  if (family == "rs16" && params.size() == 2) {
    return make_wide_reed_solomon(num(0), num(1));
  }
  if (family == "crs" && params.size() == 2) {
    return make_cauchy_reed_solomon(num(0), num(1));
  }
  if (family == "lrc" && params.size() == 3) {
    return make_lrc(num(0), num(1), num(2));
  }
  if (family == "hh" && params.size() == 2) {
    return make_hitchhiker_xor(num(0), num(1));
  }
  if (family == "xor" && params.size() == 1) {
    return make_single_parity(num(0));
  }
  if (family == "rep" && params.size() == 1) {
    return make_replication(num(0));
  }
  return nullptr;
}

const char* code_spec_help() {
  return "rs:n,k | rs16:n,k | crs:n,k | lrc:k,l,r | hh:n,k | xor:k | rep:r";
}

}  // namespace dfs::ec
