#include "dfs/ec/registry.h"

#include <cstdlib>
#include <vector>

#include "dfs/ec/cauchy.h"
#include "dfs/ec/lrc.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/wide_rs.h"
#include "dfs/util/args.h"

namespace dfs::ec {

std::shared_ptr<ErasureCode> make_code_from_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::vector<std::string> params =
      colon == std::string::npos
          ? std::vector<std::string>{}
          : util::split(spec.substr(colon + 1), ',');
  const auto num = [&](std::size_t i) {
    return std::atoi(params[i].c_str());
  };
  if (family == "rs" && params.size() == 2) {
    return make_reed_solomon(num(0), num(1));
  }
  if (family == "rs16" && params.size() == 2) {
    return make_wide_reed_solomon(num(0), num(1));
  }
  if (family == "crs" && params.size() == 2) {
    return make_cauchy_reed_solomon(num(0), num(1));
  }
  if (family == "lrc" && params.size() == 3) {
    return make_lrc(num(0), num(1), num(2));
  }
  if (family == "xor" && params.size() == 1) {
    return make_single_parity(num(0));
  }
  if (family == "rep" && params.size() == 1) {
    return make_replication(num(0));
  }
  return nullptr;
}

const char* code_spec_help() {
  return "rs:n,k | rs16:n,k | crs:n,k | lrc:k,l,r | xor:k | rep:r";
}

}  // namespace dfs::ec
