#pragma once

#include <memory>

#include "dfs/ec/linear_code.h"

namespace dfs::ec {

/// Systematic Reed-Solomon over GF(2^16): the same Vandermonde construction
/// as ReedSolomonCode, but supporting stripes of up to 65535 shards — "wide"
/// codes used by modern archival stores to push redundancy overhead far
/// below the paper's (20,15). Shard lengths must be even (2-byte symbols).
class WideReedSolomonCode : public BasicLinearCode<GF65536Field> {
 public:
  WideReedSolomonCode(int n, int k);
};

std::unique_ptr<ErasureCode> make_wide_reed_solomon(int n, int k);

}  // namespace dfs::ec
