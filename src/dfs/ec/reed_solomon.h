#pragma once

#include <memory>

#include "dfs/ec/linear_code.h"

namespace dfs::ec {

/// Systematic Reed-Solomon over GF(2^8), generator derived from an n x k
/// Vandermonde matrix V by right-multiplying with the inverse of its top
/// k x k square (so the top k rows become the identity). Any k rows of the
/// result are invertible, i.e. the code is MDS.
class ReedSolomonCode : public LinearCode {
 public:
  ReedSolomonCode(int n, int k);
};

/// Factory helpers ------------------------------------------------------------

std::unique_ptr<ErasureCode> make_reed_solomon(int n, int k);

/// (k+1, k) single-parity XOR code.
std::unique_ptr<ErasureCode> make_single_parity(int k);

/// r-way replication expressed as a (r, 1) code: every "parity" is a copy.
std::unique_ptr<ErasureCode> make_replication(int copies);

}  // namespace dfs::ec
