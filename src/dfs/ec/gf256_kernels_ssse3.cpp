// SSSE3 split-nibble-table GF(2^8) region kernels. Compiled with -mssse3 by
// CMake (the rest of the build stays at the base ISA); only reachable through
// runtime dispatch after __builtin_cpu_supports("ssse3") confirms the CPU.
//
// The kernel is the classic PSHUFB pair lookup: for coefficient c the
// product of every byte s is lo[c][s & 15] ^ hi[c][s >> 4], so one 16-byte
// step costs two shuffles and three XORs. Heads/tails (and sub-16-byte
// regions) fall back to the shared full product table, which is bit-exact by
// construction.

#if defined(__SSSE3__)

#include <emmintrin.h>
#include <tmmintrin.h>

#include <cstring>

#include "dfs/ec/gf256_kernels_impl.h"

namespace dfs::ec::gf256::detail {

namespace {

void ssse3_xor_region(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) {
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < len; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

struct CoeffTables {
  __m128i lo;
  __m128i hi;
};

inline CoeffTables load_tables(std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  return CoeffTables{
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c])),
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]))};
}

inline __m128i mul_block(__m128i s, const CoeffTables& t, __m128i nibble) {
  const __m128i lo = _mm_shuffle_epi8(t.lo, _mm_and_si128(s, nibble));
  const __m128i hi = _mm_shuffle_epi8(
      t.hi, _mm_and_si128(_mm_srli_epi64(s, 4), nibble));
  return _mm_xor_si128(lo, hi);
}

void ssse3_mul_region(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t c, std::size_t len) {
  if (len == 0) return;  // keep memset/memmove off possibly-null buffers
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const CoeffTables t = load_tables(c);
  const __m128i nibble = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_block(s, t, nibble));
  }
  const std::uint8_t* row = full_table().mul[c];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

void ssse3_mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    ssse3_xor_region(dst, src, len);
    return;
  }
  const CoeffTables t = load_tables(c);
  const __m128i nibble = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul_block(s, t, nibble)));
  }
  const std::uint8_t* row = full_table().mul[c];
  for (; i < len; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ row[src[i]]);
}

// Fused multi-source kernel: a 32-byte destination chunk stays in registers
// while every source's contribution is accumulated into it, so dst is read
// and written once per chunk instead of once per source.
void ssse3_mul_add_region_multi(std::uint8_t* dst,
                                const std::uint8_t* const* srcs,
                                const std::uint8_t* coeffs, std::size_t count,
                                std::size_t len) {
  const __m128i nibble = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m128i acc0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    __m128i acc1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint8_t c = coeffs[j];
      if (c == 0) continue;
      const __m128i s0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      const __m128i s1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i + 16));
      if (c == 1) {
        acc0 = _mm_xor_si128(acc0, s0);
        acc1 = _mm_xor_si128(acc1, s1);
        continue;
      }
      const CoeffTables t = load_tables(c);
      acc0 = _mm_xor_si128(acc0, mul_block(s0, t, nibble));
      acc1 = _mm_xor_si128(acc1, mul_block(s1, t, nibble));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
  }
  if (i < len) {
    for (std::size_t j = 0; j < count; ++j) {
      ssse3_mul_add_region(dst + i, srcs[j] + i, coeffs[j], len - i);
    }
  }
}

void ssse3_xor_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                            std::size_t count, std::size_t len) {
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m128i acc0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    __m128i acc1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    for (std::size_t j = 0; j < count; ++j) {
      acc0 = _mm_xor_si128(
          acc0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i)));
      acc1 = _mm_xor_si128(
          acc1, _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(srcs[j] + i + 16)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
  }
  if (i < len) {
    for (std::size_t j = 0; j < count; ++j) {
      ssse3_xor_region(dst + i, srcs[j] + i, len - i);
    }
  }
}

constexpr KernelOps kSsse3Ops{ssse3_mul_region, ssse3_mul_add_region,
                              ssse3_xor_region, ssse3_mul_add_region_multi,
                              ssse3_xor_region_multi};

}  // namespace

const KernelOps& ssse3_kernel_ops() { return kSsse3Ops; }

}  // namespace dfs::ec::gf256::detail

#endif  // defined(__SSSE3__)
