#pragma once

#include <cstddef>
#include <cstdint>

// Arithmetic over GF(2^8) with the AES/Rijndael-compatible primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), implemented with log/exp
// tables exactly as Jerasure and other storage coding libraries do.

namespace dfs::ec::gf256 {

/// Multiply two field elements.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Divide a by b. Precondition: b != 0.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t inv(std::uint8_t a);

/// a raised to the e-th power (e >= 0).
std::uint8_t pow(std::uint8_t a, unsigned e);

/// Addition and subtraction in GF(2^8) are both XOR.
inline std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

/// Bulk kernel: dst[i] ^= c * src[i] for i in [0, len). This is the inner
/// loop of every encode/decode. Routed through the runtime-dispatched
/// SIMD/table backend (see gf256_kernels.h); dst == src exact aliasing is
/// allowed, partial overlap is undefined.
void mul_add_region(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len);

/// Bulk kernel: dst[i] = c * src[i]. Same dispatch and aliasing rules.
void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len);

/// Bulk kernel: dst[i] ^= src[i]. Same dispatch and aliasing rules.
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t len);

}  // namespace dfs::ec::gf256
