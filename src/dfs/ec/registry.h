#pragma once

#include <memory>
#include <string>

#include "dfs/ec/erasure_code.h"

namespace dfs::ec {

/// Builds a code from a compact textual spec, the format the command-line
/// tools and configuration files use:
///
///   "rs:n,k"     GF(2^8) systematic Reed-Solomon        e.g. rs:20,15
///   "rs16:n,k"   GF(2^16) wide Reed-Solomon             e.g. rs16:300,290
///   "crs:n,k"    bit-matrix Cauchy Reed-Solomon         e.g. crs:12,10
///   "lrc:k,l,r"  Azure-style local reconstruction code  e.g. lrc:12,2,2
///   "hh:n,k"     Hitchhiker-XOR piggybacked RS          e.g. hh:14,10
///   "xor:k"      single-parity code (k+1, k)            e.g. xor:5
///   "rep:r"      r-way replication                      e.g. rep:3
///
/// Error contract, uniform across families:
///   - Returns nullptr iff the TEXT is malformed — unknown family, wrong
///     parameter count, or a parameter that is not a whole decimal integer
///     (e.g. "rs:a,b", "lrc:12,2", "paq:4,2").
///   - Throws std::invalid_argument iff the text parses but the NUMBERS are
///     invalid for the family (e.g. rs:2,5, hh:5,4, rep:1, lrc:12,5,2).
std::shared_ptr<ErasureCode> make_code_from_spec(const std::string& spec);

/// Human-readable list of accepted spec formats (for tool usage messages).
const char* code_spec_help();

}  // namespace dfs::ec
