#include "dfs/ec/wide_rs.h"

#include <stdexcept>
#include <string>

namespace dfs::ec {

namespace {

BasicMatrix<GF65536Field> wide_generator(int n, int k) {
  if (k <= 0 || n <= k) {
    throw std::invalid_argument("Reed-Solomon requires 0 < k < n");
  }
  if (n > 65535) {
    throw std::invalid_argument("wide RS over GF(2^16) requires n <= 65535");
  }
  const auto v = BasicMatrix<GF65536Field>::vandermonde(n, k);
  std::vector<int> top(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) top[static_cast<std::size_t>(i)] = i;
  const auto inv = v.select_rows(top).inverted();
  if (!inv) throw std::logic_error("Vandermonde top square singular");
  return v.multiply(*inv);
}

}  // namespace

WideReedSolomonCode::WideReedSolomonCode(int n, int k)
    : BasicLinearCode<GF65536Field>(
          n, k, wide_generator(n, k),
          "RS16(" + std::to_string(n) + "," + std::to_string(k) + ")") {}

std::unique_ptr<ErasureCode> make_wide_reed_solomon(int n, int k) {
  return std::make_unique<WideReedSolomonCode>(n, k);
}

}  // namespace dfs::ec
