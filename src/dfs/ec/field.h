#pragma once

#include <cstddef>
#include <cstdint>

#include "dfs/ec/gf256.h"
#include "dfs/ec/gf256_kernels.h"
#include "dfs/ec/gf65536.h"

namespace dfs::ec {

/// Field concept used by BasicMatrix / BasicLinearCode: a Galois field
/// GF(2^w) exposing scalar arithmetic and bulk byte-region kernels.
///
/// GF256Field is the workhorse (Jerasure-compatible, n <= 255 shards);
/// GF65536Field enables wide codes with up to 65535 shards per stripe.

struct GF256Field {
  using Symbol = std::uint8_t;
  static constexpr int kFieldSize = 256;
  static constexpr std::size_t kSymbolBytes = 1;

  static Symbol add(Symbol a, Symbol b) { return gf256::add(a, b); }
  static Symbol mul(Symbol a, Symbol b) { return gf256::mul(a, b); }
  static Symbol div(Symbol a, Symbol b) { return gf256::div(a, b); }
  static Symbol inv(Symbol a) { return gf256::inv(a); }
  static Symbol pow(Symbol a, unsigned e) { return gf256::pow(a, e); }

  static void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                             Symbol c, std::size_t bytes) {
    gf256::mul_add_region(dst, src, c, bytes);
  }
  static void mul_region(std::uint8_t* dst, const std::uint8_t* src, Symbol c,
                         std::size_t bytes) {
    gf256::mul_region(dst, src, c, bytes);
  }
  static void xor_region(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes) {
    gf256::xor_region(dst, src, bytes);
  }
  /// dst ^= XOR_j coeffs[j] * srcs[j] in one pass; dst must not alias any
  /// source.
  static void mul_add_region_multi(std::uint8_t* dst,
                                   const std::uint8_t* const* srcs,
                                   const Symbol* coeffs, std::size_t count,
                                   std::size_t bytes) {
    gf256::mul_add_region_multi(dst, srcs, coeffs, count, bytes);
  }
};

struct GF65536Field {
  using Symbol = std::uint16_t;
  static constexpr int kFieldSize = 65536;
  static constexpr std::size_t kSymbolBytes = 2;

  static Symbol add(Symbol a, Symbol b) { return gf65536::add(a, b); }
  static Symbol mul(Symbol a, Symbol b) { return gf65536::mul(a, b); }
  static Symbol div(Symbol a, Symbol b) { return gf65536::div(a, b); }
  static Symbol inv(Symbol a) { return gf65536::inv(a); }
  static Symbol pow(Symbol a, unsigned e) { return gf65536::pow(a, e); }

  static void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                             Symbol c, std::size_t bytes) {
    gf65536::mul_add_region(dst, src, c, bytes);
  }
  static void mul_region(std::uint8_t* dst, const std::uint8_t* src, Symbol c,
                         std::size_t bytes) {
    gf65536::mul_region(dst, src, c, bytes);
  }
  static void xor_region(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes) {
    gf65536::xor_region(dst, src, bytes);
  }
  static void mul_add_region_multi(std::uint8_t* dst,
                                   const std::uint8_t* const* srcs,
                                   const Symbol* coeffs, std::size_t count,
                                   std::size_t bytes) {
    gf65536::mul_add_region_multi(dst, srcs, coeffs, count, bytes);
  }
};

}  // namespace dfs::ec
