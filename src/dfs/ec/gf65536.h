#pragma once

#include <cstddef>
#include <cstdint>

// Arithmetic over GF(2^16) with the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B), log/exp tables built lazily
// (~0.5 MiB). Enables "wide" erasure codes with n > 255 shards per stripe.

namespace dfs::ec::gf65536 {

std::uint16_t mul(std::uint16_t a, std::uint16_t b);
std::uint16_t div(std::uint16_t a, std::uint16_t b);
std::uint16_t inv(std::uint16_t a);
std::uint16_t pow(std::uint16_t a, unsigned e);

inline std::uint16_t add(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a ^ b);
}

/// Bulk kernels over byte buffers interpreted as native-endian 16-bit
/// symbols; `bytes` must be a multiple of 2. Regions of kPairTableMinBytes
/// or more hoist the coefficient into two 256-entry half-product tables
/// (c * low_byte and c * high_byte) so the loop is two lookups + xor per
/// symbol instead of a log/exp multiply; results are bit-identical either
/// way. dst == src exact aliasing is allowed, partial overlap is undefined.
inline constexpr std::size_t kPairTableMinBytes = 1024;
void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint16_t c, std::size_t bytes);
void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                std::size_t bytes);

/// dst[i] ^= src[i] (symbol width irrelevant; routed through the GF(2^8)
/// SIMD xor kernel).
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes);

/// dst ^= XOR_j coeffs[j] * srcs[j], walked in L1-sized strips so the
/// destination is revisited per strip rather than per source. dst must not
/// alias any source.
void mul_add_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                          const std::uint16_t* coeffs, std::size_t count,
                          std::size_t bytes);

}  // namespace dfs::ec::gf65536
