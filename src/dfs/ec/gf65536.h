#pragma once

#include <cstddef>
#include <cstdint>

// Arithmetic over GF(2^16) with the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B), log/exp tables built lazily
// (~0.5 MiB). Enables "wide" erasure codes with n > 255 shards per stripe.

namespace dfs::ec::gf65536 {

std::uint16_t mul(std::uint16_t a, std::uint16_t b);
std::uint16_t div(std::uint16_t a, std::uint16_t b);
std::uint16_t inv(std::uint16_t a);
std::uint16_t pow(std::uint16_t a, unsigned e);

inline std::uint16_t add(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a ^ b);
}

/// Bulk kernels over byte buffers interpreted as native-endian 16-bit
/// symbols; `bytes` must be a multiple of 2.
void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint16_t c, std::size_t bytes);
void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                std::size_t bytes);

}  // namespace dfs::ec::gf65536
