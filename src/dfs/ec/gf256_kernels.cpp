#include "dfs/ec/gf256_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "dfs/ec/gf256.h"
#include "dfs/ec/gf256_kernels_impl.h"

namespace dfs::ec::gf256 {

namespace detail {

const FullTable& full_table() {
  static const FullTable t = [] {
    FullTable ft;
    for (int c = 0; c < 256; ++c) {
      for (int v = 0; v < 256; ++v) {
        ft.mul[c][v] = mul(static_cast<std::uint8_t>(c),
                           static_cast<std::uint8_t>(v));
      }
    }
    return ft;
  }();
  return t;
}

const NibbleTables& nibble_tables() {
  static const NibbleTables t = [] {
    NibbleTables nt;
    for (int c = 0; c < 256; ++c) {
      for (int v = 0; v < 16; ++v) {
        nt.lo[c][v] = mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(v));
        nt.hi[c][v] = mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(v << 4));
      }
    }
    return nt;
  }();
  return t;
}

}  // namespace detail

namespace {

// --- scalar reference backend ----------------------------------------------
// One log/exp multiply per byte, no precomputed rows: trivially correct, and
// therefore the oracle the equivalence tests compare every backend against.

void scalar_mul_region(std::uint8_t* dst, const std::uint8_t* src,
                       std::uint8_t c, std::size_t len) {
  if (len == 0) return;  // keep memset off possibly-null empty buffers
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  for (std::size_t i = 0; i < len; ++i) dst[i] = mul(c, src[i]);
}

void scalar_mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                           std::uint8_t c, std::size_t len) {
  if (c == 0) return;
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ mul(c, src[i]));
  }
}

void scalar_xor_region(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
  }
}

void scalar_mul_add_region_multi(std::uint8_t* dst,
                                 const std::uint8_t* const* srcs,
                                 const std::uint8_t* coeffs, std::size_t count,
                                 std::size_t len) {
  for (std::size_t j = 0; j < count; ++j) {
    scalar_mul_add_region(dst, srcs[j], coeffs[j], len);
  }
}

void scalar_xor_region_multi(std::uint8_t* dst,
                             const std::uint8_t* const* srcs,
                             std::size_t count, std::size_t len) {
  for (std::size_t j = 0; j < count; ++j) scalar_xor_region(dst, srcs[j], len);
}

constexpr KernelOps kScalarOps{scalar_mul_region, scalar_mul_add_region,
                               scalar_xor_region, scalar_mul_add_region_multi,
                               scalar_xor_region_multi};

// --- full-table backend -----------------------------------------------------
// The portable fast path: one shared 64 KiB product table, one load+xor per
// byte, and the multi kernels walk the destination in L1-sized strips so a
// k-source accumulation reads and writes each dst cache line once per strip
// instead of streaming the whole region k times.

// Strip that keeps dst + one src comfortably inside a 32 KiB L1d alongside
// the hot table rows.
constexpr std::size_t kStrip = 8192;

void table_xor_region(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

void table_mul_region(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t c, std::size_t len) {
  if (len == 0) return;  // keep memset/memmove off possibly-null buffers
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const std::uint8_t* row = detail::full_table().mul[c];
  for (std::size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void table_mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    table_xor_region(dst, src, len);
    return;
  }
  const std::uint8_t* row = detail::full_table().mul[c];
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ row[src[i]]);
  }
}

void table_mul_add_region_multi(std::uint8_t* dst,
                                const std::uint8_t* const* srcs,
                                const std::uint8_t* coeffs, std::size_t count,
                                std::size_t len) {
  for (std::size_t off = 0; off < len; off += kStrip) {
    const std::size_t chunk = len - off < kStrip ? len - off : kStrip;
    for (std::size_t j = 0; j < count; ++j) {
      table_mul_add_region(dst + off, srcs[j] + off, coeffs[j], chunk);
    }
  }
}

void table_xor_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                            std::size_t count, std::size_t len) {
  for (std::size_t off = 0; off < len; off += kStrip) {
    const std::size_t chunk = len - off < kStrip ? len - off : kStrip;
    for (std::size_t j = 0; j < count; ++j) {
      table_xor_region(dst + off, srcs[j] + off, chunk);
    }
  }
}

constexpr KernelOps kTableOps{table_mul_region, table_mul_add_region,
                              table_xor_region, table_mul_add_region_multi,
                              table_xor_region_multi};

// --- dispatch ---------------------------------------------------------------

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
    case Backend::kTable:
      return true;
    case Backend::kSsse3:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case Backend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelOps* ops_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalarOps;
    case Backend::kTable:
      return &kTableOps;
    case Backend::kSsse3:
#if defined(DFS_GF_HAVE_SSSE3)
      return &detail::ssse3_kernel_ops();
#else
      return nullptr;
#endif
    case Backend::kAvx2:
#if defined(DFS_GF_HAVE_AVX2)
      return &detail::avx2_kernel_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Backend auto_backend() {
  if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_supported(Backend::kSsse3)) return Backend::kSsse3;
  return Backend::kTable;
}

bool parse_backend(const char* s, Backend* out, bool* is_auto) {
  const std::string v(s);
  *is_auto = false;
  if (v == "auto") {
    *is_auto = true;
    return true;
  }
  for (int i = 0; i < kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (v == backend_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

Backend initial_backend() {
  const char* env = std::getenv("DFS_GF_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    Backend requested = Backend::kTable;
    bool is_auto = false;
    if (!parse_backend(env, &requested, &is_auto)) {
      std::fprintf(stderr,
                   "gf256: unknown DFS_GF_BACKEND=%s "
                   "(scalar|table|ssse3|avx2|auto); using auto dispatch\n",
                   env);
    } else if (is_auto) {
      // fall through to auto dispatch
    } else if (!backend_supported(requested)) {
      std::fprintf(stderr,
                   "gf256: DFS_GF_BACKEND=%s not supported by this "
                   "build/CPU; using auto dispatch\n",
                   env);
    } else {
      return requested;
    }
  }
  return auto_backend();
}

std::mutex g_backend_mutex;
std::atomic<const KernelOps*> g_ops{nullptr};
std::atomic<int> g_backend{-1};

const KernelOps* ensure_init() {
  const KernelOps* p = g_ops.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  std::lock_guard<std::mutex> lock(g_backend_mutex);
  p = g_ops.load(std::memory_order_relaxed);
  if (p == nullptr) {
    const Backend b = initial_backend();
    p = ops_for(b);
    g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
    g_ops.store(p, std::memory_order_release);
  }
  return p;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kTable:
      return "table";
    case Backend::kSsse3:
      return "ssse3";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool backend_compiled(Backend b) { return ops_for(b) != nullptr; }

bool backend_supported(Backend b) {
  return backend_compiled(b) && cpu_supports(b);
}

std::vector<Backend> compiled_backends() {
  std::vector<Backend> out;
  for (int i = 0; i < kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (backend_compiled(b)) out.push_back(b);
  }
  return out;
}

Backend active_backend() {
  ensure_init();
  return static_cast<Backend>(g_backend.load(std::memory_order_relaxed));
}

bool set_backend(Backend b) {
  if (!backend_supported(b)) return false;
  std::lock_guard<std::mutex> lock(g_backend_mutex);
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_ops.store(ops_for(b), std::memory_order_release);
  return true;
}

void reset_backend() {
  std::lock_guard<std::mutex> lock(g_backend_mutex);
  const Backend b = initial_backend();
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_ops.store(ops_for(b), std::memory_order_release);
}

const KernelOps& kernels() { return *ensure_init(); }

void mul_add_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                          const std::uint8_t* coeffs, std::size_t count,
                          std::size_t len) {
  kernels().mul_add_region_multi(dst, srcs, coeffs, count, len);
}

void xor_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      std::size_t count, std::size_t len) {
  kernels().xor_region_multi(dst, srcs, count, len);
}

}  // namespace dfs::ec::gf256
