#pragma once

#include <memory>

#include "dfs/ec/linear_code.h"

namespace dfs::ec {

/// Hitchhiker-XOR (Rashmi et al., SIGCOMM 2014): a systematic Reed-Solomon
/// code "piggybacked" over two substripes so that repairing a single lost
/// data shard downloads roughly half the bytes a plain RS repair would.
///
/// Every shard i stores two half-shards (a_i, b_i). The a-halves and the
/// b-halves are each a stripe of the underlying RS(n, k); additionally each
/// parity j >= 1 XORs the a-halves of its piggyback group G_j (the data
/// shards [0, k) are partitioned among parities 1..r-1) into its b-half:
///
///   parity 0:      ( p_0(a),  p_0(b) )
///   parity j >= 1: ( p_j(a),  p_j(b) + XOR_{i in G_j} a_i )
///
/// Repairing data shard m in group G_g then needs only
///   - the b-halves of every other data shard and of parity 0
///     (decode b_m via the b-substripe RS code),
///   - the b-half of parity g (peel p_g(b) off the piggyback),
///   - the a-halves of the other members of G_g (solve the XOR for a_m),
/// i.e. (k + |G_g|) / 2 full-shard equivalents instead of k — surfaced to
/// the planner as a sub-shard RecoveryOption with half fractions.
///
/// Internally the two substripes are one (2n, 2k) systematic linear code
/// over GF(2^8) (symbol order a_0, b_0, a_1, b_1, ...), so encode, decode
/// and the full-shard fallback plan reuse the LinearCode machinery. Any
/// n - k full-shard erasures remain decodable (the piggyback is invertible
/// once the a-substripe is solved), matching RS fault tolerance.
///
/// Requires n - k >= 2 (parity 0 must stay piggyback-free); the sub-shard
/// savings grow with n - k as the groups shrink. Shard lengths must be even.
class HitchhikerXorCode : public ErasureCode {
 public:
  HitchhikerXorCode(int n, int k);

  std::string name() const override;

  std::vector<Shard> encode(const std::vector<Shard>& data) const override;

  std::optional<std::vector<Shard>> reconstruct(
      const std::vector<std::pair<int, const Shard*>>& present,
      const std::vector<int>& want) const override;

  std::optional<std::vector<Shard>> reconstruct_slices(
      const std::vector<PresentSlice>& present,
      const std::vector<int>& want) const override;

  std::optional<RecoveryPlan> recovery_plan(
      const std::vector<int>& available, int lost) const override;

  int substripe_count() const override { return 2; }

  /// Piggyback groups partition the k data shards among parities 1..r-1.
  int piggyback_groups() const { return parity_count() - 1; }
  /// Group index in [0, piggyback_groups()) of a data shard; the group's
  /// piggyback rides on parity 1 + group.
  int group_of(int data_shard) const;
  int group_size(int group) const;

  /// The (2n, 2k) half-shard code backing this construction (for tests).
  const LinearCode& inner() const { return inner_; }

 private:
  LinearCode inner_;
};

std::unique_ptr<ErasureCode> make_hitchhiker_xor(int n, int k);

}  // namespace dfs::ec
