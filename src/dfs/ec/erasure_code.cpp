#include "dfs/ec/erasure_code.h"

#include <stdexcept>

namespace dfs::ec {

ErasureCode::ErasureCode(int n, int k) : n_(n), k_(k) {
  if (k <= 0 || n <= k) {
    throw std::invalid_argument("ErasureCode requires 0 < k < n");
  }
}

void ErasureCode::check_encode_args(const std::vector<Shard>& data) const {
  if (static_cast<int>(data.size()) != k_) {
    throw std::invalid_argument("encode: expected exactly k data shards");
  }
  for (const Shard& s : data) {
    if (s.size() != data.front().size()) {
      throw std::invalid_argument("encode: shards must be equally sized");
    }
  }
}

}  // namespace dfs::ec
