#include "dfs/ec/erasure_code.h"

#include <stdexcept>

namespace dfs::ec {

ErasureCode::ErasureCode(int n, int k) : n_(n), k_(k) {
  if (k <= 0 || n <= k) {
    throw std::invalid_argument("ErasureCode requires 0 < k < n");
  }
}

void ErasureCode::check_encode_args(const std::vector<Shard>& data) const {
  if (static_cast<int>(data.size()) != k_) {
    throw std::invalid_argument("encode: expected exactly k data shards");
  }
  for (const Shard& s : data) {
    if (s.size() != data.front().size()) {
      throw std::invalid_argument("encode: shards must be equally sized");
    }
  }
}

RecoveryOption ErasureCode::full_shard_option(
    const std::vector<int>& shards) const {
  RecoveryOption opt;
  opt.sources.reserve(shards.size());
  for (const int s : shards) {
    opt.sources.push_back(RecoverySource{s, full_substripe_mask(), 1.0});
  }
  return opt;
}

std::optional<std::vector<Shard>> ErasureCode::reconstruct_slices(
    const std::vector<PresentSlice>& present,
    const std::vector<int>& want) const {
  std::vector<std::pair<int, const Shard*>> full;
  full.reserve(present.size());
  for (const PresentSlice& p : present) {
    if (p.substripes != full_substripe_mask()) {
      throw std::invalid_argument(
          "reconstruct_slices: this code has no substripes; slices must "
          "carry the whole shard");
    }
    full.emplace_back(p.shard, p.bytes);
  }
  return reconstruct(full, want);
}

}  // namespace dfs::ec
