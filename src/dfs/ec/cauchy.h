#pragma once

#include <memory>

#include "dfs/ec/erasure_code.h"
#include "dfs/ec/matrix.h"

namespace dfs::ec {

/// Cauchy Reed-Solomon (Bloemer et al.; the construction HDFS-RAID uses),
/// implemented Jerasure-style: the GF(2^8) Cauchy generator is expanded into
/// a binary bit-matrix and all encoding/decoding is pure XOR over w = 8
/// packets per shard.
///
/// Shard length must be a multiple of 8 bytes. Shard indices [0, k) are
/// native, [k, n) parity; the code is MDS (any k survivors decode).
class CauchyReedSolomonCode : public ErasureCode {
 public:
  CauchyReedSolomonCode(int n, int k);

  std::string name() const override;

  std::vector<Shard> encode(const std::vector<Shard>& data) const override;

  std::optional<std::vector<Shard>> reconstruct(
      const std::vector<std::pair<int, const Shard*>>& present,
      const std::vector<int>& want) const override;

  std::optional<RecoveryPlan> recovery_plan(
      const std::vector<int>& available, int lost) const override;

  /// The underlying binary generator, (n*8) x (k*8); row-major bits. Exposed
  /// for tests.
  const std::vector<std::vector<std::uint64_t>>& bit_generator() const {
    return bitgen_;
  }

  static constexpr int kW = 8;  ///< packets per shard

 private:
  std::vector<std::uint64_t> generator_row(int shard, int packet) const;

  // One bit row per (shard, packet): width k * 8 bits packed in uint64 words.
  std::vector<std::vector<std::uint64_t>> bitgen_;
  int words_per_row_;
};

std::unique_ptr<ErasureCode> make_cauchy_reed_solomon(int n, int k);

}  // namespace dfs::ec
