#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// Vectorized GF(2^8) region-kernel subsystem. Every bulk byte operation of
// the erasure-coding layer (encode, degraded-read reconstruction, repair,
// bit-matrix XOR schedules) funnels through the kernels declared here; the
// implementation is selected once at runtime from the backends compiled into
// the binary:
//
//   scalar  log/exp-table reference: one field multiply per byte. Never
//           chosen by auto dispatch — it exists as the bit-exactness oracle
//           every other backend is tested against, and as the forced-fallback
//           CI leg (DFS_GF_BACKEND=scalar).
//   table   precomputed 256x256 product table: one load+xor per byte with no
//           per-call row rebuild. The portable fallback.
//   ssse3   split nibble tables via PSHUFB, 16 bytes per step.
//   avx2    split nibble tables via VPSHUFB, 32 bytes per step, with a fused
//           multi-source path that keeps the destination strip in registers.
//
// Dispatch order is avx2 > ssse3 > table, gated by CPUID at first use. The
// DFS_GF_BACKEND environment variable (scalar | table | ssse3 | avx2 | auto)
// overrides it for testing; an unsupported request falls back to auto with a
// one-line warning on stderr.
//
// All backends are bit-identical: GF(2^8) arithmetic is exact, so a backend
// switch can never change any encoded byte, golden-corpus artifact, or
// simulation result — only the throughput.
//
// Aliasing rules: dst == src (exact alias) is allowed for mul_region,
// mul_add_region, and xor_region; partial overlap is undefined. For the
// *_multi kernels dst must not alias any source (the destination strip is
// accumulated while sources are re-read), while sources may alias each other.

namespace dfs::ec::gf256 {

enum class Backend : int { kScalar = 0, kTable = 1, kSsse3 = 2, kAvx2 = 3 };
inline constexpr int kBackendCount = 4;

/// The kernel vtable one backend provides. All lengths are in bytes; any
/// length (including 0) is valid and unaligned pointers are handled.
struct KernelOps {
  /// dst[i] = c * src[i]
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t c, std::size_t len);
  /// dst[i] ^= c * src[i]
  void (*mul_add_region)(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t c, std::size_t len);
  /// dst[i] ^= src[i]
  void (*xor_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len);
  /// dst[i] ^= XOR_j coeffs[j] * srcs[j][i] — one pass over the destination
  /// applying every coefficient row (the encode/decode inner loop).
  void (*mul_add_region_multi)(std::uint8_t* dst,
                               const std::uint8_t* const* srcs,
                               const std::uint8_t* coeffs, std::size_t count,
                               std::size_t len);
  /// dst[i] ^= XOR_j srcs[j][i] — the bit-matrix (CRS) schedule kernel.
  void (*xor_region_multi)(std::uint8_t* dst, const std::uint8_t* const* srcs,
                           std::size_t count, std::size_t len);
};

/// Lower-case stable name ("scalar", "table", "ssse3", "avx2").
const char* backend_name(Backend b);

/// True if the backend's code is built into this binary (CMake compiled the
/// per-ISA translation unit). scalar and table are always compiled.
bool backend_compiled(Backend b);

/// True if the backend is compiled AND the running CPU supports it.
bool backend_supported(Backend b);

/// Every backend compiled into this binary, in ascending Backend order.
std::vector<Backend> compiled_backends();

/// The backend currently routing the region kernels.
Backend active_backend();

/// Switch the active backend; returns false (and changes nothing) if the
/// backend is not supported on this build/CPU. Intended for tests and
/// benchmarks; concurrent region calls during a switch are not supported.
bool set_backend(Backend b);

/// Drop any forced backend and re-run auto dispatch (honoring
/// DFS_GF_BACKEND), as if the process had just started.
void reset_backend();

/// The active backend's kernel vtable.
const KernelOps& kernels();

/// Convenience wrappers through the active backend (see KernelOps).
void mul_add_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                          const std::uint8_t* coeffs, std::size_t count,
                          std::size_t len);
void xor_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      std::size_t count, std::size_t len);

}  // namespace dfs::ec::gf256
