#include "dfs/ec/lrc.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dfs::ec {

namespace {

Matrix lrc_generator(int k, int l, int r) {
  if (l <= 0 || r < 0 || k % l != 0) {
    throw std::invalid_argument("LRC requires l > 0, r >= 0, l | k");
  }
  const int group = k / l;
  Matrix g = Matrix::identity(k);
  Matrix locals(l, k);
  for (int grp = 0; grp < l; ++grp) {
    for (int j = 0; j < group; ++j) locals.set(grp, grp * group + j, 1);
  }
  g.append_rows(locals);
  if (r > 0) g.append_rows(Matrix::cauchy(r, k));
  return g;
}

std::string lrc_name(int k, int l, int r) {
  return "LRC(k=" + std::to_string(k) + ",l=" + std::to_string(l) +
         ",r=" + std::to_string(r) + ")";
}

}  // namespace

LocalReconstructionCode::LocalReconstructionCode(int k, int l, int r)
    : LinearCode(k + l + r, k, lrc_generator(k, l, r), lrc_name(k, l, r)),
      l_(l) {}

std::optional<RecoveryPlan> LocalReconstructionCode::recovery_plan(
    const std::vector<int>& available, int lost) const {
  if (lost < 0 || lost >= n()) throw std::invalid_argument("bad lost index");
  if (std::find(available.begin(), available.end(), lost) !=
      available.end()) {
    return RecoveryPlan{{full_shard_option({lost})}};
  }
  auto is_available = [&](int id) {
    return std::find(available.begin(), available.end(), id) !=
           available.end();
  };
  RecoveryPlan plan;
  // Local repair first: a native shard (or a local parity) can be rebuilt
  // from the rest of its group if every other member survives.
  const int gsz = group_size();
  int grp = -1;
  if (lost < k()) {
    grp = group_of(lost);
  } else if (lost < k() + l_) {
    grp = lost - k();
  }
  if (grp >= 0) {
    std::vector<int> local;
    for (int j = 0; j < gsz; ++j) {
      const int member = grp * gsz + j;
      if (member != lost) local.push_back(member);
    }
    const int local_parity = k() + grp;
    if (local_parity != lost) local.push_back(local_parity);
    if (std::all_of(local.begin(), local.end(), is_available)) {
      plan.options.push_back(full_shard_option(local));
    }
  }
  // The general matrix decode over the caller's preference order, as a
  // second candidate (the only one for global parities or broken groups).
  if (auto global = LinearCode::recovery_plan(available, lost)) {
    plan.options.push_back(std::move(global->options.front()));
  }
  if (plan.options.empty()) return std::nullopt;
  return plan;
}

std::unique_ptr<ErasureCode> make_lrc(int k, int l, int r) {
  return std::make_unique<LocalReconstructionCode>(k, l, r);
}

}  // namespace dfs::ec
