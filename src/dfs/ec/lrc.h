#pragma once

#include <memory>

#include "dfs/ec/linear_code.h"

namespace dfs::ec {

/// Azure-style Local Reconstruction Code LRC(k, l, r): k native shards are
/// split into l equally-sized local groups, each protected by one XOR local
/// parity, plus r Cauchy global parities over all k shards. n = k + l + r.
///
/// Shard layout: [0, k) native, [k, k+l) local parities (group order),
/// [k+l, n) global parities.
///
/// This is the "special erasure code construction" of the paper's footnote 1:
/// a single lost native shard is rebuilt from its k/l - 1 surviving group
/// members plus the group's local parity, so degraded reads fetch k/l shards
/// instead of k. The bench/ablation_lrc harness measures how that changes
/// the locality-first vs degraded-first comparison.
class LocalReconstructionCode : public LinearCode {
 public:
  LocalReconstructionCode(int k, int l, int r);

  int groups() const { return l_; }
  int group_size() const { return k() / l_; }
  int group_of(int native_shard) const { return native_shard / group_size(); }

  /// Offers up to two candidate options: the local-group rebuild (group
  /// members + local parity, k/l shards) first, then the general matrix
  /// decode over the caller's preference order. A cost-model planner picks
  /// local on ties, preserving the footnote-1 behavior.
  std::optional<RecoveryPlan> recovery_plan(
      const std::vector<int>& available, int lost) const override;

 private:
  int l_;
};

std::unique_ptr<ErasureCode> make_lrc(int k, int l, int r);

}  // namespace dfs::ec
