#include "dfs/ec/gf256.h"

#include <array>
#include <cassert>

#include "dfs/ec/gf256_kernels.h"

namespace dfs::ec::gf256 {

namespace {

struct Tables {
  // exp_ is doubled so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<int, 256> log_{};

  Tables() {
    constexpr unsigned kPoly = 0x11D;
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100u) x ^= kPoly;
    }
    for (int i = 255; i < 512; ++i) {
      exp_[static_cast<std::size_t>(i)] = exp_[static_cast<std::size_t>(i - 255)];
    }
    log_[0] = -1;  // log of zero is undefined; poison value
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] + t.log_[b])];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] - t.log_[b] + 255)];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(255 - t.log_[a])];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const auto l = static_cast<unsigned>(t.log_[a]);
  return t.exp_[(l * e) % 255u];
}

// The bulk kernels route through the runtime-dispatched backend (see
// gf256_kernels.h); every backend shares the precomputed tables, so no call
// rebuilds a product row.

void mul_add_region(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  kernels().mul_add_region(dst, src, c, len);
}

void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  kernels().mul_region(dst, src, c, len);
}

void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  kernels().xor_region(dst, src, len);
}

}  // namespace dfs::ec::gf256
