#include "dfs/ec/gf65536.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace dfs::ec::gf65536 {

namespace {

struct Tables {
  std::vector<std::uint16_t> exp_;  // doubled, 131072 entries
  std::vector<std::int32_t> log_;   // 65536 entries

  Tables() : exp_(131072), log_(65536) {
    constexpr std::uint32_t kPoly = 0x1100B;
    std::uint32_t x = 1;
    for (int i = 0; i < 65535; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x10000u) x ^= kPoly;
    }
    for (int i = 65535; i < 131072; ++i) {
      exp_[static_cast<std::size_t>(i)] =
          exp_[static_cast<std::size_t>(i - 65535)];
    }
    log_[0] = -1;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint16_t mul(std::uint16_t a, std::uint16_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] + t.log_[b])];
}

std::uint16_t div(std::uint16_t a, std::uint16_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] - t.log_[b] + 65535)];
}

std::uint16_t inv(std::uint16_t a) {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(65535 - t.log_[a])];
}

std::uint16_t pow(std::uint16_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const auto l = static_cast<std::uint64_t>(t.log_[a]);
  return t.exp_[(l * e) % 65535u];
}

void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint16_t c, std::size_t bytes) {
  assert(bytes % 2 == 0);
  if (c == 0) return;
  const Tables& t = tables();
  if (c == 1) {
    for (std::size_t i = 0; i < bytes; ++i) dst[i] ^= src[i];
    return;
  }
  const std::int32_t logc = t.log_[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    std::uint16_t s;
    std::memcpy(&s, src + i, 2);
    if (s == 0) continue;
    const std::uint16_t prod =
        t.exp_[static_cast<std::size_t>(logc + t.log_[s])];
    std::uint16_t d;
    std::memcpy(&d, dst + i, 2);
    d = static_cast<std::uint16_t>(d ^ prod);
    std::memcpy(dst + i, &d, 2);
  }
}

void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                std::size_t bytes) {
  assert(bytes % 2 == 0);
  if (c == 0) {
    std::memset(dst, 0, bytes);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, bytes);
    return;
  }
  const Tables& t = tables();
  const std::int32_t logc = t.log_[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    std::uint16_t s;
    std::memcpy(&s, src + i, 2);
    const std::uint16_t prod =
        s == 0 ? 0 : t.exp_[static_cast<std::size_t>(logc + t.log_[s])];
    std::memcpy(dst + i, &prod, 2);
  }
}

}  // namespace dfs::ec::gf65536
