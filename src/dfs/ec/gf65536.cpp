#include "dfs/ec/gf65536.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "dfs/ec/gf256.h"

namespace dfs::ec::gf65536 {

namespace {

struct Tables {
  std::vector<std::uint16_t> exp_;  // doubled, 131072 entries
  std::vector<std::int32_t> log_;   // 65536 entries

  Tables() : exp_(131072), log_(65536) {
    constexpr std::uint32_t kPoly = 0x1100B;
    std::uint32_t x = 1;
    for (int i = 0; i < 65535; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x10000u) x ^= kPoly;
    }
    for (int i = 65535; i < 131072; ++i) {
      exp_[static_cast<std::size_t>(i)] =
          exp_[static_cast<std::size_t>(i - 65535)];
    }
    log_[0] = -1;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint16_t mul(std::uint16_t a, std::uint16_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] + t.log_[b])];
}

std::uint16_t div(std::uint16_t a, std::uint16_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a] - t.log_[b] + 65535)];
}

std::uint16_t inv(std::uint16_t a) {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(65535 - t.log_[a])];
}

std::uint16_t pow(std::uint16_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const auto l = static_cast<std::uint64_t>(t.log_[a]);
  return t.exp_[(l * e) % 65535u];
}

namespace {

/// Half-product tables for one coefficient: lo[b] = c * b and
/// hi[b] = c * (b << 8), so c * s = lo[s & 0xff] ^ hi[s >> 8] by linearity
/// of field multiplication over XOR. Building them costs 512 table
/// multiplies — amortized over any region of kPairTableMinBytes or more.
struct PairTables {
  std::uint16_t lo[256];
  std::uint16_t hi[256];
};

PairTables build_pair_tables(std::uint16_t c) {
  PairTables pt;
  for (int b = 0; b < 256; ++b) {
    pt.lo[b] = mul(c, static_cast<std::uint16_t>(b));
    pt.hi[b] = mul(c, static_cast<std::uint16_t>(b << 8));
  }
  return pt;
}

}  // namespace

void mul_add_region(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint16_t c, std::size_t bytes) {
  assert(bytes % 2 == 0);
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src, bytes);
    return;
  }
  if (bytes >= kPairTableMinBytes) {
    const PairTables pt = build_pair_tables(c);
    for (std::size_t i = 0; i < bytes; i += 2) {
      std::uint16_t s;
      std::memcpy(&s, src + i, 2);
      const std::uint16_t prod =
          static_cast<std::uint16_t>(pt.lo[s & 0xff] ^ pt.hi[s >> 8]);
      std::uint16_t d;
      std::memcpy(&d, dst + i, 2);
      d = static_cast<std::uint16_t>(d ^ prod);
      std::memcpy(dst + i, &d, 2);
    }
    return;
  }
  const Tables& t = tables();
  const std::int32_t logc = t.log_[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    std::uint16_t s;
    std::memcpy(&s, src + i, 2);
    if (s == 0) continue;
    const std::uint16_t prod =
        t.exp_[static_cast<std::size_t>(logc + t.log_[s])];
    std::uint16_t d;
    std::memcpy(&d, dst + i, 2);
    d = static_cast<std::uint16_t>(d ^ prod);
    std::memcpy(dst + i, &d, 2);
  }
}

void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t c,
                std::size_t bytes) {
  assert(bytes % 2 == 0);
  if (bytes == 0) return;  // keep memset/memmove off possibly-null buffers
  if (c == 0) {
    std::memset(dst, 0, bytes);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, bytes);
    return;
  }
  if (bytes >= kPairTableMinBytes) {
    const PairTables pt = build_pair_tables(c);
    for (std::size_t i = 0; i < bytes; i += 2) {
      std::uint16_t s;
      std::memcpy(&s, src + i, 2);
      const std::uint16_t prod =
          static_cast<std::uint16_t>(pt.lo[s & 0xff] ^ pt.hi[s >> 8]);
      std::memcpy(dst + i, &prod, 2);
    }
    return;
  }
  const Tables& t = tables();
  const std::int32_t logc = t.log_[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    std::uint16_t s;
    std::memcpy(&s, src + i, 2);
    const std::uint16_t prod =
        s == 0 ? 0 : t.exp_[static_cast<std::size_t>(logc + t.log_[s])];
    std::memcpy(dst + i, &prod, 2);
  }
}

void xor_region(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t bytes) {
  gf256::xor_region(dst, src, bytes);
}

void mul_add_region_multi(std::uint8_t* dst, const std::uint8_t* const* srcs,
                          const std::uint16_t* coeffs, std::size_t count,
                          std::size_t bytes) {
  // Hoist each coefficient's half-product tables out of the strip loop,
  // then walk the destination in L1-sized strips: each dst strip is read
  // and written while hot instead of streaming the full region `count`
  // times, and no strip rebuilds a table.
  std::vector<PairTables> pts;
  pts.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    pts.push_back(coeffs[j] > 1 ? build_pair_tables(coeffs[j])
                                : PairTables{});
  }
  constexpr std::size_t kStrip = 8192;
  for (std::size_t off = 0; off < bytes; off += kStrip) {
    const std::size_t chunk = bytes - off < kStrip ? bytes - off : kStrip;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint16_t c = coeffs[j];
      if (c == 0) continue;
      if (c == 1) {
        xor_region(dst + off, srcs[j] + off, chunk);
        continue;
      }
      const PairTables& pt = pts[j];
      const std::uint8_t* src = srcs[j] + off;
      std::uint8_t* d8 = dst + off;
      for (std::size_t i = 0; i < chunk; i += 2) {
        std::uint16_t s;
        std::memcpy(&s, src + i, 2);
        const std::uint16_t prod =
            static_cast<std::uint16_t>(pt.lo[s & 0xff] ^ pt.hi[s >> 8]);
        std::uint16_t d;
        std::memcpy(&d, d8 + i, 2);
        d = static_cast<std::uint16_t>(d ^ prod);
        std::memcpy(d8 + i, &d, 2);
      }
    }
  }
}

}  // namespace dfs::ec::gf65536
