#include "dfs/ec/cauchy.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "dfs/ec/gf256.h"
#include "dfs/ec/gf256_kernels.h"

namespace dfs::ec {

namespace {

constexpr int kW = CauchyReedSolomonCode::kW;

inline bool get_bit(const std::vector<std::uint64_t>& row, int bit) {
  return (row[static_cast<std::size_t>(bit / 64)] >>
          (static_cast<unsigned>(bit) % 64u)) &
         1u;
}

inline void set_bit(std::vector<std::uint64_t>& row, int bit) {
  row[static_cast<std::size_t>(bit / 64)] |=
      (std::uint64_t{1} << (static_cast<unsigned>(bit) % 64u));
}

inline void xor_row(std::vector<std::uint64_t>& dst,
                    const std::vector<std::uint64_t>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

inline bool is_zero(const std::vector<std::uint64_t>& row) {
  return std::all_of(row.begin(), row.end(),
                     [](std::uint64_t w) { return w == 0; });
}

inline int first_set(const std::vector<std::uint64_t>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] != 0) {
      return static_cast<int>(i) * 64 + __builtin_ctzll(row[i]);
    }
  }
  return -1;
}

/// GF(2) analogue of LinearCode's RowSolver: reduces bit rows while tracking
/// which original rows combine into each reduced row.
class BitSolver {
 public:
  BitSolver(std::size_t width_words, std::size_t num_rows)
      : width_words_(width_words),
        comb_words_((num_rows + 63) / 64),
        num_rows_(num_rows) {}

  void add_row(std::vector<std::uint64_t> row) {
    std::vector<std::uint64_t> comb(comb_words_, 0);
    set_bit(comb, static_cast<int>(added_));
    ++added_;
    reduce(row, comb);
    const int pivot = first_set(row);
    if (pivot < 0) return;  // dependent
    reduced_.push_back(std::move(row));
    comb_.push_back(std::move(comb));
    pivot_bit_.push_back(pivot);
  }

  /// Expresses `target` as an XOR of added rows; returns the membership
  /// bitmask over added rows, or nullopt if out of span.
  std::optional<std::vector<std::uint64_t>> express(
      std::vector<std::uint64_t> target) const {
    std::vector<std::uint64_t> comb(comb_words_, 0);
    reduce(target, comb);
    if (!is_zero(target)) return std::nullopt;
    return comb;
  }

  std::size_t rank() const { return reduced_.size(); }

 private:
  void reduce(std::vector<std::uint64_t>& row,
              std::vector<std::uint64_t>& comb) const {
    for (std::size_t i = 0; i < reduced_.size(); ++i) {
      if (get_bit(row, pivot_bit_[i])) {
        xor_row(row, reduced_[i]);
        xor_row(comb, comb_[i]);
      }
    }
  }

  std::size_t width_words_;
  std::size_t comb_words_;
  std::size_t num_rows_;
  std::size_t added_ = 0;
  std::vector<std::vector<std::uint64_t>> reduced_;
  std::vector<std::vector<std::uint64_t>> comb_;
  std::vector<int> pivot_bit_;
};

}  // namespace

CauchyReedSolomonCode::CauchyReedSolomonCode(int n, int k)
    : ErasureCode(n, k), words_per_row_((k * kW + 63) / 64) {
  const Matrix cauchy = Matrix::cauchy(n - k, k);
  bitgen_.reserve(static_cast<std::size_t>(n) * kW);
  for (int shard = 0; shard < n; ++shard) {
    for (int r = 0; r < kW; ++r) {
      std::vector<std::uint64_t> row(
          static_cast<std::size_t>(words_per_row_), 0);
      if (shard < k) {
        set_bit(row, shard * kW + r);
      } else {
        for (int j = 0; j < k; ++j) {
          const std::uint8_t e = cauchy.at(shard - k, j);
          for (int t = 0; t < kW; ++t) {
            // Bit r of e * alpha^t: the (r, t) entry of the 8x8 binary
            // multiplication matrix of the field element e.
            const std::uint8_t prod =
                gf256::mul(e, static_cast<std::uint8_t>(1u << t));
            if ((prod >> r) & 1u) set_bit(row, j * kW + t);
          }
        }
      }
      bitgen_.push_back(std::move(row));
    }
  }
}

std::string CauchyReedSolomonCode::name() const {
  return "CRS(" + std::to_string(n()) + "," + std::to_string(k()) + ")";
}

std::vector<std::uint64_t> CauchyReedSolomonCode::generator_row(
    int shard, int packet) const {
  return bitgen_[static_cast<std::size_t>(shard) * kW +
                 static_cast<std::size_t>(packet)];
}

std::vector<Shard> CauchyReedSolomonCode::encode(
    const std::vector<Shard>& data) const {
  check_encode_args(data);
  const std::size_t len = data.front().size();
  if (len % kW != 0) {
    throw std::invalid_argument("CRS shard length must be a multiple of 8");
  }
  const std::size_t ps = len / kW;  // packet size
  std::vector<Shard> parity(static_cast<std::size_t>(parity_count()),
                            Shard(len, 0));
  // Each output packet is the XOR of the source packets its generator bit
  // row selects; gathering the sources first turns the schedule into one
  // fused multi-source pass per packet instead of a region op per set bit.
  std::vector<const std::uint8_t*> srcs;
  srcs.reserve(static_cast<std::size_t>(k()) * kW);
  for (int p = 0; p < parity_count(); ++p) {
    for (int r = 0; r < kW; ++r) {
      const auto& row = bitgen_[static_cast<std::size_t>(k() + p) * kW +
                                static_cast<std::size_t>(r)];
      std::uint8_t* out =
          parity[static_cast<std::size_t>(p)].data() + static_cast<std::size_t>(r) * ps;
      srcs.clear();
      for (int j = 0; j < k(); ++j) {
        for (int t = 0; t < kW; ++t) {
          if (!get_bit(row, j * kW + t)) continue;
          srcs.push_back(data[static_cast<std::size_t>(j)].data() +
                         static_cast<std::size_t>(t) * ps);
        }
      }
      gf256::xor_region_multi(out, srcs.data(), srcs.size(), ps);
    }
  }
  return parity;
}

std::optional<std::vector<Shard>> CauchyReedSolomonCode::reconstruct(
    const std::vector<std::pair<int, const Shard*>>& present,
    const std::vector<int>& want) const {
  if (present.empty()) return std::nullopt;
  const std::size_t len = present.front().second->size();
  if (len % kW != 0) {
    throw std::invalid_argument("CRS shard length must be a multiple of 8");
  }
  const std::size_t ps = len / kW;

  BitSolver solver(static_cast<std::size_t>(words_per_row_),
                   present.size() * kW);
  for (const auto& [id, shard] : present) {
    if (id < 0 || id >= n()) throw std::invalid_argument("bad shard index");
    if (shard == nullptr || shard->size() != len) {
      throw std::invalid_argument("present shards must be equally sized");
    }
    for (int r = 0; r < kW; ++r) solver.add_row(generator_row(id, r));
  }

  std::vector<Shard> out;
  out.reserve(want.size());
  std::vector<const std::uint8_t*> srcs;
  srcs.reserve(present.size() * kW);
  for (int w : want) {
    if (w < 0 || w >= n()) throw std::invalid_argument("bad wanted index");
    Shard shard(len, 0);
    for (int r = 0; r < kW; ++r) {
      auto comb = solver.express(generator_row(w, r));
      if (!comb) return std::nullopt;
      std::uint8_t* dst = shard.data() + static_cast<std::size_t>(r) * ps;
      srcs.clear();
      for (std::size_t i = 0; i < present.size(); ++i) {
        for (int t = 0; t < kW; ++t) {
          if (!get_bit(*comb, static_cast<int>(i) * kW + t)) continue;
          srcs.push_back(present[i].second->data() +
                         static_cast<std::size_t>(t) * ps);
        }
      }
      gf256::xor_region_multi(dst, srcs.data(), srcs.size(), ps);
    }
    out.push_back(std::move(shard));
  }
  return out;
}

std::optional<RecoveryPlan> CauchyReedSolomonCode::recovery_plan(
    const std::vector<int>& available, int lost) const {
  if (lost < 0 || lost >= n()) throw std::invalid_argument("bad lost index");
  if (std::find(available.begin(), available.end(), lost) !=
      available.end()) {
    return RecoveryPlan{{full_shard_option({lost})}};
  }
  BitSolver solver(static_cast<std::size_t>(words_per_row_),
                   available.size() * kW);
  for (int id : available) {
    for (int r = 0; r < kW; ++r) solver.add_row(generator_row(id, r));
  }
  // Union of the source shards used across the target's 8 packet rows.
  std::vector<bool> used(available.size(), false);
  for (int r = 0; r < kW; ++r) {
    auto comb = solver.express(generator_row(lost, r));
    if (!comb) return std::nullopt;
    for (std::size_t i = 0; i < available.size(); ++i) {
      for (int t = 0; t < kW; ++t) {
        if (get_bit(*comb, static_cast<int>(i) * kW + t)) used[i] = true;
      }
    }
  }
  std::vector<int> chosen;
  for (std::size_t i = 0; i < available.size(); ++i) {
    if (used[i]) chosen.push_back(available[i]);
  }
  return RecoveryPlan{{full_shard_option(chosen)}};
}

std::unique_ptr<ErasureCode> make_cauchy_reed_solomon(int n, int k) {
  return std::make_unique<CauchyReedSolomonCode>(n, k);
}

}  // namespace dfs::ec
