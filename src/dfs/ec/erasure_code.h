#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dfs::ec {

/// One erasure-coded shard ("block" in the paper's storage terminology).
using Shard = std::vector<std::uint8_t>;

/// One source fetch of a candidate reconstruction: which surviving shard to
/// read, which of its substripes (bitmask, bit s = substripe s), and what
/// fraction of a full shard's bytes that amounts to. Codes without
/// substriping always use mask 0x1 and fraction 1.0.
struct RecoverySource {
  int shard = -1;
  unsigned substripes = 0x1;
  double fraction = 1.0;
};

/// One complete way to rebuild a lost shard: fetch every source listed.
struct RecoveryOption {
  std::vector<RecoverySource> sources;

  /// Total bytes fetched, in units of one full shard.
  double total_fraction() const {
    double sum = 0.0;
    for (const RecoverySource& s : sources) sum += s.fraction;
    return sum;
  }
};

/// All candidate reconstruction sets a code offers for one lost shard, in
/// the code's preference order (a cost-model planner breaks ties toward the
/// earliest option). Never empty when returned.
struct RecoveryPlan {
  std::vector<RecoveryOption> options;
};

/// Interface of an (n, k) erasure code: k native shards are encoded into
/// n - k parity shards, and lost shards are rebuilt from survivors.
///
/// Shard indices: [0, k) are native shards, [k, n) are parity shards.
class ErasureCode {
 public:
  ErasureCode(int n, int k);
  virtual ~ErasureCode() = default;

  ErasureCode(const ErasureCode&) = delete;
  ErasureCode& operator=(const ErasureCode&) = delete;

  int n() const { return n_; }
  int k() const { return k_; }
  int parity_count() const { return n_ - k_; }

  virtual std::string name() const = 0;

  /// Encode k equally-sized native shards; returns the n - k parity shards.
  /// Throws std::invalid_argument on shape errors.
  virtual std::vector<Shard> encode(const std::vector<Shard>& data) const = 0;

  /// Rebuild the shards listed in `want` from the `present` (index, bytes)
  /// pairs. Returns the rebuilt shards in `want` order, or nullopt if this
  /// combination of losses is not decodable.
  virtual std::optional<std::vector<Shard>> reconstruct(
      const std::vector<std::pair<int, const Shard*>>& present,
      const std::vector<int>& want) const = 0;

  /// Number of equal substripes each shard divides into for repair purposes.
  /// 1 for plain codes; 2 for piggybacked codes like Hitchhiker-XOR, whose
  /// repair reads only half of most surviving shards.
  virtual int substripe_count() const { return 1; }

  /// Bitmask selecting every substripe of this code.
  unsigned full_substripe_mask() const {
    return (1u << static_cast<unsigned>(substripe_count())) - 1u;
  }

  /// Degraded-read planning (no data movement): the candidate source sets
  /// that can rebuild shard `lost` out of the `available` shard indices.
  /// `available` is in the caller's preference order (e.g. same-rack sources
  /// first) and implementations honor it within each option where the code
  /// allows. Returns nullopt if `lost` cannot be rebuilt from `available`;
  /// a returned plan has at least one option.
  virtual std::optional<RecoveryPlan> recovery_plan(
      const std::vector<int>& available, int lost) const = 0;

  /// One fetched slice of a surviving shard: the shard index, which
  /// substripes were fetched (bitmask), and their bytes — the fetched
  /// substripes concatenated in ascending substripe order.
  struct PresentSlice {
    int shard = -1;
    unsigned substripes = 0x1;
    const Shard* bytes = nullptr;
  };

  /// Substripe-aware decode: rebuild the full shards listed in `want` from
  /// partially-fetched survivors (exactly what a RecoveryOption told the
  /// caller to download). The default implementation requires every slice to
  /// carry all substripes and delegates to reconstruct(); substriped codes
  /// override it.
  virtual std::optional<std::vector<Shard>> reconstruct_slices(
      const std::vector<PresentSlice>& present,
      const std::vector<int>& want) const;

 protected:
  void check_encode_args(const std::vector<Shard>& data) const;

  /// A single RecoveryOption fetching the given shards whole (every
  /// substripe, fraction 1.0), preserving their order.
  RecoveryOption full_shard_option(const std::vector<int>& shards) const;

 private:
  int n_;
  int k_;
};

}  // namespace dfs::ec
