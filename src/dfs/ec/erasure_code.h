#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dfs::ec {

/// One erasure-coded shard ("block" in the paper's storage terminology).
using Shard = std::vector<std::uint8_t>;

/// Interface of an (n, k) erasure code: k native shards are encoded into
/// n - k parity shards, and lost shards are rebuilt from survivors.
///
/// Shard indices: [0, k) are native shards, [k, n) are parity shards.
class ErasureCode {
 public:
  ErasureCode(int n, int k);
  virtual ~ErasureCode() = default;

  ErasureCode(const ErasureCode&) = delete;
  ErasureCode& operator=(const ErasureCode&) = delete;

  int n() const { return n_; }
  int k() const { return k_; }
  int parity_count() const { return n_ - k_; }

  virtual std::string name() const = 0;

  /// Encode k equally-sized native shards; returns the n - k parity shards.
  /// Throws std::invalid_argument on shape errors.
  virtual std::vector<Shard> encode(const std::vector<Shard>& data) const = 0;

  /// Rebuild the shards listed in `want` from the `present` (index, bytes)
  /// pairs. Returns the rebuilt shards in `want` order, or nullopt if this
  /// combination of losses is not decodable.
  virtual std::optional<std::vector<Shard>> reconstruct(
      const std::vector<std::pair<int, const Shard*>>& present,
      const std::vector<int>& want) const = 0;

  /// Degraded-read planning (no data movement): choose which of the
  /// `available` shard indices to fetch in order to rebuild shard `lost`.
  /// The available list is in the caller's preference order (e.g. same-rack
  /// sources first) and implementations honor it where the code allows.
  /// Returns nullopt if `lost` cannot be rebuilt from `available`.
  virtual std::optional<std::vector<int>> plan_read(
      const std::vector<int>& available, int lost) const = 0;

  /// Number of shards a single-shard degraded read must fetch when all other
  /// shards are available (k for MDS codes, the locality-group size for LRC).
  virtual int single_failure_read_cost() const { return k_; }

 protected:
  void check_encode_args(const std::vector<Shard>& data) const;

 private:
  int n_;
  int k_;
};

}  // namespace dfs::ec
