#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dfs/ec/field.h"

namespace dfs::ec {

/// Dense matrix over a GF(2^w) field. Small (at most n x k for code
/// parameters), so a flat row-major symbol vector is plenty. Header-only
/// template so the same machinery serves GF(256) and GF(65536) codes;
/// `Matrix` below is the GF(256) instantiation used everywhere in storage.
template <typename F>
class BasicMatrix {
 public:
  using Symbol = typename F::Symbol;

  BasicMatrix() = default;
  BasicMatrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0) {
    assert(rows >= 0 && cols >= 0);
  }

  static BasicMatrix identity(int n) {
    BasicMatrix m(n, n);
    for (int i = 0; i < n; ++i) m.set(i, i, 1);
    return m;
  }

  /// Rows are powers of distinct evaluation points: V[i][j] = (i+1)^j.
  static BasicMatrix vandermonde(int rows, int cols) {
    assert(rows < F::kFieldSize);
    BasicMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        m.set(r, c, F::pow(static_cast<Symbol>(r + 1),
                           static_cast<unsigned>(c)));
      }
    }
    return m;
  }

  /// C[i][j] = 1 / (x_i + y_j) with x_i = i + cols, y_j = j (all distinct).
  static BasicMatrix cauchy(int rows, int cols) {
    assert(rows + cols <= F::kFieldSize);
    BasicMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const auto x = static_cast<Symbol>(cols + r);
        const auto y = static_cast<Symbol>(c);
        m.set(r, c, F::inv(F::add(x, y)));
      }
    }
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Symbol at(int r, int c) const { return data_[index(r, c)]; }
  void set(int r, int c, Symbol v) { data_[index(r, c)] = v; }
  const Symbol* row(int r) const { return &data_[index(r, 0)]; }
  Symbol* row_mut(int r) { return &data_[index(r, 0)]; }

  /// Bytes per row; rows are contiguous, so row operations run through the
  /// field's bulk region kernels.
  std::size_t row_bytes() const {
    return static_cast<std::size_t>(cols_) * sizeof(Symbol);
  }

  BasicMatrix multiply(const BasicMatrix& other) const {
    assert(cols_ == other.rows_);
    BasicMatrix out(rows_, other.cols_);
    for (int r = 0; r < rows_; ++r) {
      auto* out_row = reinterpret_cast<std::uint8_t*>(out.row_mut(r));
      for (int i = 0; i < cols_; ++i) {
        const Symbol a = at(r, i);
        if (a == 0) continue;
        F::mul_add_region(out_row,
                          reinterpret_cast<const std::uint8_t*>(other.row(i)),
                          a, other.row_bytes());
      }
    }
    return out;
  }

  /// Gauss-Jordan inverse; nullopt if singular. Precondition: square.
  std::optional<BasicMatrix> inverted() const {
    assert(rows_ == cols_);
    const int n = rows_;
    BasicMatrix work = *this;
    BasicMatrix inv = BasicMatrix::identity(n);
    for (int col = 0; col < n; ++col) {
      int pivot = -1;
      for (int r = col; r < n; ++r) {
        if (work.at(r, col) != 0) {
          pivot = r;
          break;
        }
      }
      if (pivot < 0) return std::nullopt;
      if (pivot != col) {
        for (int c = 0; c < n; ++c) {
          std::swap(work.data_[work.index(col, c)],
                    work.data_[work.index(pivot, c)]);
          std::swap(inv.data_[inv.index(col, c)],
                    inv.data_[inv.index(pivot, c)]);
        }
      }
      // Row operations as region kernels (exact in-place aliasing is
      // allowed): scale the pivot row, then eliminate it from every other.
      const Symbol p = work.at(col, col);
      if (p != 1) {
        const Symbol pinv = F::inv(p);
        F::mul_region(reinterpret_cast<std::uint8_t*>(work.row_mut(col)),
                      reinterpret_cast<const std::uint8_t*>(work.row(col)),
                      pinv, work.row_bytes());
        F::mul_region(reinterpret_cast<std::uint8_t*>(inv.row_mut(col)),
                      reinterpret_cast<const std::uint8_t*>(inv.row(col)),
                      pinv, inv.row_bytes());
      }
      for (int r = 0; r < n; ++r) {
        if (r == col) continue;
        const Symbol f = work.at(r, col);
        if (f == 0) continue;
        F::mul_add_region(reinterpret_cast<std::uint8_t*>(work.row_mut(r)),
                          reinterpret_cast<const std::uint8_t*>(work.row(col)),
                          f, work.row_bytes());
        F::mul_add_region(reinterpret_cast<std::uint8_t*>(inv.row_mut(r)),
                          reinterpret_cast<const std::uint8_t*>(inv.row(col)),
                          f, inv.row_bytes());
      }
    }
    return inv;
  }

  /// New matrix made of the given rows of this one, in the given order.
  BasicMatrix select_rows(const std::vector<int>& row_ids) const {
    BasicMatrix out(static_cast<int>(row_ids.size()), cols_);
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      assert(row_ids[i] >= 0 && row_ids[i] < rows_);
      for (int c = 0; c < cols_; ++c) {
        out.set(static_cast<int>(i), c, at(row_ids[i], c));
      }
    }
    return out;
  }

  /// Append the rows of `other` below this matrix (same column count).
  void append_rows(const BasicMatrix& other) {
    assert(cols_ == other.cols_ || rows_ == 0);
    if (rows_ == 0) cols_ = other.cols_;
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
  }

  bool operator==(const BasicMatrix& other) const = default;

  std::string to_string() const {
    std::ostringstream os;
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        os << static_cast<long>(at(r, c)) << (c + 1 == cols_ ? "" : " ");
      }
      os << '\n';
    }
    return os.str();
  }

 private:
  std::size_t index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Symbol> data_;
};

/// Rank of the matrix under Gaussian elimination over its field.
template <typename F>
int rank(BasicMatrix<F> m) {
  using Symbol = typename F::Symbol;
  int rk = 0;
  for (int col = 0; col < m.cols() && rk < m.rows(); ++col) {
    int pivot = -1;
    for (int r = rk; r < m.rows(); ++r) {
      if (m.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rk) {
      std::swap_ranges(m.row_mut(rk), m.row_mut(rk) + m.cols(),
                       m.row_mut(pivot));
    }
    const Symbol pinv = F::inv(m.at(rk, col));
    F::mul_region(reinterpret_cast<std::uint8_t*>(m.row_mut(rk)),
                  reinterpret_cast<const std::uint8_t*>(m.row(rk)), pinv,
                  m.row_bytes());
    for (int r = 0; r < m.rows(); ++r) {
      if (r == rk) continue;
      const Symbol f = m.at(r, col);
      if (f == 0) continue;
      F::mul_add_region(reinterpret_cast<std::uint8_t*>(m.row_mut(r)),
                        reinterpret_cast<const std::uint8_t*>(m.row(rk)), f,
                        m.row_bytes());
    }
    ++rk;
  }
  return rk;
}

/// The GF(2^8) instantiation used by the storage stack.
using Matrix = BasicMatrix<GF256Field>;

}  // namespace dfs::ec
