#include "dfs/analysis/model.h"

#include <algorithm>
#include <cassert>

namespace dfs::analysis {

util::Seconds normal_mode_runtime(const ModelParams& p) {
  return static_cast<double>(p.num_blocks) * p.map_task_time /
         (static_cast<double>(p.num_nodes) * p.map_slots);
}

util::Seconds degraded_read_time(const ModelParams& p) {
  const double r = p.num_racks;
  return (r - 1.0) * p.k * p.block_size / (r * p.rack_bandwidth);
}

util::Seconds locality_first_runtime(const ModelParams& p) {
  // All degraded tasks start after the local tasks drain; each rack then
  // serializes its F/(N*R) degraded reads on its download link, and one last
  // slot duration processes the reconstructed blocks in parallel.
  const double degraded_per_rack =
      static_cast<double>(p.num_blocks) / (p.num_nodes * p.num_racks);
  return normal_mode_runtime(p) + degraded_per_rack * degraded_read_time(p) +
         p.map_task_time;
}

util::Seconds degraded_first_runtime(const ModelParams& p) {
  // Case 1: degraded reads hide inside the (N-1 nodes') map rounds entirely;
  // the map phase is bounded by processing plus one final slot duration.
  const double processing_bound =
      static_cast<double>(p.num_blocks) * p.map_task_time /
          (static_cast<double>(p.num_nodes - 1) * p.map_slots) +
      p.map_task_time;
  // Case 2: the inter-rack transfers of the degraded reads are the
  // bottleneck even when spread over the whole phase.
  const double degraded_per_rack =
      static_cast<double>(p.num_blocks) / (p.num_nodes * p.num_racks);
  const double transfer_bound =
      degraded_per_rack * degraded_read_time(p) + p.map_task_time;
  return std::max(processing_bound, transfer_bound);
}

double normalized_locality_first(const ModelParams& p) {
  return locality_first_runtime(p) / normal_mode_runtime(p);
}

double normalized_degraded_first(const ModelParams& p) {
  return degraded_first_runtime(p) / normal_mode_runtime(p);
}

double runtime_reduction_percent(const ModelParams& p) {
  const double lf = locality_first_runtime(p);
  const double df = degraded_first_runtime(p);
  return (lf - df) / lf * 100.0;
}

}  // namespace dfs::analysis
