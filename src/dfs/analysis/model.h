#pragma once

#include "dfs/util/units.h"

namespace dfs::analysis {

/// Parameters of the paper's §IV-B closed-form model. Defaults are the
/// paper's: N=40, R=4, L=4, S=128MB, W=1Gbps, T=20s, F=1440, (n,k)=(16,12).
struct ModelParams {
  int num_nodes = 40;                             ///< N
  int num_racks = 4;                              ///< R
  int map_slots = 4;                              ///< L
  util::Seconds map_task_time = 20.0;             ///< T
  util::Bytes block_size = util::mebibytes(128);  ///< S
  util::BytesPerSec rack_bandwidth =
      util::gigabits_per_sec(1.0);                ///< W (rack download)
  long num_blocks = 1440;                         ///< F
  int n = 16;
  int k = 12;
};

/// Runtime of a map-only job in normal mode: F*T / (N*L).
util::Seconds normal_mode_runtime(const ModelParams& p);

/// Expected time one degraded read spends downloading blocks from other
/// racks: (R-1)*k*S / (R*W). Also the rack-awareness threshold of §IV-C.
util::Seconds degraded_read_time(const ModelParams& p);

/// Locality-first runtime under a single-node failure:
/// F*T/(N*L) + F/(N*R) * (R-1)*k*S/(R*W) + T.
util::Seconds locality_first_runtime(const ModelParams& p);

/// Degraded-first runtime under a single-node failure:
/// max(F*T/((N-1)*L) + T,  F/(N*R) * (R-1)*k*S/(R*W) + T).
util::Seconds degraded_first_runtime(const ModelParams& p);

/// Runtime normalized over normal mode, as the paper's Fig. 5 plots.
double normalized_locality_first(const ModelParams& p);
double normalized_degraded_first(const ModelParams& p);

/// Percentage runtime reduction of degraded-first over locality-first.
double runtime_reduction_percent(const ModelParams& p);

}  // namespace dfs::analysis
