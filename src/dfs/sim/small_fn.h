#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dfs::sim {

/// Move-only type-erased `void()` callable with inline small-buffer storage.
///
/// The event kernel stores one of these in every slab slot, so a closure
/// whose captures fit `kInlineSize` bytes is scheduled without any heap
/// allocation — which covers every hot caller in the tree (heartbeats,
/// completion events, periodic drivers). Larger callables (e.g. a closure
/// that owns a whole net::Flow) fall back to one heap allocation, exactly
/// what std::function would have done, so nothing is lost on the cold path.
class SmallFn {
 public:
  /// Inline capacity in bytes. Sized to hold a captured `this` plus a few
  /// words, or a moved-in std::function, without growing the slot past one
  /// cache line pair. Every pending event pays this footprint, so bump it
  /// deliberately.
  static constexpr std::size_t kInlineSize = 64;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->call(buf_); }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void*);
    void (*destroy)(void*);
    /// Move-construct the callable into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
  };

  template <typename Fn>
  static void inline_call(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void inline_destroy(void* p) {
    static_cast<Fn*>(p)->~Fn();
  }
  template <typename Fn>
  static void inline_relocate(void* dst, void* src) {
    Fn* s = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }

  template <typename Fn>
  static Fn*& heap_ptr(void* p) {
    return *static_cast<Fn**>(p);
  }
  template <typename Fn>
  static void heap_call(void* p) {
    (*heap_ptr<Fn>(p))();
  }
  template <typename Fn>
  static void heap_destroy(void* p) {
    delete heap_ptr<Fn>(p);
  }
  template <typename Fn>
  static void heap_relocate(void* dst, void* src) {
    ::new (dst) Fn*(heap_ptr<Fn>(src));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{&inline_call<Fn>, &inline_destroy<Fn>,
                                  &inline_relocate<Fn>};
  template <typename Fn>
  static constexpr Ops kHeapOps{&heap_call<Fn>, &heap_destroy<Fn>,
                                &heap_relocate<Fn>};

  void move_from(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dfs::sim
