#include "dfs/sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace dfs::sim {

std::uint32_t Simulator::allocate_slot(Callback cb) {
  std::uint32_t index;
  if (free_head_ != kFreeListEnd) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(cb);
  slot.next_free = kOccupied;
  ++pending_;
  return index;
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  assert(slot.next_free == kOccupied);
  slot.fn.reset();
  if (++slot.gen == 0) slot.gen = 1;  // keep EventId::value != 0
  slot.next_free = free_head_;
  free_head_ = index;
  assert(pending_ > 0);
  --pending_;
}

EventId Simulator::schedule_in(util::Seconds delay, Callback cb) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(util::Seconds at, Callback cb) {
  assert(at >= now_);
  const std::uint32_t index = allocate_slot(std::move(cb));
  const std::uint32_t gen = slots_[index].gen;
  heap_.push(Event{at, next_seq_++, index, gen});
  return make_id(index, gen);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto index = static_cast<std::uint32_t>(id.value >> 32);
  const auto gen = static_cast<std::uint32_t>(id.value);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.gen != gen || slot.next_free != kOccupied) return false;
  // The heap entry stays behind as a stale (slot, gen) pair; run() skips it
  // when it surfaces because the generation no longer matches.
  release_slot(index);
  return true;
}

void Simulator::schedule_periodic(util::Seconds phase, util::Seconds period,
                                  std::function<bool()> cb) {
  assert(period > 0.0);
  // Self-rescheduling closure: each firing re-arms the next one so the
  // period survives arbitrarily long simulations without pre-populating
  // the queue.
  auto driver = std::make_shared<std::function<void()>>();
  periodic_drivers_.push_back(driver);
  *driver = [this, period, cb = std::move(cb),
             weak = std::weak_ptr<std::function<void()>>(driver)]() {
    if (!cb()) return;
    if (const auto self = weak.lock()) schedule_in(period, *self);
  };
  schedule_in(phase, *driver);
}

util::Seconds Simulator::run(util::Seconds until) {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    if (until >= 0.0 && ev.time > until) {
      now_ = until;
      return now_;
    }
    heap_.pop();
    Slot& slot = slots_[ev.slot];
    if (slot.gen != ev.gen || slot.next_free != kOccupied) {
      continue;  // cancelled (slot released, possibly recycled since)
    }
    SmallFn fn = std::move(slot.fn);
    release_slot(ev.slot);
    now_ = ev.time;
    ++executed_;
    if (fn) fn();
  }
  return now_;
}

void Simulator::clear() {
  while (!heap_.empty()) heap_.pop();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].next_free == kOccupied) release_slot(i);
  }
  assert(pending_ == 0);
}

}  // namespace dfs::sim
