#include "dfs/sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace dfs::sim {

EventId Simulator::schedule_in(util::Seconds delay, Callback cb) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(util::Seconds at, Callback cb) {
  assert(at >= now_);
  const std::uint64_t id = next_id_++;
  heap_.push(Event{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulator::schedule_periodic(util::Seconds phase, util::Seconds period,
                                  std::function<bool()> cb) {
  assert(period > 0.0);
  // Self-rescheduling closure: each firing re-arms the next one so the
  // period survives arbitrarily long simulations without pre-populating
  // the queue.
  auto driver = std::make_shared<std::function<void()>>();
  periodic_drivers_.push_back(driver);
  *driver = [this, period, cb = std::move(cb),
             weak = std::weak_ptr<std::function<void()>>(driver)]() {
    if (!cb()) return;
    if (const auto self = weak.lock()) schedule_in(period, *self);
  };
  schedule_in(phase, *driver);
}

util::Seconds Simulator::run(util::Seconds until) {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    if (until >= 0.0 && ev.time > until) {
      now_ = until;
      return now_;
    }
    heap_.pop();
    if (auto c = cancelled_.find(ev.id); c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // defensive; should not happen
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    ++executed_;
    cb();
  }
  return now_;
}

void Simulator::clear() {
  while (!heap_.empty()) heap_.pop();
  callbacks_.clear();
  cancelled_.clear();
}

}  // namespace dfs::sim
