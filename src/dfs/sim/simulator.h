#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dfs/util/units.h"

namespace dfs::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

/// Discrete-event simulation kernel.
///
/// This is the substrate the paper built on CSIM20: a clock plus an event
/// queue. Components schedule closures at absolute or relative simulated
/// times; `run()` drains the queue in time order. Ties are broken by
/// scheduling order (FIFO), which keeps runs fully deterministic for a given
/// seed — a property the simulation experiments and tests depend on.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time in seconds.
  util::Seconds now() const { return now_; }

  /// Schedule `cb` to run `delay >= 0` seconds from now.
  EventId schedule_in(util::Seconds delay, Callback cb);

  /// Schedule `cb` at absolute time `at >= now()`.
  EventId schedule_at(util::Seconds at, Callback cb);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled (safe to call either way).
  bool cancel(EventId id);

  /// Schedule `cb` every `period` seconds starting at now()+phase, until
  /// `cb` returns false or the simulation ends.
  void schedule_periodic(util::Seconds phase, util::Seconds period,
                         std::function<bool()> cb);

  /// Run until the event queue is empty, or until simulated time would pass
  /// `until` (default: run to completion). Returns the final time.
  util::Seconds run(util::Seconds until = -1.0);

  /// Drop all pending events (used to stop periodic drivers at teardown).
  void clear();

  /// Number of events executed so far (for microbenchmarks / sanity checks).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t events_pending() const {
    return heap_.size() - cancelled_.size();
  }

 private:
  struct Event {
    util::Seconds time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  util::Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Self-rescheduling periodic drivers; owned here (the closures hold only
  // weak refs) so they are reclaimed with the simulator instead of leaking
  // through a shared_ptr cycle.
  std::vector<std::shared_ptr<Callback>> periodic_drivers_;
};

}  // namespace dfs::sim
