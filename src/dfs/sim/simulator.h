#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "dfs/sim/small_fn.h"
#include "dfs/util/units.h"

namespace dfs::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
///
/// Encodes a slab slot index plus a per-slot generation tag, so a handle to
/// an event that already fired (or whose slot was recycled for a newer
/// event) is detected in O(1) without any lookup table.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

/// Discrete-event simulation kernel.
///
/// This is the substrate the paper built on CSIM20: a clock plus an event
/// queue. Components schedule closures at absolute or relative simulated
/// times; `run()` drains the queue in time order. Ties are broken by
/// scheduling order (FIFO), which keeps runs fully deterministic for a given
/// seed — a property the simulation experiments and tests depend on.
///
/// Events live in a slab of generation-tagged slots: scheduling an event
/// whose closure fits SmallFn's inline buffer performs no heap allocation,
/// and firing or cancelling one is a direct indexed access instead of the
/// hash-map lookups the kernel used to pay per event (see
/// docs/performance.md and bench/perf_regression.cpp).
class Simulator {
 public:
  using Callback = SmallFn;

  /// Current simulated time in seconds.
  util::Seconds now() const { return now_; }

  /// Schedule `cb` to run `delay >= 0` seconds from now.
  EventId schedule_in(util::Seconds delay, Callback cb);

  /// Schedule `cb` at absolute time `at >= now()`.
  EventId schedule_at(util::Seconds at, Callback cb);

  /// Schedule `cb` at the current timestamp, behind every event already
  /// queued there (the FIFO tie-break orders it last). This is the
  /// coalescing hook batched consumers build on: N same-timestamp mutations
  /// schedule one zero-delay pass that observes all of them — see the
  /// fair-share recompute batching in net::Network.
  EventId schedule_now(Callback cb) { return schedule_in(0.0, std::move(cb)); }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled (safe to call either way).
  bool cancel(EventId id);

  /// Schedule `cb` every `period` seconds starting at now()+phase, until
  /// `cb` returns false or the simulation ends.
  void schedule_periodic(util::Seconds phase, util::Seconds period,
                         std::function<bool()> cb);

  /// Run until the event queue is empty, or until simulated time would pass
  /// `until` (default: run to completion). Returns the final time.
  util::Seconds run(util::Seconds until = -1.0);

  /// Drop all pending events (used to stop periodic drivers at teardown).
  void clear();

  /// Number of events executed so far (for microbenchmarks / sanity checks).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending. Exact: cancellation releases the
  /// slot immediately, so cancelled events never inflate the count (stale
  /// heap entries are skipped on pop and were already uncounted).
  std::size_t events_pending() const { return pending_; }

 private:
  struct Event {
    util::Seconds time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One slab cell. `gen` is bumped every time the slot is released, so an
  /// EventId minted for an earlier occupancy can never match again; the heap
  /// may keep a stale Event for a cancelled id, which pop simply skips.
  struct Slot {
    SmallFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kOccupied;
  };
  static constexpr std::uint32_t kOccupied = 0xffffffffu;
  static constexpr std::uint32_t kFreeListEnd = 0xfffffffeu;

  std::uint32_t allocate_slot(Callback cb);
  void release_slot(std::uint32_t index);

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(slot) << 32) | gen};
  }

  util::Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  // Self-rescheduling periodic drivers; owned here (the closures hold only
  // weak refs) so they are reclaimed with the simulator instead of leaking
  // through a shared_ptr cycle.
  std::vector<std::shared_ptr<std::function<void()>>> periodic_drivers_;
};

}  // namespace dfs::sim
