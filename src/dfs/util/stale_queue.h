#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dfs::util {

/// A FIFO queue of keys whose entries can be retired in O(1) and skipped
/// lazily on pop, with an exact live count maintained throughout.
///
/// This is the pending-pool idiom the MapReduce master grew in several
/// hand-rolled copies (the degraded pool, the per-node pending queues): a
/// deque plus out-of-band liveness, where removing from the middle would be
/// O(n) so entries are instead *invalidated* — marked dead where they stand —
/// and physically discarded only when a pop scan reaches them.
///
/// Two re-entry disciplines exist in the wild and both are supported:
///
/// - `push(v)`: fresh entry at the back under a new generation. Any older
///   entry for `v` still in the deque is dead for good. Use when re-entry
///   must queue behind everyone (generation semantics — the degraded pool,
///   where a task that left via repair and re-entered via a new failure must
///   not revive its old entry and jump the queue: the ABA case).
/// - `repush(v)`: duplicate entry at the back under the *same* generation.
///   Every still-queued entry for `v` becomes deliverable again, and the
///   earliest one delivers first. Use when invalidation is a revocable
///   condition (predicate semantics — a per-node pending queue where a
///   node's copy fails and is later repaired, or a task is assigned and
///   later requeued: the key's original queue position survives the round
///   trip exactly as a liveness-predicate check on pop would preserve it).
///
/// Entries scanned past while dead are physically discarded, so a repush
/// after that point starts over at the back — again matching what a
/// predicate-checking pop loop (which pops as it scans) would have done.
///
/// At most one *live* claim exists per key at any time; duplicates beyond
/// the first are latent and only deliver after a later repush.
///
/// Internally a vector ring (entries plus a consumed-prefix index) rather
/// than a std::deque: a default-constructed queue owns no heap memory at
/// all, which matters because the master keeps one queue per (job, node)
/// pair — at 10k slaves that is millions of queues, almost all forever
/// empty, and libstdc++'s deque allocates ~0.5 KiB just to exist. The
/// consumed prefix is compacted amortized-O(1) once it dominates the
/// buffer, so long-lived queues (the degraded pool) stay bounded by their
/// high-water occupancy.
///
/// Not thread-safe. `T` must be hashable and equality-comparable.
template <typename T>
class StaleQueue {
 public:
  /// Is `v` currently live in the queue?  O(1).
  bool contains(const T& v) const {
    const auto it = state_.find(v);
    return it != state_.end() && it->second.live;
  }

  /// Exact number of live keys (dead entries never count).
  long live_count() const { return live_count_; }

  /// Physical queue length including dead entries (observability/tests).
  std::size_t queued_entries() const { return entries_.size() - head_; }

  /// Enqueue `v` at the back under a fresh generation. `v` must not be live.
  void push(const T& v) {
    State& st = state_[v];
    assert(!st.live && "StaleQueue::push of an already-live key");
    ++st.gen;
    st.live = true;
    entries_.emplace_back(v, st.gen);
    ++live_count_;
  }

  /// Enqueue `v` at the back under the current generation, making every
  /// still-queued entry for it deliverable again (earliest first). `v` must
  /// not be live.
  void repush(const T& v) {
    State& st = state_[v];
    assert(!st.live && "StaleQueue::repush of an already-live key");
    st.live = true;
    entries_.emplace_back(v, st.gen);
    ++live_count_;
  }

  /// Retire `v` in O(1): its deque entries go dead where they stand.
  /// Returns false (and changes nothing) if `v` was not live — callers may
  /// invalidate unconditionally over a superset of members.
  bool invalidate(const T& v) {
    const auto it = state_.find(v);
    if (it == state_.end() || !it->second.live) return false;
    it->second.live = false;
    --live_count_;
    return true;
  }

  /// Pop and consume the first live entry, discarding the dead prefix.
  /// Returns nullopt when no live entry remains.
  std::optional<T> pop() {
    while (head_ < entries_.size()) {
      const auto [v, gen] = entries_[head_];
      discard_front();
      const auto it = state_.find(v);
      assert(it != state_.end());
      State& st = it->second;
      if (st.gen != gen) continue;  // superseded by a later push
      if (!st.live) continue;       // invalidated and scanned past
      st.live = false;
      --live_count_;
      return v;
    }
    return std::nullopt;
  }

  /// First live entry without consuming it (dead prefix left in place),
  /// or nullptr when none.
  const T* peek() const {
    for (std::size_t i = head_; i < entries_.size(); ++i) {
      const auto& [v, gen] = entries_[i];
      const auto it = state_.find(v);
      if (it != state_.end() && it->second.live && it->second.gen == gen) {
        return &v;
      }
    }
    return nullptr;
  }

 private:
  struct State {
    unsigned gen = 0;   ///< generation of the newest entry pushed for the key
    bool live = false;  ///< key is a live member
  };

  /// Advance past the front entry; reclaim the consumed prefix when the
  /// queue fully drains (keeps capacity) or when the prefix dominates the
  /// buffer (amortized O(1): at least head_ pops funded the move).
  void discard_front() {
    ++head_;
    if (head_ == entries_.size()) {
      entries_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= entries_.size()) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<std::pair<T, unsigned>> entries_;  ///< ring: [head_, size)
  std::size_t head_ = 0;                         ///< consumed-prefix length
  std::unordered_map<T, State> state_;
  long live_count_ = 0;
};

}  // namespace dfs::util
