#pragma once

#include <cstddef>
#include <vector>

namespace dfs::util {

/// Bounded-memory percentile accumulator for steady-state metrics.
///
/// Small samples (the paper-scale regime — hundreds to a few thousand jobs)
/// are kept exactly and queried through util::percentile, so summaries stay
/// byte-identical with the materialize-and-sort code this replaces. Past
/// `exact_limit` observations the exact buffer is released and queries fall
/// back to P-squared marker estimates (Jain & Chlamtac, CACM 1985) that were
/// fed every observation from the start: memory is then a handful of doubles
/// per tracked percentile no matter how many million samples arrive —
/// that's what lets the 10k-slave tier summarize ~1M task records without
/// holding them.
///
/// The tracked percentiles are fixed at construction; in the estimator
/// regime only those may be queried. The mean accumulates in arrival order,
/// matching util::summarize on the same sequence.
class StreamingQuantile {
 public:
  static constexpr std::size_t kDefaultExactLimit = 65536;

  /// `percentiles` in [0, 100], e.g. {50.0, 95.0, 99.0}.
  explicit StreamingQuantile(std::vector<double> percentiles,
                             std::size_t exact_limit = kDefaultExactLimit);

  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Sum of observations / count, accumulated in arrival order (identical
  /// to util::summarize(xs).mean for the same sequence). 0 when empty.
  double mean() const;

  /// Percentile estimate; exact (linear-interpolated order statistic, the
  /// util::percentile definition) while at most `exact_limit` observations
  /// have arrived, P-squared beyond. `p` must then be one of the tracked
  /// percentiles. Asserts on an empty accumulator.
  double quantile(double p) const;

 private:
  /// One P-squared state: five markers straddling quantile `prob`.
  struct Markers {
    double prob = 0.5;   ///< quantile in [0, 1]
    double q[5] = {};    ///< marker heights
    double n[5] = {};    ///< actual marker positions (1-based)
    double np[5] = {};   ///< desired marker positions
    double dn[5] = {};   ///< desired-position increments

    void init(const double* first5_sorted);
    void add(double x);
    double estimate() const { return q[2]; }
  };

  std::size_t exact_limit_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  std::vector<double> exact_;    ///< kept while count_ <= exact_limit_
  std::vector<Markers> states_;  ///< one per tracked percentile
};

}  // namespace dfs::util
