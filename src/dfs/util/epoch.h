#pragma once

namespace dfs::util {

/// Invalidation guard for scheduled callbacks that must no-op once the state
/// they were armed against has been torn down and rebuilt.
///
/// The idiom: a component arms a simulator event (a completion, a detection
/// timer, an unblacklist timer) and captures `epoch.ticket()` in the
/// closure. Every teardown/rebuild of the component calls `bump()`. When the
/// event fires it checks `epoch.valid(ticket)` and returns if the world has
/// moved on — the callback is never cancelled, only neutralized. The same
/// counter doubles as a visited-mark versioner for scratch arrays (store
/// `ticket()` as the mark, `bump()` instead of clearing).
///
/// This replaces the ad-hoc `epoch` / `incarnation` / `visit_epoch_` int
/// counters that grew independently in the master, the fault layer, and the
/// network engine.
class Epoch {
 public:
  using Ticket = int;

  /// The current epoch; capture into closures (or store as a visit mark).
  Ticket ticket() const { return current_; }

  /// Invalidate every outstanding ticket. Returns the new epoch.
  Ticket bump() { return ++current_; }

  /// Was `t` issued for the current epoch?
  bool valid(Ticket t) const { return t == current_; }

 private:
  Ticket current_ = 0;
};

}  // namespace dfs::util
