#include "dfs/util/streaming_quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dfs/util/stats.h"

namespace dfs::util {

StreamingQuantile::StreamingQuantile(std::vector<double> percentiles,
                                     std::size_t exact_limit)
    : exact_limit_(std::max<std::size_t>(exact_limit, 5)) {
  states_.reserve(percentiles.size());
  for (const double p : percentiles) {
    assert(p >= 0.0 && p <= 100.0);
    Markers m;
    m.prob = p / 100.0;
    states_.push_back(m);
  }
}

void StreamingQuantile::Markers::init(const double* first5_sorted) {
  for (int i = 0; i < 5; ++i) {
    q[i] = first5_sorted[i];
    n[i] = static_cast<double>(i + 1);
  }
  np[0] = 1.0;
  np[1] = 1.0 + 2.0 * prob;
  np[2] = 1.0 + 4.0 * prob;
  np[3] = 3.0 + 2.0 * prob;
  np[4] = 5.0;
  dn[0] = 0.0;
  dn[1] = prob / 2.0;
  dn[2] = prob;
  dn[3] = (1.0 + prob) / 2.0;
  dn[4] = 1.0;
}

void StreamingQuantile::Markers::add(double x) {
  // Locate the cell and clamp the extreme markers.
  int k;
  if (x < q[0]) {
    q[0] = x;
    k = 0;
  } else if (x < q[1]) {
    k = 0;
  } else if (x < q[2]) {
    k = 1;
  } else if (x < q[3]) {
    k = 2;
  } else if (x <= q[4]) {
    k = 3;
  } else {
    q[4] = x;
    k = 3;
  }
  for (int i = k + 1; i < 5; ++i) n[i] += 1.0;
  for (int i = 0; i < 5; ++i) np[i] += dn[i];

  // Nudge the interior markers toward their desired positions, parabolic
  // (P-squared) when the neighbour gap allows, linear otherwise.
  for (int i = 1; i <= 3; ++i) {
    const double d = np[i] - n[i];
    if ((d >= 1.0 && n[i + 1] - n[i] > 1.0) ||
        (d <= -1.0 && n[i - 1] - n[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          q[i] + s / (n[i + 1] - n[i - 1]) *
                     ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) /
                          (n[i + 1] - n[i]) +
                      (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) /
                          (n[i] - n[i - 1]));
      if (q[i - 1] < parabolic && parabolic < q[i + 1]) {
        q[i] = parabolic;
      } else {
        // Linear fallback keeps the marker heights monotone.
        const int j = i + static_cast<int>(s);
        q[i] += s * (q[j] - q[i]) / (n[j] - n[i]);
      }
      n[i] += s;
    }
  }
}

void StreamingQuantile::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ <= exact_limit_) {
    exact_.push_back(x);
  } else if (!exact_.empty()) {
    exact_ = {};  // crossed into the estimator regime: release the buffer
  }
  if (count_ < 5) return;
  if (count_ == 5) {
    double first5[5];
    std::copy_n(exact_.begin(), 5, first5);
    std::sort(first5, first5 + 5);
    for (Markers& m : states_) m.init(first5);
    return;
  }
  for (Markers& m : states_) m.add(x);
}

double StreamingQuantile::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double StreamingQuantile::quantile(double p) const {
  assert(count_ > 0);
  if (count_ <= exact_limit_) return percentile(exact_, p);
  for (const Markers& m : states_) {
    if (m.prob == p / 100.0) return m.estimate();
  }
  assert(false && "untracked percentile queried in estimator regime");
  return 0.0;
}

}  // namespace dfs::util
