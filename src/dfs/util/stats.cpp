#include "dfs/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace dfs::util {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double acc = 0.0;
    for (double x : xs) acc += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(xs.size() - 1));
  }
  return s;
}

namespace {

// Percentile of a *sorted* sample using linear interpolation between closest
// ranks (the "exclusive" variant is overkill for 30-sample boxplots).
double sorted_percentile(const std::vector<double>& sorted, double p) {
  assert(!sorted.empty());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  return sorted_percentile(xs, p);
}

BoxPlot boxplot(std::vector<double> xs) {
  BoxPlot b;
  if (xs.empty()) return b;
  std::sort(xs.begin(), xs.end());
  b.q1 = sorted_percentile(xs, 25.0);
  b.median = sorted_percentile(xs, 50.0);
  b.q3 = sorted_percentile(xs, 75.0);
  b.mean = summarize(xs).mean;
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.min = b.q1;
  b.max = b.q3;
  bool found_whisker = false;
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      b.outliers.push_back(x);
    } else {
      if (!found_whisker) {
        b.min = x;
        found_whisker = true;
      }
      b.max = x;
    }
  }
  return b;
}

std::string to_string(const BoxPlot& b) {
  std::ostringstream os;
  os.precision(4);
  os << "med=" << b.median << " [q1=" << b.q1 << " q3=" << b.q3 << "]"
     << " whiskers=[" << b.min << "," << b.max << "]"
     << " mean=" << b.mean;
  if (!b.outliers.empty()) os << " outliers=" << b.outliers.size();
  return os.str();
}

double reduction_percent(double base, double ours) {
  if (base == 0.0) return 0.0;
  return (base - ours) / base * 100.0;
}

}  // namespace dfs::util
