#include "dfs/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dfs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  return num(v, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

void print_section(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace dfs::util
