#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dfs::util {

/// Mean / stddev / extrema of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// The five-number summary the paper's boxplots report (Figs. 7 and 8),
/// plus 1.5-IQR outliers.
struct BoxPlot {
  double min = 0.0;        ///< smallest non-outlier
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;        ///< largest non-outlier
  double mean = 0.0;
  std::vector<double> outliers;
};

BoxPlot boxplot(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. `xs` need not be sorted.
double percentile(std::vector<double> xs, double p);

/// Render like "med=1.32 [q1=1.25 q3=1.41] range=[1.10,1.60] mean=1.33".
std::string to_string(const BoxPlot& b);

/// Percentage reduction of `ours` relative to `base`: (base-ours)/base*100.
double reduction_percent(double base, double ours);

}  // namespace dfs::util
