#pragma once

// Unit helpers for the quantities the paper's model is parameterized by:
// time in seconds, data sizes in bytes, and bandwidth in bytes per second.
//
// We deliberately keep these as plain doubles with named constructor
// functions rather than heavy strong types: every formula in the paper
// (e.g. the degraded-read bound (R-1)kS/(RW)) mixes the three freely, and
// the named constructors at the call sites make the units explicit where it
// matters.

namespace dfs::util {

/// Simulated time, in seconds.
using Seconds = double;

/// Data size, in bytes.
using Bytes = double;

/// Bandwidth, in bytes per second.
using BytesPerSec = double;

/// Sentinel meaning "link with no bandwidth limit".
inline constexpr BytesPerSec kUnlimitedBandwidth = 0.0;

constexpr Bytes kilobytes(double v) { return v * 1e3; }
constexpr Bytes megabytes(double v) { return v * 1e6; }
constexpr Bytes gigabytes(double v) { return v * 1e9; }

/// Binary block sizes, as used by HDFS ("128MB block" = 128 * 2^20 bytes).
constexpr Bytes mebibytes(double v) { return v * 1024.0 * 1024.0; }
constexpr Bytes gibibytes(double v) { return v * 1024.0 * 1024.0 * 1024.0; }

/// Network bandwidths are quoted in bits per second in the paper
/// ("1Gbps rack download bandwidth").
constexpr BytesPerSec megabits_per_sec(double v) { return v * 1e6 / 8.0; }
constexpr BytesPerSec gigabits_per_sec(double v) { return v * 1e9 / 8.0; }

}  // namespace dfs::util
