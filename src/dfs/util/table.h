#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfs::util {

/// Minimal column-aligned plain-text table, used by the benchmark harnesses
/// to print the same rows/series the paper's tables and figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Prints a "== title ==" section banner.
void print_section(std::ostream& os, const std::string& title);

}  // namespace dfs::util
