#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dfs::util {

/// Minimal command-line parser for the tools: GNU-style "--flag value" and
/// "--flag=value" options plus positional arguments. Unknown flags are
/// collected so tools can reject them with a useful message.
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of --name, if present.
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were consumed by none of the accessors above; call after all
  /// get()s to report typos. Accessors record the names they were asked for.
  std::vector<std::string> unrecognized() const;

 private:
  struct Flag {
    std::string name;
    std::string value;
    bool has_value = false;
  };
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> queried_;
};

/// Splits "a,b,c" into pieces (empty input -> empty vector).
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace dfs::util
