#pragma once

#include <ostream>
#include <string_view>

namespace dfs::util {

/// Streams JSON-lines records: one object per line, keys emitted in call
/// order, values through the stream's default `operator<<` formatting. The
/// tools' machine-readable outputs are consumed by diff-based golden tests,
/// so the writer adds no whitespace, reordering, or number reformatting —
/// output stays byte-identical with the inline `<<` chains it replaced.
///
/// Usage:
///   JsonlWriter w(os);
///   w.begin("job").field("id", 3).field("runtime", 12.5).end();
///   // -> {"type":"job","id":3,"runtime":12.5}
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}

  /// Open a record and tag it: `{"type":"<type>"`. Every record carries the
  /// type discriminator first so stream consumers can dispatch per line.
  JsonlWriter& begin(std::string_view type) {
    os_ << "{\"type\":\"";
    write_escaped(type);
    os_ << '"';
    return *this;
  }

  /// Unquoted field: numbers, or anything whose default stream output is
  /// already valid JSON (pass `cond ? 1 : 0` for booleans).
  template <typename T>
  JsonlWriter& field(std::string_view key, const T& value) {
    key_prefix(key);
    os_ << value;
    return *this;
  }

  /// Quoted string field, JSON-escaped.
  JsonlWriter& text(std::string_view key, std::string_view value) {
    key_prefix(key);
    os_ << '"';
    write_escaped(value);
    os_ << '"';
    return *this;
  }

  /// Array of unquoted values: `"key":[a,b,...]`.
  template <typename Range>
  JsonlWriter& array(std::string_view key, const Range& values) {
    key_prefix(key);
    os_ << '[';
    bool first = true;
    for (const auto& v : values) {
      if (!first) os_ << ',';
      first = false;
      os_ << v;
    }
    os_ << ']';
    return *this;
  }

  /// Close the record: `}` and the line terminator.
  void end() { os_ << "}\n"; }

 private:
  void key_prefix(std::string_view key) {
    os_ << ",\"";
    write_escaped(key);
    os_ << "\":";
  }

  // Covers the escapes our identifiers and enum names can contain; bare
  // control characters below 0x20 other than \n\r\t are not expected in
  // simulator output and pass through unescaped.
  void write_escaped(std::string_view s) {
    for (const char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\r':
          os_ << "\\r";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          os_ << c;
      }
    }
  }

  std::ostream& os_;
};

}  // namespace dfs::util
