#pragma once

#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dfs::util {

/// Streams JSON-lines records: one object per line, keys emitted in call
/// order, values through the stream's default `operator<<` formatting. The
/// tools' machine-readable outputs are consumed by diff-based golden tests,
/// so the writer adds no whitespace, reordering, or number reformatting —
/// output stays byte-identical with the inline `<<` chains it replaced.
///
/// Records are built into an internal line buffer and written to the target
/// stream in large chunks at record boundaries (never mid-record), so a
/// million-task JSONL dump costs a few thousand stream writes instead of a
/// dozen per field. The destructor flushes whatever is buffered; flush()
/// does the same explicitly — call it before touching the target stream
/// directly while the writer is still alive. Values are formatted with the
/// target stream's formatting state as captured at construction.
///
/// Usage:
///   JsonlWriter w(os);
///   w.begin("job").field("id", 3).field("runtime", 12.5).end();
///   // -> {"type":"job","id":3,"runtime":12.5}
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {
    fmt_.copyfmt(os);    // numbers render exactly as `os << v` would
    fmt_.tie(nullptr);   // never flush a tied stream per formatted value
    buf_.reserve(kFlushBytes + kMaxLineBytes);
  }

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  ~JsonlWriter() { flush(); }

  /// Open a record and tag it: `{"type":"<type>"`. Every record carries the
  /// type discriminator first so stream consumers can dispatch per line.
  JsonlWriter& begin(std::string_view type) {
    buf_ += "{\"type\":\"";
    append_escaped(type);
    buf_ += '"';
    return *this;
  }

  /// Unquoted field: numbers, or anything whose default stream output is
  /// already valid JSON (pass `cond ? 1 : 0` for booleans).
  template <typename T>
  JsonlWriter& field(std::string_view key, const T& value) {
    key_prefix(key);
    append_value(value);
    return *this;
  }

  /// Quoted string field, JSON-escaped.
  JsonlWriter& text(std::string_view key, std::string_view value) {
    key_prefix(key);
    buf_ += '"';
    append_escaped(value);
    buf_ += '"';
    return *this;
  }

  /// Array of unquoted values: `"key":[a,b,...]`.
  template <typename Range>
  JsonlWriter& array(std::string_view key, const Range& values) {
    key_prefix(key);
    buf_ += '[';
    bool first = true;
    for (const auto& v : values) {
      if (!first) buf_ += ',';
      first = false;
      append_value(v);
    }
    buf_ += ']';
    return *this;
  }

  /// Close the record: `}` and the line terminator. Complete records drain
  /// to the stream once enough have accumulated.
  void end() {
    buf_ += "}\n";
    if (buf_.size() >= kFlushBytes) flush();
  }

  /// Write everything buffered to the target stream. Only complete records
  /// are ever flushed implicitly; this also drains a partial one.
  void flush() {
    if (buf_.empty()) return;
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }

 private:
  /// Drain threshold; buf_ reserves this plus slack for one long record so
  /// steady-state appends never reallocate.
  static constexpr std::size_t kFlushBytes = 64 * 1024;
  static constexpr std::size_t kMaxLineBytes = 4 * 1024;

  void key_prefix(std::string_view key) {
    buf_ += ",\"";
    append_escaped(key);
    buf_ += "\":";
  }

  template <typename T>
  void append_value(const T& value) {
    fmt_.str(std::string());
    fmt_ << value;
    buf_ += fmt_.view();
  }

  // Covers the escapes our identifiers and enum names can contain; bare
  // control characters below 0x20 other than \n\r\t are not expected in
  // simulator output and pass through unescaped.
  void append_escaped(std::string_view s) {
    for (const char c : s) {
      switch (c) {
        case '"':
          buf_ += "\\\"";
          break;
        case '\\':
          buf_ += "\\\\";
          break;
        case '\n':
          buf_ += "\\n";
          break;
        case '\r':
          buf_ += "\\r";
          break;
        case '\t':
          buf_ += "\\t";
          break;
        default:
          buf_ += c;
      }
    }
  }

  std::ostream& os_;
  std::ostringstream fmt_;  ///< scratch formatter, state copied from os_
  std::string buf_;
};

}  // namespace dfs::util
