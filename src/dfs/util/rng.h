#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace dfs::util {

/// Deterministic random source used throughout the simulator.
///
/// Every experiment run owns one Rng seeded from the experiment seed, so a
/// (configuration, seed) pair always reproduces the identical trace — a
/// property the tests rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw clamped below at `floor` (task durations must be positive;
  /// the paper's distributions, e.g. N(20, 1), essentially never clamp).
  double normal(double mean, double stddev, double floor = 1e-3) {
    if (stddev <= 0.0) return std::max(mean, floor);
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return std::max(v, floor);
  }

  /// Exponential draw with the given mean (used for job inter-arrival times).
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pick a uniformly random element index of a container of size n.
  std::size_t index(std::size_t n) {
    assert(n > 0);
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Choose m distinct indices from [0, n) uniformly (partial Fisher-Yates).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t m) {
    assert(m <= n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t j =
          i + std::uniform_int_distribution<std::size_t>(0, n - 1 - i)(engine_);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(m);
    return idx;
  }

  /// Zipf(s) draw over ranks [1, n]; used by the synthetic text generator to
  /// approximate natural-language word frequencies.
  std::size_t zipf(std::size_t n, double s = 1.0) {
    // Inverse-CDF over precomputed harmonic weights would be cleaner but this
    // is only used for data generation, so rejection-free linear scan with a
    // cached normalizer is fine for the sizes we use.
    if (harmonic_n_ != n || harmonic_s_ != s) {
      harmonic_n_ = n;
      harmonic_s_ = s;
      cdf_.resize(n);
      double acc = 0.0;
      for (std::size_t r = 1; r <= n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r), s);
        cdf_[r - 1] = acc;
      }
      for (auto& c : cdf_) c /= acc;
    }
    const double u = uniform(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
  }

  /// Derive an independent child generator (e.g. one per job) so adding a
  /// consumer does not perturb the draws seen by the others.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::size_t harmonic_n_ = 0;
  double harmonic_s_ = 0.0;
  std::vector<double> cdf_;
};

}  // namespace dfs::util
