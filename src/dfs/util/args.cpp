#include "dfs/util/args.h"

#include <algorithm>
#include <cstdlib>

namespace dfs::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    Flag flag;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flag.name = arg.substr(2, eq - 2);
      flag.value = arg.substr(eq + 1);
      flag.has_value = true;
    } else {
      flag.name = arg.substr(2);
      // Consume the next token as the value unless it looks like a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flag.value = argv[++i];
        flag.has_value = true;
      }
    }
    flags_.push_back(std::move(flag));
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  queried_.push_back(name);
  for (const Flag& f : flags_) {
    if (f.name == name && f.has_value) return f.value;
  }
  return std::nullopt;
}

std::string Args::get_or(const std::string& name,
                         const std::string& def) const {
  return get(name).value_or(def);
}

int Args::get_int(const std::string& name, int def) const {
  const auto v = get(name);
  return v ? std::atoi(v->c_str()) : def;
}

double Args::get_double(const std::string& name, double def) const {
  const auto v = get(name);
  return v ? std::atof(v->c_str()) : def;
}

bool Args::has(const std::string& name) const {
  queried_.push_back(name);
  return std::any_of(flags_.begin(), flags_.end(),
                     [&](const Flag& f) { return f.name == name; });
}

std::vector<std::string> Args::unrecognized() const {
  std::vector<std::string> out;
  for (const Flag& f : flags_) {
    if (std::find(queried_.begin(), queried_.end(), f.name) ==
        queried_.end()) {
      out.push_back(f.name);
    }
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace dfs::util
