#include "dfs/storage/degraded.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dfs::storage {

namespace {

/// Options fetching any partial block are ineligible when the cost model
/// runs in whole-block mode.
bool eligible(const ec::RecoveryOption& option,
              const RecoveryCostModel& model) {
  if (model.allow_subshard) return true;
  return std::all_of(option.sources.begin(), option.sources.end(),
                     [](const ec::RecoverySource& s) {
                       return s.fraction >= 1.0;
                     });
}

int popcount_mask(unsigned mask) {
  int bits = 0;
  for (; mask != 0; mask &= mask - 1) ++bits;
  return bits;
}

}  // namespace

bool quorum_reached(const ec::ErasureCode& code,
                    const ec::RecoveryPlan& options, int lost_shard,
                    const std::vector<unsigned>& completed) {
  // (1) A candidate option is fully covered by the completed masks. This is
  // the only test that can pass on partial shards (Hitchhiker-XOR half-shard
  // sources, LRC local groups).
  for (const ec::RecoveryOption& opt : options.options) {
    bool covered = true;
    for (const ec::RecoverySource& src : opt.sources) {
      const auto s = static_cast<std::size_t>(src.shard);
      if ((src.substripes & ~completed[s]) != 0u) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  // (2) The fully-completed shards alone reconstruct the lost one — the
  // "any k of the completed" test an MDS code's single-candidate plan
  // cannot express. Gated on >= k full shards: no linear code decodes from
  // fewer.
  const unsigned all = code.full_substripe_mask();
  std::vector<int> full;
  full.reserve(completed.size());
  for (std::size_t s = 0; s < completed.size(); ++s) {
    if ((completed[s] & all) == all) full.push_back(static_cast<int>(s));
  }
  if (static_cast<int>(full.size()) < code.k()) return false;
  return code.recovery_plan(full, lost_shard).has_value();
}

DegradedReadPlanner::DegradedReadPlanner(const StorageLayout& layout,
                                         const net::Topology& topo,
                                         const ec::ErasureCode& code,
                                         SourceSelection selection,
                                         RecoveryCostModel cost_model)
    : layout_(layout),
      topo_(topo),
      code_(code),
      selection_(selection),
      cost_model_(cost_model),
      expected_blocks_(static_cast<double>(code.k())) {
  // Cache the expected single-failure fetch volume: for each native shard,
  // the cheapest eligible option with every other shard available. The
  // topology-independent byte count (weights do not enter — the caller uses
  // this as a volume) keeps the per-heartbeat threshold query O(1).
  double sum = 0.0;
  int counted = 0;
  std::vector<int> all_others;
  all_others.reserve(static_cast<std::size_t>(code.n()) - 1);
  for (int lost = 0; lost < code.k(); ++lost) {
    all_others.clear();
    for (int b = 0; b < code.n(); ++b) {
      if (b != lost) all_others.push_back(b);
    }
    const auto plan = code.recovery_plan(all_others, lost);
    if (!plan) continue;
    double best = std::numeric_limits<double>::infinity();
    for (const ec::RecoveryOption& opt : plan->options) {
      if (!eligible(opt, cost_model_)) continue;
      best = std::min(best, opt.total_fraction());
    }
    if (best == std::numeric_limits<double>::infinity()) continue;
    sum += best;
    ++counted;
  }
  if (counted > 0) expected_blocks_ = sum / counted;
}

double DegradedReadPlanner::option_cost(const ec::RecoveryOption& option,
                                        int stripe, NodeId reader) const {
  double cost = 0.0;
  for (const ec::RecoverySource& src : option.sources) {
    const NodeId holder = layout_.node_of(BlockId{stripe, src.shard});
    const double weight = topo_.same_rack(holder, reader)
                              ? cost_model_.in_rack_weight
                              : cost_model_.cross_rack_weight;
    cost += src.fraction * weight;
  }
  return cost;
}

std::optional<std::vector<DegradedSource>> DegradedReadPlanner::plan(
    BlockId lost, NodeId reader, const FailureScenario& failure,
    util::Rng& rng) const {
  // Candidate survivors of the same stripe, in preference order.
  std::vector<int> available;
  available.reserve(static_cast<std::size_t>(layout_.n()));
  for (int b = 0; b < layout_.n(); ++b) {
    if (b == lost.index) continue;
    const NodeId holder = layout_.node_of(BlockId{lost.stripe, b});
    if (!failure.is_failed(holder)) available.push_back(b);
  }
  rng.shuffle(available);
  if (selection_ == SourceSelection::kPreferSameRack) {
    // Closest first: blocks already on the reader (free), then the reader's
    // rack, then the rest — so stripe-affinity task placement pays off.
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return topo_.same_rack(layout_.node_of(BlockId{lost.stripe, b}),
                             reader);
    });
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return layout_.node_of(BlockId{lost.stripe, b}) == reader;
    });
  }
  const auto plan = code_.recovery_plan(available, lost.index);
  if (!plan) return std::nullopt;
  // Price every eligible candidate; a strictly cheaper one displaces the
  // incumbent, so ties resolve to the code's preferred (earliest) option.
  const ec::RecoveryOption* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const ec::RecoveryOption& opt : plan->options) {
    if (!eligible(opt, cost_model_)) continue;
    const double cost = option_cost(opt, lost.stripe, reader);
    if (cost < best_cost) {
      best_cost = cost;
      best = &opt;
    }
  }
  if (best == nullptr) return std::nullopt;
  std::vector<DegradedSource> sources;
  sources.reserve(best->sources.size());
  for (const ec::RecoverySource& src : best->sources) {
    const BlockId block{lost.stripe, src.shard};
    const NodeId holder = layout_.node_of(block);
    assert(holder != net::kInvalidNode);
    sources.push_back(
        DegradedSource{block, holder, src.fraction, src.substripes});
  }
  return sources;
}

std::optional<HedgedPlan> DegradedReadPlanner::plan_hedged(
    BlockId lost, NodeId reader, const FailureScenario& failure,
    util::Rng& rng, int extra_sources, const std::vector<char>& exclude)
    const {
  // Same survivor gathering and preference shuffle as plan(): with no
  // exclusions the primary option (and the RNG draws spent choosing it) is
  // identical to the unhedged plan.
  std::vector<int> available;
  available.reserve(static_cast<std::size_t>(layout_.n()));
  for (int b = 0; b < layout_.n(); ++b) {
    if (b == lost.index) continue;
    if (!exclude.empty() && exclude[static_cast<std::size_t>(b)]) continue;
    const NodeId holder = layout_.node_of(BlockId{lost.stripe, b});
    if (!failure.is_failed(holder)) available.push_back(b);
  }
  rng.shuffle(available);
  if (selection_ == SourceSelection::kPreferSameRack) {
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return topo_.same_rack(layout_.node_of(BlockId{lost.stripe, b}),
                             reader);
    });
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return layout_.node_of(BlockId{lost.stripe, b}) == reader;
    });
  }
  auto plan = code_.recovery_plan(available, lost.index);
  if (!plan) return std::nullopt;

  // Price the eligible options; remember them in ascending cost order
  // (stable, so ties keep the code's preference order) for hedge selection.
  struct Priced {
    double cost;
    const ec::RecoveryOption* option;
  };
  std::vector<Priced> priced;
  priced.reserve(plan->options.size());
  for (const ec::RecoveryOption& opt : plan->options) {
    if (!eligible(opt, cost_model_)) continue;
    priced.push_back(Priced{option_cost(opt, lost.stripe, reader), &opt});
  }
  if (priced.empty()) return std::nullopt;
  std::stable_sort(priced.begin(), priced.end(),
                   [](const Priced& a, const Priced& b) {
                     return a.cost < b.cost;
                   });

  HedgedPlan out;
  out.lost = lost;
  const int substripes = code_.substripe_count();
  std::vector<unsigned> selected(static_cast<std::size_t>(layout_.n()), 0u);
  const auto add_source = [&](std::vector<DegradedSource>& dst, int shard,
                              unsigned mask) {
    const unsigned fresh =
        mask & ~selected[static_cast<std::size_t>(shard)];
    if (fresh == 0u) return false;
    selected[static_cast<std::size_t>(shard)] |= fresh;
    const BlockId block{lost.stripe, shard};
    const NodeId holder = layout_.node_of(block);
    assert(holder != net::kInvalidNode);
    dst.push_back(DegradedSource{
        block, holder,
        static_cast<double>(popcount_mask(fresh)) / substripes, fresh});
    return true;
  };
  for (const ec::RecoverySource& src : priced.front().option->sources) {
    add_source(out.primary, src.shard, src.substripes);
  }
  // Hedge sources: walk the costlier options first (their sources are known
  // to combine into full alternatives), then whole leftover survivors.
  int extras_left = std::max(0, extra_sources);
  for (std::size_t p = 1; p < priced.size() && extras_left > 0; ++p) {
    for (const ec::RecoverySource& src : priced[p].option->sources) {
      if (extras_left == 0) break;
      if (add_source(out.extras, src.shard, src.substripes)) --extras_left;
    }
  }
  const unsigned all = code_.full_substripe_mask();
  for (const int shard : available) {
    if (extras_left == 0) break;
    if (add_source(out.extras, shard, all)) --extras_left;
  }
  out.options = std::move(*plan);
  return out;
}

double DegradedReadPlanner::expected_cross_rack_blocks() const {
  const double r = topo_.num_racks();
  return (r - 1.0) / r * expected_blocks_;
}

}  // namespace dfs::storage
