#include "dfs/storage/degraded.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dfs::storage {

namespace {

/// Options fetching any partial block are ineligible when the cost model
/// runs in whole-block mode.
bool eligible(const ec::RecoveryOption& option,
              const RecoveryCostModel& model) {
  if (model.allow_subshard) return true;
  return std::all_of(option.sources.begin(), option.sources.end(),
                     [](const ec::RecoverySource& s) {
                       return s.fraction >= 1.0;
                     });
}

}  // namespace

DegradedReadPlanner::DegradedReadPlanner(const StorageLayout& layout,
                                         const net::Topology& topo,
                                         const ec::ErasureCode& code,
                                         SourceSelection selection,
                                         RecoveryCostModel cost_model)
    : layout_(layout),
      topo_(topo),
      code_(code),
      selection_(selection),
      cost_model_(cost_model),
      expected_blocks_(static_cast<double>(code.k())) {
  // Cache the expected single-failure fetch volume: for each native shard,
  // the cheapest eligible option with every other shard available. The
  // topology-independent byte count (weights do not enter — the caller uses
  // this as a volume) keeps the per-heartbeat threshold query O(1).
  double sum = 0.0;
  int counted = 0;
  std::vector<int> all_others;
  all_others.reserve(static_cast<std::size_t>(code.n()) - 1);
  for (int lost = 0; lost < code.k(); ++lost) {
    all_others.clear();
    for (int b = 0; b < code.n(); ++b) {
      if (b != lost) all_others.push_back(b);
    }
    const auto plan = code.recovery_plan(all_others, lost);
    if (!plan) continue;
    double best = std::numeric_limits<double>::infinity();
    for (const ec::RecoveryOption& opt : plan->options) {
      if (!eligible(opt, cost_model_)) continue;
      best = std::min(best, opt.total_fraction());
    }
    if (best == std::numeric_limits<double>::infinity()) continue;
    sum += best;
    ++counted;
  }
  if (counted > 0) expected_blocks_ = sum / counted;
}

double DegradedReadPlanner::option_cost(const ec::RecoveryOption& option,
                                        int stripe, NodeId reader) const {
  double cost = 0.0;
  for (const ec::RecoverySource& src : option.sources) {
    const NodeId holder = layout_.node_of(BlockId{stripe, src.shard});
    const double weight = topo_.same_rack(holder, reader)
                              ? cost_model_.in_rack_weight
                              : cost_model_.cross_rack_weight;
    cost += src.fraction * weight;
  }
  return cost;
}

std::optional<std::vector<DegradedSource>> DegradedReadPlanner::plan(
    BlockId lost, NodeId reader, const FailureScenario& failure,
    util::Rng& rng) const {
  // Candidate survivors of the same stripe, in preference order.
  std::vector<int> available;
  available.reserve(static_cast<std::size_t>(layout_.n()));
  for (int b = 0; b < layout_.n(); ++b) {
    if (b == lost.index) continue;
    const NodeId holder = layout_.node_of(BlockId{lost.stripe, b});
    if (!failure.is_failed(holder)) available.push_back(b);
  }
  rng.shuffle(available);
  if (selection_ == SourceSelection::kPreferSameRack) {
    // Closest first: blocks already on the reader (free), then the reader's
    // rack, then the rest — so stripe-affinity task placement pays off.
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return topo_.same_rack(layout_.node_of(BlockId{lost.stripe, b}),
                             reader);
    });
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return layout_.node_of(BlockId{lost.stripe, b}) == reader;
    });
  }
  const auto plan = code_.recovery_plan(available, lost.index);
  if (!plan) return std::nullopt;
  // Price every eligible candidate; a strictly cheaper one displaces the
  // incumbent, so ties resolve to the code's preferred (earliest) option.
  const ec::RecoveryOption* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const ec::RecoveryOption& opt : plan->options) {
    if (!eligible(opt, cost_model_)) continue;
    const double cost = option_cost(opt, lost.stripe, reader);
    if (cost < best_cost) {
      best_cost = cost;
      best = &opt;
    }
  }
  if (best == nullptr) return std::nullopt;
  std::vector<DegradedSource> sources;
  sources.reserve(best->sources.size());
  for (const ec::RecoverySource& src : best->sources) {
    const BlockId block{lost.stripe, src.shard};
    const NodeId holder = layout_.node_of(block);
    assert(holder != net::kInvalidNode);
    sources.push_back(
        DegradedSource{block, holder, src.fraction, src.substripes});
  }
  return sources;
}

double DegradedReadPlanner::expected_cross_rack_blocks() const {
  const double r = topo_.num_racks();
  return (r - 1.0) / r * expected_blocks_;
}

}  // namespace dfs::storage
