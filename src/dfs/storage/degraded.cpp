#include "dfs/storage/degraded.h"

#include <algorithm>

namespace dfs::storage {

DegradedReadPlanner::DegradedReadPlanner(const StorageLayout& layout,
                                         const net::Topology& topo,
                                         const ec::ErasureCode& code,
                                         SourceSelection selection)
    : layout_(layout), topo_(topo), code_(code), selection_(selection) {}

std::optional<std::vector<DegradedSource>> DegradedReadPlanner::plan(
    BlockId lost, NodeId reader, const FailureScenario& failure,
    util::Rng& rng) const {
  // Candidate survivors of the same stripe, in preference order.
  std::vector<int> available;
  available.reserve(static_cast<std::size_t>(layout_.n()));
  for (int b = 0; b < layout_.n(); ++b) {
    if (b == lost.index) continue;
    const NodeId holder = layout_.node_of(BlockId{lost.stripe, b});
    if (!failure.is_failed(holder)) available.push_back(b);
  }
  rng.shuffle(available);
  if (selection_ == SourceSelection::kPreferSameRack) {
    // Closest first: blocks already on the reader (free), then the reader's
    // rack, then the rest — so stripe-affinity task placement pays off.
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return topo_.same_rack(layout_.node_of(BlockId{lost.stripe, b}),
                             reader);
    });
    std::stable_partition(available.begin(), available.end(), [&](int b) {
      return layout_.node_of(BlockId{lost.stripe, b}) == reader;
    });
  }
  const auto chosen = code_.plan_read(available, lost.index);
  if (!chosen) return std::nullopt;
  std::vector<DegradedSource> sources;
  sources.reserve(chosen->size());
  for (int b : *chosen) {
    const BlockId block{lost.stripe, b};
    sources.push_back(DegradedSource{block, layout_.node_of(block)});
  }
  return sources;
}

double DegradedReadPlanner::expected_cross_rack_blocks() const {
  const double r = topo_.num_racks();
  return (r - 1.0) / r *
         static_cast<double>(code_.single_failure_read_cost());
}

}  // namespace dfs::storage
