#pragma once

#include <vector>

#include "dfs/net/topology.h"
#include "dfs/util/rng.h"

namespace dfs::storage {

/// The set of failed nodes while a MapReduce job runs. The paper's focus is
/// a single failed node (the common case, §II-B); double-node and full-rack
/// failures are evaluated in Fig. 7(d).
///
/// Snapshot runs build one immutable instance up front. The dfs::cluster
/// lifecycle driver instead treats a shared instance as the cluster's
/// time-varying health view: `fail()` / `restore()` mutate it mid-run, and
/// everything holding a reference (master, degraded-read planners, repair
/// processes) sees the current state on its next query.
class FailureScenario {
 public:
  FailureScenario() = default;
  explicit FailureScenario(std::vector<net::NodeId> failed);

  bool is_failed(net::NodeId node) const;
  bool any() const { return !failed_.empty(); }
  const std::vector<net::NodeId>& failed_nodes() const { return failed_; }

  /// Add `node` to the failed set. Idempotent.
  void fail(net::NodeId node);
  /// Remove `node` from the failed set (repair completed). Idempotent.
  void restore(net::NodeId node);

 private:
  std::vector<net::NodeId> failed_;  // sorted
};

/// The empty scenario, as a long-lived reference: callers routinely hand it
/// straight to constructors that retain a `const FailureScenario&`, which
/// would dangle if this returned a temporary by value.
const FailureScenario& no_failure();
FailureScenario single_node_failure(const net::Topology& topo,
                                    util::Rng& rng);
FailureScenario double_node_failure(const net::Topology& topo,
                                    util::Rng& rng);
/// All nodes of one random rack fail (e.g. ToR switch loss).
FailureScenario rack_failure(const net::Topology& topo, util::Rng& rng);
/// Fail one random node that is NOT in `exclude` (Fig. 8(d) fails one of the
/// regular nodes, never a "bad" node).
FailureScenario single_node_failure_excluding(
    const net::Topology& topo, util::Rng& rng,
    const std::vector<net::NodeId>& exclude);

}  // namespace dfs::storage
