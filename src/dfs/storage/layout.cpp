#include "dfs/storage/layout.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace dfs::storage {

StorageLayout::StorageLayout(int n, int k,
                             std::vector<std::vector<NodeId>> placement)
    : n_(n), k_(k), placement_(std::move(placement)) {
  if (k <= 0 || n <= k) throw std::invalid_argument("layout requires 0<k<n");
  for (const auto& stripe : placement_) {
    if (static_cast<int>(stripe.size()) != n) {
      throw std::invalid_argument("each stripe must place n blocks");
    }
  }
}

std::vector<BlockId> StorageLayout::blocks_on_node(NodeId node) const {
  std::vector<BlockId> out;
  for (int s = 0; s < num_stripes(); ++s) {
    for (int b = 0; b < n_; ++b) {
      if (placement_[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)] ==
          node) {
        out.push_back(BlockId{s, b});
      }
    }
  }
  return out;
}

std::vector<int> StorageLayout::node_load(int num_nodes) const {
  std::vector<int> load(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& stripe : placement_) {
    for (NodeId node : stripe) {
      assert(node >= 0 && node < num_nodes);
      ++load[static_cast<std::size_t>(node)];
    }
  }
  return load;
}

bool StorageLayout::satisfies_placement_rule(const net::Topology& topo,
                                             int max_per_rack) const {
  for (const auto& stripe : placement_) {
    std::unordered_set<NodeId> nodes;
    std::vector<int> per_rack(static_cast<std::size_t>(topo.num_racks()), 0);
    for (NodeId node : stripe) {
      if (!nodes.insert(node).second) return false;  // two blocks, one node
      if (++per_rack[static_cast<std::size_t>(topo.rack_of(node))] >
          max_per_rack) {
        return false;
      }
    }
  }
  return true;
}

StorageLayout round_robin_layout(int num_native_blocks, int n, int k,
                                 int num_nodes) {
  if (num_native_blocks % k != 0) {
    throw std::invalid_argument("native block count must be a multiple of k");
  }
  if (n > num_nodes) {
    throw std::invalid_argument("round-robin needs at least n nodes");
  }
  const int stripes = num_native_blocks / k;
  std::vector<std::vector<NodeId>> placement(
      static_cast<std::size_t>(stripes));
  for (int s = 0; s < stripes; ++s) {
    auto& row = placement[static_cast<std::size_t>(s)];
    row.resize(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      // Rotate each stripe's starting node so both natives and parities
      // spread evenly (e.g. the §VI testbed: 240 natives under (12,10) on
      // 12 slaves gives each slave exactly 20 natives + 4 parities).
      row[static_cast<std::size_t>(b)] = (s + b) % num_nodes;
    }
  }
  return StorageLayout(n, k, std::move(placement));
}

StorageLayout random_rack_constrained_layout(int num_native_blocks, int n,
                                             int k, const net::Topology& topo,
                                             util::Rng& rng) {
  if (num_native_blocks % k != 0) {
    throw std::invalid_argument("native block count must be a multiple of k");
  }
  const int max_per_rack = n - k;
  int feasible = 0;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    feasible += std::min(static_cast<int>(topo.nodes_in_rack(r).size()),
                         max_per_rack);
  }
  if (feasible < n) {
    throw std::invalid_argument(
        "topology cannot satisfy the rack placement rule for this (n,k)");
  }

  const int stripes = num_native_blocks / k;
  const int num_nodes = topo.num_nodes();
  std::vector<int> load(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::vector<NodeId>> placement(
      static_cast<std::size_t>(stripes));

  for (int s = 0; s < stripes; ++s) {
    auto& row = placement[static_cast<std::size_t>(s)];
    row.reserve(static_cast<std::size_t>(n));
    std::vector<bool> used(static_cast<std::size_t>(num_nodes), false);
    std::vector<int> rack_count(static_cast<std::size_t>(topo.num_racks()), 0);
    int attempts = 0;
    for (int b = 0; b < n; ++b) {
      // Greedy parity declustering: among nodes that keep the stripe legal,
      // prefer the least-loaded, breaking ties randomly. After repeated dead
      // ends, fall back to any legal node to guarantee termination (the rule
      // was verified feasible above).
      const bool ignore_load = attempts >= 8;
      std::vector<NodeId> candidates;
      int best_load = -1;
      for (NodeId node = 0; node < num_nodes; ++node) {
        if (used[static_cast<std::size_t>(node)]) continue;
        if (rack_count[static_cast<std::size_t>(topo.rack_of(node))] >=
            max_per_rack) {
          continue;
        }
        const int l = ignore_load ? 0 : load[static_cast<std::size_t>(node)];
        if (best_load < 0 || l < best_load) {
          best_load = l;
          candidates.assign(1, node);
        } else if (l == best_load) {
          candidates.push_back(node);
        }
      }
      if (candidates.empty()) {
        // Painted into a corner (possible with tiny racks): undo this
        // stripe's choices and retry it.
        for (NodeId node : row) --load[static_cast<std::size_t>(node)];
        row.clear();
        std::fill(used.begin(), used.end(), false);
        std::fill(rack_count.begin(), rack_count.end(), 0);
        ++attempts;
        if (attempts >= 32) {
          // Deterministic fallback that cannot dead-end: fill rack quotas
          // (capped at max_per_rack) with that rack's least-loaded nodes.
          for (RackId r = 0; r < topo.num_racks() &&
                             static_cast<int>(row.size()) < n;
               ++r) {
            std::vector<NodeId> members = topo.nodes_in_rack(r);
            std::sort(members.begin(), members.end(),
                      [&](NodeId a, NodeId c) {
                        return load[static_cast<std::size_t>(a)] <
                               load[static_cast<std::size_t>(c)];
                      });
            const int take =
                std::min({max_per_rack, static_cast<int>(members.size()),
                          n - static_cast<int>(row.size())});
            for (int i = 0; i < take; ++i) {
              row.push_back(members[static_cast<std::size_t>(i)]);
              ++load[static_cast<std::size_t>(members[static_cast<std::size_t>(i)])];
            }
          }
          break;
        }
        b = -1;
        continue;
      }
      const NodeId chosen = candidates[rng.index(candidates.size())];
      row.push_back(chosen);
      used[static_cast<std::size_t>(chosen)] = true;
      ++rack_count[static_cast<std::size_t>(topo.rack_of(chosen))];
      ++load[static_cast<std::size_t>(chosen)];
    }
  }
  return StorageLayout(n, k, std::move(placement));
}

StorageLayout zipf_rack_skewed_layout(int num_native_blocks, int n, int k,
                                      const net::Topology& topo,
                                      util::Rng& rng, double exponent) {
  if (exponent < 0.0) {
    throw std::invalid_argument("skew exponent must be >= 0");
  }
  if (num_native_blocks % k != 0) {
    throw std::invalid_argument("native block count must be a multiple of k");
  }
  const int max_per_rack = n - k;
  int feasible = 0;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    feasible += std::min(static_cast<int>(topo.nodes_in_rack(r).size()),
                         max_per_rack);
  }
  if (feasible < n) {
    throw std::invalid_argument(
        "topology cannot satisfy the rack placement rule for this (n,k)");
  }

  const int stripes = num_native_blocks / k;
  const int num_nodes = topo.num_nodes();
  const auto num_racks = static_cast<std::size_t>(topo.num_racks());
  std::vector<int> load(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::vector<NodeId>> placement(
      static_cast<std::size_t>(stripes));

  // Picks the least-loaded unused node of `rack` (random tie-break), or -1
  // if the rack has no unused node.
  const auto pick_in_rack = [&](RackId rack, const std::vector<bool>& used) {
    NodeId best = -1;
    int best_load = 0;
    int ties = 0;
    for (const NodeId node : topo.nodes_in_rack(rack)) {
      if (used[static_cast<std::size_t>(node)]) continue;
      const int l = load[static_cast<std::size_t>(node)];
      if (best < 0 || l < best_load) {
        best = node;
        best_load = l;
        ties = 1;
      } else if (l == best_load) {
        // Reservoir-style single-slot tie-break keeps one uniform draw per
        // tie instead of materializing a candidate list.
        ++ties;
        if (rng.index(static_cast<std::size_t>(ties)) == 0) best = node;
      }
    }
    return best;
  };

  for (int s = 0; s < stripes; ++s) {
    auto& row = placement[static_cast<std::size_t>(s)];
    row.reserve(static_cast<std::size_t>(n));
    std::vector<bool> used(static_cast<std::size_t>(num_nodes), false);
    std::vector<int> rack_count(num_racks, 0);
    const auto rack_open = [&](RackId r) {
      if (rack_count[static_cast<std::size_t>(r)] >= max_per_rack) {
        return false;
      }
      for (const NodeId node : topo.nodes_in_rack(r)) {
        if (!used[static_cast<std::size_t>(node)]) return true;
      }
      return false;
    };
    for (int b = 0; b < n; ++b) {
      // Zipf rank 1 is rack 0: low-numbered racks are hot. A full rack
      // falls back to the hottest rack with remaining capacity, so the
      // stripe stays legal (feasibility was verified above, and the rack
      // quotas form a partition matroid: greedy placement cannot dead-end).
      auto rack = static_cast<RackId>(rng.zipf(num_racks, exponent) - 1);
      if (!rack_open(rack)) {
        rack = -1;
        for (RackId r = 0; r < topo.num_racks(); ++r) {
          if (rack_open(r)) {
            rack = r;
            break;
          }
        }
      }
      assert(rack >= 0);
      const NodeId chosen = pick_in_rack(rack, used);
      assert(chosen >= 0);
      row.push_back(chosen);
      used[static_cast<std::size_t>(chosen)] = true;
      ++rack_count[static_cast<std::size_t>(rack)];
      ++load[static_cast<std::size_t>(chosen)];
    }
  }
  return StorageLayout(n, k, std::move(placement));
}

StorageLayout replicated_layout(int num_blocks, int replicas,
                                const net::Topology& topo, util::Rng& rng) {
  if (replicas < 2) throw std::invalid_argument("need >= 2 replicas");
  if (topo.num_racks() < 2) {
    throw std::invalid_argument("replication placement needs >= 2 racks");
  }
  bool feasible = false;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    if (static_cast<int>(topo.nodes_in_rack(r).size()) >= replicas - 1) {
      feasible = true;
      break;
    }
  }
  if (!feasible) {
    throw std::invalid_argument("no rack can host the remote replicas");
  }
  std::vector<std::vector<NodeId>> placement(
      static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    auto& row = placement[static_cast<std::size_t>(b)];
    const NodeId first = rng.uniform_int(0, topo.num_nodes() - 1);
    row.push_back(first);
    // Pick a different rack large enough for the remaining copies.
    RackId remote;
    do {
      remote = rng.uniform_int(0, topo.num_racks() - 1);
    } while (remote == topo.rack_of(first) ||
             static_cast<int>(topo.nodes_in_rack(remote).size()) <
                 replicas - 1);
    const auto& members = topo.nodes_in_rack(remote);
    const auto picks = rng.sample_indices(
        members.size(), static_cast<std::size_t>(replicas - 1));
    for (const auto p : picks) row.push_back(members[p]);
  }
  return StorageLayout(replicas, 1, std::move(placement));
}

}  // namespace dfs::storage
