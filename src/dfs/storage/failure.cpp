#include "dfs/storage/failure.h"

#include <algorithm>
#include <stdexcept>

namespace dfs::storage {

FailureScenario::FailureScenario(std::vector<net::NodeId> failed)
    : failed_(std::move(failed)) {
  std::sort(failed_.begin(), failed_.end());
  failed_.erase(std::unique(failed_.begin(), failed_.end()), failed_.end());
}

bool FailureScenario::is_failed(net::NodeId node) const {
  return std::binary_search(failed_.begin(), failed_.end(), node);
}

void FailureScenario::fail(net::NodeId node) {
  const auto it = std::lower_bound(failed_.begin(), failed_.end(), node);
  if (it == failed_.end() || *it != node) failed_.insert(it, node);
}

void FailureScenario::restore(net::NodeId node) {
  const auto it = std::lower_bound(failed_.begin(), failed_.end(), node);
  if (it != failed_.end() && *it == node) failed_.erase(it);
}

const FailureScenario& no_failure() {
  static const FailureScenario kNone{};
  return kNone;
}

FailureScenario single_node_failure(const net::Topology& topo,
                                    util::Rng& rng) {
  return FailureScenario({rng.uniform_int(0, topo.num_nodes() - 1)});
}

FailureScenario double_node_failure(const net::Topology& topo,
                                    util::Rng& rng) {
  if (topo.num_nodes() < 2) throw std::invalid_argument("need >= 2 nodes");
  const auto picks = rng.sample_indices(
      static_cast<std::size_t>(topo.num_nodes()), 2);
  return FailureScenario(
      {static_cast<net::NodeId>(picks[0]), static_cast<net::NodeId>(picks[1])});
}

FailureScenario rack_failure(const net::Topology& topo, util::Rng& rng) {
  const net::RackId r = rng.uniform_int(0, topo.num_racks() - 1);
  return FailureScenario(topo.nodes_in_rack(r));
}

FailureScenario single_node_failure_excluding(
    const net::Topology& topo, util::Rng& rng,
    const std::vector<net::NodeId>& exclude) {
  std::vector<net::NodeId> eligible;
  for (net::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (std::find(exclude.begin(), exclude.end(), n) == exclude.end()) {
      eligible.push_back(n);
    }
  }
  if (eligible.empty()) throw std::invalid_argument("no eligible node");
  return FailureScenario({eligible[rng.index(eligible.size())]});
}

}  // namespace dfs::storage
