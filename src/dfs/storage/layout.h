#pragma once

#include <compare>
#include <vector>

#include "dfs/net/topology.h"
#include "dfs/util/rng.h"

namespace dfs::storage {

using net::NodeId;
using net::RackId;

/// Identifies one block of one stripe. Indices [0, k) are native blocks,
/// [k, n) are parity blocks (matching dfs::ec shard indices).
struct BlockId {
  int stripe = -1;
  int index = -1;
  auto operator<=>(const BlockId&) const = default;
};

/// Placement of an erasure-coded file: `num_stripes` stripes of n blocks
/// (k native + n-k parity) mapped onto cluster nodes.
///
/// HDFS-RAID divides the file's native-block stream into groups of k and
/// encodes each group into one stripe (paper §II-B); native block i of the
/// file is stripe i/k, index i%k.
class StorageLayout {
 public:
  /// `placement[s][b]` = node storing block b of stripe s.
  StorageLayout(int n, int k, std::vector<std::vector<NodeId>> placement);

  int n() const { return n_; }
  int k() const { return k_; }
  int num_stripes() const { return static_cast<int>(placement_.size()); }
  int num_native_blocks() const { return num_stripes() * k_; }

  NodeId node_of(BlockId b) const {
    return placement_[static_cast<std::size_t>(b.stripe)]
                     [static_cast<std::size_t>(b.index)];
  }

  /// Native block i of the file -> (stripe, index).
  BlockId native_block(int i) const { return BlockId{i / k_, i % k_}; }

  /// Blocks (native and parity) stored on a node.
  std::vector<BlockId> blocks_on_node(NodeId node) const;

  /// Number of blocks per node (load balance check).
  std::vector<int> node_load(int num_nodes) const;

  /// True if no stripe has more than `max_per_rack` blocks in one rack and
  /// no node holds two blocks of the same stripe (the §III placement rule
  /// uses max_per_rack = n - k).
  bool satisfies_placement_rule(const net::Topology& topo,
                                int max_per_rack) const;

 private:
  int n_;
  int k_;
  std::vector<std::vector<NodeId>> placement_;
};

/// Round-robin placement (§VI testbed): block b of stripe s goes to node
/// (s * n + b) mod num_nodes. Balanced, but does not enforce the rack rule.
StorageLayout round_robin_layout(int num_native_blocks, int n, int k,
                                 int num_nodes);

/// Random placement under the §III rule: per stripe, n distinct nodes with
/// at most n-k blocks of the stripe per rack, choosing least-loaded nodes
/// first (parity declustering: stripes spread evenly over all nodes).
/// Throws std::invalid_argument if the topology cannot satisfy the rule.
StorageLayout random_rack_constrained_layout(int num_native_blocks, int n,
                                             int k, const net::Topology& topo,
                                             util::Rng& rng);

/// Zipf-skewed placement under the §III rack rule: each block is drawn to a
/// rack with probability proportional to 1/rank^exponent (rack 0 hottest),
/// then to that rack's least-loaded unused node, so block popularity — and
/// with it the degraded-read traffic after a failure — concentrates on the
/// hot racks instead of spreading parity-declustered. Per-stripe legality
/// (n distinct nodes, at most n-k blocks per rack) still holds; a drawn
/// rack that is full falls back to the hottest rack with capacity.
/// exponent = 0 degenerates to a uniform rack draw (still a different draw
/// sequence than random_rack_constrained_layout — callers wanting the
/// unskewed baseline must call that directly). Throws std::invalid_argument
/// on a negative exponent or an infeasible (n, k, topology) combination.
StorageLayout zipf_rack_skewed_layout(int num_native_blocks, int n, int k,
                                      const net::Topology& topo,
                                      util::Rng& rng, double exponent);

/// HDFS's default replication placement (§III): each block is a k=1,
/// n=`replicas` stripe; the first copy goes to a random node and the
/// remaining copies to distinct random nodes of one *other* random rack —
/// tolerating any double-node and any single-rack failure for replicas=3.
/// Requires >= 2 racks and a remote rack with >= replicas-1 nodes.
StorageLayout replicated_layout(int num_blocks, int replicas,
                                const net::Topology& topo, util::Rng& rng);

}  // namespace dfs::storage
