#pragma once

#include <optional>
#include <vector>

#include "dfs/ec/erasure_code.h"
#include "dfs/net/topology.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/rng.h"

namespace dfs::storage {

/// One source fetch of a degraded read: which surviving block to download
/// and from which node.
struct DegradedSource {
  BlockId block;
  NodeId node = -1;
};

/// How a degraded read orders candidate source blocks before asking the
/// erasure code which subset to fetch.
enum class SourceSelection {
  kRandom,          ///< random k of the survivors (the paper's §IV-B model)
  kPreferSameRack,  ///< survivors in the reader's rack first (ablation)
};

/// Plans degraded reads: given a lost block, picks the surviving blocks (and
/// the nodes holding them) that the degraded task must download.
///
/// For an MDS code this is "any k survivors" exactly as the paper models;
/// for an LRC it defers to the code's locality-aware plan (footnote 1).
class DegradedReadPlanner {
 public:
  DegradedReadPlanner(const StorageLayout& layout, const net::Topology& topo,
                      const ec::ErasureCode& code,
                      SourceSelection selection = SourceSelection::kRandom);

  /// Sources for rebuilding `lost` at node `reader`. nullopt when the stripe
  /// has lost more blocks than the code tolerates.
  std::optional<std::vector<DegradedSource>> plan(
      BlockId lost, NodeId reader, const FailureScenario& failure,
      util::Rng& rng) const;

  /// Expected cross-rack bytes one degraded read downloads, under random
  /// source selection — the paper's (R-1)/R * k * S estimate divided out of
  /// S. Used for the rack-awareness threshold.
  double expected_cross_rack_blocks() const;

 private:
  const StorageLayout& layout_;
  const net::Topology& topo_;
  const ec::ErasureCode& code_;
  SourceSelection selection_;
};

}  // namespace dfs::storage
