#pragma once

#include <optional>
#include <vector>

#include "dfs/ec/erasure_code.h"
#include "dfs/net/topology.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/rng.h"

namespace dfs::storage {

/// One source fetch of a degraded read: which surviving block to download,
/// from which node, and how much of it. Sub-shard codes (Hitchhiker-XOR)
/// fetch only some substripes of most sources; plain codes always fetch
/// whole blocks (substripes == 0x1, fraction == 1.0).
struct DegradedSource {
  BlockId block;
  NodeId node = net::kInvalidNode;
  double fraction = 1.0;     ///< of the block's bytes actually downloaded
  unsigned substripes = 0x1; ///< ec::RecoverySource substripe bitmask
};

/// How a degraded read orders candidate source blocks before asking the
/// erasure code which subset to fetch.
enum class SourceSelection {
  kRandom,          ///< random k of the survivors (the paper's §IV-B model)
  kPreferSameRack,  ///< survivors in the reader's rack first (ablation)
};

/// Scores the candidate RecoveryOptions of a degraded read. An option's
/// cost is the sum over its sources of (fraction of the block fetched) x
/// (the weight of the link class it crosses); the planner picks the
/// cheapest option, breaking ties toward the code's preferred (first)
/// option. The neutral defaults weigh every byte equally, which reproduces
/// the code's own preference order exactly — rs/crs/lrc plans are then
/// byte-identical to the historical fixed-count planner.
struct RecoveryCostModel {
  double in_rack_weight = 1.0;     ///< source in the reader's rack
  double cross_rack_weight = 1.0;  ///< source behind the core switch
  /// When false, options that fetch partial blocks are discarded and only
  /// whole-block options compete — the rs-vs-hh byte-identity harness and
  /// the ablation's "planner off" arm.
  bool allow_subshard = true;
};

/// One hedged degraded read, planned: the primary (cheapest) option's
/// sources, up to r extra hedge sources drawn first from the alternative
/// RecoveryOptions in cost order and then from the remaining whole
/// survivors, and the shard-level candidate options a fetch supervisor
/// needs to test quorum as fetches land.
struct HedgedPlan {
  BlockId lost{};
  std::vector<DegradedSource> primary;
  std::vector<DegradedSource> extras;
  /// The code's candidate options over the surviving shards (the quorum
  /// test re-checks coverage against these as fetches complete).
  ec::RecoveryPlan options;
};

/// True when the fetches completed so far suffice to reconstruct the lost
/// shard: either some candidate option is fully covered by the completed
/// substripe masks, or the fully-completed shards alone admit a recovery
/// plan (the "any k of the completed" test for MDS codes, whose plan
/// enumerates only one candidate subset up front). `completed` maps shard
/// index to the completed-substripe bitmask (0 = nothing fetched).
bool quorum_reached(const ec::ErasureCode& code,
                    const ec::RecoveryPlan& options, int lost_shard,
                    const std::vector<unsigned>& completed);

/// Plans degraded reads: given a lost block, picks the surviving blocks (and
/// the nodes holding them) that the degraded task must download.
///
/// The erasure code enumerates candidate reconstruction sets
/// (ec::RecoveryPlan); this planner prices each candidate with the cost
/// model against the cluster topology and emits the cheapest. For an MDS
/// code that is "any k survivors" exactly as the paper models; for an LRC
/// the local-group option wins (footnote 1); for Hitchhiker-XOR the
/// half-shard option wins whenever the stripe is healthy enough to allow it.
class DegradedReadPlanner {
 public:
  DegradedReadPlanner(const StorageLayout& layout, const net::Topology& topo,
                      const ec::ErasureCode& code,
                      SourceSelection selection = SourceSelection::kRandom,
                      RecoveryCostModel cost_model = RecoveryCostModel{});

  /// Sources for rebuilding `lost` at node `reader`. nullopt when the stripe
  /// has lost more blocks than the code tolerates.
  std::optional<std::vector<DegradedSource>> plan(
      BlockId lost, NodeId reader, const FailureScenario& failure,
      util::Rng& rng) const;

  /// Hedged variant: the same cheapest-option primary as plan() (identical
  /// RNG draws), plus up to `extra_sources` hedge fetches and the candidate
  /// option set for quorum testing. Shards flagged in `exclude` (sized n;
  /// may be empty for none) are treated as unavailable — the fetch
  /// supervisor's fallback replans exclude sources that timed out or died.
  /// nullopt when the non-excluded survivors cannot reconstruct the block.
  std::optional<HedgedPlan> plan_hedged(BlockId lost, NodeId reader,
                                        const FailureScenario& failure,
                                        util::Rng& rng, int extra_sources,
                                        const std::vector<char>& exclude = {})
      const;

  const ec::ErasureCode& code() const { return code_; }
  const StorageLayout& layout() const { return layout_; }

  /// Expected blocks one single-failure degraded read downloads under this
  /// planner's cost model (mean over the code's native shards, every other
  /// shard available): k for MDS codes, k/l for an LRC, (k + |G|)/2 blocks
  /// for Hitchhiker-XOR. Cached at construction.
  double expected_single_failure_blocks() const { return expected_blocks_; }

  /// Expected cross-rack bytes one degraded read downloads, under random
  /// source selection — the paper's (R-1)/R * k * S estimate divided out of
  /// S, with k generalized to the cost model's expected fetch volume. Used
  /// for the rack-awareness threshold.
  double expected_cross_rack_blocks() const;

 private:
  /// Price one candidate: bytes fetched weighted by the rack boundary each
  /// source crosses relative to `reader`.
  double option_cost(const ec::RecoveryOption& option, int stripe,
                     NodeId reader) const;

  const StorageLayout& layout_;
  const net::Topology& topo_;
  const ec::ErasureCode& code_;
  SourceSelection selection_;
  RecoveryCostModel cost_model_;
  double expected_blocks_;
};

}  // namespace dfs::storage
