#pragma once

#include <optional>
#include <string>

#include "dfs/util/args.h"

namespace dfs::runner {

/// Strictly parse a `--jobs` value: decimal digits only, value >= 1.
/// Returns nullopt for 0, negative, empty, overflowing, or non-numeric
/// input — the same reject-don't-coerce rule the tools apply to every other
/// numeric flag (atoi would happily read "2x" as 2 and "abc" as 0).
std::optional<int> parse_jobs(const std::string& text);

/// Resolve `--jobs` from parsed Args.
///   absent          -> default_jobs() (every hardware thread)
///   valid value     -> that value
///   anything else   -> nullopt; the caller should reject the invocation
///                      with "--jobs must be a positive integer".
std::optional<int> jobs_from_args(const util::Args& args);

/// Shared usage-error text for a bad --jobs value.
inline const char* jobs_error() { return "--jobs must be a positive integer"; }

}  // namespace dfs::runner
