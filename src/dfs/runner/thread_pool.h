#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfs::runner {

/// Worker count to use when the user didn't say: every hardware thread.
/// Never returns less than 1 (hardware_concurrency() may report 0).
int default_jobs();

/// Fixed-size worker pool for fanning independent simulation cells across
/// cores. Deliberately minimal: submit closures, then wait_idle() for the
/// queue to drain. Determinism is the caller's job (see sweep.h, which
/// assigns results to slots by cell index so output order never depends on
/// thread interleaving).
///
/// A pool constructed with `threads <= 1` spawns no workers at all;
/// sweep() then runs cells inline on the caller, making `--jobs 1` exactly
/// today's serial behavior rather than "parallelism with one worker".
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (0 when the pool runs everything inline).
  int threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Must not be called on an inline (threads()==0) pool.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  int busy_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dfs::runner
