#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

#include "dfs/runner/thread_pool.h"

namespace dfs::runner {

/// Run `fn(cell)` for every cell index in [0, cells) and return the results
/// indexed by cell.
///
/// This is the deterministic fan-out primitive behind every `--jobs N`
/// sweep: each cell owns its whole simulation stack (Simulator, Network,
/// Master, Rng, scheduler), so cells share no mutable state, and results
/// land in a pre-sized vector slot keyed by cell index — the output a
/// caller assembles from them is byte-identical whatever the thread
/// interleaving was. On an inline pool (threads() == 0, i.e. --jobs 1) the
/// loop runs on the caller's thread: exactly the serial program, no atomics,
/// no pool.
///
/// `fn` must be invocable with a std::size_t and its result type
/// default-constructible and movable. The first exception thrown by any
/// cell is rethrown on the caller after the sweep stops launching new
/// cells; cells already running complete normally.
template <typename Fn>
auto sweep(ThreadPool& pool, std::size_t cells, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep() results are collected into a pre-sized vector");
  std::vector<Result> results(cells);
  if (pool.threads() == 0 || cells <= 1) {
    for (std::size_t i = 0; i < cells; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  const int drainers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(pool.threads()), cells));
  for (int d = 0; d < drainers; ++d) {
    pool.submit([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace dfs::runner
