#include "dfs/runner/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dfs::runner {

int default_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 1) return;  // inline pool: sweep() runs cells on the caller
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  assert(!workers_.empty() && "submit() on an inline pool");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_, queue drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    lock.unlock();
    task();
    lock.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
  }
}

}  // namespace dfs::runner
