#include "dfs/runner/jobs_flag.h"

#include <charconv>

#include "dfs/runner/thread_pool.h"

namespace dfs::runner {

std::optional<int> parse_jobs(const std::string& text) {
  if (text.empty()) return std::nullopt;
  int value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;  // junk/overflow
  if (value < 1) return std::nullopt;
  return value;
}

std::optional<int> jobs_from_args(const util::Args& args) {
  const auto raw = args.get("jobs");
  if (!raw) {
    // "--jobs" with no value is a user error, not a request for the default.
    if (args.has("jobs")) return std::nullopt;
    return default_jobs();
  }
  return parse_jobs(*raw);
}

}  // namespace dfs::runner
