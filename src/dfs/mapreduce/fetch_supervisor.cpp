#include "dfs/mapreduce/fetch_supervisor.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dfs::mapreduce {

namespace {

/// A read whose exclusions (from transient exhaustion) make it unplannable
/// gets this many exclusion resets before it is declared unrecoverable.
constexpr int kMaxReadResets = 8;

int popcount_mask(unsigned mask) {
  int bits = 0;
  for (; mask != 0; mask &= mask - 1) ++bits;
  return bits;
}

}  // namespace

FetchSupervisor::FetchSupervisor(sim::Simulator& sim, net::Network& net,
                                 const storage::FailureScenario& failure,
                                 const ClusterConfig& cfg, util::Rng rng)
    : sim_(sim), net_(net), failure_(failure), cfg_(cfg), rng_(rng) {}

ReadId FetchSupervisor::start_read(const storage::DegradedReadPlanner& planner,
                                   storage::HedgedPlan plan, NodeId reader,
                                   std::function<void(ReadOutcome)> done) {
  const ReadId id = next_read_id_++;
  Read& read = reads_[id];
  read.planner = &planner;
  read.lost = plan.lost;
  read.reader = reader;
  read.options = std::move(plan.options);
  read.completed.assign(static_cast<std::size_t>(planner.layout().n()), 0u);
  read.exclude.assign(static_cast<std::size_t>(planner.layout().n()), 0);
  read.done = std::move(done);
  ++stats_.reads_started;
  for (const storage::DegradedSource& src : plan.primary) {
    admit_fetch(id, read, src, /*hedge=*/false);
  }
  for (const storage::DegradedSource& src : plan.extras) {
    admit_fetch(id, read, src, /*hedge=*/true);
  }
  return id;
}

void FetchSupervisor::cancel_read(ReadId id) {
  const auto it = reads_.find(id);
  if (it == reads_.end()) return;
  Read& read = it->second;
  for (Fetch& f : read.fetches) {
    if (f.done || f.exhausted) continue;
    quash_fetch(read, f, FetchOutcome::kAbandoned);
    f.exhausted = true;
  }
  ++stats_.reads_cancelled;
  reads_.erase(it);
}

void FetchSupervisor::on_node_failed(NodeId node) {
  // Two passes: collect the affected reads first (fallback_replan can erase
  // reads, and its completion callbacks can start or cancel others), then
  // re-find each by id. std::map keeps the order deterministic.
  std::vector<ReadId> affected;
  for (const auto& [id, read] : reads_) {
    for (const Fetch& f : read.fetches) {
      if (!f.done && !f.exhausted && f.src.node == node) {
        affected.push_back(id);
        break;
      }
    }
  }
  for (const ReadId id : affected) {
    const auto it = reads_.find(id);
    if (it == reads_.end()) continue;
    Read& read = it->second;
    bool hit = false;
    for (Fetch& f : read.fetches) {
      if (f.done || f.exhausted || f.src.node != node) continue;
      quash_fetch(read, f, FetchOutcome::kSourceDead);
      f.exhausted = true;
      read.exclude[static_cast<std::size_t>(f.shard)] = 1;
      hit = true;
    }
    if (hit) fallback_replan(id, read);
  }
}

void FetchSupervisor::admit_fetch(ReadId id, Read& read,
                                  const storage::DegradedSource& src,
                                  bool hedge) {
  const auto shard = static_cast<std::size_t>(src.block.index);
  // Substripes of this shard neither completed nor being fetched live.
  unsigned needed = src.substripes & ~read.completed[shard];
  for (const Fetch& f : read.fetches) {
    if (f.shard == src.block.index && !f.done && !f.exhausted) {
      needed &= ~f.src.substripes;
    }
  }
  if (needed == 0u) return;
  Fetch f;
  f.shard = src.block.index;
  f.src = src;
  f.src.substripes = needed;
  f.src.fraction = static_cast<double>(popcount_mask(needed)) /
                   read.planner->code().substripe_count();
  f.hedge = hedge;
  read.fetches.push_back(std::move(f));
  launch_fetch(id, read, read.fetches.size() - 1);
}

void FetchSupervisor::launch_fetch(ReadId id, Read& read, std::size_t idx) {
  Fetch& f = read.fetches[idx];
  ++f.attempts;
  f.start = sim_.now();
  f.gen = next_gen_++;
  if (f.attempts == 1) {
    ++stats_.fetches_launched;
    if (f.hedge) ++stats_.hedges_launched;
  } else {
    ++stats_.fetch_retries;
  }
  // A last-resort read runs plain fetches: no injection, no timeout, so it
  // always makes progress (only a source death can interrupt it).
  if (read.last_resort) {
    start_transfer(id, read, idx);
    return;
  }
  // Injection draws, in fixed order: service jitter, then the transient
  // failure coin, then (only when failing) the failure point within the
  // service window. Inactive knobs draw nothing.
  const double jitter = draw_service_delay(f.src.node);
  bool failing = false;
  if (cfg_.straggler.fail_prob > 0.0) {
    failing = rng_.uniform(0.0, 1.0) < cfg_.straggler.fail_prob;
  }
  if (cfg_.fetch.timeout > 0.0) {
    f.timeout = sim_.schedule_in(cfg_.fetch.timeout, [this, id, idx] {
      const auto it = reads_.find(id);
      if (it == reads_.end()) return;
      Fetch& g = it->second.fetches[idx];
      if (g.done || g.exhausted) return;
      g.timeout = sim::EventId{};
      on_fetch_failed(id, it->second, idx, FetchOutcome::kTimeout);
    });
  }
  if (failing) {
    const double at = jitter > 0.0 ? jitter * rng_.uniform(0.0, 1.0) : 0.0;
    f.pending = sim_.schedule_in(at, [this, id, idx] {
      const auto it = reads_.find(id);
      if (it == reads_.end()) return;
      Fetch& g = it->second.fetches[idx];
      if (g.done || g.exhausted) return;
      g.pending = sim::EventId{};
      on_fetch_failed(id, it->second, idx, FetchOutcome::kTransientFailure);
    });
    return;
  }
  if (jitter > 0.0) {
    f.pending = sim_.schedule_in(jitter, [this, id, idx] {
      const auto it = reads_.find(id);
      if (it == reads_.end()) return;
      Fetch& g = it->second.fetches[idx];
      if (g.done || g.exhausted) return;
      g.pending = sim::EventId{};
      start_transfer(id, it->second, idx);
    });
    return;
  }
  start_transfer(id, read, idx);
}

void FetchSupervisor::start_transfer(ReadId id, Read& read, std::size_t idx) {
  Fetch& f = read.fetches[idx];
  const util::Bytes bytes = cfg_.block_size * f.src.fraction;
  const std::uint64_t gen = f.gen;
  f.flow = net_.transfer(f.src.node, read.reader, bytes, [this, id, idx, gen] {
    on_fetch_completed(id, idx, gen);
  });
}

void FetchSupervisor::on_fetch_completed(ReadId id, std::size_t idx,
                                         std::uint64_t gen) {
  const auto it = reads_.find(id);
  if (it == reads_.end()) return;
  Read& read = it->second;
  Fetch& f = read.fetches[idx];
  // Stale: the attempt this flow belonged to was quashed or retried (an
  // uncontended flow cannot be cancelled; its callback is guarded here).
  if (f.done || f.gen != gen) return;
  f.done = true;
  f.flow = 0;
  if (f.timeout.valid()) {
    sim_.cancel(f.timeout);
    f.timeout = sim::EventId{};
  }
  record(read, f, FetchOutcome::kCompleted);
  read.completed[static_cast<std::size_t>(f.shard)] |= f.src.substripes;
  ++read.completed_count;
  read.arrived.push_back(f.src);
  try_finish(id, read);
}

bool FetchSupervisor::try_finish(ReadId id, Read& read) {
  if (read.completed_count == 0) return false;
  if (!storage::quorum_reached(read.planner->code(), read.options,
                               read.lost.index, read.completed)) {
    return false;
  }
  int live = 0;
  for (const Fetch& g : read.fetches) {
    if (!g.done && !g.exhausted) ++live;
  }
  // min_quorum delays completion past bare reconstructability, but never
  // past the last fetch able to arrive.
  if (read.completed_count < cfg_.hedge.min_quorum && live > 0) return false;
  finish_read(id, read);
  return true;
}

void FetchSupervisor::on_fetch_failed(ReadId id, Read& read, std::size_t idx,
                                      FetchOutcome why) {
  Fetch& f = read.fetches[idx];
  quash_fetch(read, f, why);
  if (why == FetchOutcome::kTimeout) ++stats_.fetch_timeouts;
  if (why == FetchOutcome::kTransientFailure) ++stats_.transient_failures;
  if (f.attempts <= cfg_.fetch.max_retries) {
    const util::Seconds backoff =
        cfg_.fetch.retry_backoff * std::ldexp(1.0, f.attempts - 1);
    if (backoff > 0.0) {
      f.pending = sim_.schedule_in(backoff, [this, id, idx] {
        const auto it = reads_.find(id);
        if (it == reads_.end()) return;
        Fetch& g = it->second.fetches[idx];
        if (g.done || g.exhausted) return;
        g.pending = sim::EventId{};
        launch_fetch(id, it->second, idx);
      });
    } else {
      launch_fetch(id, read, idx);
    }
    return;
  }
  f.exhausted = true;
  read.exclude[static_cast<std::size_t>(f.shard)] = 1;
  fallback_replan(id, read);
}

void FetchSupervisor::fallback_replan(ReadId id, Read& read) {
  ++stats_.fallback_replans;
  const int extras = cfg_.hedge.active() ? cfg_.hedge.extra_sources : 0;
  auto plan = read.planner->plan_hedged(read.lost, read.reader, failure_,
                                        rng_, extras, read.exclude);
  if (!plan && read.resets < kMaxReadResets &&
      std::any_of(read.exclude.begin(), read.exclude.end(),
                  [](char c) { return c != 0; })) {
    // Transient exhaustion can exclude sources the stripe still needs; give
    // them a fresh chance rather than declaring the block unrecoverable.
    // (Dead-node exclusions are redundant: plan_hedged skips failed holders
    // on its own.) Fresh fetch slots get a fresh retry budget; the reset cap
    // bounds the total work.
    ++read.resets;
    std::fill(read.exclude.begin(), read.exclude.end(), 0);
    plan = read.planner->plan_hedged(read.lost, read.reader, failure_, rng_,
                                     extras, read.exclude);
  }
  if (!plan) {
    fail_read(id, read);
    return;
  }
  read.options = std::move(plan->options);
  for (const storage::DegradedSource& src : plan->primary) {
    admit_fetch(id, read, src, /*hedge=*/false);
  }
  for (const storage::DegradedSource& src : plan->extras) {
    admit_fetch(id, read, src, /*hedge=*/true);
  }
  // Everything the fresh plan needs may already have arrived (the replan was
  // triggered by a hedge loser dying after quorum-relevant data landed).
  try_finish(id, read);
}

void FetchSupervisor::finish_read(ReadId id, Read& read) {
  int losers = 0;
  for (Fetch& f : read.fetches) {
    if (f.done || f.exhausted) continue;
    quash_fetch(read, f, FetchOutcome::kCancelledQuorum);
    f.exhausted = true;
    ++losers;
  }
  stats_.losers_cancelled += static_cast<std::uint64_t>(losers);
  ++stats_.reads_completed;
  ReadOutcome out;
  out.ok = true;
  out.sources = std::move(read.arrived);
  auto done = std::move(read.done);
  reads_.erase(id);
  if (done) done(std::move(out));
}

void FetchSupervisor::fail_read(ReadId id, Read& read) {
  if (!read.last_resort) {
    // Retry/reset budget spent, but exhaustion by timeouts or transient
    // failures is not data loss: as long as the surviving stripe can still
    // reconstruct the block, drop to plain unsupervised fetches (no
    // injection, no timeout — delivery bounded only by the network).
    auto plan = read.planner->plan_hedged(read.lost, read.reader, failure_,
                                          rng_, 0, {});
    if (plan) {
      ++stats_.last_resort_reads;
      read.last_resort = true;
      std::fill(read.exclude.begin(), read.exclude.end(), 0);
      read.options = std::move(plan->options);
      for (const storage::DegradedSource& src : plan->primary) {
        admit_fetch(id, read, src, /*hedge=*/false);
      }
      try_finish(id, read);
      return;
    }
  }
  for (Fetch& f : read.fetches) {
    if (f.done || f.exhausted) continue;
    quash_fetch(read, f, FetchOutcome::kAbandoned);
    f.exhausted = true;
  }
  ++stats_.reads_failed;
  auto done = std::move(read.done);
  reads_.erase(id);
  if (done) done(ReadOutcome{});
}

void FetchSupervisor::quash_fetch(Read& read, Fetch& f, FetchOutcome why) {
  if (f.pending.valid()) {
    sim_.cancel(f.pending);
    f.pending = sim::EventId{};
  }
  if (f.timeout.valid()) {
    sim_.cancel(f.timeout);
    f.timeout = sim::EventId{};
  }
  if (f.flow != 0) {
    net_.cancel(f.flow);
    f.flow = 0;
  }
  // Invalidate the attempt: an uncontended flow's callback may still be
  // queued for this timestamp, and it must not complete a quashed fetch.
  f.gen = 0;
  if (f.attempts > 0) record(read, f, why);
}

void FetchSupervisor::record(const Read& read, const Fetch& f,
                             FetchOutcome outcome) {
  FetchRecord r;
  r.start = f.start;
  r.end = sim_.now();
  r.src = f.src.node;
  r.dst = read.reader;
  r.fraction = f.src.fraction;
  r.hedge = f.hedge;
  r.attempt = f.attempts - 1;
  r.outcome = outcome;
  records_.push_back(r);
}

double FetchSupervisor::draw_service_delay(NodeId src) {
  const StragglerConfig& st = cfg_.straggler;
  if (st.service_mean <= 0.0) return 0.0;
  double d;
  if (st.pareto_alpha > 1.0) {
    // Pareto with mean preserved: xm = mean * (alpha - 1) / alpha.
    const double xm = st.service_mean * (st.pareto_alpha - 1.0) /
                      st.pareto_alpha;
    double u = rng_.uniform(0.0, 1.0);
    if (u < 1e-12) u = 1e-12;
    d = xm / std::pow(u, 1.0 / st.pareto_alpha);
  } else {
    d = rng_.exponential(st.service_mean);
  }
  if (st.is_straggler(src, net_.topology().num_nodes())) d *= st.slowdown;
  return d;
}

}  // namespace dfs::mapreduce
