#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/rng.h"

namespace dfs::mapreduce {

/// Background reconstruction of the blocks lost to a failure (what
/// HDFS-RAID's RaidNode does): while MapReduce keeps running, every lost
/// block — native and parity — is rebuilt on a surviving node by reading k
/// surviving blocks of its stripe. Repairs proceed `concurrency` at a time
/// and share the same flow-level network as the job's traffic, so this
/// models the paper's real-world follow-on question: does degraded-first
/// scheduling still help while recovery traffic is in flight?
class RepairProcess {
 public:
  struct Options {
    int concurrency = 1;           ///< simultaneous block repairs
    util::Seconds start_time = 0;  ///< when the repair daemon kicks in
    util::Bytes block_size = util::mebibytes(128);
    storage::SourceSelection selection = storage::SourceSelection::kRandom;
  };

  struct Stats {
    int blocks_repaired = 0;
    int blocks_unrecoverable = 0;
    int blocks_requeued = 0;  ///< repair target died mid-rebuild; retried
    int replans = 0;          ///< repair source died mid-read; re-planned
    util::Seconds finish_time = -1.0;  ///< when the last repair completed
  };

  RepairProcess(sim::Simulator& simulator, net::Network& network,
                const storage::StorageLayout& layout,
                const ec::ErasureCode& code,
                const storage::FailureScenario& failure, Options options,
                util::Rng rng);

  /// Queues every lost block and schedules the first repairs. Call before
  /// Simulator::run().
  void start();

  /// Queues exactly `blocks` instead of enumerating the failure's nodes —
  /// the cluster lifecycle driver repairs one failure event at a time while
  /// the shared FailureScenario may already list other, separately-repaired
  /// nodes. May be called mid-run; repairs begin at options.start_time (or
  /// immediately if that time has passed).
  void start(std::vector<storage::BlockId> blocks);

  const Stats& stats() const { return stats_; }
  bool done() const {
    return started_ && pending_.empty() && in_flight_ == 0;
  }
  /// Blocks queued or being rebuilt right now (the repair backlog).
  int backlog() const { return static_cast<int>(pending_.size()) + in_flight_; }

  /// Invoked when the last block has been rebuilt.
  std::function<void()> on_complete;

  /// Fault layer: `node` just failed. In-flight repairs rebuilding ONTO it
  /// are abandoned and their blocks requeued; repairs reading FROM it are
  /// re-planned from the surviving stripe blocks (or counted unrecoverable
  /// when no plan survives).
  void on_node_failed(net::NodeId node);

 private:
  /// One block rebuild in flight: enough to cancel and retry it when either
  /// endpoint dies. Keyed by a private id so a stale transfer callback of a
  /// superseded plan cannot touch the replanned attempt.
  struct InFlightRepair {
    storage::BlockId block{};
    net::NodeId target = net::kInvalidNode;
    /// The plan's sources, with per-source fetch fractions: sub-shard codes
    /// rebuild a whole block while reading only partial survivors.
    std::vector<storage::DegradedSource> sources;
    std::vector<net::FlowId> flows;
    int remaining = 0;
  };

  void launch_next();
  void repair_block(storage::BlockId block);
  void start_repair_transfers(int rid);

  sim::Simulator& sim_;
  net::Network& net_;
  const storage::StorageLayout& layout_;
  const storage::FailureScenario& failure_;
  storage::DegradedReadPlanner planner_;
  Options options_;
  util::Rng rng_;
  util::Bytes block_size_;

  std::deque<storage::BlockId> pending_;
  std::unordered_map<int, InFlightRepair> active_repairs_;
  int next_repair_id_ = 0;
  int in_flight_ = 0;
  bool started_ = false;
  Stats stats_;
};

}  // namespace dfs::mapreduce
