#include "dfs/mapreduce/repair.h"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace dfs::mapreduce {

RepairProcess::RepairProcess(sim::Simulator& simulator, net::Network& network,
                             const storage::StorageLayout& layout,
                             const ec::ErasureCode& code,
                             const storage::FailureScenario& failure,
                             Options options, util::Rng rng)
    : sim_(simulator),
      net_(network),
      layout_(layout),
      failure_(failure),
      planner_(layout, network.topology(), code, options.selection),
      options_(options),
      rng_(rng),
      block_size_(options.block_size) {
  if (options_.concurrency < 1) {
    throw std::invalid_argument("repair concurrency must be >= 1");
  }
}

void RepairProcess::start() {
  std::vector<storage::BlockId> blocks;
  for (const net::NodeId node : failure_.failed_nodes()) {
    for (const storage::BlockId block : layout_.blocks_on_node(node)) {
      blocks.push_back(block);
    }
  }
  start(std::move(blocks));
}

void RepairProcess::start(std::vector<storage::BlockId> blocks) {
  assert(!started_);
  started_ = true;
  pending_.insert(pending_.end(), blocks.begin(), blocks.end());
  if (pending_.empty()) {
    stats_.finish_time = sim_.now();
    if (on_complete) on_complete();
    return;
  }
  sim_.schedule_at(std::max(options_.start_time, sim_.now()), [this] {
    for (int i = 0; i < options_.concurrency; ++i) launch_next();
  });
}

void RepairProcess::launch_next() {
  if (pending_.empty()) {
    if (in_flight_ == 0 && stats_.finish_time < 0.0) {
      stats_.finish_time = sim_.now();
      if (on_complete) on_complete();
    }
    return;
  }
  const storage::BlockId block = pending_.front();
  pending_.pop_front();
  repair_block(block);
}

void RepairProcess::repair_block(storage::BlockId block) {
  // Rebuild on a random surviving node; read the plan's source blocks there
  // in parallel, decode (free in the timing model), and keep the result.
  net::NodeId target;
  do {
    target = rng_.uniform_int(0, net_.topology().num_nodes() - 1);
  } while (failure_.is_failed(target));

  const auto sources = planner_.plan(block, target, failure_, rng_);
  if (!sources) {
    ++stats_.blocks_unrecoverable;
    // Move on so one dead stripe cannot wedge the whole repair queue.
    sim_.schedule_in(0.0, [this] { launch_next(); });
    return;
  }
  ++in_flight_;
  auto remaining = std::make_shared<int>(static_cast<int>(sources->size()));
  for (const auto& src : *sources) {
    net_.transfer(src.node, target, block_size_, [this, remaining] {
      if (--*remaining > 0) return;
      ++stats_.blocks_repaired;
      --in_flight_;
      launch_next();
    });
  }
}

}  // namespace dfs::mapreduce
