#include "dfs/mapreduce/repair.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

namespace dfs::mapreduce {

RepairProcess::RepairProcess(sim::Simulator& simulator, net::Network& network,
                             const storage::StorageLayout& layout,
                             const ec::ErasureCode& code,
                             const storage::FailureScenario& failure,
                             Options options, util::Rng rng)
    : sim_(simulator),
      net_(network),
      layout_(layout),
      failure_(failure),
      planner_(layout, network.topology(), code, options.selection),
      options_(options),
      rng_(rng),
      block_size_(options.block_size) {
  if (options_.concurrency < 1) {
    throw std::invalid_argument("repair concurrency must be >= 1");
  }
}

void RepairProcess::start() {
  std::vector<storage::BlockId> blocks;
  for (const net::NodeId node : failure_.failed_nodes()) {
    for (const storage::BlockId block : layout_.blocks_on_node(node)) {
      blocks.push_back(block);
    }
  }
  start(std::move(blocks));
}

void RepairProcess::start(std::vector<storage::BlockId> blocks) {
  assert(!started_);
  started_ = true;
  pending_.insert(pending_.end(), blocks.begin(), blocks.end());
  if (pending_.empty()) {
    stats_.finish_time = sim_.now();
    if (on_complete) on_complete();
    return;
  }
  sim_.schedule_at(std::max(options_.start_time, sim_.now()), [this] {
    for (int i = 0; i < options_.concurrency; ++i) launch_next();
  });
}

void RepairProcess::launch_next() {
  if (pending_.empty()) {
    if (in_flight_ == 0 && stats_.finish_time < 0.0) {
      stats_.finish_time = sim_.now();
      if (on_complete) on_complete();
    }
    return;
  }
  const storage::BlockId block = pending_.front();
  pending_.pop_front();
  repair_block(block);
}

void RepairProcess::repair_block(storage::BlockId block) {
  // Rebuild on a random surviving node; read the plan's source blocks there
  // in parallel, decode (free in the timing model), and keep the result.
  net::NodeId target;
  do {
    target = rng_.uniform_int(0, net_.topology().num_nodes() - 1);
  } while (failure_.is_failed(target));

  const auto sources = planner_.plan(block, target, failure_, rng_);
  if (!sources) {
    ++stats_.blocks_unrecoverable;
    // Move on so one dead stripe cannot wedge the whole repair queue.
    sim_.schedule_in(0.0, [this] { launch_next(); });
    return;
  }
  ++in_flight_;
  const int rid = next_repair_id_++;
  InFlightRepair rep;
  rep.block = block;
  rep.target = target;
  rep.sources = std::move(*sources);
  rep.remaining = static_cast<int>(rep.sources.size());
  active_repairs_.emplace(rid, std::move(rep));
  start_repair_transfers(rid);
}

void RepairProcess::start_repair_transfers(int rid) {
  InFlightRepair& rep = active_repairs_.at(rid);
  // All k fetches start at one timestamp, so the fair-share engine folds
  // them into a single batched rate recompute rather than k successive ones.
  for (const auto& src : rep.sources) {
    const net::FlowId flow = net_.transfer(
        src.node, rep.target, block_size_ * src.fraction, [this, rid] {
          const auto it = active_repairs_.find(rid);
          // The repair was abandoned or re-planned under a new id while
          // this (uncancellable zero-time) transfer was in flight.
          if (it == active_repairs_.end()) return;
          if (--it->second.remaining > 0) return;
          active_repairs_.erase(it);
          ++stats_.blocks_repaired;
          --in_flight_;
          launch_next();
        });
    rep.flows.push_back(flow);
  }
}

void RepairProcess::on_node_failed(net::NodeId node) {
  // Sorted id sweep for deterministic processing order.
  std::vector<int> ids;
  ids.reserve(active_repairs_.size());
  for (const auto& [rid, rep] : active_repairs_) ids.push_back(rid);
  std::sort(ids.begin(), ids.end());
  for (const int rid : ids) {
    const auto it = active_repairs_.find(rid);
    if (it == active_repairs_.end()) continue;
    InFlightRepair& rep = it->second;
    if (rep.target == node) {
      // The rebuild destination died: abandon and requeue the block onto a
      // fresh target.
      for (const net::FlowId f : rep.flows) net_.cancel(f);
      const storage::BlockId block = rep.block;
      active_repairs_.erase(it);
      --in_flight_;
      ++stats_.blocks_requeued;
      pending_.push_back(block);
      launch_next();
      continue;
    }
    if (std::none_of(rep.sources.begin(), rep.sources.end(),
                     [node](const storage::DegradedSource& s) {
                       return s.node == node;
                     })) {
      continue;
    }
    // A read source died: re-plan from the surviving stripe blocks. The old
    // id is retired so stale transfer callbacks cannot touch the new plan.
    for (const net::FlowId f : rep.flows) net_.cancel(f);
    const storage::BlockId block = rep.block;
    const net::NodeId target = rep.target;
    active_repairs_.erase(it);
    const auto sources = planner_.plan(block, target, failure_, rng_);
    if (!sources) {
      ++stats_.blocks_unrecoverable;
      --in_flight_;
      launch_next();
      continue;
    }
    ++stats_.replans;
    const int new_rid = next_repair_id_++;
    InFlightRepair fresh;
    fresh.block = block;
    fresh.target = target;
    fresh.sources = std::move(*sources);
    fresh.remaining = static_cast<int>(fresh.sources.size());
    active_repairs_.emplace(new_rid, std::move(fresh));
    start_repair_transfers(new_rid);
  }
}

}  // namespace dfs::mapreduce
