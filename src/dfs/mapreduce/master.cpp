#include "dfs/mapreduce/master.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dfs::mapreduce {

namespace {
// "Never assigned a degraded task": makes t_r effectively infinite so fresh
// racks always pass the rack-awareness check.
constexpr util::Seconds kNeverAssigned = -1.0e9;
}  // namespace

Master::Master(sim::Simulator& simulator, net::Network& network,
               const ClusterConfig& config,
               const storage::FailureScenario& failure,
               core::Scheduler& scheduler, util::Rng& rng,
               storage::SourceSelection source_selection)
    : sim_(simulator),
      net_(network),
      cfg_(config),
      failure_(failure),
      scheduler_(scheduler),
      rng_(rng),
      source_selection_(source_selection) {
  slaves_.resize(static_cast<std::size_t>(cfg_.topology.num_nodes()));
  for (NodeId n = 0; n < cfg_.topology.num_nodes(); ++n) {
    SlaveState& s = slaves_[static_cast<std::size_t>(n)];
    s.alive = !failure_.is_failed(n);
    s.free_map_slots = cfg_.map_slots_per_node;
    s.free_reduce_slots = cfg_.reduce_slots_per_node;
  }
  last_degraded_assign_.assign(
      static_cast<std::size_t>(cfg_.topology.num_racks()), kNeverAssigned);
}

void Master::submit(const JobInput& input) {
  if (started_ && admission_closed_) {
    throw std::logic_error(
        "submit after Master::start() requires online mode "
        "(set_online) and an open admission window");
  }
  if (!input.layout || !input.code) {
    throw std::invalid_argument("JobInput needs a layout and a code");
  }
  if (input.layout->n() != input.code->n() ||
      input.layout->k() != input.code->k()) {
    throw std::invalid_argument("layout and code disagree on (n, k)");
  }
  JobState j;
  j.spec = input.spec;
  j.layout = input.layout;
  j.code = input.code;
  j.planner = std::make_unique<storage::DegradedReadPlanner>(
      *j.layout, cfg_.topology, *j.code, source_selection_);
  j.rng = rng_.fork();
  j.metrics.id = j.spec.id;
  j.metrics.submit_time = j.spec.submit_time;
  j.pending_by_node.resize(
      static_cast<std::size_t>(cfg_.topology.num_nodes()));
  j.pending_count_by_node.assign(
      static_cast<std::size_t>(cfg_.topology.num_nodes()), 0);
  j.pending_by_rack.assign(
      static_cast<std::size_t>(cfg_.topology.num_racks()), 0);
  j.reduces.resize(static_cast<std::size_t>(j.spec.num_reducers));
  jobs_.push_back(std::move(j));
  if (started_) {
    const std::size_t index = jobs_.size() - 1;
    sim_.schedule_at(std::max(sim_.now(), jobs_.back().spec.submit_time),
                     [this, index] { activate_job(index); });
  }
}

void Master::activate_job(std::size_t index) {
  JobState& j = jobs_[index];
  assert(!j.active);
  j.active = true;
  // Split the job into map tasks: one per native block. A task whose input
  // has no surviving readable copy becomes a degraded task (§II-B). For
  // k == 1 layouts (replication), every surviving shard of the stripe is a
  // readable copy, so the task stays "local" to all replica holders and a
  // degraded task only arises when every copy is gone.
  const int blocks = j.layout->num_native_blocks();
  const bool replicated = j.layout->k() == 1;
  j.maps.resize(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    MapTaskState& t = j.maps[static_cast<std::size_t>(i)];
    t.block = j.layout->native_block(i);
    t.home = j.layout->node_of(t.block);
    t.lost = failure_.is_failed(t.home);
    if (replicated) {
      for (int b = 0; b < j.layout->n(); ++b) {
        const NodeId holder =
            j.layout->node_of(storage::BlockId{t.block.stripe, b});
        if (!failure_.is_failed(holder)) t.locations.push_back(holder);
      }
      t.lost = t.locations.empty();
    } else if (!t.lost) {
      t.locations.push_back(t.home);
    }
    if (t.locations.empty()) {
      push_degraded(j, static_cast<int>(i));
      continue;
    }
    for (const NodeId loc : t.locations) {
      j.pending_by_node[static_cast<std::size_t>(loc)].push_back(i);
      ++j.pending_count_by_node[static_cast<std::size_t>(loc)];
      const RackId rack = cfg_.topology.rack_of(loc);
      if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
          t.location_racks.end()) {
        t.location_racks.push_back(rack);
      }
    }
    for (const RackId rack : t.location_racks) {
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
    ++j.pending_nondegraded;
  }
  j.total_m = blocks;
  j.total_md = j.pending_degraded_count;
}

void Master::start() {
  if (started_) throw std::logic_error("Master::start() called twice");
  started_ = true;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    sim_.schedule_at(jobs_[i].spec.submit_time,
                     [this, i] { activate_job(i); });
  }
  for (NodeId n = 0; n < cfg_.topology.num_nodes(); ++n) {
    if (!slave(n).alive) continue;
    start_heartbeat(n);
  }
}

void Master::start_heartbeat(NodeId n) {
  const util::Seconds phase = rng_.uniform(0.0, cfg_.heartbeat_interval);
  slave(n).last_heartbeat = sim_.now();
  sim_.schedule_periodic(phase, cfg_.heartbeat_interval, [this, n] {
    if (admission_closed_ && all_jobs_done()) return false;
    // Rearmed by on_node_repaired. A compute-failed slave stops heartbeating
    // immediately even though the master still believes it alive.
    if (!slave(n).alive || !slave(n).heartbeating) return false;
    on_heartbeat(n);
    return true;
  });
}

void Master::on_heartbeat(NodeId s) {
  slave(s).last_heartbeat = sim_.now();
  scheduler_.on_heartbeat(*this, s);
  assign_reduce_tasks(s);
  if (cfg_.speculative_execution) try_speculate(s);
}

// --- dynamic cluster health ----------------------------------------------------

void Master::on_node_failed(NodeId node) {
  SlaveState& s = slave(node);
  if (!s.alive) return;
  s.alive = false;  // its heartbeat loop unregisters itself on the next fire
  for (JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    reclassify_after_failure(j, node);
  }
  if (cfg_.fault.compute_failures) replan_inflight_reads(node);
}

void Master::on_compute_failed(NodeId node) {
  if (!cfg_.fault.compute_failures) {
    throw std::logic_error(
        "on_compute_failed requires FaultConfig::compute_failures");
  }
  SlaveState& s = slave(node);
  // alive is not consulted: it tracks storage death, which normally happens
  // in the same failure event just before this call.
  if (!s.heartbeating) return;
  s.heartbeating = false;
  s.compute_fail_time = sim_.now();

  // The attempts physically die now: cancel their transfers and mark them
  // doomed so they never produce output. The master's view (slot counts,
  // pending pools, records) only changes at detection.
  for (const int record_idx : sorted_attempt_records()) {
    MapAttempt& a = map_attempts_.at(record_idx);
    const MapTaskRecord& rec =
        result_.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node != node) continue;
    a.doomed = true;
    for (const net::FlowId f : a.flows) net_.cancel(f);
    a.flows.clear();
  }
  for (JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    for (std::size_t r = 0; r < j.reduces.size(); ++r) {
      ReduceTaskState& rt = j.reduces[r];
      if (!rt.assigned) continue;
      if (rt.node == node &&
          result_.reduce_tasks[static_cast<std::size_t>(rt.record)]
                  .finish_time < 0.0) {
        rt.doomed = true;
        for (const InflightFetch& f : rt.inflight) net_.cancel(f.flow);
        rt.inflight.clear();
      } else {
        // Shuffle fetches sourced from the dead node stall: the serving map
        // output is gone. Drop them; reap_dead_node re-executes the maps.
        for (auto it = rt.inflight.begin(); it != rt.inflight.end();) {
          if (it->src == node) {
            net_.cancel(it->flow);
            it = rt.inflight.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }

  // Hadoop-style expiry: declared dead once the last heartbeat is older than
  // the expiry window.
  const int inc = s.incarnation;
  const util::Seconds detect_at =
      std::max(sim_.now(), s.last_heartbeat + cfg_.fault.expiry_multiplier *
                                                  cfg_.heartbeat_interval);
  sim_.schedule_at(detect_at, [this, node, inc] {
    const SlaveState& sl = slave(node);
    if (sl.incarnation != inc || sl.heartbeating) return;
    declare_slave_dead(node);
  });
}

void Master::on_node_repaired(NodeId node) {
  SlaveState& s = slave(node);
  const bool compute_died = cfg_.fault.compute_failures && !s.heartbeating;
  if (s.alive && !compute_died) return;
  if (compute_died) {
    // The node comes back with a fresh TaskTracker: doomed attempts and map
    // outputs are gone regardless of whether the expiry fired. Reaping is
    // idempotent, so a death the master already detected reaps to a no-op;
    // a repair that beats the expiry window does the real work here.
    reap_dead_node(node);
    ++s.incarnation;  // stale detection / unblacklist timers now no-op
    s.heartbeating = true;
    s.compute_fail_time = -1.0;
    s.recent_failures = 0;
    s.blacklisted = false;
    s.free_map_slots = cfg_.map_slots_per_node;
    s.free_reduce_slots = cfg_.reduce_slots_per_node;
  }
  s.alive = true;
  for (JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    reclassify_after_repair(j, node);
  }
  if (started_) start_heartbeat(node);
}

void Master::reclassify_after_failure(JobState& j, NodeId node) {
  for (std::size_t i = 0; i < j.maps.size(); ++i) {
    MapTaskState& t = j.maps[i];
    if (t.done) continue;
    const auto it = std::find(t.locations.begin(), t.locations.end(), node);
    if (it == t.locations.end()) continue;
    t.locations.erase(it);
    if (t.assigned) {
      // Attempts in flight keep running: the model is a storage (DataNode)
      // loss, not a TaskTracker death. Only the copy list shrinks, so any
      // later speculative backup runs degraded.
      if (t.locations.empty()) t.lost = true;
      continue;
    }
    --j.pending_count_by_node[static_cast<std::size_t>(node)];
    const RackId rack = cfg_.topology.rack_of(node);
    bool rack_still_has_copy = false;
    for (const NodeId loc : t.locations) {
      if (cfg_.topology.rack_of(loc) == rack) {
        rack_still_has_copy = true;
        break;
      }
    }
    if (!rack_still_has_copy) {
      const auto rit =
          std::find(t.location_racks.begin(), t.location_racks.end(), rack);
      if (rit != t.location_racks.end()) {
        t.location_racks.erase(rit);
        --j.pending_by_rack[static_cast<std::size_t>(rack)];
      }
    }
    if (t.locations.empty()) {
      // Last readable copy gone: the task joins the degraded pool and the
      // pacing totals (M_d) grow to match. Queue entries elsewhere go stale
      // and are skipped by pop_pending's location check.
      t.lost = true;
      --j.pending_nondegraded;
      ++j.total_md;
      push_degraded(j, static_cast<int>(i));
    }
  }
}

void Master::reclassify_after_repair(JobState& j, NodeId node) {
  const bool replicated = j.layout->k() == 1;
  for (std::size_t i = 0; i < j.maps.size(); ++i) {
    MapTaskState& t = j.maps[i];
    if (t.done) continue;
    bool holds_copy = false;
    if (replicated) {
      for (int b = 0; b < j.layout->n() && !holds_copy; ++b) {
        holds_copy =
            j.layout->node_of(storage::BlockId{t.block.stripe, b}) == node;
      }
    } else {
      holds_copy = t.home == node;
    }
    if (!holds_copy) continue;
    if (std::find(t.locations.begin(), t.locations.end(), node) !=
        t.locations.end()) {
      continue;
    }
    if (t.assigned) {
      // The running attempt keeps its classification; restoring the copy
      // list lets later speculative backups read the block again.
      t.locations.push_back(node);
      t.lost = false;
      continue;
    }
    if (t.locations.empty()) {
      // Leaves the degraded pool: its input is readable again. O(1): the
      // membership flag is cleared and the deque entry goes stale, skipped
      // on a later pop (repairs used to pay an O(n) find+erase here).
      if (!t.in_degraded_pool) {
        // A pending task with no readable copy must be in the degraded pool;
        // anything else means the pending indexes are corrupt. Fail loudly
        // in release builds too — silently continuing would let the pacing
        // counters drift.
        throw std::logic_error(
            "reclassify_after_repair: pending task with no locations is "
            "missing from the degraded pool");
      }
      t.in_degraded_pool = false;
      --j.pending_degraded_count;
      t.lost = false;
      ++j.pending_nondegraded;
      --j.total_md;
    }
    t.locations.push_back(node);
    j.pending_by_node[static_cast<std::size_t>(node)].push_back(
        static_cast<int>(i));
    ++j.pending_count_by_node[static_cast<std::size_t>(node)];
    const RackId rack = cfg_.topology.rack_of(node);
    if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
        t.location_racks.end()) {
      t.location_racks.push_back(rack);
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
  }
}

// --- SchedulerContext queries --------------------------------------------------

util::Seconds Master::now() const { return sim_.now(); }

std::vector<core::JobId> Master::running_jobs() const {
  std::vector<core::JobId> out;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& j = jobs_[i];
    if (j.active && !j.finished && j.m < j.total_m) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

Master::JobState& Master::job(core::JobId id) {
  return jobs_[static_cast<std::size_t>(id)];
}

const Master::JobState& Master::job(core::JobId id) const {
  return jobs_[static_cast<std::size_t>(id)];
}

int Master::free_map_slots(NodeId s) const {
  const SlaveState& sl = slaves_[static_cast<std::size_t>(s)];
  if (sl.blacklisted) return 0;  // fault layer: advertise no capacity
  return sl.free_map_slots;
}

bool Master::has_unassigned_local(core::JobId id, NodeId s) const {
  const JobState& j = job(id);
  if (j.pending_count_by_node[static_cast<std::size_t>(s)] > 0) return true;
  return j.pending_by_rack[static_cast<std::size_t>(
             cfg_.topology.rack_of(s))] > 0;
}

bool Master::has_unassigned_remote(core::JobId id, NodeId s) const {
  const JobState& j = job(id);
  return j.pending_nondegraded >
         j.pending_by_rack[static_cast<std::size_t>(cfg_.topology.rack_of(s))];
}

bool Master::has_unassigned_degraded(core::JobId id) const {
  return job(id).pending_degraded_count > 0;
}

int Master::degraded_affinity(core::JobId id, NodeId s) const {
  const JobState& j = job(id);
  // Front of the pool, skipping entries whose task a repair already
  // reclassified or re-entered under a newer generation (const path: read
  // past the stale prefix without popping; assign_degraded trims it).
  int map_idx = -1;
  for (const auto& [idx, gen] : j.pending_degraded) {
    const MapTaskState& t = j.maps[static_cast<std::size_t>(idx)];
    if (t.in_degraded_pool && t.degraded_pool_gen == gen) {
      map_idx = idx;
      break;
    }
  }
  if (map_idx < 0) return 0;
  const storage::BlockId lost =
      j.maps[static_cast<std::size_t>(map_idx)].block;
  int count = 0;
  for (int b = 0; b < j.layout->n(); ++b) {
    if (b == lost.index) continue;
    const NodeId holder =
        j.layout->node_of(storage::BlockId{lost.stripe, b});
    if (holder == s && !failure_.is_failed(holder)) ++count;
  }
  return count;
}

long Master::launched_maps(core::JobId id) const { return job(id).m; }

long Master::running_maps(core::JobId id) const {
  const JobState& j = job(id);
  return j.m - j.maps_done;
}
long Master::total_maps(core::JobId id) const { return job(id).total_m; }
long Master::launched_degraded(core::JobId id) const { return job(id).md; }
long Master::total_degraded(core::JobId id) const { return job(id).total_md; }

util::Seconds Master::local_work_seconds(NodeId s) const {
  double work = 0.0;
  for (const JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    work += static_cast<double>(
                j.pending_count_by_node[static_cast<std::size_t>(s)]) *
            j.spec.map_time.mean;
  }
  return work * cfg_.time_scale(s);
}

util::Seconds Master::mean_local_work_seconds() const {
  double sum = 0.0;
  int alive = 0;
  for (NodeId n = 0; n < cfg_.topology.num_nodes(); ++n) {
    if (!slaves_[static_cast<std::size_t>(n)].alive) continue;
    sum += local_work_seconds(n);
    ++alive;
  }
  return alive > 0 ? sum / alive : 0.0;
}

util::Seconds Master::time_since_last_degraded(RackId r) const {
  return sim_.now() - last_degraded_assign_[static_cast<std::size_t>(r)];
}

util::Seconds Master::mean_time_since_last_degraded() const {
  // Average over racks that can still run tasks: a fully-failed rack never
  // launches a degraded task, and letting its stale timer inflate E[t_r]
  // would pin the rack-awareness gate at its threshold and throttle
  // degraded launches cluster-wide (pathological under rack failures).
  double sum = 0.0;
  int alive_racks = 0;
  for (RackId r = 0; r < cfg_.topology.num_racks(); ++r) {
    bool alive = false;
    for (NodeId n : cfg_.topology.nodes_in_rack(r)) {
      if (slaves_[static_cast<std::size_t>(n)].alive) {
        alive = true;
        break;
      }
    }
    if (!alive) continue;
    sum += time_since_last_degraded(r);
    ++alive_racks;
  }
  return alive_racks > 0 ? sum / alive_racks : 0.0;
}

util::Seconds Master::degraded_read_threshold() const {
  const util::BytesPerSec w = net_.topology().num_racks() > 1
                                  ? cfg_.links.rack_down
                                  : util::kUnlimitedBandwidth;
  if (w == util::kUnlimitedBandwidth) return 0.0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& j = jobs_[i];
    if (j.active && j.m < j.total_m) {
      return j.planner->expected_cross_rack_blocks() * cfg_.block_size / w;
    }
  }
  return 0.0;
}

RackId Master::rack_of(NodeId s) const { return cfg_.topology.rack_of(s); }

// --- assignment ----------------------------------------------------------------

int Master::pop_pending(JobState& j, NodeId node) {
  auto& dq = j.pending_by_node[static_cast<std::size_t>(node)];
  while (!dq.empty()) {
    const int map_idx = dq.front();
    dq.pop_front();
    const MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
    // Stale entries: the task was assigned through another replica's queue,
    // or this node's copy was lost to a mid-run failure.
    if (t.assigned) continue;
    if (std::find(t.locations.begin(), t.locations.end(), node) ==
        t.locations.end()) {
      continue;
    }
    return map_idx;
  }
  return -1;
}

void Master::retire_pending(JobState& j, int map_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  assert(!t.assigned);
  t.assigned = true;  // queue entries elsewhere become stale
  for (const NodeId loc : t.locations) {
    --j.pending_count_by_node[static_cast<std::size_t>(loc)];
  }
  for (const RackId rack : t.location_racks) {
    --j.pending_by_rack[static_cast<std::size_t>(rack)];
  }
  --j.pending_nondegraded;
}

void Master::assign_local(core::JobId id, NodeId s) {
  JobState& j = job(id);
  if (j.pending_count_by_node[static_cast<std::size_t>(s)] > 0) {
    const int map_idx = pop_pending(j, s);
    assert(map_idx >= 0);
    retire_pending(j, map_idx);
    start_map(j, map_idx, s, MapTaskKind::kNodeLocal, s);
    return;
  }
  // Rack-local: steal from the rack-mate with the largest backlog.
  NodeId best = -1;
  int best_len = 0;
  for (NodeId peer : cfg_.topology.nodes_in_rack(cfg_.topology.rack_of(s))) {
    const int len = j.pending_count_by_node[static_cast<std::size_t>(peer)];
    if (len > best_len) {
      best_len = len;
      best = peer;
    }
  }
  if (best < 0) throw std::logic_error("assign_local without a local task");
  const int map_idx = pop_pending(j, best);
  assert(map_idx >= 0);
  retire_pending(j, map_idx);
  start_map(j, map_idx, s, MapTaskKind::kRackLocal, best);
}

void Master::assign_remote(core::JobId id, NodeId s) {
  JobState& j = job(id);
  const RackId my_rack = cfg_.topology.rack_of(s);
  NodeId best = -1;
  int best_len = 0;
  for (NodeId peer = 0; peer < cfg_.topology.num_nodes(); ++peer) {
    if (cfg_.topology.rack_of(peer) == my_rack) continue;
    const int len = j.pending_count_by_node[static_cast<std::size_t>(peer)];
    if (len > best_len) {
      best_len = len;
      best = peer;
    }
  }
  if (best < 0) throw std::logic_error("assign_remote without a remote task");
  const int map_idx = pop_pending(j, best);
  assert(map_idx >= 0);
  retire_pending(j, map_idx);
  start_map(j, map_idx, s, MapTaskKind::kRemote, best);
}

void Master::push_degraded(JobState& j, int map_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  assert(!t.in_degraded_pool && "task is already in the degraded pool");
  t.in_degraded_pool = true;
  // A fresh generation makes any earlier stale entry for this task dead for
  // good: a task that left the pool (repair) and re-enters (new failure)
  // joins at the back, exactly like the old erase-based bookkeeping.
  ++t.degraded_pool_gen;
  j.pending_degraded.emplace_back(map_idx, t.degraded_pool_gen);
  ++j.pending_degraded_count;
}

void Master::assign_degraded(core::JobId id, NodeId s) {
  JobState& j = job(id);
  if (j.pending_degraded_count <= 0) {
    throw std::logic_error("assign_degraded without a degraded task");
  }
  int map_idx = -1;
  while (!j.pending_degraded.empty()) {
    const auto [idx, gen] = j.pending_degraded.front();
    j.pending_degraded.pop_front();
    const MapTaskState& t = j.maps[static_cast<std::size_t>(idx)];
    if (t.in_degraded_pool && t.degraded_pool_gen == gen) {
      map_idx = idx;
      break;
    }
    // Stale entry: the task left the pool via reclassify_after_repair, or
    // re-entered it later under a newer generation.
  }
  if (map_idx < 0) {
    throw std::logic_error(
        "assign_degraded: pending_degraded_count says a task exists but the "
        "pool holds only stale entries");
  }
  j.maps[static_cast<std::size_t>(map_idx)].in_degraded_pool = false;
  --j.pending_degraded_count;
  j.maps[static_cast<std::size_t>(map_idx)].assigned = true;
  last_degraded_assign_[static_cast<std::size_t>(cfg_.topology.rack_of(s))] =
      sim_.now();
  start_map(j, map_idx, s, MapTaskKind::kDegraded, -1);
}

// --- map task lifecycle ----------------------------------------------------------

void Master::start_map(JobState& j, int map_idx, NodeId s, MapTaskKind kind,
                       NodeId fetch_source, bool backup) {
  SlaveState& sl = slave(s);
  assert(sl.alive && sl.free_map_slots > 0);
  --sl.free_map_slots;
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  assert(t.assigned);  // callers retire the task from the pending indexes

  MapTaskRecord rec;
  rec.id = static_cast<TaskId>(result_.map_tasks.size());
  rec.job = j.spec.id;
  rec.block = t.block;
  rec.map_index = map_idx;
  rec.attempt = t.attempts++;
  rec.exec_node = s;
  rec.source_node = fetch_source;
  rec.kind = kind;
  rec.assign_time = sim_.now();
  rec.speculative = backup;
  const int record_idx = static_cast<int>(result_.map_tasks.size());

  if (!backup) {
    // Backups are extra attempts: they never advance the pacing counters
    // (m, m_d), the per-kind task counts, or the first-launch milestone.
    t.record = record_idx;
    t.launched_kind = kind;
    ++j.m;
    if (kind == MapTaskKind::kDegraded) ++j.md;
    if (j.metrics.first_map_launch < 0.0) {
      j.metrics.first_map_launch = sim_.now();
    }
    switch (kind) {
      case MapTaskKind::kNodeLocal:
      case MapTaskKind::kRackLocal:
        ++j.metrics.local_tasks;
        break;
      case MapTaskKind::kRemote:
        ++j.metrics.remote_tasks;
        break;
      case MapTaskKind::kDegraded:
        ++j.metrics.degraded_tasks;
        break;
    }
  }

  const core::JobId job_id = static_cast<core::JobId>(&j - jobs_.data());
  // Register the live attempt. Pure bookkeeping (no events, no RNG), so it
  // is maintained whether or not the fault layer is on; every lifecycle
  // callback looks the attempt up first and no-ops once it is finalized.
  MapAttempt attempt;
  attempt.job = job_id;
  attempt.map_idx = map_idx;
  attempt.backup = backup;
  MapAttempt& reg = map_attempts_.emplace(record_idx, std::move(attempt))
                        .first->second;

  if (kind == MapTaskKind::kDegraded) {
    auto sources = j.planner->plan(t.block, s, failure_, j.rng);
    if (!sources) {
      rec.unrecoverable = true;
      rec.fetch_done_time = sim_.now();
      rec.finish_time = sim_.now();
      result_.map_tasks.push_back(std::move(rec));
      result_.data_loss = true;
      // Count it done so the job can still terminate.
      sim_.schedule_in(0.0, [this, job_id, record_idx, map_idx] {
        on_map_complete(job_id, record_idx, map_idx);
      });
      return;
    }
    rec.sources = *sources;
    result_.map_tasks.push_back(std::move(rec));
    // Fetch all source blocks in parallel; input ready when the last lands.
    auto remaining = std::make_shared<int>(
        static_cast<int>(result_.map_tasks[static_cast<std::size_t>(record_idx)]
                             .sources.size()));
    for (const auto& src :
         result_.map_tasks[static_cast<std::size_t>(record_idx)].sources) {
      const net::FlowId flow = net_.transfer(
          src.node, s, cfg_.block_size,
          [this, job_id, record_idx, map_idx, remaining] {
            if (--*remaining == 0) {
              on_map_input_ready(job_id, record_idx, map_idx);
            }
          });
      reg.flows.push_back(flow);
    }
    return;
  }

  result_.map_tasks.push_back(std::move(rec));
  if (kind == MapTaskKind::kNodeLocal) {
    on_map_input_ready(job_id, record_idx, map_idx);
  } else {
    // Rack-local and remote tasks download the input block (or a replica)
    // from the location the assignment chose.
    assert(fetch_source >= 0);
    const net::FlowId flow = net_.transfer(
        fetch_source, s, cfg_.block_size,
        [this, job_id, record_idx, map_idx] {
          on_map_input_ready(job_id, record_idx, map_idx);
        });
    reg.flows.push_back(flow);
  }
}

void Master::on_map_input_ready(core::JobId job_id, int record_idx,
                                int map_idx) {
  const auto reg = map_attempts_.find(record_idx);
  if (reg == map_attempts_.end() || reg->second.doomed) {
    // The attempt was killed (or its node compute-failed) while the input
    // was in flight; an uncancellable zero-time flow delivered anyway.
    return;
  }
  reg->second.flows.clear();  // fetches landed; nothing left to cancel
  JobState& j = job(job_id);
  MapTaskRecord& rec = result_.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.fetch_done_time = sim_.now();
  if (j.maps[static_cast<std::size_t>(map_idx)].done) {
    // Another attempt won while this one was still fetching; release the
    // slot without burning processing time (the kill a TaskTracker applies).
    rec.finish_time = sim_.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kLostRace;
    ++slave(rec.exec_node).free_map_slots;
    map_attempts_.erase(record_idx);
    return;
  }
  util::Seconds duration =
      j.rng.normal(j.spec.map_time.mean, j.spec.map_time.stddev) *
      cfg_.time_scale(rec.exec_node);
  if (rec.kind == MapTaskKind::kDegraded) duration += cfg_.decode_overhead;
  if (cfg_.fault.injection_enabled() && cfg_.fault.node_flaky(rec.exec_node) &&
      j.rng.uniform(0.0, 1.0) < cfg_.fault.attempt_failure_prob) {
    // Transient crash partway through processing.
    const double frac = j.rng.uniform(0.0, 1.0);
    sim_.schedule_in(duration * frac, [this, job_id, record_idx, map_idx] {
      on_map_attempt_failed(job_id, record_idx, map_idx);
    });
    return;
  }
  sim_.schedule_in(duration, [this, job_id, record_idx, map_idx] {
    on_map_complete(job_id, record_idx, map_idx);
  });
}

void Master::on_map_complete(core::JobId job_id, int record_idx,
                             int map_idx) {
  const auto reg = map_attempts_.find(record_idx);
  if (reg == map_attempts_.end() || reg->second.doomed) {
    // Finalized (killed / failed) before this completion event fired.
    return;
  }
  map_attempts_.erase(reg);
  JobState& j = job(job_id);
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec = result_.map_tasks[static_cast<std::size_t>(record_idx)];
  if (rec.finish_time < 0.0) rec.finish_time = sim_.now();
  ++slave(rec.exec_node).free_map_slots;
  if (t.done) {
    // A speculative race already produced this task's output; this attempt
    // merely releases its slot.
    rec.winner = false;
    rec.outcome = AttemptOutcome::kLostRace;
    return;
  }
  t.done = true;
  ++j.maps_done;
  j.completed_map_runtime_sum += rec.runtime();
  j.completed_map_records.push_back(record_idx);
  if (hooks.on_map_finish && !rec.unrecoverable) hooks.on_map_finish(rec);

  // Shuffle: push this map's partition to every already-assigned reducer
  // (skipping doomed attempts and partitions a reducer already holds from a
  // previous incarnation of this map task).
  for (int r = 0; r < j.spec.num_reducers; ++r) {
    ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
    if (!rt.assigned || rt.doomed) continue;
    if (!rt.fetched.empty() && rt.fetched[static_cast<std::size_t>(map_idx)]) {
      continue;
    }
    start_partition_fetch(j, r, record_idx);
  }
  if (j.maps_done == j.total_m) {
    j.metrics.map_phase_end = sim_.now();
    // A re-executed map (lost-output recovery) can be the last barrier both
    // for reducers that were already fully fetched and for the job itself.
    for (int r = 0; r < j.spec.num_reducers; ++r) {
      ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
      if (rt.assigned && !rt.doomed && !rt.processing &&
          rt.partitions_fetched == j.total_m) {
        maybe_start_reduce_processing(j, r);
      }
    }
    maybe_finish_job(j);
  }
}

void Master::try_speculate(NodeId s) {
  SlaveState& sl = slave(s);
  if (sl.blacklisted) return;
  for (std::size_t ji = 0; ji < jobs_.size() && sl.free_map_slots > 0; ++ji) {
    JobState& j = jobs_[ji];
    if (!j.active || j.finished) continue;
    if (j.m < j.total_m) continue;  // unassigned work takes precedence
    if (j.maps_done >= j.total_m) continue;
    if (static_cast<double>(j.maps_done) <
        cfg_.speculation_min_completed_fraction * j.total_m) {
      continue;
    }
    const double mean_runtime =
        j.completed_map_runtime_sum / static_cast<double>(j.maps_done);
    // Back up the longest-running attempt that is sufficiently overdue.
    int candidate = -1;
    double worst_elapsed = cfg_.speculation_slowdown * mean_runtime;
    for (std::size_t i = 0; i < j.maps.size(); ++i) {
      const MapTaskState& t = j.maps[i];
      if (!t.assigned || t.done || t.has_backup) continue;
      const auto& rec = result_.map_tasks[static_cast<std::size_t>(t.record)];
      if (rec.exec_node == s) continue;  // back up on a *different* node
      const double elapsed = sim_.now() - rec.assign_time;
      if (elapsed > worst_elapsed) {
        worst_elapsed = elapsed;
        candidate = static_cast<int>(i);
      }
    }
    if (candidate < 0) continue;
    MapTaskState& t = j.maps[static_cast<std::size_t>(candidate)];
    t.has_backup = true;
    MapTaskKind kind;
    NodeId source = -1;
    if (t.lost) {
      kind = MapTaskKind::kDegraded;
    } else if (std::find(t.locations.begin(), t.locations.end(), s) !=
               t.locations.end()) {
      kind = MapTaskKind::kNodeLocal;
      source = s;
    } else {
      source = t.locations.front();
      for (const NodeId loc : t.locations) {
        if (cfg_.topology.same_rack(loc, s)) {
          source = loc;
          break;
        }
      }
      kind = cfg_.topology.same_rack(source, s) ? MapTaskKind::kRackLocal
                                                : MapTaskKind::kRemote;
    }
    start_map(j, candidate, s, kind, source, /*backup=*/true);
  }
}

// --- reduce task lifecycle --------------------------------------------------------

void Master::assign_reduce_tasks(NodeId s) {
  SlaveState& sl = slave(s);
  if (sl.blacklisted) return;
  for (std::size_t i = 0; i < jobs_.size() && sl.free_reduce_slots > 0; ++i) {
    JobState& j = jobs_[i];
    if (!j.active || j.finished) continue;
    while (sl.free_reduce_slots > 0 &&
           j.reduces_assigned < j.spec.num_reducers) {
      // First unassigned reduce task. Without failures tasks are assigned in
      // index order, so this is the scan-free `reduces_assigned` of old; a
      // reset task (its node died) reopens a hole the scan finds first.
      int r = -1;
      for (int cand = 0; cand < j.spec.num_reducers; ++cand) {
        if (!j.reduces[static_cast<std::size_t>(cand)].assigned) {
          r = cand;
          break;
        }
      }
      assert(r >= 0);  // reduces_assigned < num_reducers guarantees a hole
      ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
      rt.assigned = true;
      rt.node = s;
      rt.doomed = false;
      ++j.reduces_assigned;
      --sl.free_reduce_slots;

      ReduceTaskRecord rec;
      rec.id = static_cast<TaskId>(result_.reduce_tasks.size());
      rec.job = j.spec.id;
      rec.attempt = rt.attempts++;
      rec.exec_node = s;
      rec.assign_time = sim_.now();
      rt.record = static_cast<int>(result_.reduce_tasks.size());
      result_.reduce_tasks.push_back(rec);
      rt.fetched.assign(static_cast<std::size_t>(j.total_m), 0);
      rt.partitions_fetched = 0;

      // Pull the partitions of every map that has already finished.
      for (const int map_record : j.completed_map_records) {
        start_partition_fetch(j, r, map_record);
      }
    }
  }
}

util::Bytes Master::partition_bytes(const JobState& j) const {
  if (j.spec.num_reducers == 0) return 0.0;
  return cfg_.block_size * j.spec.shuffle_ratio /
         static_cast<double>(j.spec.num_reducers);
}

void Master::start_partition_fetch(JobState& j, int reduce_idx,
                                   int map_record_idx) {
  const core::JobId job_id = static_cast<core::JobId>(&j - jobs_.data());
  const MapTaskRecord& map_rec =
      result_.map_tasks[static_cast<std::size_t>(map_record_idx)];
  const NodeId src = map_rec.exec_node;
  const int map_idx = map_rec.map_index;
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  const NodeId dst = rt.node;
  const int epoch = rt.epoch;
  const net::FlowId flow = net_.transfer(
      src, dst, partition_bytes(j), [this, job_id, reduce_idx, map_idx, epoch] {
        on_partition_fetched(job_id, reduce_idx, map_idx, epoch);
      });
  rt.inflight.push_back(InflightFetch{flow, map_idx, src});
}

void Master::on_partition_fetched(core::JobId job_id, int reduce_idx,
                                  int map_idx, int epoch) {
  JobState& j = job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (rt.epoch != epoch || rt.doomed) return;  // attempt was torn down
  for (auto it = rt.inflight.begin(); it != rt.inflight.end(); ++it) {
    if (it->map_idx == map_idx) {
      rt.inflight.erase(it);
      break;
    }
  }
  if (rt.fetched[static_cast<std::size_t>(map_idx)]) return;
  rt.fetched[static_cast<std::size_t>(map_idx)] = 1;
  ++rt.partitions_fetched;
  if (rt.partitions_fetched == j.total_m) {
    result_.reduce_tasks[static_cast<std::size_t>(rt.record)]
        .shuffle_done_time = sim_.now();
    maybe_start_reduce_processing(j, reduce_idx);
  }
}

void Master::maybe_start_reduce_processing(JobState& j, int reduce_idx) {
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (rt.processing || rt.doomed || rt.partitions_fetched != j.total_m ||
      j.maps_done != j.total_m) {
    return;
  }
  rt.processing = true;
  ReduceTaskRecord& rec =
      result_.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.process_start_time = sim_.now();
  const util::Seconds duration =
      j.rng.normal(j.spec.reduce_time.mean, j.spec.reduce_time.stddev) *
      cfg_.time_scale(rt.node);
  const core::JobId job_id = static_cast<core::JobId>(&j - jobs_.data());
  const int epoch = rt.epoch;
  if (cfg_.fault.injection_enabled() && cfg_.fault.node_flaky(rt.node) &&
      j.rng.uniform(0.0, 1.0) < cfg_.fault.attempt_failure_prob) {
    const double frac = j.rng.uniform(0.0, 1.0);
    sim_.schedule_in(duration * frac, [this, job_id, reduce_idx, epoch] {
      on_reduce_attempt_failed(job_id, reduce_idx, epoch);
    });
    return;
  }
  sim_.schedule_in(duration, [this, job_id, reduce_idx, epoch] {
    on_reduce_complete(job_id, reduce_idx, epoch);
  });
}

void Master::on_reduce_complete(core::JobId job_id, int reduce_idx, int epoch) {
  JobState& j = job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (rt.epoch != epoch || rt.doomed) return;  // attempt was torn down
  ReduceTaskRecord& rec =
      result_.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.finish_time = sim_.now();
  ++slave(rt.node).free_reduce_slots;
  ++j.reduces_done;
  if (hooks.on_reduce_finish) hooks.on_reduce_finish(rec);
  maybe_finish_job(j);
}

// --- fault layer ---------------------------------------------------------------

std::vector<int> Master::sorted_attempt_records() const {
  // The registry is an unordered_map; every kill/replan sweep walks a sorted
  // key snapshot so same-seed runs process attempts in the same order.
  std::vector<int> keys;
  keys.reserve(map_attempts_.size());
  for (const auto& [record_idx, a] : map_attempts_) keys.push_back(record_idx);
  std::sort(keys.begin(), keys.end());
  return keys;
}

int Master::find_running_attempt(core::JobId job_id, int map_idx) const {
  for (const int record_idx : sorted_attempt_records()) {
    const MapAttempt& a = map_attempts_.at(record_idx);
    if (a.job == job_id && a.map_idx == map_idx && !a.doomed) {
      return record_idx;
    }
  }
  return -1;
}

void Master::unlaunch_map(JobState& j, MapTaskState& t) {
  --j.m;
  if (t.launched_kind == MapTaskKind::kDegraded) --j.md;
}

void Master::requeue_map_task(JobState& j, int map_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  const bool was_degraded = t.launched_kind == MapTaskKind::kDegraded;
  t.assigned = false;
  t.has_backup = false;
  t.record = -1;
  if (t.locations.empty()) {
    // No readable copy anymore: the task re-enters as degraded. It joins
    // M_d unless its launch already counted there.
    t.lost = true;
    if (!was_degraded) ++j.total_md;
    push_degraded(j, map_idx);
    return;
  }
  // A readable copy exists (possibly repaired while the attempt ran): the
  // task re-enters the per-node pools. If it launched as degraded it leaves
  // the M_d population.
  if (was_degraded) --j.total_md;
  t.lost = false;
  // The rack list goes stale for assigned tasks (reclassify_after_failure
  // skips them before rack maintenance); rebuild it from the live locations.
  t.location_racks.clear();
  for (const NodeId loc : t.locations) {
    j.pending_by_node[static_cast<std::size_t>(loc)].push_back(map_idx);
    ++j.pending_count_by_node[static_cast<std::size_t>(loc)];
    const RackId rack = cfg_.topology.rack_of(loc);
    if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
        t.location_racks.end()) {
      t.location_racks.push_back(rack);
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
  }
  ++j.pending_nondegraded;
}

void Master::revert_completed_map(JobState& j, int map_idx, int record_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec = result_.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.output_lost = true;
  t.done = false;
  --j.maps_done;
  j.completed_map_runtime_sum -= rec.runtime();
  const auto it = std::find(j.completed_map_records.begin(),
                            j.completed_map_records.end(), record_idx);
  if (it != j.completed_map_records.end()) j.completed_map_records.erase(it);
  j.metrics.map_phase_end = -1.0;  // the map phase reopened
  const core::JobId job_id = static_cast<core::JobId>(&j - jobs_.data());
  const int runner = find_running_attempt(job_id, map_idx);
  if (runner >= 0) {
    // A speculative copy is still running elsewhere: promote it to primary.
    // The task stays assigned and the pacing counters keep the original
    // launch, so nothing to reverse.
    t.record = runner;
    t.has_backup = false;
    map_attempts_.at(runner).backup = false;
    return;
  }
  unlaunch_map(j, t);
  requeue_map_task(j, map_idx);
}

void Master::declare_slave_dead(NodeId node) {
  SlaveState& s = slave(node);
  DetectionRecord det;
  det.node = node;
  det.fail_time = s.compute_fail_time;
  det.detect_time = sim_.now();
  result_.detections.push_back(det);
  s.alive = false;  // may already be false (storage failed alongside)
  reap_dead_node(node);
  // The dead TaskTracker's slot ledger is void; a repaired node restarts
  // with a full complement.
  s.free_map_slots = cfg_.map_slots_per_node;
  s.free_reduce_slots = cfg_.reduce_slots_per_node;
}

void Master::reap_dead_node(NodeId node) {
  // (1) Finalize the doomed map attempts on the node; requeue their tasks
  // or promote a surviving speculative copy.
  for (const int record_idx : sorted_attempt_records()) {
    const auto it = map_attempts_.find(record_idx);
    if (it == map_attempts_.end()) continue;
    MapTaskRecord& rec =
        result_.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node != node || !it->second.doomed) continue;
    const core::JobId job_id = it->second.job;
    const int map_idx = it->second.map_idx;
    const bool backup = it->second.backup;
    if (rec.finish_time < 0.0) rec.finish_time = sim_.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    map_attempts_.erase(it);
    JobState& j = job(job_id);
    if (j.finished) continue;
    MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
    if (t.done || backup) {
      // Losers and backups leave the task itself untouched.
      if (backup) t.has_backup = false;
      continue;
    }
    const int runner = find_running_attempt(job_id, map_idx);
    if (runner >= 0) {
      t.record = runner;
      t.has_backup = false;
      map_attempts_.at(runner).backup = false;
      continue;
    }
    unlaunch_map(j, t);
    requeue_map_task(j, map_idx);
  }

  // (2) Kill the reduce attempts that were running on the node.
  for (JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    for (std::size_t r = 0; r < j.reduces.size(); ++r) {
      ReduceTaskState& rt = j.reduces[r];
      if (!rt.assigned || rt.node != node) continue;
      ReduceTaskRecord& rec =
          result_.reduce_tasks[static_cast<std::size_t>(rt.record)];
      if (rec.finish_time >= 0.0) continue;  // finished before the death
      rec.finish_time = sim_.now();
      rec.outcome = AttemptOutcome::kKilled;
      reset_reduce_attempt(j, static_cast<int>(r));
    }
  }

  // (3) Lost-map-output re-execution: completed maps of unfinished jobs ran
  // on the dead node and their shuffle outputs died with it. Re-execute the
  // ones some reducer still needs.
  for (JobState& j : jobs_) {
    if (!j.active || j.finished) continue;
    if (j.spec.num_reducers == 0) continue;
    const std::vector<int> completed = j.completed_map_records;  // snapshot
    for (const int record_idx : completed) {
      const MapTaskRecord& rec =
          result_.map_tasks[static_cast<std::size_t>(record_idx)];
      if (rec.exec_node != node || rec.output_lost) continue;
      bool needed = false;
      for (const ReduceTaskState& rt : j.reduces) {
        if (rt.processing) continue;  // already pulled everything it needs
        if (!rt.assigned || rt.doomed ||
            !rt.fetched[static_cast<std::size_t>(rec.map_index)]) {
          needed = true;
          break;
        }
      }
      if (needed) revert_completed_map(j, rec.map_index, record_idx);
    }
  }
}

void Master::on_map_attempt_failed(core::JobId job_id, int record_idx,
                                   int map_idx) {
  const auto it = map_attempts_.find(record_idx);
  if (it == map_attempts_.end() || it->second.doomed) return;
  const bool backup = it->second.backup;
  map_attempts_.erase(it);
  JobState& j = job(job_id);
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec = result_.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.finish_time = sim_.now();
  rec.winner = false;
  rec.outcome = AttemptOutcome::kFailed;
  ++slave(rec.exec_node).free_map_slots;
  note_attempt_failure(rec.exec_node);
  if (t.done) return;  // a winner already exists; the crash is moot
  if (backup) {
    t.has_backup = false;  // speculation may retry later
    return;
  }
  ++t.failures;
  if (t.failures >= cfg_.fault.max_attempts) {
    abort_job(j);
    return;
  }
  // The task sits out an exponential backoff before re-entering the pending
  // pools; it stays `assigned` meanwhile so nothing double-launches it.
  unlaunch_map(j, t);
  const util::Seconds backoff =
      cfg_.fault.retry_backoff * std::pow(2.0, t.failures - 1);
  sim_.schedule_in(backoff, [this, job_id, map_idx] {
    JobState& j2 = job(job_id);
    if (j2.finished) return;
    MapTaskState& t2 = j2.maps[static_cast<std::size_t>(map_idx)];
    if (t2.done || !t2.assigned) return;
    if (find_running_attempt(job_id, map_idx) >= 0) return;
    requeue_map_task(j2, map_idx);
  });
}

void Master::on_reduce_attempt_failed(core::JobId job_id, int reduce_idx,
                                      int epoch) {
  JobState& j = job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (rt.epoch != epoch || rt.doomed) return;
  ReduceTaskRecord& rec =
      result_.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.finish_time = sim_.now();
  rec.outcome = AttemptOutcome::kFailed;
  ++slave(rt.node).free_reduce_slots;
  note_attempt_failure(rt.node);
  for (const InflightFetch& f : rt.inflight) net_.cancel(f.flow);
  rt.inflight.clear();
  ++rt.failures;
  if (rt.failures >= cfg_.fault.max_attempts) {
    abort_job(j);
    return;
  }
  ++rt.epoch;  // neutralizes any stale events of the dead attempt
  rt.processing = false;
  const int armed_epoch = rt.epoch;
  const util::Seconds backoff =
      cfg_.fault.retry_backoff * std::pow(2.0, rt.failures - 1);
  // `assigned` stays true through the backoff so the task is not handed out
  // again before it elapses.
  sim_.schedule_in(backoff, [this, job_id, reduce_idx, armed_epoch] {
    JobState& j2 = job(job_id);
    ReduceTaskState& rt2 = j2.reduces[static_cast<std::size_t>(reduce_idx)];
    if (j2.finished || rt2.epoch != armed_epoch || rt2.doomed ||
        !rt2.assigned) {
      return;
    }
    reset_reduce_attempt(j2, reduce_idx);
  });
}

void Master::reset_reduce_attempt(JobState& j, int reduce_idx) {
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  ++rt.epoch;
  rt.doomed = false;
  rt.assigned = false;
  rt.node = -1;
  rt.partitions_fetched = 0;
  rt.fetched.clear();
  rt.processing = false;
  rt.record = -1;
  for (const InflightFetch& f : rt.inflight) net_.cancel(f.flow);
  rt.inflight.clear();
  --j.reduces_assigned;
}

void Master::abort_job(JobState& j) {
  const core::JobId job_id = static_cast<core::JobId>(&j - jobs_.data());
  for (const int record_idx : sorted_attempt_records()) {
    const auto it = map_attempts_.find(record_idx);
    if (it == map_attempts_.end() || it->second.job != job_id) continue;
    MapTaskRecord& rec =
        result_.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.finish_time < 0.0) rec.finish_time = sim_.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    // Doomed attempts sit on a dead node whose slot ledger is void.
    if (!it->second.doomed) ++slave(rec.exec_node).free_map_slots;
    for (const net::FlowId f : it->second.flows) net_.cancel(f);
    map_attempts_.erase(it);
  }
  for (std::size_t r = 0; r < j.reduces.size(); ++r) {
    ReduceTaskState& rt = j.reduces[r];
    if (!rt.assigned) continue;
    ReduceTaskRecord& rec =
        result_.reduce_tasks[static_cast<std::size_t>(rt.record)];
    if (rec.finish_time >= 0.0) continue;
    rec.finish_time = sim_.now();
    rec.outcome = AttemptOutcome::kKilled;
    ++rt.epoch;  // neutralizes pending completion / fetch events
    for (const InflightFetch& f : rt.inflight) net_.cancel(f.flow);
    rt.inflight.clear();
    if (!rt.doomed) ++slave(rt.node).free_reduce_slots;
  }
  // The job leaves the FIFO queue as failed; no completion hook fires.
  j.finished = true;
  j.metrics.failed = true;
  j.metrics.finish_time = sim_.now();
  ++jobs_done_;
}

void Master::note_attempt_failure(NodeId node) {
  if (cfg_.fault.blacklist_threshold <= 0) return;
  SlaveState& s = slave(node);
  if (!s.alive || !s.heartbeating || s.blacklisted) return;
  if (++s.recent_failures < cfg_.fault.blacklist_threshold) return;
  s.blacklisted = true;
  ++result_.blacklist_events;
  const int inc = s.incarnation;
  sim_.schedule_in(cfg_.fault.blacklist_duration, [this, node, inc] {
    SlaveState& sl = slave(node);
    if (sl.incarnation != inc || !sl.blacklisted) return;
    sl.blacklisted = false;
    sl.recent_failures = 0;
  });
}

void Master::replan_inflight_reads(NodeId node) {
  for (const int record_idx : sorted_attempt_records()) {
    const auto it = map_attempts_.find(record_idx);
    if (it == map_attempts_.end()) continue;
    MapAttempt& a = it->second;
    if (a.doomed) continue;
    MapTaskRecord& rec =
        result_.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node == node) continue;  // the compute-death path owns it
    if (a.flows.empty()) continue;        // input already landed
    const core::JobId job_id = a.job;
    const int map_idx = a.map_idx;
    JobState& j = job(job_id);
    MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
    if (rec.kind == MapTaskKind::kDegraded) {
      bool uses_node = false;
      for (const auto& src : rec.sources) {
        if (src.node == node) {
          uses_node = true;
          break;
        }
      }
      if (!uses_node) continue;
      // Re-plan the degraded read from the surviving stripe blocks and
      // restart the whole fetch (partially-arrived shares of a different
      // source set do not compose).
      for (const net::FlowId f : a.flows) net_.cancel(f);
      a.flows.clear();
      auto sources = j.planner->plan(t.block, rec.exec_node, failure_, j.rng);
      if (!sources) {
        rec.unrecoverable = true;
        rec.fetch_done_time = sim_.now();
        rec.finish_time = sim_.now();
        result_.data_loss = true;
        sim_.schedule_in(0.0, [this, job_id, record_idx, map_idx] {
          on_map_complete(job_id, record_idx, map_idx);
        });
        continue;
      }
      rec.sources = *sources;
      auto remaining = std::make_shared<int>(
          static_cast<int>(rec.sources.size()));
      for (const auto& src : rec.sources) {
        const net::FlowId flow = net_.transfer(
            src.node, rec.exec_node, cfg_.block_size,
            [this, job_id, record_idx, map_idx, remaining] {
              if (--*remaining == 0) {
                on_map_input_ready(job_id, record_idx, map_idx);
              }
            });
        a.flows.push_back(flow);
      }
      continue;
    }
    // Rack-local / remote input fetch from the dead node: the attempt is
    // killed and its task requeued immediately (no transient-failure charge
    // — nothing is wrong with the executing slave).
    if (rec.source_node != node) continue;
    for (const net::FlowId f : a.flows) net_.cancel(f);
    a.flows.clear();
    const bool backup = a.backup;
    rec.finish_time = sim_.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    ++slave(rec.exec_node).free_map_slots;
    map_attempts_.erase(it);
    if (j.finished) continue;
    if (t.done || backup) {
      if (backup) t.has_backup = false;
      continue;
    }
    unlaunch_map(j, t);
    requeue_map_task(j, map_idx);
  }
}

void Master::maybe_finish_job(JobState& j) {
  if (j.finished || j.maps_done != j.total_m ||
      j.reduces_done != j.spec.num_reducers) {
    return;
  }
  j.finished = true;
  j.metrics.finish_time = sim_.now();
  ++jobs_done_;
  if (hooks.on_job_finish) hooks.on_job_finish(j.metrics);
}

RunResult Master::take_result() {
  result_.jobs.clear();
  result_.jobs.reserve(jobs_.size());
  for (const JobState& j : jobs_) result_.jobs.push_back(j.metrics);
  result_.makespan = sim_.now();
  return std::move(result_);
}

}  // namespace dfs::mapreduce
