#include "dfs/mapreduce/master.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace dfs::mapreduce {

Master::Master(sim::Simulator& simulator, net::Network& network,
               const ClusterConfig& config,
               const storage::FailureScenario& failure,
               core::Scheduler& scheduler, util::Rng& rng,
               storage::SourceSelection source_selection,
               storage::RecoveryCostModel cost_model)
    : state_(simulator, network, config, failure),
      map_(state_),
      shuffle_(state_),
      fault_(state_),
      scheduler_(scheduler),
      rng_(rng),
      source_selection_(source_selection),
      cost_model_(cost_model) {
  state_.hooks = &hooks;
  map_.wire(shuffle_, fault_);
  shuffle_.wire(fault_);
  fault_.wire(map_, shuffle_);
  state_.slaves.resize(static_cast<std::size_t>(config.topology.num_nodes()));
  for (NodeId n = 0; n < config.topology.num_nodes(); ++n) {
    SlaveState& s = state_.slave(n);
    s.alive = !failure.is_failed(n);
    s.free_map_slots = config.map_slots_per_node;
    s.free_reduce_slots = config.reduce_slots_per_node;
  }
  state_.last_degraded_assign.assign(
      static_cast<std::size_t>(config.topology.num_racks()), kNeverAssigned);
  if (config.fetch_supervised()) {
    // Forked only when supervision is on: an inert config spends no RNG
    // state here, keeping unsupervised runs byte-identical.
    state_.fetch = std::make_unique<FetchSupervisor>(
        simulator, network, failure, state_.cfg, rng.fork());
  }
}

void Master::submit(const JobInput& input) {
  if (started_ && !admission_open_) {
    throw std::logic_error(
        "submit after Master::start() requires online mode "
        "(set_admission_open) and an open admission window");
  }
  if (!input.layout || !input.code) {
    throw std::invalid_argument("JobInput needs a layout and a code");
  }
  if (input.layout->n() != input.code->n() ||
      input.layout->k() != input.code->k()) {
    throw std::invalid_argument("layout and code disagree on (n, k)");
  }
  JobState j;
  j.spec = input.spec;
  j.layout = input.layout;
  j.code = input.code;
  j.planner = std::make_unique<storage::DegradedReadPlanner>(
      *j.layout, state_.cfg.topology, *j.code, source_selection_,
      cost_model_);
  j.expected_degraded_cost = j.planner->expected_single_failure_blocks();
  j.rng = rng_.fork();
  j.metrics.id = j.spec.id;
  j.metrics.tenant = j.spec.tenant;
  j.metrics.submit_time = j.spec.submit_time;
  j.pending_by_node.resize(
      static_cast<std::size_t>(state_.cfg.topology.num_nodes()));
  j.pending_by_rack.assign(
      static_cast<std::size_t>(state_.cfg.topology.num_racks()), 0);
  j.reduces.resize(static_cast<std::size_t>(j.spec.num_reducers));
  state_.jobs.push_back(std::move(j));
  if (started_) {
    const std::size_t index = state_.jobs.size() - 1;
    state_.sim.schedule_at(
        std::max(state_.sim.now(), state_.jobs.back().spec.submit_time),
        [this, index] { activate_job(index); });
  }
}

void Master::activate_job(std::size_t index) {
  map_.activate_job(state_.jobs[index]);
}

void Master::start() {
  if (started_) throw std::logic_error("Master::start() called twice");
  started_ = true;
  for (std::size_t i = 0; i < state_.jobs.size(); ++i) {
    state_.sim.schedule_at(state_.jobs[i].spec.submit_time,
                           [this, i] { activate_job(i); });
  }
  for (NodeId n = 0; n < state_.cfg.topology.num_nodes(); ++n) {
    if (!state_.slave(n).alive) continue;
    start_heartbeat(n);
  }
}

void Master::start_heartbeat(NodeId n) {
  const util::Seconds phase = rng_.uniform(0.0, state_.cfg.heartbeat_interval);
  state_.slave(n).last_heartbeat = state_.sim.now();
  state_.sim.schedule_periodic(
      phase, state_.cfg.heartbeat_interval, [this, n] {
        if (!admission_open_ && all_jobs_done()) return false;
        // Rearmed by on_node_repaired. A compute-failed slave stops
        // heartbeating immediately even though the master still believes it
        // alive.
        if (!state_.slave(n).alive || !state_.slave(n).heartbeating) {
          return false;
        }
        on_heartbeat(n);
        return true;
      });
}

void Master::on_heartbeat(NodeId s) {
  state_.slave(s).last_heartbeat = state_.sim.now();
  scheduler_.on_heartbeat(*this, s);
  shuffle_.assign_reduce_tasks(s);
  if (state_.cfg.speculative_execution) map_.try_speculate(s);
}

// --- dynamic cluster health ----------------------------------------------------

void Master::on_node_failed(NodeId node) {
  SlaveState& s = state_.slave(node);
  if (!s.alive) return;
  s.alive = false;  // its heartbeat loop unregisters itself on the next fire
  for (const core::JobId id : state_.active_jobs) {
    map_.reclassify_after_failure(state_.job(id), node);
  }
  // The fetch supervisor retargets its own in-flight reads (fallback
  // replans); the fault layer's replan below skips supervised attempts.
  if (state_.fetch) state_.fetch->on_node_failed(node);
  if (state_.cfg.fault.compute_failures) fault_.replan_inflight_reads(node);
}

void Master::on_compute_failed(NodeId node) {
  fault_.on_compute_failed(node);
}

void Master::on_node_repaired(NodeId node) {
  SlaveState& s = state_.slave(node);
  const bool compute_died =
      state_.cfg.fault.compute_failures && !s.heartbeating;
  if (s.alive && !compute_died) return;
  if (compute_died) fault_.restore_compute(node);
  s.alive = true;
  for (const core::JobId id : state_.active_jobs) {
    map_.reclassify_after_repair(state_.job(id), node);
  }
  if (started_) start_heartbeat(node);
}

// --- SchedulerContext queries --------------------------------------------------

util::Seconds Master::now() const { return state_.sim.now(); }

const std::vector<core::JobId>& Master::running_jobs_ref() const {
  // Rebuilt per call into a scratch buffer: the heartbeat path hits this
  // once per slave per interval, and at 10k slaves an allocation (or an
  // all-jobs scan — the retired tail dwarfs the active set at steady
  // state) per call is the dominant scheduler cost.
  running_jobs_scratch_.clear();
  for (const core::JobId id : state_.active_jobs) {
    const JobState& j = state_.job(id);
    if (j.m < j.total_m) running_jobs_scratch_.push_back(id);
  }
  // The scratch arrives in FIFO (submission) order; an installed admission
  // policy reorders it in place before the scheduler walks it.
  if (admission_policy_ != nullptr) {
    admission_policy_->order(*this, running_jobs_scratch_);
  }
  return running_jobs_scratch_;
}

int Master::tenant_of(core::JobId id) const {
  return state_.job(id).spec.tenant;
}

int Master::free_map_slots(NodeId s) const {
  const SlaveState& sl = state_.slave(s);
  if (sl.blacklisted) return 0;  // fault layer: advertise no capacity
  return sl.free_map_slots;
}

bool Master::has_unassigned_local(core::JobId id, NodeId s) const {
  const JobState& j = state_.job(id);
  if (j.pending_by_node[static_cast<std::size_t>(s)].live_count() > 0) {
    return true;
  }
  return j.pending_by_rack[static_cast<std::size_t>(
             state_.cfg.topology.rack_of(s))] > 0;
}

bool Master::has_unassigned_remote(core::JobId id, NodeId s) const {
  const JobState& j = state_.job(id);
  return j.pending_nondegraded >
         j.pending_by_rack[static_cast<std::size_t>(
             state_.cfg.topology.rack_of(s))];
}

bool Master::has_unassigned_degraded(core::JobId id) const {
  return state_.job(id).pending_degraded.live_count() > 0;
}

void Master::assign_local(core::JobId id, NodeId s) {
  // Assignments can launch a job's last map, dropping it from the runnable
  // set; debug views handed out before the mutation must go stale.
  invalidate_running_jobs();
  map_.assign_local(id, s);
}

void Master::assign_remote(core::JobId id, NodeId s) {
  invalidate_running_jobs();
  map_.assign_remote(id, s);
}

void Master::assign_degraded(core::JobId id, NodeId s) {
  invalidate_running_jobs();
  map_.assign_degraded(id, s);
}

int Master::degraded_affinity(core::JobId id, NodeId s) const {
  const JobState& j = state_.job(id);
  // Front of the pool, skipping entries whose task a repair already
  // reclassified or re-entered under a newer generation (const path: peek
  // past the stale prefix without popping; assign_degraded trims it).
  const int* front = j.pending_degraded.peek();
  if (front == nullptr) return 0;
  const storage::BlockId lost = j.maps[static_cast<std::size_t>(*front)].block;
  int count = 0;
  for (int b = 0; b < j.layout->n(); ++b) {
    if (b == lost.index) continue;
    const NodeId holder = j.layout->node_of(storage::BlockId{lost.stripe, b});
    if (holder == s && !state_.failure.is_failed(holder)) ++count;
  }
  return count;
}

long Master::launched_maps(core::JobId id) const { return state_.job(id).m; }

long Master::running_maps(core::JobId id) const {
  const JobState& j = state_.job(id);
  return j.m - j.maps_done;
}
long Master::total_maps(core::JobId id) const {
  return state_.job(id).total_m;
}
long Master::launched_degraded(core::JobId id) const {
  return state_.job(id).md;
}
long Master::total_degraded(core::JobId id) const {
  return state_.job(id).total_md;
}
double Master::launched_degraded_cost(core::JobId id) const {
  return state_.job(id).md_cost;
}
double Master::total_degraded_cost(core::JobId id) const {
  const JobState& j = state_.job(id);
  return static_cast<double>(j.total_md) * j.expected_degraded_cost;
}

util::Seconds Master::local_work_seconds(NodeId s) const {
  double work = 0.0;
  for (const core::JobId id : state_.active_jobs) {
    const JobState& j = state_.job(id);
    work += static_cast<double>(
                j.pending_by_node[static_cast<std::size_t>(s)].live_count()) *
            j.spec.map_time.mean;
  }
  return work * state_.cfg.time_scale(s);
}

util::Seconds Master::mean_local_work_seconds() const {
  double sum = 0.0;
  int alive = 0;
  for (NodeId n = 0; n < state_.cfg.topology.num_nodes(); ++n) {
    if (!state_.slave(n).alive) continue;
    sum += local_work_seconds(n);
    ++alive;
  }
  return alive > 0 ? sum / alive : 0.0;
}

util::Seconds Master::time_since_last_degraded(RackId r) const {
  return state_.sim.now() -
         state_.last_degraded_assign[static_cast<std::size_t>(r)];
}

util::Seconds Master::mean_time_since_last_degraded() const {
  // Average over racks that can still run tasks: a fully-failed rack never
  // launches a degraded task, and letting its stale timer inflate E[t_r]
  // would pin the rack-awareness gate at its threshold and throttle
  // degraded launches cluster-wide (pathological under rack failures).
  double sum = 0.0;
  int alive_racks = 0;
  for (RackId r = 0; r < state_.cfg.topology.num_racks(); ++r) {
    bool alive = false;
    for (NodeId n : state_.cfg.topology.nodes_in_rack(r)) {
      if (state_.slave(n).alive) {
        alive = true;
        break;
      }
    }
    if (!alive) continue;
    sum += time_since_last_degraded(r);
    ++alive_racks;
  }
  return alive_racks > 0 ? sum / alive_racks : 0.0;
}

util::Seconds Master::degraded_read_threshold() const {
  const util::BytesPerSec w = state_.net.topology().num_racks() > 1
                                  ? state_.cfg.links.rack_down
                                  : util::kUnlimitedBandwidth;
  if (w == util::kUnlimitedBandwidth) return 0.0;
  // Active-index walk also excludes aborted jobs (retired with their
  // planner released); a dead job's recovery cost should not pin the
  // threshold anyway.
  for (const core::JobId id : state_.active_jobs) {
    const JobState& j = state_.job(id);
    if (j.m < j.total_m) {
      return j.planner->expected_cross_rack_blocks() * state_.cfg.block_size /
             w;
    }
  }
  return 0.0;
}

RackId Master::rack_of(NodeId s) const {
  return state_.cfg.topology.rack_of(s);
}

RunResult Master::take_result() {
  if (state_.fetch) {
    state_.result.degraded_fetches = state_.fetch->fetch_records();
    state_.result.hedge = state_.fetch->stats();
  }
  state_.result.jobs.clear();
  state_.result.jobs.reserve(state_.jobs.size());
  for (const JobState& j : state_.jobs) state_.result.jobs.push_back(j.metrics);
  state_.result.makespan = state_.sim.now();
  return std::move(state_.result);
}

}  // namespace dfs::mapreduce
