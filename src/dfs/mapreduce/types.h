#pragma once

#include "dfs/net/topology.h"
#include "dfs/util/units.h"

namespace dfs::mapreduce {

using JobId = int;
using TaskId = int;
using net::NodeId;
using net::RackId;

/// Classification of a map task by where its input comes from (§II-A).
/// Node-local and rack-local are collectively "local" in the paper.
enum class MapTaskKind {
  kNodeLocal,  ///< input block stored on the executing node
  kRackLocal,  ///< input block stored in the executing node's rack
  kRemote,     ///< input block downloaded from another rack
  kDegraded,   ///< input block lost; reconstructed via a degraded read
};

const char* to_string(MapTaskKind kind);

/// How one task attempt ended. Every MapTaskRecord / ReduceTaskRecord is one
/// attempt; the fault-tolerance layer (heartbeat-expiry detection, transient
/// attempt failures) adds the non-success outcomes.
enum class AttemptOutcome {
  kSuccess,   ///< produced the task's output
  kLostRace,  ///< finished after another attempt had already won
  kKilled,    ///< killed by the master (TaskTracker death, job abort)
  kFailed,    ///< crashed mid-run (transient attempt failure)
};

const char* to_string(AttemptOutcome outcome);

/// A normal distribution, the paper's model for task processing times
/// (e.g. map ~ N(20 s, 1 s), reduce ~ N(30 s, 2 s) in §V-B).
/// stddev == 0 makes the draw deterministic (used by the Fig. 3 replay).
struct Dist {
  double mean = 0.0;
  double stddev = 0.0;
};

}  // namespace dfs::mapreduce
