#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/util/rng.h"

namespace dfs::mapreduce {

/// Optional callbacks fired at simulated task boundaries; the functional
/// engine (dfs::engine) uses them to run real map/reduce work — including
/// real erasure-decode for degraded tasks — at the times the simulator says
/// those tasks execute.
struct TaskHooks {
  std::function<void(const MapTaskRecord&)> on_map_finish;
  std::function<void(const ReduceTaskRecord&)> on_reduce_finish;
  std::function<void(const JobMetrics&)> on_job_finish;
};

/// The MapReduce master (Hadoop's JobTracker): maintains the FIFO job queue,
/// answers slave heartbeats by delegating map-task choice to the pluggable
/// Scheduler (Algorithms 1-3 live in dfs::core), assigns reduce tasks, and
/// drives task execution — input fetches and shuffle transfers through the
/// flow-level network, processing through the event queue.
class Master final : public core::SchedulerContext {
 public:
  Master(sim::Simulator& simulator, net::Network& network,
         const ClusterConfig& config, const storage::FailureScenario& failure,
         core::Scheduler& scheduler, util::Rng& rng,
         storage::SourceSelection source_selection =
             storage::SourceSelection::kRandom);

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Register a job; it activates at spec.submit_time. In online mode this
  /// may also be called after start() — the cluster arrival generator admits
  /// jobs into the FIFO queue while the simulation runs.
  void submit(const JobInput& input);

  /// Start the per-slave heartbeat loops. Call once, before Simulator::run.
  void start();

  /// Online mode: heartbeats keep running (and submit() stays legal) after
  /// the current jobs drain, until finish_admission() is called. Call before
  /// start().
  void set_online(bool online) { admission_closed_ = !online; }

  /// No further submissions will arrive; heartbeat loops stop once the
  /// remaining jobs drain.
  void finish_admission() { admission_closed_ = true; }

  /// A node's storage and task slots went away (cluster lifecycle event).
  /// Pending map tasks whose last readable copy was on `node` become
  /// degraded; tasks already running are allowed to finish (the failure
  /// model is a DataNode/storage loss, as in the paper).
  void on_node_failed(NodeId node);

  /// The node's blocks have been rebuilt: it serves reads and heartbeats
  /// again. Pending degraded tasks whose input lived on `node` regain their
  /// locality.
  void on_node_repaired(NodeId node);

  bool all_jobs_done() const { return jobs_done_ == jobs_.size(); }
  std::size_t jobs_submitted() const { return jobs_.size(); }
  std::size_t jobs_completed() const { return jobs_done_; }

  /// Collect the result after the simulation has drained.
  RunResult take_result();

  TaskHooks hooks;

  // --- core::SchedulerContext --------------------------------------------------
  util::Seconds now() const override;
  std::vector<core::JobId> running_jobs() const override;
  int free_map_slots(NodeId slave) const override;
  bool has_unassigned_local(core::JobId job, NodeId slave) const override;
  bool has_unassigned_remote(core::JobId job, NodeId slave) const override;
  bool has_unassigned_degraded(core::JobId job) const override;
  void assign_local(core::JobId job, NodeId slave) override;
  void assign_remote(core::JobId job, NodeId slave) override;
  void assign_degraded(core::JobId job, NodeId slave) override;
  int degraded_affinity(core::JobId job, NodeId slave) const override;
  long launched_maps(core::JobId job) const override;
  long running_maps(core::JobId job) const override;
  long total_maps(core::JobId job) const override;
  long launched_degraded(core::JobId job) const override;
  long total_degraded(core::JobId job) const override;
  util::Seconds local_work_seconds(NodeId slave) const override;
  util::Seconds mean_local_work_seconds() const override;
  util::Seconds time_since_last_degraded(RackId rack) const override;
  util::Seconds mean_time_since_last_degraded() const override;
  util::Seconds degraded_read_threshold() const override;
  RackId rack_of(NodeId slave) const override;

 private:
  struct MapTaskState {
    storage::BlockId block{};
    NodeId home = -1;  ///< node storing the native block (may be failed)
    bool lost = false;
    bool assigned = false;
    bool done = false;        ///< some attempt has completed
    bool has_backup = false;  ///< a speculative copy was launched
    int record = -1;  ///< index into result_.map_tasks of the first attempt
    /// Surviving nodes a readable copy of the input can be fetched from.
    /// One entry (the native home) for k > 1 codes; every surviving shard
    /// holder for k == 1 (replication) layouts, where any copy serves.
    std::vector<NodeId> locations;
    std::vector<RackId> location_racks;  ///< distinct racks of `locations`
  };

  struct ReduceTaskState {
    bool assigned = false;
    NodeId node = -1;
    int partitions_fetched = 0;
    bool processing = false;
    int record = -1;
  };

  struct JobState {
    JobSpec spec;
    std::shared_ptr<const storage::StorageLayout> layout;
    std::shared_ptr<const ec::ErasureCode> code;
    std::unique_ptr<storage::DegradedReadPlanner> planner;
    util::Rng rng;  ///< per-job stream for task-duration draws
    bool active = false;
    bool finished = false;

    std::vector<MapTaskState> maps;
    /// Per-node queues of pending map-task indices; a task appears in the
    /// queue of every node holding a readable copy. Entries become stale
    /// when the task is assigned elsewhere and are skipped lazily on pop;
    /// `pending_count_by_node` stays exact.
    std::vector<std::deque<int>> pending_by_node;
    std::vector<int> pending_count_by_node;  ///< exact pending per node
    std::vector<int> pending_by_rack;  ///< pending tasks with a copy in rack
    std::deque<int> pending_degraded;
    long pending_nondegraded = 0;
    long m = 0;    ///< launched map tasks
    long md = 0;   ///< launched degraded tasks
    long total_m = 0;
    long total_md = 0;
    long maps_done = 0;
    double completed_map_runtime_sum = 0.0;  ///< winners only, for speculation

    std::vector<ReduceTaskState> reduces;
    int reduces_assigned = 0;
    int reduces_done = 0;
    std::vector<int> completed_map_records;

    JobMetrics metrics;
  };

  struct SlaveState {
    bool alive = true;
    int free_map_slots = 0;
    int free_reduce_slots = 0;
  };

  JobState& job(core::JobId id);
  const JobState& job(core::JobId id) const;
  SlaveState& slave(NodeId id) { return slaves_[static_cast<std::size_t>(id)]; }

  void activate_job(std::size_t index);
  void start_heartbeat(NodeId s);
  void on_heartbeat(NodeId s);
  /// Removes `node` as a readable location of job `j`'s pending tasks;
  /// tasks left with no location join the degraded pool.
  void reclassify_after_failure(JobState& j, NodeId node);
  /// Re-adds `node` as a readable location; pending degraded tasks whose
  /// input is back become local again.
  void reclassify_after_repair(JobState& j, NodeId node);
  /// Pops the next pending (unassigned) task queued at `node`; -1 if none.
  int pop_pending(JobState& j, NodeId node);
  /// Marks a task assigned and updates every pending index.
  void retire_pending(JobState& j, int map_idx);
  void start_map(JobState& j, int map_idx, NodeId s, MapTaskKind kind,
                 NodeId fetch_source, bool backup = false);
  void on_map_input_ready(core::JobId job_id, int record_idx,
                          int map_idx);
  void on_map_complete(core::JobId job_id, int record_idx, int map_idx);
  void assign_reduce_tasks(NodeId s);
  void try_speculate(NodeId s);
  void start_partition_fetch(JobState& j, int reduce_idx, int map_record_idx);
  void on_partition_fetched(core::JobId job_id, int reduce_idx);
  void maybe_start_reduce_processing(JobState& j, int reduce_idx);
  void on_reduce_complete(core::JobId job_id, int reduce_idx);
  void maybe_finish_job(JobState& j);
  util::Bytes partition_bytes(const JobState& j) const;

  sim::Simulator& sim_;
  net::Network& net_;
  const ClusterConfig& cfg_;
  const storage::FailureScenario& failure_;
  core::Scheduler& scheduler_;
  util::Rng& rng_;
  storage::SourceSelection source_selection_;

  std::vector<JobState> jobs_;  ///< FIFO submission order
  std::vector<SlaveState> slaves_;
  std::vector<util::Seconds> last_degraded_assign_;  ///< per rack
  std::size_t jobs_done_ = 0;
  RunResult result_;
  bool started_ = false;
  /// True once no more submissions can arrive (always true in snapshot
  /// runs); heartbeat loops stop when this holds and all jobs are done.
  bool admission_closed_ = true;
};

}  // namespace dfs::mapreduce
