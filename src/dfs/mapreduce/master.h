#pragma once

#include <vector>

#include "dfs/core/admission.h"
#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/fault_supervisor.h"
#include "dfs/mapreduce/map_phase.h"
#include "dfs/mapreduce/master_state.h"
#include "dfs/mapreduce/shuffle_phase.h"

namespace dfs::mapreduce {

/// The MapReduce master (Hadoop's JobTracker), reduced to the heartbeat
/// loop, job admission/FIFO, and the `core::SchedulerContext` facade. The
/// actual task lifecycles live in three phase engines composed over one
/// shared MasterState store:
///
/// - MapPhase — pending-task indexes, classification, launch/unlaunch
///   pacing accounting, speculation (the paper's Algorithms 1-3 mutate it
///   through the SchedulerContext assign_* calls);
/// - ShufflePhase — reduce assignment, partition fetches, processing;
/// - FaultSupervisor — heartbeat expiry, reaping, requeue, blacklist,
///   job abort, in-flight read re-planning.
class Master final : public core::SchedulerContext {
 public:
  Master(sim::Simulator& simulator, net::Network& network,
         const ClusterConfig& config, const storage::FailureScenario& failure,
         core::Scheduler& scheduler, util::Rng& rng,
         storage::SourceSelection source_selection =
             storage::SourceSelection::kRandom,
         storage::RecoveryCostModel cost_model =
             storage::RecoveryCostModel{});

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Register a job; it activates at spec.submit_time. In online mode this
  /// may also be called after start() — the cluster arrival generator admits
  /// jobs into the FIFO queue while the simulation runs.
  void submit(const JobInput& input);

  /// Start the per-slave heartbeat loops. Call once, before Simulator::run.
  void start();

  /// Online mode: while admission is open, heartbeats keep running (and
  /// submit() stays legal) after the current jobs drain. Call before
  /// start(); snapshot runs leave admission closed.
  void set_admission_open(bool open) { admission_open_ = open; }

  /// No further submissions will arrive; heartbeat loops stop once the
  /// remaining jobs drain.
  void finish_admission() { admission_open_ = false; }

  /// Install a job-queue ordering policy (non-owning; the caller keeps it
  /// alive for the master's lifetime). Null — the default — is the FIFO
  /// fast path: running_jobs() hands out submission order with no policy
  /// call at all, byte-identical to the pre-admission-seam master.
  void set_admission_policy(core::AdmissionPolicy* policy) {
    admission_policy_ = policy;
  }

  /// A node's storage and task slots went away (cluster lifecycle event).
  /// Pending map tasks whose last readable copy was on `node` become
  /// degraded; tasks already running are allowed to finish (the failure
  /// model is a DataNode/storage loss, as in the paper). With the fault
  /// layer on, in-flight degraded reads sourced from `node` are re-planned
  /// from the surviving stripe blocks, and non-degraded input fetches from
  /// it are killed and requeued.
  void on_node_failed(NodeId node);

  /// Fault layer only: the node's TaskTracker died too. Its heartbeats stop
  /// immediately; attempts running there are doomed (they will never finish)
  /// and their transfers cancelled, but the master only learns of the death
  /// — kills the attempts, requeues the tasks, re-executes lost map outputs
  /// — once the heartbeat-expiry window passes. Call right after
  /// on_node_failed(node).
  void on_compute_failed(NodeId node);

  /// The node's blocks have been rebuilt: it serves reads and heartbeats
  /// again. Pending degraded tasks whose input lived on `node` regain their
  /// locality.
  void on_node_repaired(NodeId node);

  bool all_jobs_done() const { return state_.jobs_done == state_.jobs.size(); }
  std::size_t jobs_submitted() const { return state_.jobs.size(); }
  std::size_t jobs_completed() const { return state_.jobs_done; }

  /// Fault layer: is the slave currently blacklisted (advertises no slots)?
  bool blacklisted(NodeId node) const {
    return state_.slave(node).blacklisted;
  }

  /// Collect the result after the simulation has drained.
  RunResult take_result();

  TaskHooks hooks;

  // --- core::SchedulerContext --------------------------------------------------
  util::Seconds now() const override;
  int tenant_of(core::JobId job) const override;
  int free_map_slots(NodeId slave) const override;
  bool has_unassigned_local(core::JobId job, NodeId slave) const override;
  bool has_unassigned_remote(core::JobId job, NodeId slave) const override;
  bool has_unassigned_degraded(core::JobId job) const override;
  void assign_local(core::JobId job, NodeId slave) override;
  void assign_remote(core::JobId job, NodeId slave) override;
  void assign_degraded(core::JobId job, NodeId slave) override;
  int degraded_affinity(core::JobId job, NodeId slave) const override;
  long launched_maps(core::JobId job) const override;
  long running_maps(core::JobId job) const override;
  long total_maps(core::JobId job) const override;
  long launched_degraded(core::JobId job) const override;
  long total_degraded(core::JobId job) const override;
  double launched_degraded_cost(core::JobId job) const override;
  double total_degraded_cost(core::JobId job) const override;
  util::Seconds local_work_seconds(NodeId slave) const override;
  util::Seconds mean_local_work_seconds() const override;
  util::Seconds time_since_last_degraded(RackId rack) const override;
  util::Seconds mean_time_since_last_degraded() const override;
  util::Seconds degraded_read_threshold() const override;
  RackId rack_of(NodeId slave) const override;

 protected:
  const std::vector<core::JobId>& running_jobs_ref() const override;

 private:
  void activate_job(std::size_t index);
  void start_heartbeat(NodeId slave);
  void on_heartbeat(NodeId slave);

  MasterState state_;
  MapPhase map_;
  ShufflePhase shuffle_;
  FaultSupervisor fault_;

  core::Scheduler& scheduler_;
  /// Optional job-queue ordering; null = FIFO fast path (no policy call).
  core::AdmissionPolicy* admission_policy_ = nullptr;
  util::Rng& rng_;
  storage::SourceSelection source_selection_;
  storage::RecoveryCostModel cost_model_;
  bool started_ = false;
  /// Scratch for running_jobs(): filled per call, valid until the next one.
  mutable std::vector<core::JobId> running_jobs_scratch_;
  /// True while further submissions may arrive (online mode); heartbeat
  /// loops keep running through idle periods until admission closes and all
  /// jobs are done. Snapshot runs never open it.
  bool admission_open_ = false;
};

}  // namespace dfs::mapreduce
