#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/util/rng.h"

namespace dfs::mapreduce {

/// Optional callbacks fired at simulated task boundaries; the functional
/// engine (dfs::engine) uses them to run real map/reduce work — including
/// real erasure-decode for degraded tasks — at the times the simulator says
/// those tasks execute.
struct TaskHooks {
  std::function<void(const MapTaskRecord&)> on_map_finish;
  std::function<void(const ReduceTaskRecord&)> on_reduce_finish;
  std::function<void(const JobMetrics&)> on_job_finish;
};

/// The MapReduce master (Hadoop's JobTracker): maintains the FIFO job queue,
/// answers slave heartbeats by delegating map-task choice to the pluggable
/// Scheduler (Algorithms 1-3 live in dfs::core), assigns reduce tasks, and
/// drives task execution — input fetches and shuffle transfers through the
/// flow-level network, processing through the event queue.
class Master final : public core::SchedulerContext {
 public:
  Master(sim::Simulator& simulator, net::Network& network,
         const ClusterConfig& config, const storage::FailureScenario& failure,
         core::Scheduler& scheduler, util::Rng& rng,
         storage::SourceSelection source_selection =
             storage::SourceSelection::kRandom);

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Register a job; it activates at spec.submit_time. In online mode this
  /// may also be called after start() — the cluster arrival generator admits
  /// jobs into the FIFO queue while the simulation runs.
  void submit(const JobInput& input);

  /// Start the per-slave heartbeat loops. Call once, before Simulator::run.
  void start();

  /// Online mode: heartbeats keep running (and submit() stays legal) after
  /// the current jobs drain, until finish_admission() is called. Call before
  /// start().
  void set_online(bool online) { admission_closed_ = !online; }

  /// No further submissions will arrive; heartbeat loops stop once the
  /// remaining jobs drain.
  void finish_admission() { admission_closed_ = true; }

  /// A node's storage and task slots went away (cluster lifecycle event).
  /// Pending map tasks whose last readable copy was on `node` become
  /// degraded; tasks already running are allowed to finish (the failure
  /// model is a DataNode/storage loss, as in the paper). With the fault
  /// layer on, in-flight degraded reads sourced from `node` are re-planned
  /// from the surviving stripe blocks, and non-degraded input fetches from
  /// it are killed and requeued.
  void on_node_failed(NodeId node);

  /// Fault layer only: the node's TaskTracker died too. Its heartbeats stop
  /// immediately; attempts running there are doomed (they will never finish)
  /// and their transfers cancelled, but the master only learns of the death
  /// — kills the attempts, requeues the tasks, re-executes lost map outputs
  /// — once the heartbeat-expiry window passes. Call right after
  /// on_node_failed(node).
  void on_compute_failed(NodeId node);

  /// The node's blocks have been rebuilt: it serves reads and heartbeats
  /// again. Pending degraded tasks whose input lived on `node` regain their
  /// locality.
  void on_node_repaired(NodeId node);

  bool all_jobs_done() const { return jobs_done_ == jobs_.size(); }
  std::size_t jobs_submitted() const { return jobs_.size(); }
  std::size_t jobs_completed() const { return jobs_done_; }

  /// Fault layer: is the slave currently blacklisted (advertises no slots)?
  bool blacklisted(NodeId node) const {
    return slaves_[static_cast<std::size_t>(node)].blacklisted;
  }

  /// Collect the result after the simulation has drained.
  RunResult take_result();

  TaskHooks hooks;

  // --- core::SchedulerContext --------------------------------------------------
  util::Seconds now() const override;
  std::vector<core::JobId> running_jobs() const override;
  int free_map_slots(NodeId slave) const override;
  bool has_unassigned_local(core::JobId job, NodeId slave) const override;
  bool has_unassigned_remote(core::JobId job, NodeId slave) const override;
  bool has_unassigned_degraded(core::JobId job) const override;
  void assign_local(core::JobId job, NodeId slave) override;
  void assign_remote(core::JobId job, NodeId slave) override;
  void assign_degraded(core::JobId job, NodeId slave) override;
  int degraded_affinity(core::JobId job, NodeId slave) const override;
  long launched_maps(core::JobId job) const override;
  long running_maps(core::JobId job) const override;
  long total_maps(core::JobId job) const override;
  long launched_degraded(core::JobId job) const override;
  long total_degraded(core::JobId job) const override;
  util::Seconds local_work_seconds(NodeId slave) const override;
  util::Seconds mean_local_work_seconds() const override;
  util::Seconds time_since_last_degraded(RackId rack) const override;
  util::Seconds mean_time_since_last_degraded() const override;
  util::Seconds degraded_read_threshold() const override;
  RackId rack_of(NodeId slave) const override;

 private:
  struct MapTaskState {
    storage::BlockId block{};
    NodeId home = -1;  ///< node storing the native block (may be failed)
    bool lost = false;
    bool assigned = false;
    /// Membership flag for JobState::pending_degraded: O(1) to test and to
    /// clear. Cleared entries stay in the deque as stale and are skipped
    /// lazily on pop (same scheme as pending_by_node).
    bool in_degraded_pool = false;
    /// Bumped on every pool push; a deque entry is live only when its
    /// recorded generation matches. Without it, a task that left the pool
    /// (repair) and re-entered (new failure) would revive its old stale
    /// entry and jump the queue instead of re-joining at the back.
    unsigned degraded_pool_gen = 0;
    bool done = false;        ///< some attempt has completed
    bool has_backup = false;  ///< a speculative copy was launched
    int record = -1;  ///< index into result_.map_tasks of the first attempt
    int attempts = 0;  ///< attempts launched (fault layer; backups excluded)
    int failures = 0;  ///< transient attempt failures so far
    /// Kind the current non-backup attempt launched as; all pacing-counter
    /// (m/m_d) unlaunch accounting uses this, so a task whose classification
    /// drifts while running (e.g. its copy fails mid-attempt) still reverses
    /// exactly what its launch added.
    MapTaskKind launched_kind = MapTaskKind::kNodeLocal;
    /// Surviving nodes a readable copy of the input can be fetched from.
    /// One entry (the native home) for k > 1 codes; every surviving shard
    /// holder for k == 1 (replication) layouts, where any copy serves.
    std::vector<NodeId> locations;
    std::vector<RackId> location_racks;  ///< distinct racks of `locations`
  };

  /// One in-flight shuffle fetch of a reduce attempt (fault layer): enough
  /// to cancel it when either endpoint dies and to retry it later.
  struct InflightFetch {
    net::FlowId flow = 0;
    int map_idx = -1;
    NodeId src = -1;
  };

  struct ReduceTaskState {
    bool assigned = false;
    NodeId node = -1;
    int partitions_fetched = 0;
    bool processing = false;
    int record = -1;
    int attempts = 0;  ///< attempts launched (fault layer)
    int failures = 0;  ///< transient attempt failures so far
    /// Bumped whenever the current attempt is torn down; scheduled events
    /// carry the epoch they were armed under and no-op on a mismatch.
    int epoch = 0;
    /// The attempt's node compute-failed but the master has not yet noticed;
    /// new work (fetch starts, processing) is suppressed until reaped.
    bool doomed = false;
    /// Per-map-task fetched flags (sized total_m when the attempt starts);
    /// partitions_fetched counts the set entries.
    std::vector<char> fetched;
    std::vector<InflightFetch> inflight;
  };

  struct JobState {
    JobSpec spec;
    std::shared_ptr<const storage::StorageLayout> layout;
    std::shared_ptr<const ec::ErasureCode> code;
    std::unique_ptr<storage::DegradedReadPlanner> planner;
    util::Rng rng;  ///< per-job stream for task-duration draws
    bool active = false;
    bool finished = false;

    std::vector<MapTaskState> maps;
    /// Per-node queues of pending map-task indices; a task appears in the
    /// queue of every node holding a readable copy. Entries become stale
    /// when the task is assigned elsewhere and are skipped lazily on pop;
    /// `pending_count_by_node` stays exact.
    std::vector<std::deque<int>> pending_by_node;
    std::vector<int> pending_count_by_node;  ///< exact pending per node
    std::vector<int> pending_by_rack;  ///< pending tasks with a copy in rack
    /// Queue of degraded pending map tasks (index, push generation).
    /// Entries go stale when a repair reclassifies the task (its
    /// `in_degraded_pool` flag is cleared in O(1) instead of an O(n) deque
    /// erase) or when the task re-enters the pool under a newer generation;
    /// stale entries are skipped lazily on pop and
    /// `pending_degraded_count` stays exact.
    std::deque<std::pair<int, unsigned>> pending_degraded;
    long pending_degraded_count = 0;  ///< exact live entries in the pool
    long pending_nondegraded = 0;
    long m = 0;    ///< launched map tasks
    long md = 0;   ///< launched degraded tasks
    long total_m = 0;
    long total_md = 0;
    long maps_done = 0;
    double completed_map_runtime_sum = 0.0;  ///< winners only, for speculation

    std::vector<ReduceTaskState> reduces;
    int reduces_assigned = 0;
    int reduces_done = 0;
    std::vector<int> completed_map_records;

    JobMetrics metrics;
  };

  struct SlaveState {
    bool alive = true;
    int free_map_slots = 0;
    int free_reduce_slots = 0;
    // Fault layer only (inert otherwise):
    bool heartbeating = true;  ///< compute alive; false between death & detection
    /// Bumped on repair; pending detection/unblacklist timers armed under an
    /// older incarnation no-op.
    int incarnation = 0;
    util::Seconds last_heartbeat = 0.0;
    util::Seconds compute_fail_time = -1.0;
    int recent_failures = 0;  ///< attempt failures since last (un)blacklist
    bool blacklisted = false;
  };

  /// A live map attempt (fault layer bookkeeping; maintained even when the
  /// layer is off — pure state, no events). Keyed by record index in
  /// map_attempts_; an entry is erased when the attempt finishes, loses its
  /// race, fails, or is killed — stale scheduled callbacks look the key up
  /// and no-op when it is gone.
  struct MapAttempt {
    core::JobId job = -1;
    int map_idx = -1;
    bool backup = false;
    /// Node compute-failed; attempt will be finalized (killed) at detection.
    bool doomed = false;
    std::vector<net::FlowId> flows;  ///< in-flight input fetches
  };

  JobState& job(core::JobId id);
  const JobState& job(core::JobId id) const;
  SlaveState& slave(NodeId id) { return slaves_[static_cast<std::size_t>(id)]; }

  void activate_job(std::size_t index);
  void start_heartbeat(NodeId s);
  void on_heartbeat(NodeId s);
  /// Removes `node` as a readable location of job `j`'s pending tasks;
  /// tasks left with no location join the degraded pool.
  void reclassify_after_failure(JobState& j, NodeId node);
  /// Re-adds `node` as a readable location; pending degraded tasks whose
  /// input is back become local again.
  void reclassify_after_repair(JobState& j, NodeId node);
  /// Pops the next pending (unassigned) task queued at `node`; -1 if none.
  int pop_pending(JobState& j, NodeId node);
  /// Marks a task assigned and updates every pending index.
  void retire_pending(JobState& j, int map_idx);
  void start_map(JobState& j, int map_idx, NodeId s, MapTaskKind kind,
                 NodeId fetch_source, bool backup = false);
  void on_map_input_ready(core::JobId job_id, int record_idx,
                          int map_idx);
  void on_map_complete(core::JobId job_id, int record_idx, int map_idx);
  void assign_reduce_tasks(NodeId s);
  void try_speculate(NodeId s);
  void start_partition_fetch(JobState& j, int reduce_idx, int map_record_idx);
  void on_partition_fetched(core::JobId job_id, int reduce_idx, int map_idx,
                            int epoch);
  void maybe_start_reduce_processing(JobState& j, int reduce_idx);
  void on_reduce_complete(core::JobId job_id, int reduce_idx, int epoch);
  void maybe_finish_job(JobState& j);
  util::Bytes partition_bytes(const JobState& j) const;

  // --- fault layer ---------------------------------------------------------
  /// Heartbeat expiry fired: the master now knows `node` is dead.
  void declare_slave_dead(NodeId node);
  /// Kill doomed attempts on `node`, requeue their tasks, re-execute
  /// completed maps whose outputs died with the node.
  void reap_dead_node(NodeId node);
  /// Reverse what a non-backup launch added to the pacing counters.
  void unlaunch_map(JobState& j, MapTaskState& t);
  /// Return a task to the correct pending pools (degraded vs per-node),
  /// keeping total_md and the rack indexes exact.
  void requeue_map_task(JobState& j, int map_idx);
  /// Enqueue a task into the degraded pool, keeping the membership flag and
  /// the exact count in sync.
  void push_degraded(JobState& j, int map_idx);
  /// A completed map's output died with its node: undo the completion so the
  /// task runs again (or promote a still-running backup attempt to primary).
  void revert_completed_map(JobState& j, int map_idx, int record_idx);
  /// Record index of a live non-finalized attempt of (job, map_idx), or -1.
  int find_running_attempt(core::JobId job_id, int map_idx) const;
  void on_map_attempt_failed(core::JobId job_id, int record_idx, int map_idx);
  void on_reduce_attempt_failed(core::JobId job_id, int reduce_idx, int epoch);
  /// Tear the current reduce attempt down so the task can be reassigned.
  void reset_reduce_attempt(JobState& j, int reduce_idx);
  /// Abort the job after a task exhausted max_attempts: kill every live
  /// attempt, mark the job failed, keep the FIFO queue moving.
  void abort_job(JobState& j);
  /// Count an attempt failure on `node` toward its blacklist threshold.
  void note_attempt_failure(NodeId node);
  /// Re-plan in-flight degraded reads (and kill doomed input fetches) that
  /// were sourcing data from the newly-failed `node`.
  void replan_inflight_reads(NodeId node);
  /// map_attempts_ keys (== record indexes) sorted ascending, optionally
  /// filtered; sorted iteration keeps the failure paths deterministic.
  std::vector<int> sorted_attempt_records() const;

  sim::Simulator& sim_;
  net::Network& net_;
  const ClusterConfig& cfg_;
  const storage::FailureScenario& failure_;
  core::Scheduler& scheduler_;
  util::Rng& rng_;
  storage::SourceSelection source_selection_;

  std::vector<JobState> jobs_;  ///< FIFO submission order
  std::vector<SlaveState> slaves_;
  /// Live map attempts by record index (see MapAttempt).
  std::unordered_map<int, MapAttempt> map_attempts_;
  std::vector<util::Seconds> last_degraded_assign_;  ///< per rack
  std::size_t jobs_done_ = 0;
  RunResult result_;
  bool started_ = false;
  /// True once no more submissions can arrive (always true in snapshot
  /// runs); heartbeat loops stop when this holds and all jobs are done.
  bool admission_closed_ = true;
};

}  // namespace dfs::mapreduce
