#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfs::mapreduce {

/// Per-slave processing-speed profile, materialized into
/// ClusterConfig::node_time_scale (a factor of 2.0 means tasks on that node
/// take twice as long — the related-machine model).
///
/// Three profiles:
///  - uniform: every node at 1.0. materialize() returns an empty vector, the
///    exact representation inert configs already use, so a uniform profile
///    is byte-identical to never having touched the speed model.
///  - bimodal: `slow_fraction` of the nodes run `slowdown`x slower. Slow
///    nodes are picked by the same evenly-spaced integer ramp as
///    StragglerConfig::is_straggler (zero RNG draws); a non-zero `seed`
///    instead deals the slow factors by a seeded shuffle, deterministic from
///    the seed and independent of the simulation RNG stream.
///  - explicit vector: per-node factors, tiled cyclically when the cluster
///    is larger than the vector (so "vector:1,2" alternates fast/slow).
struct SpeedModel {
  enum class Profile { kUniform, kBimodal, kExplicit };

  Profile profile = Profile::kUniform;
  double slow_fraction = 0.0;  ///< bimodal: fraction of slow nodes
  double slowdown = 1.0;       ///< bimodal: factor applied to slow nodes
  std::uint64_t seed = 0;      ///< bimodal: 0 = integer ramp, else shuffle
  std::vector<double> factors; ///< explicit profile only

  bool uniform() const { return profile == Profile::kUniform; }

  /// Parse a --speed-profile spec:
  ///   "uniform" | "bimodal:FRAC,SLOWDOWN[,SEED]" | "vector:F0,F1,..."
  /// Throws std::invalid_argument on malformed specs, fractions outside
  /// [0, 1], or factors <= 0.
  static SpeedModel parse(const std::string& spec);

  /// Per-node time-scale factors for a cluster of `num_nodes` nodes; empty
  /// for the uniform profile. Deterministic: same model + size, same vector.
  std::vector<double> materialize(int num_nodes) const;

  /// Canonical spec string (round-trips through parse).
  std::string describe() const;
};

}  // namespace dfs::mapreduce
