#include "dfs/mapreduce/metrics.h"

#include <cassert>
#include <stdexcept>

namespace dfs::mapreduce {

const char* to_string(MapTaskKind kind) {
  switch (kind) {
    case MapTaskKind::kNodeLocal:
      return "node-local";
    case MapTaskKind::kRackLocal:
      return "rack-local";
    case MapTaskKind::kRemote:
      return "remote";
    case MapTaskKind::kDegraded:
      return "degraded";
  }
  return "?";
}

const char* to_string(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kSuccess:
      return "success";
    case AttemptOutcome::kLostRace:
      return "lost-race";
    case AttemptOutcome::kKilled:
      return "killed";
    case AttemptOutcome::kFailed:
      return "failed";
  }
  return "?";
}

double RunResult::mean_map_runtime(MapTaskKind kind) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.kind != kind) continue;
    sum += t.runtime();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RunResult::mean_normal_map_runtime() const {
  double sum = 0.0;
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.kind == MapTaskKind::kDegraded) continue;
    sum += t.runtime();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RunResult::mean_degraded_read_time() const {
  double sum = 0.0;
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.kind != MapTaskKind::kDegraded) continue;
    sum += t.degraded_read_time();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RunResult::degraded_fetch_blocks() const {
  double sum = 0.0;
  for (const auto& t : map_tasks) {
    if (t.kind != MapTaskKind::kDegraded) continue;
    for (const auto& src : t.sources) sum += src.fraction;
  }
  return sum;
}

double RunResult::mean_degraded_fetch_blocks() const {
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.kind == MapTaskKind::kDegraded && !t.unrecoverable) ++count;
  }
  return count > 0 ? degraded_fetch_blocks() / count : 0.0;
}

double RunResult::mean_reduce_runtime() const {
  double sum = 0.0;
  int count = 0;
  for (const auto& t : reduce_tasks) {
    sum += t.runtime();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

int RunResult::count_map_tasks(MapTaskKind kind) const {
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.kind == kind) ++count;
  }
  return count;
}

int RunResult::speculative_attempts() const {
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.speculative) ++count;
  }
  return count;
}

int RunResult::speculative_losses() const {
  int count = 0;
  for (const auto& t : map_tasks) {
    if (!t.winner) ++count;
  }
  return count;
}

util::Seconds RunResult::single_job_runtime() const {
  if (jobs.size() != 1) {
    throw std::logic_error("single_job_runtime requires exactly one job");
  }
  return jobs.front().runtime();
}

int RunResult::count_map_attempts(AttemptOutcome outcome) const {
  int count = 0;
  for (const auto& t : map_tasks) {
    if (t.outcome == outcome) ++count;
  }
  return count;
}

int RunResult::count_reduce_attempts(AttemptOutcome outcome) const {
  int count = 0;
  for (const auto& t : reduce_tasks) {
    if (t.outcome == outcome) ++count;
  }
  return count;
}

int RunResult::jobs_failed() const {
  int count = 0;
  for (const auto& j : jobs) {
    if (j.failed) ++count;
  }
  return count;
}

util::Seconds RunResult::mean_detection_latency() const {
  if (detections.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& d : detections) sum += d.latency();
  return sum / static_cast<double>(detections.size());
}

}  // namespace dfs::mapreduce
