#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/fetch_supervisor.h"
#include "dfs/net/network.h"

namespace dfs::mapreduce {

/// A live map attempt (fault layer bookkeeping; maintained even when the
/// layer is off — pure state, no events). Keyed by record index in
/// MasterState::map_attempts; an entry is erased when the attempt finishes,
/// loses its race, fails, or is killed — stale scheduled callbacks look the
/// key up and no-op when it is gone.
struct MapAttempt {
  core::JobId job = -1;
  int map_idx = -1;
  bool backup = false;
  /// Node compute-failed; attempt will be finalized (killed) at detection.
  bool doomed = false;
  std::vector<net::FlowId> flows;  ///< in-flight input fetches
  /// Supervised degraded read in flight (fetch supervisor active only);
  /// 0 when none. Teardown must cancel it through the supervisor.
  ReadId read = 0;
};

/// Flat registry of the live map attempts, keyed by record index.
///
/// Record indexes are handed out densely (every launch appends one record to
/// RunResult::map_tasks), so a record -> slot vector replaces the hash map
/// the registry used to be: find/emplace/erase are O(1) array steps with no
/// hashing on the per-event hot path (every input-ready/complete event does
/// a lookup — millions per 10k-slave run). Slots are free-listed; an
/// intrusive doubly-linked list threaded through them in insertion order is
/// automatically ascending-record order (records grow monotonically), so the
/// kill/replan sweeps get their deterministic sorted iteration for free
/// instead of snapshotting and sorting hash-map keys.
class AttemptSlab {
 public:
  std::size_t size() const { return live_; }

  /// Live attempt for `record`, or nullptr.
  MapAttempt* find(int record) {
    const int slot = slot_of(record);
    return slot >= 0 ? &slots_[static_cast<std::size_t>(slot)].attempt
                     : nullptr;
  }
  const MapAttempt* find(int record) const {
    const int slot = slot_of(record);
    return slot >= 0 ? &slots_[static_cast<std::size_t>(slot)].attempt
                     : nullptr;
  }

  /// Live attempt for `record`; must exist.
  MapAttempt& at(int record) {
    MapAttempt* a = find(record);
    assert(a != nullptr && "AttemptSlab::at of a dead record");
    return *a;
  }
  const MapAttempt& at(int record) const {
    const MapAttempt* a = find(record);
    assert(a != nullptr && "AttemptSlab::at of a dead record");
    return *a;
  }

  /// Register the attempt under `record`. Records must arrive in strictly
  /// increasing order (they are RunResult::map_tasks indexes, appended at
  /// launch) — that is what keeps insertion order == ascending record order.
  MapAttempt& emplace(int record, MapAttempt attempt) {
    assert(record >= min_next_record_ &&
           "AttemptSlab records must be handed out in increasing order");
    min_next_record_ = record + 1;
    if (static_cast<std::size_t>(record) >= slot_of_record_.size()) {
      slot_of_record_.resize(static_cast<std::size_t>(record) + 1, -1);
    }
    int slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<int>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.attempt = std::move(attempt);
    s.record = record;
    s.prev = tail_;
    s.next = -1;
    if (tail_ >= 0) {
      slots_[static_cast<std::size_t>(tail_)].next = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    slot_of_record_[static_cast<std::size_t>(record)] = slot;
    ++live_;
    return s.attempt;
  }

  /// Drop `record`'s attempt. Returns false when it was not live (erasing
  /// twice is allowed, matching unordered_map::erase(key)).
  bool erase(int record) {
    const int slot = slot_of(record);
    if (slot < 0) return false;
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.prev >= 0) {
      slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    } else {
      head_ = s.next;
    }
    if (s.next >= 0) {
      slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    } else {
      tail_ = s.prev;
    }
    s.record = -1;
    s.attempt = MapAttempt{};  // release flow vectors eagerly
    slot_of_record_[static_cast<std::size_t>(record)] = -1;
    free_.push_back(slot);
    --live_;
    return true;
  }

  /// Live record indexes in ascending order. The sweeps iterate this
  /// snapshot and re-find each record, so a sweep body may erase entries
  /// (including ones not yet visited) without invalidating the walk.
  std::vector<int> records() const {
    std::vector<int> out;
    out.reserve(live_);
    for (int slot = head_; slot >= 0;
         slot = slots_[static_cast<std::size_t>(slot)].next) {
      out.push_back(slots_[static_cast<std::size_t>(slot)].record);
    }
    return out;
  }

 private:
  struct Slot {
    MapAttempt attempt;
    int record = -1;  ///< -1 when the slot is free
    int prev = -1;    ///< insertion-order list, slot indexes
    int next = -1;
  };

  int slot_of(int record) const {
    if (record < 0 ||
        static_cast<std::size_t>(record) >= slot_of_record_.size()) {
      return -1;
    }
    return slot_of_record_[static_cast<std::size_t>(record)];
  }

  std::vector<Slot> slots_;
  std::vector<int> slot_of_record_;  ///< record -> slot, -1 when dead
  std::vector<int> free_;
  int head_ = -1;  ///< insertion order == ascending record order
  int tail_ = -1;
  std::size_t live_ = 0;
  int min_next_record_ = 0;
};

}  // namespace dfs::mapreduce
