#pragma once

#include "dfs/mapreduce/master_state.h"

namespace dfs::mapreduce {

class ShufflePhase;
class FaultSupervisor;

/// Map-side phase engine: splits an activated job into map tasks, maintains
/// the pending-task indexes (per-node pools, rack counts, the degraded pool)
/// and their classification as the cluster's health changes, launches
/// attempts (local / rack-local / remote / degraded) with exact pacing-
/// counter (m, m_d) accounting, and runs speculative execution.
///
/// The assignment entry points implement the `core::SchedulerContext`
/// mutations the pluggable Scheduler (Algorithms 1-3) drives on every
/// heartbeat; the Master facade delegates them here.
class MapPhase {
 public:
  explicit MapPhase(MasterState& state) : s_(state) {}

  /// Post-construction wiring: map completion feeds the shuffle, and
  /// transient-crash injection reports to the fault supervisor.
  void wire(ShufflePhase& shuffle, FaultSupervisor& fault) {
    shuffle_ = &shuffle;
    fault_ = &fault;
  }

  /// Split the job into map tasks (one per native block) and build the
  /// pending indexes; tasks without a surviving readable copy start in the
  /// degraded pool (§II-B).
  void activate_job(JobState& j);

  /// Removes `node` as a readable location of job `j`'s pending tasks;
  /// tasks left with no location join the degraded pool.
  void reclassify_after_failure(JobState& j, NodeId node);
  /// Re-adds `node` as a readable location; pending degraded tasks whose
  /// input is back become local again.
  void reclassify_after_repair(JobState& j, NodeId node);

  // Scheduler-driven assignment (the SchedulerContext mutations).
  void assign_local(core::JobId id, NodeId slave);
  void assign_remote(core::JobId id, NodeId slave);
  void assign_degraded(core::JobId id, NodeId slave);

  /// Launch an attempt of `map_idx` on `slave`: registers it in the attempt
  /// table, starts the input fetch (parallel stripe reads for degraded
  /// tasks), and advances the pacing counters unless `backup`.
  void start_map(JobState& j, int map_idx, NodeId slave, MapTaskKind kind,
                 NodeId fetch_source, bool backup = false);
  void on_map_input_ready(core::JobId job_id, int record_idx, int map_idx);
  void on_map_complete(core::JobId job_id, int record_idx, int map_idx);

  /// Back up the longest-running sufficiently-overdue attempt on `slave`.
  void try_speculate(NodeId slave);

  /// Reverse what a non-backup launch added to the pacing counters.
  void unlaunch_map(JobState& j, MapTaskState& t);

 private:
  /// Pops the next pending (unassigned) task queued at `node`; -1 if none.
  int pop_pending(JobState& j, NodeId node);
  /// Marks a task assigned and updates every pending index.
  void retire_pending(JobState& j, int map_idx);

  MasterState& s_;
  ShufflePhase* shuffle_ = nullptr;
  FaultSupervisor* fault_ = nullptr;
};

}  // namespace dfs::mapreduce
