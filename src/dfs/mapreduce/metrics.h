#pragma once

#include <vector>

#include "dfs/mapreduce/types.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/layout.h"
#include "dfs/util/units.h"

namespace dfs::mapreduce {

/// Everything recorded about one executed map task attempt.
struct MapTaskRecord {
  TaskId id = -1;
  JobId job = -1;
  storage::BlockId block{};
  int map_index = -1;  ///< the task's index within its job
  int attempt = 0;     ///< 0 for the first attempt of the task
  NodeId exec_node = -1;
  /// Where the input block (or replica) was fetched from; == exec_node for
  /// node-local tasks, unset (-1) for degraded tasks (see `sources`).
  NodeId source_node = -1;
  MapTaskKind kind = MapTaskKind::kNodeLocal;
  /// The executing node's speed factor (ClusterConfig::time_scale) at launch
  /// — the attempt-trace view of the speed model. 1.0 on uniform clusters.
  double time_scale = 1.0;
  util::Seconds assign_time = -1.0;
  util::Seconds fetch_done_time = -1.0;  ///< input available (== assign for node-local)
  util::Seconds finish_time = -1.0;
  std::vector<storage::DegradedSource> sources;  ///< degraded tasks only
  bool unrecoverable = false;  ///< stripe lost more blocks than tolerable
  bool speculative = false;    ///< backup copy launched by speculation
  bool winner = true;          ///< finished first among its task's attempts
  AttemptOutcome outcome = AttemptOutcome::kSuccess;
  /// The attempt won, but its map output later died with its node and the
  /// task was re-executed (lost-map-output recovery).
  bool output_lost = false;

  /// Paper definition (§VI): launch to completion, including transmission.
  util::Seconds runtime() const { return finish_time - assign_time; }
  /// Degraded read time (§V-C): request issue until the k-th block arrives.
  util::Seconds degraded_read_time() const {
    return fetch_done_time - assign_time;
  }
};

/// How one supervised degraded-read fetch attempt ended (fetch supervisor;
/// recorded only when it is active).
enum class FetchOutcome {
  kCompleted,        ///< all bytes arrived
  kCancelledQuorum,  ///< a loser: quorum completed without it
  kTimeout,          ///< exceeded FetchPolicy::timeout
  kTransientFailure, ///< injected transient fetch failure
  kSourceDead,       ///< the source node failed mid-fetch
  kAbandoned,        ///< its read was torn down (attempt kill / job abort)
};

/// One supervised degraded-read fetch attempt, for tail-latency metrics.
struct FetchRecord {
  util::Seconds start = -1.0;  ///< attempt launch (service wait included)
  util::Seconds end = -1.0;
  NodeId src = -1;
  NodeId dst = -1;
  double fraction = 1.0;  ///< of a block actually requested
  bool hedge = false;     ///< launched as an extra (hedge) source
  int attempt = 0;        ///< 0 for the first try of this source
  FetchOutcome outcome = FetchOutcome::kCompleted;

  util::Seconds latency() const { return end - start; }
};

/// Fetch-supervisor counters (all zero when it is inactive).
struct HedgeStats {
  std::uint64_t reads_started = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t reads_failed = 0;     ///< no recovery option left
  std::uint64_t reads_cancelled = 0;  ///< torn down by the caller
  std::uint64_t fetches_launched = 0;
  std::uint64_t hedges_launched = 0;   ///< of those, extra (hedge) sources
  std::uint64_t losers_cancelled = 0;  ///< outstanding fetches at quorum
  std::uint64_t fetch_timeouts = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t fallback_replans = 0;  ///< after source exhaustion or death
  /// Reads that spent their whole retry/reset budget and fell back to a
  /// plain unsupervised fetch (structurally recoverable stripes never fail).
  std::uint64_t last_resort_reads = 0;
};

/// Everything recorded about one executed reduce task attempt.
struct ReduceTaskRecord {
  TaskId id = -1;
  JobId job = -1;
  int attempt = 0;  ///< 0 for the first attempt of the task
  NodeId exec_node = -1;
  util::Seconds assign_time = -1.0;
  util::Seconds shuffle_done_time = -1.0;  ///< all partitions fetched
  util::Seconds process_start_time = -1.0;
  util::Seconds finish_time = -1.0;
  AttemptOutcome outcome = AttemptOutcome::kSuccess;

  util::Seconds runtime() const { return finish_time - assign_time; }
};

/// Per-job milestones and counters.
struct JobMetrics {
  JobId id = -1;
  int tenant = 0;  ///< tenant class (JobSpec::tenant)
  util::Seconds submit_time = 0.0;
  util::Seconds first_map_launch = -1.0;
  util::Seconds map_phase_end = -1.0;
  util::Seconds finish_time = -1.0;
  int local_tasks = 0;   ///< node-local + rack-local
  int remote_tasks = 0;
  int degraded_tasks = 0;
  /// Aborted after a task exhausted its attempts; finish_time is the abort
  /// time and the job produced no output.
  bool failed = false;

  /// The paper's MapReduce runtime: first map launch to last reduce end.
  util::Seconds runtime() const { return finish_time - first_map_launch; }
  /// Queueing-inclusive latency, used for multi-job fairness discussions.
  util::Seconds latency() const { return finish_time - submit_time; }
};

/// One heartbeat-expiry detection: a slave's compute died at fail_time and
/// the master noticed (declared it dead, reaped its attempts) at detect_time.
struct DetectionRecord {
  NodeId node = -1;
  util::Seconds fail_time = -1.0;
  util::Seconds detect_time = -1.0;

  util::Seconds latency() const { return detect_time - fail_time; }
};

/// Full outcome of one simulated run.
struct RunResult {
  std::vector<MapTaskRecord> map_tasks;
  std::vector<ReduceTaskRecord> reduce_tasks;
  std::vector<JobMetrics> jobs;
  std::vector<DetectionRecord> detections;  ///< declared slave deaths
  /// Supervised degraded-read fetch attempts (empty when the fetch
  /// supervisor is inactive).
  std::vector<FetchRecord> degraded_fetches;
  HedgeStats hedge;  ///< fetch-supervisor counters (zero when inactive)
  int blacklist_events = 0;  ///< slaves blacklisted (re-blacklists count)
  util::Seconds makespan = 0.0;
  bool data_loss = false;  ///< some block was unrecoverable

  // --- aggregation helpers used by the benches -------------------------------
  /// Mean runtime of map tasks of the given kind (over all jobs); 0 if none.
  double mean_map_runtime(MapTaskKind kind) const;
  /// Mean runtime of "normal" map tasks: local + remote (Table I row 1).
  double mean_normal_map_runtime() const;
  /// Mean degraded read time over degraded tasks; 0 if none.
  double mean_degraded_read_time() const;
  /// Total blocks downloaded by degraded reads (sum of per-source fetch
  /// fractions over every degraded attempt): k per read for MDS codes, less
  /// for locality/sub-shard codes (LRC, Hitchhiker-XOR).
  double degraded_fetch_blocks() const;
  /// degraded_fetch_blocks() per degraded attempt; 0 if none ran.
  double mean_degraded_fetch_blocks() const;
  double mean_reduce_runtime() const;
  int count_map_tasks(MapTaskKind kind) const;
  /// Speculative backup attempts launched / wasted (lost the race).
  int speculative_attempts() const;
  int speculative_losses() const;
  /// Runtime of the single job in a single-job run.
  util::Seconds single_job_runtime() const;
  // Fault-tolerance accounting (all zero when the fault layer is off).
  int count_map_attempts(AttemptOutcome outcome) const;
  int count_reduce_attempts(AttemptOutcome outcome) const;
  int jobs_failed() const;
  /// Mean heartbeat-expiry detection latency; 0 if no slave death was
  /// detected.
  util::Seconds mean_detection_latency() const;
};

}  // namespace dfs::mapreduce
