#include "dfs/mapreduce/master_state.h"

#include <algorithm>

namespace dfs::mapreduce {

void MasterState::maybe_finish_job(JobState& j) {
  if (j.finished || j.maps_done != j.total_m ||
      j.reduces_done != j.spec.num_reducers) {
    return;
  }
  j.finished = true;
  j.metrics.finish_time = sim.now();
  ++jobs_done;
  retire_job(id_of(j));
  if (hooks->on_job_finish) hooks->on_job_finish(j.metrics);
}

void MasterState::retire_job(core::JobId id) {
  assert(job(id).finished);
  const auto it = std::lower_bound(active_jobs.begin(), active_jobs.end(), id);
  if (it != active_jobs.end() && *it == id) active_jobs.erase(it);
  job(id).release_scheduling_state();
}

}  // namespace dfs::mapreduce
