#include "dfs/mapreduce/master_state.h"

#include <algorithm>

namespace dfs::mapreduce {

std::vector<int> MasterState::sorted_attempt_records() const {
  std::vector<int> keys;
  keys.reserve(map_attempts.size());
  for (const auto& [record_idx, a] : map_attempts) keys.push_back(record_idx);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void MasterState::maybe_finish_job(JobState& j) {
  if (j.finished || j.maps_done != j.total_m ||
      j.reduces_done != j.spec.num_reducers) {
    return;
  }
  j.finished = true;
  j.metrics.finish_time = sim.now();
  ++jobs_done;
  if (hooks->on_job_finish) hooks->on_job_finish(j.metrics);
}

}  // namespace dfs::mapreduce
