#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/util/rng.h"

namespace dfs::mapreduce {

/// Handle to one supervised degraded read. 0 is never issued.
using ReadId = std::uint64_t;

/// What a supervised read hands back to its owner on completion.
struct ReadOutcome {
  /// False: no recovery option left after exhausting fallbacks — the owner
  /// should treat the block as unrecoverable.
  bool ok = false;
  /// The fetches that actually completed and form the reconstruction quorum
  /// (in completion order). Replaces the attempt record's planned sources.
  std::vector<storage::DegradedSource> sources;
};

/// Supervises degraded-read fetches: hedging with cancel-on-quorum, per-fetch
/// timeouts, bounded retries with exponential backoff, fallback replanning
/// when a source is exhausted or its node dies, and storage fault injection
/// (straggler service jitter, transient fetch failures).
///
/// The supervisor is self-contained over the simulator, the network, the
/// failure scenario, and the config's hedge/fetch/straggler knobs — the
/// master owns one per run (created only when `cfg.fetch_supervised()`), and
/// bench/ablation_hedging drives one directly for the MDS-queue validation
/// leg. It consumes its own forked Rng for injection draws and replan
/// shuffles, so owner-side RNG streams are untouched by supervision.
///
/// Lifecycle of one read:
///
///   start_read(plan) ── launch primary + hedge fetches
///        │                 each: [service jitter] → transfer → complete
///        │                 transient failure / timeout → backoff → retry
///        │                 retries exhausted → exclude source, replan
///        ├─ quorum reconstructs the block → cancel losers → done(ok)
///        ├─ no recovery option left       → done(!ok)   (unrecoverable)
///        └─ cancel_read / owner teardown  → no callback
class FetchSupervisor {
 public:
  FetchSupervisor(sim::Simulator& sim, net::Network& net,
                  const storage::FailureScenario& failure,
                  const ClusterConfig& cfg, util::Rng rng);

  /// Start supervising one degraded read for `reader`. The plan comes from
  /// DegradedReadPlanner::plan_hedged (the caller spends its own RNG on the
  /// primary choice, exactly like the unhedged path); `planner` must outlive
  /// the read — fallback replans go through it with the supervisor's own RNG.
  /// `done` fires exactly once unless the read is cancelled first.
  ReadId start_read(const storage::DegradedReadPlanner& planner,
                    storage::HedgedPlan plan, NodeId reader,
                    std::function<void(ReadOutcome)> done);

  /// Tear down a read without firing its callback (attempt killed, job
  /// aborted). Outstanding fetches are cancelled and recorded as abandoned.
  /// Safe on unknown/completed ids.
  void cancel_read(ReadId id);

  /// A node's storage failed: every in-flight fetch from it dies and its
  /// reads fall back to alternative sources. Reads executing *on* the node
  /// are untouched — compute failure is the fault supervisor's business and
  /// arrives as cancel_read.
  void on_node_failed(NodeId node);

  const HedgeStats& stats() const { return stats_; }
  const std::vector<FetchRecord>& fetch_records() const { return records_; }
  int active_reads() const { return static_cast<int>(reads_.size()); }

 private:
  struct Fetch {
    int shard = -1;
    storage::DegradedSource src;
    bool hedge = false;
    int attempts = 0;  ///< launches so far (1 after the first)
    bool done = false;
    bool exhausted = false;          ///< retries spent or source dead
    net::FlowId flow = 0;            ///< nonzero while bytes are flowing
    sim::EventId pending{};          ///< service-jitter or backoff event
    sim::EventId timeout{};          ///< armed per-attempt timeout
    util::Seconds start = -1.0;      ///< current attempt's launch time
    std::uint64_t gen = 0;           ///< guards stale flow callbacks
  };

  struct Read {
    const storage::DegradedReadPlanner* planner = nullptr;
    storage::BlockId lost{};
    NodeId reader = -1;
    ec::RecoveryPlan options;        ///< quorum candidates (refreshed on replan)
    std::vector<unsigned> completed; ///< per-shard completed substripe masks
    std::vector<char> exclude;       ///< per-shard: exhausted, skip in replans
    /// Retry/reset budget spent but the stripe is structurally recoverable:
    /// the read runs plain fetches (no timeout, no injection) to guarantee
    /// progress. Only structural loss fails a read.
    bool last_resort = false;
    std::vector<Fetch> fetches;
    std::vector<storage::DegradedSource> arrived;  ///< in completion order
    int completed_count = 0;
    int resets = 0;  ///< exclusion resets spent (transient-exhaustion escape)
    std::function<void(ReadOutcome)> done;
  };

  /// Add a fetch slot for `src` (unless its shard already has one live or
  /// completed slot) and launch it.
  void admit_fetch(ReadId id, Read& read, const storage::DegradedSource& src,
                   bool hedge);
  void launch_fetch(ReadId id, Read& read, std::size_t idx);
  void start_transfer(ReadId id, Read& read, std::size_t idx);
  void on_fetch_completed(ReadId id, std::size_t idx, std::uint64_t gen);
  /// A fetch attempt died (timeout / transient failure / source death):
  /// record it, then retry with backoff or exhaust the source and replan.
  void on_fetch_failed(ReadId id, Read& read, std::size_t idx,
                       FetchOutcome why);
  /// Re-plan around the exhausted sources and admit any newly needed fetches;
  /// fails the read when no recovery option remains.
  void fallback_replan(ReadId id, Read& read);
  /// Finish now if the completed fetches reconstruct the block (and the
  /// min_quorum gate allows it, or nothing more can arrive). Returns true
  /// when the read finished (and was erased).
  bool try_finish(ReadId id, Read& read);
  void finish_read(ReadId id, Read& read);
  /// Supervision budget exhausted: drop to last-resort plain fetches when
  /// the stripe is structurally recoverable, fail the read otherwise.
  void fail_read(ReadId id, Read& read);
  /// Cancel the fetch's armed events/flow and mark it exhausted.
  void quash_fetch(Read& read, Fetch& f, FetchOutcome why);
  void record(const Read& read, const Fetch& f, FetchOutcome outcome);

  double draw_service_delay(NodeId src);
  util::Seconds fetch_deadline() const { return cfg_.fetch.timeout; }

  sim::Simulator& sim_;
  net::Network& net_;
  const storage::FailureScenario& failure_;
  const ClusterConfig& cfg_;
  util::Rng rng_;

  // std::map: on_node_failed iterates reads in id order — deterministic.
  std::map<ReadId, Read> reads_;
  ReadId next_read_id_ = 1;
  std::uint64_t next_gen_ = 1;

  HedgeStats stats_;
  std::vector<FetchRecord> records_;
};

}  // namespace dfs::mapreduce
