#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "dfs/ec/erasure_code.h"
#include "dfs/net/network.h"
#include "dfs/net/topology.h"
#include "dfs/storage/layout.h"
#include "dfs/mapreduce/types.h"
#include "dfs/util/units.h"

namespace dfs::mapreduce {

/// Compute-failure fault tolerance (Hadoop's JobTracker semantics). All
/// knobs default to off: with this struct untouched the master behaves
/// exactly as the storage-only failure model — no extra RNG draws, no extra
/// events — so existing runs stay byte-identical.
struct FaultConfig {
  /// Master switch for TaskTracker-death semantics: heartbeats stop when a
  /// node's compute fails, the master declares it dead only after the expiry
  /// window, kills its in-flight attempts, requeues their tasks, and
  /// re-executes completed maps whose shuffle outputs died with the node.
  /// Off reproduces the paper's oracle model (storage loss only; attempts on
  /// a failed node are allowed to finish).
  bool compute_failures = false;
  /// A slave is declared dead once its last heartbeat is older than
  /// expiry_multiplier * heartbeat_interval (Hadoop-style expiry).
  double expiry_multiplier = 10.0;
  /// Per-attempt probability of a transient mid-run crash (maps and
  /// reduces). 0 disables injection entirely.
  double attempt_failure_prob = 0.0;
  /// Restrict crash injection to these nodes; empty means every node is
  /// eligible. Lets tests and ablations model one flaky machine.
  std::vector<NodeId> flaky_nodes;
  /// Attempts per task before its job is aborted and marked failed.
  int max_attempts = 4;
  /// Delay before a failed task re-enters the pending pools; doubles with
  /// each prior failure of the same task (exponential backoff).
  util::Seconds retry_backoff = 1.0;
  /// Attempt failures on one slave before it is blacklisted (<= 0 disables
  /// blacklisting) ...
  int blacklist_threshold = 3;
  /// ... and for how long: a blacklisted slave advertises zero free slots
  /// until the window passes.
  util::Seconds blacklist_duration = 300.0;

  bool injection_enabled() const { return attempt_failure_prob > 0.0; }
  bool node_flaky(NodeId node) const {
    if (flaky_nodes.empty()) return true;
    for (const NodeId n : flaky_nodes) {
      if (n == node) return true;
    }
    return false;
  }
};

/// Hedged degraded reads (MDS-queue style): a degraded read launches its
/// plan's sources plus up to `extra_sources` hedge fetches from the
/// RecoveryPlan's alternative options, completes on the first quorum able to
/// reconstruct the lost block, and cancels the losers mid-flight. All knobs
/// default to off: with this struct untouched (and StragglerConfig inert)
/// degraded reads run the legacy inline fetch path — no extra RNG draws, no
/// extra events — so existing runs stay byte-identical.
struct HedgeConfig {
  /// Master switch. Off leaves the legacy assume-success fetch in place even
  /// when the fetch supervisor is active for straggler injection.
  bool enabled = false;
  /// Hedge fetches launched beyond the primary plan (clamped to the
  /// surviving shards actually available).
  int extra_sources = 1;
  /// Fetches that must have completed before a quorum may be declared, on
  /// top of reconstructability itself (0 = coverage alone decides). Lets
  /// ablations force deeper waits.
  int min_quorum = 0;

  bool active() const { return enabled; }
};

/// Per-fetch supervision: timeouts and bounded retries around every
/// supervised degraded-read fetch. Inert at the defaults (no timer events
/// armed); only consulted when the fetch supervisor is active.
struct FetchPolicy {
  /// A fetch older than this is abandoned and retried (0 = no timeout).
  util::Seconds timeout = 0.0;
  /// Transient-failure/timeout retries per source before the supervisor
  /// falls back to an alternative RecoveryOption.
  int max_retries = 2;
  /// Base backoff before a retry; doubles with each prior failure of the
  /// same fetch (exponential backoff).
  util::Seconds retry_backoff = 0.5;
};

/// Storage fault injection for degraded-read fetches: per-slave straggler
/// slowdowns, heavy-tailed service jitter, and transient fetch failures —
/// the adversary hedging is measured against. All knobs default to off (no
/// extra RNG draws, no extra events; byte-identical runs).
struct StragglerConfig {
  /// Fraction of nodes that serve reads slowly. Straggler nodes are chosen
  /// deterministically, evenly spaced across the cluster (and thus across
  /// racks), so no RNG draw is spent on selection.
  double fraction = 0.0;
  /// Service-jitter multiplier on straggler nodes.
  double slowdown = 4.0;
  /// Mean per-fetch service delay before bytes start flowing (disk queue +
  /// handoff). 0 disables jitter entirely.
  util::Seconds service_mean = 0.0;
  /// Heavy-tail shape: 0 draws exponential jitter; > 1 draws Pareto with
  /// this alpha (scale chosen to preserve `service_mean`).
  double pareto_alpha = 0.0;
  /// Per-fetch probability of a transient failure (connection reset, bad
  /// read): the fetch dies partway through its service delay and must be
  /// retried. 0 disables.
  double fail_prob = 0.0;

  bool active() const { return service_mean > 0.0 || fail_prob > 0.0; }

  /// Evenly-spaced deterministic straggler choice: node n is a straggler
  /// iff the integer ramp floor((n+1)*S/N) advances at n, where S is the
  /// straggler head count. Spreads stragglers across racks without
  /// consuming RNG state.
  bool is_straggler(NodeId node, int num_nodes) const {
    if (fraction <= 0.0) return false;
    const long n = static_cast<long>(node);
    const long total = static_cast<long>(num_nodes);
    const long count = std::lround(fraction * static_cast<double>(total));
    return (n + 1) * count / total > n * count / total;
  }
};

/// Static description of the simulated cluster (§V-B defaults).
struct ClusterConfig {
  net::Topology topology{4, 10};  ///< 40 nodes in 4 racks by default
  net::LinkConfig links{};        ///< rack up/down = 1 Gbps, node links free
  net::ContentionModel contention = net::ContentionModel::kMaxMinFairShare;

  int map_slots_per_node = 4;
  int reduce_slots_per_node = 1;
  util::Seconds heartbeat_interval = 3.0;
  util::Bytes block_size = util::mebibytes(128);

  /// Per-node processing-time multiplier (1.0 = baseline; 2.0 = twice as
  /// slow). Sized num_nodes or empty for homogeneous clusters. Drives the
  /// heterogeneous experiments of §V-C.
  std::vector<double> node_time_scale;

  /// Seconds of CPU time a degraded task spends decoding the lost block
  /// after its sources arrive (0 in the paper's model; knob for ablations).
  util::Seconds decode_overhead = 0.0;

  /// Hadoop-style speculative execution (off by default: the paper's
  /// evaluation disables it). When a job has no unassigned map tasks and a
  /// slave has an idle slot, a backup copy of the slowest-running map task
  /// is launched on that slave if it has been running longer than
  /// `speculation_slowdown` times the mean completed-map runtime; the first
  /// copy to finish wins. Losing copies run to completion on their slot (we
  /// model the conservative no-kill variant).
  bool speculative_execution = false;
  double speculation_slowdown = 1.5;
  /// Fraction of the job's maps that must have completed before runtimes
  /// are considered representative enough to speculate against.
  double speculation_min_completed_fraction = 0.1;
  /// Heterogeneity-aware speculation: judge an attempt overdue against its
  /// node's *expected* pace (elapsed divided by the node's time-scale
  /// factor) instead of raw wall-clock. A node the speed model already
  /// declares 2x slow is then not flagged merely for being 2x slow — only
  /// for lagging beyond that. Off (the Hadoop-classic rule) by default;
  /// distinguish this from straggler *jitter* (StragglerConfig), which is
  /// unplanned and exactly what speculation exists to catch.
  bool speculation_speed_aware = false;

  /// Compute-failure fault tolerance; inert at its defaults.
  FaultConfig fault;

  /// Hedged degraded reads + per-fetch supervision + storage fault
  /// injection; all inert at their defaults. The fetch supervisor engages
  /// when `hedge.active() || straggler.active()`.
  HedgeConfig hedge;
  FetchPolicy fetch;
  StragglerConfig straggler;

  bool fetch_supervised() const {
    return hedge.active() || straggler.active();
  }

  double time_scale(NodeId node) const {
    if (node_time_scale.empty()) return 1.0;
    return node_time_scale[static_cast<std::size_t>(node)];
  }
};

/// One MapReduce job: a map task per native block of its input file, plus a
/// fixed number of reduce tasks fed by a shuffle.
struct JobSpec {
  JobId id = 0;
  Dist map_time{20.0, 1.0};
  Dist reduce_time{30.0, 2.0};
  int num_reducers = 30;
  /// Intermediate data emitted per map task, as a fraction of the block size
  /// (§V-B uses 1%; Fig. 7(e) sweeps 1%-30%).
  double shuffle_ratio = 0.01;
  util::Seconds submit_time = 0.0;
  /// Tenant class the job belongs to (multi-tenant admission); single-tenant
  /// workloads leave every job in class 0.
  int tenant = 0;
};

/// A job together with the erasure-coded layout of its input file and the
/// code protecting it (degraded reads ask the code which survivors to read).
struct JobInput {
  JobSpec spec;
  std::shared_ptr<const storage::StorageLayout> layout;
  std::shared_ptr<const ec::ErasureCode> code;
};

}  // namespace dfs::mapreduce
