#include "dfs/mapreduce/speed_model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dfs/util/args.h"
#include "dfs/util/rng.h"

namespace dfs::mapreduce {

namespace {

double parse_positive(const std::string& piece, const char* what) {
  double v = 0.0;
  try {
    v = std::stod(piece);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad ") + what + ": " + piece);
  }
  if (v <= 0.0) {
    throw std::invalid_argument(std::string(what) + " must be > 0, got " +
                                piece);
  }
  return v;
}

}  // namespace

SpeedModel SpeedModel::parse(const std::string& spec) {
  SpeedModel model;
  if (spec.empty() || spec == "uniform") return model;
  if (spec.rfind("bimodal:", 0) == 0) {
    const auto pieces = util::split(spec.substr(8), ',');
    if (pieces.size() < 2 || pieces.size() > 3) {
      throw std::invalid_argument(
          "bimodal speed profile needs FRAC,SLOWDOWN[,SEED]: " + spec);
    }
    model.profile = Profile::kBimodal;
    try {
      model.slow_fraction = std::stod(pieces[0]);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad slow-node fraction: " + pieces[0]);
    }
    if (model.slow_fraction < 0.0 || model.slow_fraction > 1.0) {
      throw std::invalid_argument("slow-node fraction must be in [0, 1]: " +
                                  pieces[0]);
    }
    model.slowdown = parse_positive(pieces[1], "speed slowdown factor");
    if (pieces.size() == 3) {
      try {
        model.seed = std::stoull(pieces[2]);
      } catch (const std::exception&) {
        throw std::invalid_argument("bad speed-profile seed: " + pieces[2]);
      }
    }
    return model;
  }
  if (spec.rfind("vector:", 0) == 0) {
    model.profile = Profile::kExplicit;
    for (const std::string& piece : util::split(spec.substr(7), ',')) {
      model.factors.push_back(parse_positive(piece, "speed factor"));
    }
    if (model.factors.empty()) {
      throw std::invalid_argument("explicit speed profile lists no factors");
    }
    return model;
  }
  throw std::invalid_argument("unknown speed profile: " + spec);
}

std::vector<double> SpeedModel::materialize(int num_nodes) const {
  std::vector<double> scale;
  switch (profile) {
    case Profile::kUniform:
      return scale;  // empty == all 1.0, the inert representation
    case Profile::kBimodal: {
      scale.assign(static_cast<std::size_t>(num_nodes), 1.0);
      const long total = num_nodes;
      const long count =
          std::lround(slow_fraction * static_cast<double>(total));
      for (long n = 0; n < total; ++n) {
        // Same integer ramp as StragglerConfig::is_straggler: slow nodes
        // spread evenly across the cluster (and thus across racks).
        if ((n + 1) * count / total > n * count / total) {
          scale[static_cast<std::size_t>(n)] = slowdown;
        }
      }
      if (seed != 0) {
        // Deal the ramp's factors to random nodes instead. A private Rng
        // keeps this off the simulation streams: two runs differing only in
        // the speed seed see identical workload/arrival draws.
        util::Rng rng(seed);
        rng.shuffle(scale);
      }
      return scale;
    }
    case Profile::kExplicit: {
      scale.reserve(static_cast<std::size_t>(num_nodes));
      for (int n = 0; n < num_nodes; ++n) {
        scale.push_back(factors[static_cast<std::size_t>(n) % factors.size()]);
      }
      return scale;
    }
  }
  return scale;
}

std::string SpeedModel::describe() const {
  std::ostringstream os;
  switch (profile) {
    case Profile::kUniform:
      return "uniform";
    case Profile::kBimodal:
      os << "bimodal:" << slow_fraction << ',' << slowdown;
      if (seed != 0) os << ',' << seed;
      return os.str();
    case Profile::kExplicit: {
      os << "vector:";
      for (std::size_t i = 0; i < factors.size(); ++i) {
        if (i > 0) os << ',';
        os << factors[i];
      }
      return os.str();
    }
  }
  return "uniform";
}

}  // namespace dfs::mapreduce
