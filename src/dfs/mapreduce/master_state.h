#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/fetch_supervisor.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/util/epoch.h"
#include "dfs/util/rng.h"
#include "dfs/util/stale_queue.h"

namespace dfs::mapreduce {

/// Optional callbacks fired at simulated task boundaries; the functional
/// engine (dfs::engine) uses them to run real map/reduce work — including
/// real erasure-decode for degraded tasks — at the times the simulator says
/// those tasks execute.
struct TaskHooks {
  std::function<void(const MapTaskRecord&)> on_map_finish;
  std::function<void(const ReduceTaskRecord&)> on_reduce_finish;
  std::function<void(const JobMetrics&)> on_job_finish;
};

/// "Never assigned a degraded task": makes t_r effectively infinite so fresh
/// racks always pass the rack-awareness check.
inline constexpr util::Seconds kNeverAssigned = -1.0e9;

struct MapTaskState {
  storage::BlockId block{};
  NodeId home = -1;  ///< node storing the native block (may be failed)
  bool lost = false;
  bool assigned = false;
  bool done = false;        ///< some attempt has completed
  bool has_backup = false;  ///< a speculative copy was launched
  int record = -1;  ///< index into result.map_tasks of the first attempt
  int attempts = 0;  ///< attempts launched (fault layer; backups excluded)
  int failures = 0;  ///< transient attempt failures so far
  /// Kind the current non-backup attempt launched as; all pacing-counter
  /// (m/m_d) unlaunch accounting uses this, so a task whose classification
  /// drifts while running (e.g. its copy fails mid-attempt) still reverses
  /// exactly what its launch added.
  MapTaskKind launched_kind = MapTaskKind::kNodeLocal;
  /// Blocks the current non-backup attempt's degraded read fetches (sum of
  /// its plan's fractions; the job's expected volume when the plan failed),
  /// 0.0 for non-degraded launches. unlaunch_map reverses exactly this.
  double launched_cost = 0.0;
  /// Surviving nodes a readable copy of the input can be fetched from.
  /// One entry (the native home) for k > 1 codes; every surviving shard
  /// holder for k == 1 (replication) layouts, where any copy serves.
  std::vector<NodeId> locations;
  std::vector<RackId> location_racks;  ///< distinct racks of `locations`
};

/// One in-flight shuffle fetch of a reduce attempt (fault layer): enough
/// to cancel it when either endpoint dies and to retry it later.
struct InflightFetch {
  net::FlowId flow = 0;
  int map_idx = -1;
  NodeId src = -1;
};

struct ReduceTaskState {
  bool assigned = false;
  NodeId node = -1;
  int partitions_fetched = 0;
  bool processing = false;
  int record = -1;
  int attempts = 0;  ///< attempts launched (fault layer)
  int failures = 0;  ///< transient attempt failures so far
  /// Bumped whenever the current attempt is torn down; scheduled events
  /// carry the ticket they were armed under and no-op on a mismatch.
  util::Epoch epoch;
  /// The attempt's node compute-failed but the master has not yet noticed;
  /// new work (fetch starts, processing) is suppressed until reaped.
  bool doomed = false;
  /// Per-map-task fetched flags (sized total_m when the attempt starts);
  /// partitions_fetched counts the set entries.
  std::vector<char> fetched;
  std::vector<InflightFetch> inflight;
};

struct JobState {
  JobSpec spec;
  std::shared_ptr<const storage::StorageLayout> layout;
  std::shared_ptr<const ec::ErasureCode> code;
  std::unique_ptr<storage::DegradedReadPlanner> planner;
  util::Rng rng;  ///< per-job stream for task-duration draws
  bool active = false;
  bool finished = false;

  std::vector<MapTaskState> maps;
  /// Per-node pools of pending map-task indices; a task appears in the pool
  /// of every node holding a readable copy. Assignment elsewhere (or losing
  /// this node's copy) invalidates the entry in O(1); re-entry repushes so
  /// a surviving entry keeps its queue position (predicate semantics — see
  /// util::StaleQueue). `live_count()` is the exact pending count per node.
  std::vector<util::StaleQueue<int>> pending_by_node;
  std::vector<int> pending_by_rack;  ///< pending tasks with a copy in rack
  /// Pool of degraded pending map tasks, generation-tagged: a task that
  /// left the pool (repair) and re-entered (new failure) joins at the back
  /// instead of reviving its stale entry (ABA queue-jump — see
  /// util::StaleQueue::push).
  util::StaleQueue<int> pending_degraded;
  long pending_nondegraded = 0;
  long m = 0;    ///< launched map tasks
  long md = 0;   ///< launched degraded tasks
  long total_m = 0;
  long total_md = 0;
  /// Blocks fetched by launched degraded tasks (cost-weighted m_d): each
  /// launch adds its actual plan volume, so sub-shard codes pace faster.
  double md_cost = 0.0;
  /// Expected fetch volume of one degraded task (planner's cached mean);
  /// total_md * expected_degraded_cost is the cost-weighted M_d.
  double expected_degraded_cost = 0.0;
  long maps_done = 0;
  double completed_map_runtime_sum = 0.0;  ///< winners only, for speculation

  std::vector<ReduceTaskState> reduces;
  int reduces_assigned = 0;
  int reduces_done = 0;
  std::vector<int> completed_map_records;

  JobMetrics metrics;
};

struct SlaveState {
  bool alive = true;
  int free_map_slots = 0;
  int free_reduce_slots = 0;
  // Fault layer only (inert otherwise):
  bool heartbeating = true;  ///< compute alive; false between death & detection
  /// Bumped on repair; pending detection/unblacklist timers armed under an
  /// older incarnation no-op.
  util::Epoch incarnation;
  util::Seconds last_heartbeat = 0.0;
  util::Seconds compute_fail_time = -1.0;
  int recent_failures = 0;  ///< attempt failures since last (un)blacklist
  bool blacklisted = false;
};

/// A live map attempt (fault layer bookkeeping; maintained even when the
/// layer is off — pure state, no events). Keyed by record index in
/// MasterState::map_attempts; an entry is erased when the attempt finishes,
/// loses its race, fails, or is killed — stale scheduled callbacks look the
/// key up and no-op when it is gone.
struct MapAttempt {
  core::JobId job = -1;
  int map_idx = -1;
  bool backup = false;
  /// Node compute-failed; attempt will be finalized (killed) at detection.
  bool doomed = false;
  std::vector<net::FlowId> flows;  ///< in-flight input fetches
  /// Supervised degraded read in flight (fetch supervisor active only);
  /// 0 when none. Teardown must cancel it through the supervisor.
  ReadId read = 0;
};

/// The state every phase engine shares: the job/slave/attempt store plus the
/// simulation environment it runs against. The engines (MapPhase,
/// ShufflePhase, FaultSupervisor) and the Master facade all mutate this one
/// store; no engine owns private job state, so a task's lifecycle reads the
/// same truth no matter which engine advances it.
struct MasterState {
  MasterState(sim::Simulator& simulator, net::Network& network,
              const ClusterConfig& config,
              const storage::FailureScenario& failure_scenario)
      : sim(simulator), net(network), cfg(config), failure(failure_scenario) {}

  sim::Simulator& sim;
  net::Network& net;
  const ClusterConfig& cfg;
  const storage::FailureScenario& failure;

  std::vector<JobState> jobs;  ///< FIFO submission order
  std::vector<SlaveState> slaves;
  /// Live map attempts by record index (see MapAttempt).
  std::unordered_map<int, MapAttempt> map_attempts;
  std::vector<util::Seconds> last_degraded_assign;  ///< per rack
  std::size_t jobs_done = 0;
  RunResult result;
  /// Degraded-read fetch supervisor; created by the Master only when
  /// cfg.fetch_supervised() — null means the legacy inline fetch path runs.
  std::unique_ptr<FetchSupervisor> fetch;
  /// Borrowed from the owning Master (the public `Master::hooks` member).
  TaskHooks* hooks = nullptr;

  JobState& job(core::JobId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < jobs.size());
    return jobs[static_cast<std::size_t>(id)];
  }
  const JobState& job(core::JobId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < jobs.size());
    return jobs[static_cast<std::size_t>(id)];
  }
  core::JobId id_of(const JobState& j) const {
    return static_cast<core::JobId>(&j - jobs.data());
  }
  SlaveState& slave(NodeId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < slaves.size());
    return slaves[static_cast<std::size_t>(id)];
  }
  const SlaveState& slave(NodeId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < slaves.size());
    return slaves[static_cast<std::size_t>(id)];
  }

  /// map_attempts keys (== record indexes) sorted ascending; the registry is
  /// an unordered_map, so every kill/replan sweep walks a sorted snapshot to
  /// keep same-seed runs processing attempts in the same order.
  std::vector<int> sorted_attempt_records() const;

  /// Finish the job once the last map and reduce are done.
  void maybe_finish_job(JobState& j);
};

}  // namespace dfs::mapreduce
