#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/attempt_slab.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/fetch_supervisor.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/util/epoch.h"
#include "dfs/util/rng.h"
#include "dfs/util/stale_queue.h"

namespace dfs::mapreduce {

/// Optional callbacks fired at simulated task boundaries; the functional
/// engine (dfs::engine) uses them to run real map/reduce work — including
/// real erasure-decode for degraded tasks — at the times the simulator says
/// those tasks execute.
struct TaskHooks {
  std::function<void(const MapTaskRecord&)> on_map_finish;
  std::function<void(const ReduceTaskRecord&)> on_reduce_finish;
  std::function<void(const JobMetrics&)> on_job_finish;
};

/// "Never assigned a degraded task": makes t_r effectively infinite so fresh
/// racks always pass the rack-awareness check.
inline constexpr util::Seconds kNeverAssigned = -1.0e9;

struct MapTaskState {
  storage::BlockId block{};
  NodeId home = -1;  ///< node storing the native block (may be failed)
  bool lost = false;
  bool assigned = false;
  bool done = false;        ///< some attempt has completed
  bool has_backup = false;  ///< a speculative copy was launched
  int record = -1;  ///< index into result.map_tasks of the first attempt
  int attempts = 0;  ///< attempts launched (fault layer; backups excluded)
  int failures = 0;  ///< transient attempt failures so far
  /// Kind the current non-backup attempt launched as; all pacing-counter
  /// (m/m_d) unlaunch accounting uses this, so a task whose classification
  /// drifts while running (e.g. its copy fails mid-attempt) still reverses
  /// exactly what its launch added.
  MapTaskKind launched_kind = MapTaskKind::kNodeLocal;
  /// Blocks the current non-backup attempt's degraded read fetches (sum of
  /// its plan's fractions; the job's expected volume when the plan failed),
  /// 0.0 for non-degraded launches. unlaunch_map reverses exactly this.
  double launched_cost = 0.0;
  /// Surviving nodes a readable copy of the input can be fetched from.
  /// One entry (the native home) for k > 1 codes; every surviving shard
  /// holder for k == 1 (replication) layouts, where any copy serves.
  std::vector<NodeId> locations;
  std::vector<RackId> location_racks;  ///< distinct racks of `locations`
};

/// One in-flight shuffle fetch of a reduce attempt (fault layer): enough
/// to cancel it when either endpoint dies and to retry it later.
struct InflightFetch {
  net::FlowId flow = 0;
  int map_idx = -1;
  NodeId src = -1;
};

struct ReduceTaskState {
  bool assigned = false;
  NodeId node = -1;
  int partitions_fetched = 0;
  bool processing = false;
  int record = -1;
  int attempts = 0;  ///< attempts launched (fault layer)
  int failures = 0;  ///< transient attempt failures so far
  /// Bumped whenever the current attempt is torn down; scheduled events
  /// carry the ticket they were armed under and no-op on a mismatch.
  util::Epoch epoch;
  /// The attempt's node compute-failed but the master has not yet noticed;
  /// new work (fetch starts, processing) is suppressed until reaped.
  bool doomed = false;
  /// Per-map-task fetched flags (sized total_m when the attempt starts);
  /// partitions_fetched counts the set entries.
  std::vector<char> fetched;

  /// In-flight fetches, queue-ordered, with an O(1) per-map index. At most
  /// one live fetch exists per map task, so removal-by-map used to be a
  /// linear scan + erase — quadratic over an attempt that has all of a
  /// large job's partitions in flight. Removal now tombstones the entry in
  /// place (flow 0) and compacts amortized-O(1), preserving queue order so
  /// the teardown paths cancel flows in exactly the order the scan-and-
  /// erase version did.
  void inflight_add(const InflightFetch& f) {
    assert(f.flow != 0);
    if (static_cast<std::size_t>(f.map_idx) >= inflight_pos_.size()) {
      inflight_pos_.resize(static_cast<std::size_t>(f.map_idx) + 1, -1);
    }
    assert(inflight_pos_[static_cast<std::size_t>(f.map_idx)] < 0);
    inflight_pos_[static_cast<std::size_t>(f.map_idx)] =
        static_cast<int>(inflight_.size());
    inflight_.push_back(f);
    ++inflight_live_;
  }

  /// Drop `map_idx`'s fetch if one is in flight (no cancellation).
  void inflight_remove(int map_idx) {
    if (static_cast<std::size_t>(map_idx) >= inflight_pos_.size()) return;
    const int pos = inflight_pos_[static_cast<std::size_t>(map_idx)];
    if (pos < 0) return;
    inflight_[static_cast<std::size_t>(pos)].flow = 0;  // tombstone
    inflight_pos_[static_cast<std::size_t>(map_idx)] = -1;
    --inflight_live_;
    if (inflight_live_ == 0) {
      inflight_.clear();
    } else if (inflight_.size() >= 16 &&
               static_cast<std::size_t>(inflight_live_) * 2 <=
                   inflight_.size()) {
      compact_inflight();
    }
  }

  /// Visit the live fetches in queue order. The body must not add or
  /// remove entries; use the removal/clear primitives afterwards.
  template <typename Fn>
  void inflight_for_each(Fn&& fn) const {
    for (const InflightFetch& f : inflight_) {
      if (f.flow != 0) fn(f);
    }
  }

  /// Remove the live fetches `pred` selects, in queue order, invoking
  /// `on_removed` (e.g. a network cancel) for each. Single pass.
  template <typename Pred, typename Fn>
  void inflight_remove_if(Pred&& pred, Fn&& on_removed) {
    for (InflightFetch& f : inflight_) {
      if (f.flow == 0 || !pred(f)) continue;
      on_removed(f);
      inflight_pos_[static_cast<std::size_t>(f.map_idx)] = -1;
      f.flow = 0;
      --inflight_live_;
    }
    if (inflight_live_ == 0) inflight_.clear();
  }

  /// Drop every fetch (no cancellation — teardown paths cancel first via
  /// inflight_for_each).
  void inflight_clear() {
    for (const InflightFetch& f : inflight_) {
      if (f.flow != 0) inflight_pos_[static_cast<std::size_t>(f.map_idx)] = -1;
    }
    inflight_.clear();
    inflight_live_ = 0;
  }

  int inflight_count() const { return inflight_live_; }

 private:
  void compact_inflight() {
    std::size_t out = 0;
    for (const InflightFetch& f : inflight_) {
      if (f.flow == 0) continue;
      inflight_pos_[static_cast<std::size_t>(f.map_idx)] =
          static_cast<int>(out);
      inflight_[out++] = f;
    }
    inflight_.resize(out);
  }

  std::vector<InflightFetch> inflight_;  ///< queue order; flow==0 = dead
  std::vector<int> inflight_pos_;        ///< map_idx -> inflight_ index
  int inflight_live_ = 0;
};

struct JobState {
  JobSpec spec;
  std::shared_ptr<const storage::StorageLayout> layout;
  std::shared_ptr<const ec::ErasureCode> code;
  std::unique_ptr<storage::DegradedReadPlanner> planner;
  util::Rng rng;  ///< per-job stream for task-duration draws
  bool active = false;
  bool finished = false;

  std::vector<MapTaskState> maps;
  /// Per-node pools of pending map-task indices; a task appears in the pool
  /// of every node holding a readable copy. Assignment elsewhere (or losing
  /// this node's copy) invalidates the entry in O(1); re-entry repushes so
  /// a surviving entry keeps its queue position (predicate semantics — see
  /// util::StaleQueue). `live_count()` is the exact pending count per node.
  std::vector<util::StaleQueue<int>> pending_by_node;
  std::vector<int> pending_by_rack;  ///< pending tasks with a copy in rack
  /// Pool of degraded pending map tasks, generation-tagged: a task that
  /// left the pool (repair) and re-entered (new failure) joins at the back
  /// instead of reviving its stale entry (ABA queue-jump — see
  /// util::StaleQueue::push).
  util::StaleQueue<int> pending_degraded;
  long pending_nondegraded = 0;
  long m = 0;    ///< launched map tasks
  long md = 0;   ///< launched degraded tasks
  long total_m = 0;
  long total_md = 0;
  /// Blocks fetched by launched degraded tasks (cost-weighted m_d): each
  /// launch adds its actual plan volume, so sub-shard codes pace faster.
  double md_cost = 0.0;
  /// Expected fetch volume of one degraded task (planner's cached mean);
  /// total_md * expected_degraded_cost is the cost-weighted M_d.
  double expected_degraded_cost = 0.0;
  long maps_done = 0;
  double completed_map_runtime_sum = 0.0;  ///< winners only, for speculation

  std::vector<ReduceTaskState> reduces;
  int reduces_assigned = 0;
  int reduces_done = 0;
  std::vector<int> completed_map_records;

  JobMetrics metrics;

  /// Free the scheduling pools once the job can never schedule again
  /// (finished or aborted). The per-node pending pools alone are ~1 MiB per
  /// job at 10k slaves, and a long-horizon run submits thousands of jobs —
  /// without this the master's footprint grows with jobs *submitted* instead
  /// of jobs *in flight*. Task/attempt state (maps, reduces) stays: late
  /// events of losing speculative attempts still look it up.
  void release_scheduling_state() {
    pending_by_node = {};
    pending_by_rack = {};
    pending_degraded = {};
    completed_map_records = {};
    planner.reset();
  }
};

struct SlaveState {
  bool alive = true;
  int free_map_slots = 0;
  int free_reduce_slots = 0;
  // Fault layer only (inert otherwise):
  bool heartbeating = true;  ///< compute alive; false between death & detection
  /// Bumped on repair; pending detection/unblacklist timers armed under an
  /// older incarnation no-op.
  util::Epoch incarnation;
  util::Seconds last_heartbeat = 0.0;
  util::Seconds compute_fail_time = -1.0;
  int recent_failures = 0;  ///< attempt failures since last (un)blacklist
  bool blacklisted = false;
};

/// The state every phase engine shares: the job/slave/attempt store plus the
/// simulation environment it runs against. The engines (MapPhase,
/// ShufflePhase, FaultSupervisor) and the Master facade all mutate this one
/// store; no engine owns private job state, so a task's lifecycle reads the
/// same truth no matter which engine advances it.
struct MasterState {
  MasterState(sim::Simulator& simulator, net::Network& network,
              const ClusterConfig& config,
              const storage::FailureScenario& failure_scenario)
      : sim(simulator), net(network), cfg(config), failure(failure_scenario) {}

  sim::Simulator& sim;
  net::Network& net;
  const ClusterConfig& cfg;
  const storage::FailureScenario& failure;

  std::vector<JobState> jobs;  ///< FIFO submission order
  /// Ids of jobs that are active and not finished, ascending (jobs activate
  /// in id order and leave on finish/abort). Every per-heartbeat and
  /// per-failure sweep iterates this instead of scanning all submitted jobs
  /// — at 10k slaves the full scan visits thousands of long-finished jobs
  /// per 3 s heartbeat. Iteration order equals the guarded full scan's, so
  /// output is unchanged. Maintained by MapPhase::activate_job and
  /// retire_job.
  std::vector<core::JobId> active_jobs;
  std::vector<SlaveState> slaves;
  /// Live map attempts by record index (see AttemptSlab).
  AttemptSlab map_attempts;
  std::vector<util::Seconds> last_degraded_assign;  ///< per rack
  std::size_t jobs_done = 0;
  RunResult result;
  /// Degraded-read fetch supervisor; created by the Master only when
  /// cfg.fetch_supervised() — null means the legacy inline fetch path runs.
  std::unique_ptr<FetchSupervisor> fetch;
  /// Borrowed from the owning Master (the public `Master::hooks` member).
  TaskHooks* hooks = nullptr;

  JobState& job(core::JobId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < jobs.size());
    return jobs[static_cast<std::size_t>(id)];
  }
  const JobState& job(core::JobId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < jobs.size());
    return jobs[static_cast<std::size_t>(id)];
  }
  core::JobId id_of(const JobState& j) const {
    return static_cast<core::JobId>(&j - jobs.data());
  }
  SlaveState& slave(NodeId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < slaves.size());
    return slaves[static_cast<std::size_t>(id)];
  }
  const SlaveState& slave(NodeId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < slaves.size());
    return slaves[static_cast<std::size_t>(id)];
  }

  /// map_attempts keys (== record indexes) ascending — the slab's insertion
  /// order. Kill/replan sweeps walk this snapshot and re-find each record so
  /// nested erases cannot invalidate the walk.
  std::vector<int> sorted_attempt_records() const {
    return map_attempts.records();
  }

  /// Finish the job once the last map and reduce are done.
  void maybe_finish_job(JobState& j);

  /// Drop `id` from active_jobs and release the finished job's scheduling
  /// pools (see JobState::release_scheduling_state). Called on finish and
  /// abort; the job must already be marked finished.
  void retire_job(core::JobId id);
};

}  // namespace dfs::mapreduce
