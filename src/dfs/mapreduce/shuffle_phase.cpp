#include "dfs/mapreduce/shuffle_phase.h"

#include <cassert>

#include "dfs/mapreduce/fault_supervisor.h"

namespace dfs::mapreduce {

void ShufflePhase::assign_reduce_tasks(NodeId s) {
  SlaveState& sl = s_.slave(s);
  if (sl.blacklisted) return;
  // Direct walk of the active index is safe: nothing below finishes or
  // aborts a job synchronously (fetch completions arrive as later events).
  for (std::size_t ji = 0;
       ji < s_.active_jobs.size() && sl.free_reduce_slots > 0; ++ji) {
    JobState& j = s_.job(s_.active_jobs[ji]);
    while (sl.free_reduce_slots > 0 &&
           j.reduces_assigned < j.spec.num_reducers) {
      // First unassigned reduce task. Without failures tasks are assigned in
      // index order, so this is the scan-free `reduces_assigned` of old; a
      // reset task (its node died) reopens a hole the scan finds first.
      int r = -1;
      for (int cand = 0; cand < j.spec.num_reducers; ++cand) {
        if (!j.reduces[static_cast<std::size_t>(cand)].assigned) {
          r = cand;
          break;
        }
      }
      assert(r >= 0);  // reduces_assigned < num_reducers guarantees a hole
      ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
      rt.assigned = true;
      rt.node = s;
      rt.doomed = false;
      ++j.reduces_assigned;
      --sl.free_reduce_slots;

      ReduceTaskRecord rec;
      rec.id = static_cast<TaskId>(s_.result.reduce_tasks.size());
      rec.job = j.spec.id;
      rec.attempt = rt.attempts++;
      rec.exec_node = s;
      rec.assign_time = s_.sim.now();
      rt.record = static_cast<int>(s_.result.reduce_tasks.size());
      s_.result.reduce_tasks.push_back(rec);
      rt.fetched.assign(static_cast<std::size_t>(j.total_m), 0);
      rt.partitions_fetched = 0;

      // Pull the partitions of every map that has already finished.
      for (const int map_record : j.completed_map_records) {
        start_partition_fetch(j, r, map_record);
      }
    }
  }
}

util::Bytes ShufflePhase::partition_bytes(const JobState& j) const {
  if (j.spec.num_reducers == 0) return 0.0;
  return s_.cfg.block_size * j.spec.shuffle_ratio /
         static_cast<double>(j.spec.num_reducers);
}

void ShufflePhase::start_partition_fetch(JobState& j, int reduce_idx,
                                         int map_record_idx) {
  const core::JobId job_id = s_.id_of(j);
  const MapTaskRecord& map_rec =
      s_.result.map_tasks[static_cast<std::size_t>(map_record_idx)];
  const NodeId src = map_rec.exec_node;
  const int map_idx = map_rec.map_index;
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  const NodeId dst = rt.node;
  const util::Epoch::Ticket epoch = rt.epoch.ticket();
  const net::FlowId flow = s_.net.transfer(
      src, dst, partition_bytes(j),
      [this, job_id, reduce_idx, map_idx, epoch] {
        on_partition_fetched(job_id, reduce_idx, map_idx, epoch);
      });
  rt.inflight_add(InflightFetch{flow, map_idx, src});
}

void ShufflePhase::on_partition_fetched(core::JobId job_id, int reduce_idx,
                                        int map_idx,
                                        util::Epoch::Ticket epoch) {
  JobState& j = s_.job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (!rt.epoch.valid(epoch) || rt.doomed) return;  // attempt was torn down
  rt.inflight_remove(map_idx);
  if (rt.fetched[static_cast<std::size_t>(map_idx)]) return;
  rt.fetched[static_cast<std::size_t>(map_idx)] = 1;
  ++rt.partitions_fetched;
  if (rt.partitions_fetched == j.total_m) {
    s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)]
        .shuffle_done_time = s_.sim.now();
    maybe_start_reduce_processing(j, reduce_idx);
  }
}

void ShufflePhase::maybe_start_reduce_processing(JobState& j, int reduce_idx) {
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (rt.processing || rt.doomed || rt.partitions_fetched != j.total_m ||
      j.maps_done != j.total_m) {
    return;
  }
  rt.processing = true;
  ReduceTaskRecord& rec =
      s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.process_start_time = s_.sim.now();
  const util::Seconds duration =
      j.rng.normal(j.spec.reduce_time.mean, j.spec.reduce_time.stddev) *
      s_.cfg.time_scale(rt.node);
  const core::JobId job_id = s_.id_of(j);
  const util::Epoch::Ticket epoch = rt.epoch.ticket();
  if (s_.cfg.fault.injection_enabled() && s_.cfg.fault.node_flaky(rt.node) &&
      j.rng.uniform(0.0, 1.0) < s_.cfg.fault.attempt_failure_prob) {
    const double frac = j.rng.uniform(0.0, 1.0);
    s_.sim.schedule_in(duration * frac, [this, job_id, reduce_idx, epoch] {
      fault_->on_reduce_attempt_failed(job_id, reduce_idx, epoch);
    });
    return;
  }
  s_.sim.schedule_in(duration, [this, job_id, reduce_idx, epoch] {
    on_reduce_complete(job_id, reduce_idx, epoch);
  });
}

void ShufflePhase::on_reduce_complete(core::JobId job_id, int reduce_idx,
                                      util::Epoch::Ticket epoch) {
  JobState& j = s_.job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (!rt.epoch.valid(epoch) || rt.doomed) return;  // attempt was torn down
  ReduceTaskRecord& rec =
      s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.finish_time = s_.sim.now();
  ++s_.slave(rt.node).free_reduce_slots;
  ++j.reduces_done;
  if (s_.hooks->on_reduce_finish) s_.hooks->on_reduce_finish(rec);
  s_.maybe_finish_job(j);
}

void ShufflePhase::reset_reduce_attempt(JobState& j, int reduce_idx) {
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  rt.epoch.bump();
  rt.doomed = false;
  rt.assigned = false;
  rt.node = -1;
  rt.partitions_fetched = 0;
  rt.fetched.clear();
  rt.processing = false;
  rt.record = -1;
  rt.inflight_for_each([this](const InflightFetch& f) { s_.net.cancel(f.flow); });
  rt.inflight_clear();
  --j.reduces_assigned;
}

}  // namespace dfs::mapreduce
