#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/master.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/failure.h"

namespace dfs::mapreduce {

/// Everything one simulated MapReduce run needs, wired together: the event
/// kernel, the flow-level network, and the master with its slaves. Owns all
/// components; `run()` drives the simulation to completion.
class MapReduceSimulation {
 public:
  MapReduceSimulation(ClusterConfig config, std::vector<JobInput> jobs,
                      storage::FailureScenario failure,
                      core::Scheduler& scheduler, std::uint64_t seed,
                      storage::SourceSelection source_selection =
                          storage::SourceSelection::kRandom,
                      storage::RecoveryCostModel cost_model =
                          storage::RecoveryCostModel{});

  /// Attach before run() to execute real work at task boundaries.
  void set_hooks(TaskHooks hooks);

  /// Run to completion and return the collected metrics.
  /// Throws std::runtime_error if the run stalls (a scheduling bug).
  RunResult run();

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }

 private:
  ClusterConfig cfg_;
  storage::FailureScenario failure_;
  util::Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<Master> master_;
  bool ran_ = false;
};

/// One-call convenience wrapper used throughout the benches.
RunResult simulate(const ClusterConfig& config,
                   const std::vector<JobInput>& jobs,
                   const storage::FailureScenario& failure,
                   core::Scheduler& scheduler, std::uint64_t seed,
                   storage::SourceSelection source_selection =
                       storage::SourceSelection::kRandom,
                   storage::RecoveryCostModel cost_model =
                       storage::RecoveryCostModel{});

}  // namespace dfs::mapreduce
