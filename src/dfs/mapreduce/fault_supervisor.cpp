#include "dfs/mapreduce/fault_supervisor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "dfs/mapreduce/map_phase.h"
#include "dfs/mapreduce/shuffle_phase.h"

namespace dfs::mapreduce {

void FaultSupervisor::on_compute_failed(NodeId node) {
  if (!s_.cfg.fault.compute_failures) {
    throw std::logic_error(
        "on_compute_failed requires FaultConfig::compute_failures");
  }
  SlaveState& s = s_.slave(node);
  // alive is not consulted: it tracks storage death, which normally happens
  // in the same failure event just before this call.
  if (!s.heartbeating) return;
  s.heartbeating = false;
  s.compute_fail_time = s_.sim.now();

  // The attempts physically die now: cancel their transfers and mark them
  // doomed so they never produce output. The master's view (slot counts,
  // pending pools, records) only changes at detection.
  for (const int record_idx : s_.sorted_attempt_records()) {
    MapAttempt& a = s_.map_attempts.at(record_idx);
    const MapTaskRecord& rec =
        s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node != node) continue;
    a.doomed = true;
    for (const net::FlowId f : a.flows) s_.net.cancel(f);
    a.flows.clear();
    if (a.read != 0 && s_.fetch) {
      s_.fetch->cancel_read(a.read);
      a.read = 0;
    }
  }
  for (const core::JobId job_id : s_.active_jobs) {
    JobState& j = s_.job(job_id);
    for (std::size_t r = 0; r < j.reduces.size(); ++r) {
      ReduceTaskState& rt = j.reduces[r];
      if (!rt.assigned) continue;
      if (rt.node == node &&
          s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)]
                  .finish_time < 0.0) {
        rt.doomed = true;
        rt.inflight_for_each(
            [this](const InflightFetch& f) { s_.net.cancel(f.flow); });
        rt.inflight_clear();
      } else {
        // Shuffle fetches sourced from the dead node stall: the serving map
        // output is gone. Drop them in a single queue-order pass (erasing
        // one at a time is quadratic in the in-flight count);
        // reap_dead_node re-executes the maps.
        rt.inflight_remove_if(
            [node](const InflightFetch& f) { return f.src == node; },
            [this](const InflightFetch& f) { s_.net.cancel(f.flow); });
      }
    }
  }

  // Hadoop-style expiry: declared dead once the last heartbeat is older than
  // the expiry window.
  const util::Epoch::Ticket inc = s.incarnation.ticket();
  const util::Seconds detect_at = std::max(
      s_.sim.now(), s.last_heartbeat + s_.cfg.fault.expiry_multiplier *
                                           s_.cfg.heartbeat_interval);
  s_.sim.schedule_at(detect_at, [this, node, inc] {
    const SlaveState& sl = s_.slave(node);
    if (!sl.incarnation.valid(inc) || sl.heartbeating) return;
    declare_slave_dead(node);
  });
}

void FaultSupervisor::restore_compute(NodeId node) {
  SlaveState& s = s_.slave(node);
  // The node comes back with a fresh TaskTracker: doomed attempts and map
  // outputs are gone regardless of whether the expiry fired. Reaping is
  // idempotent, so a death the master already detected reaps to a no-op;
  // a repair that beats the expiry window does the real work here.
  reap_dead_node(node);
  s.incarnation.bump();  // stale detection / unblacklist timers now no-op
  s.heartbeating = true;
  s.compute_fail_time = -1.0;
  s.recent_failures = 0;
  s.blacklisted = false;
  s.free_map_slots = s_.cfg.map_slots_per_node;
  s.free_reduce_slots = s_.cfg.reduce_slots_per_node;
}

void FaultSupervisor::declare_slave_dead(NodeId node) {
  SlaveState& s = s_.slave(node);
  DetectionRecord det;
  det.node = node;
  det.fail_time = s.compute_fail_time;
  det.detect_time = s_.sim.now();
  s_.result.detections.push_back(det);
  s.alive = false;  // may already be false (storage failed alongside)
  reap_dead_node(node);
  // The dead TaskTracker's slot ledger is void; a repaired node restarts
  // with a full complement.
  s.free_map_slots = s_.cfg.map_slots_per_node;
  s.free_reduce_slots = s_.cfg.reduce_slots_per_node;
}

void FaultSupervisor::reap_dead_node(NodeId node) {
  // (1) Finalize the doomed map attempts on the node; requeue their tasks
  // or promote a surviving speculative copy.
  for (const int record_idx : s_.sorted_attempt_records()) {
    const MapAttempt* a = s_.map_attempts.find(record_idx);
    if (a == nullptr) continue;
    MapTaskRecord& rec =
        s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node != node || !a->doomed) continue;
    const core::JobId job_id = a->job;
    const int map_idx = a->map_idx;
    const bool backup = a->backup;
    if (rec.finish_time < 0.0) rec.finish_time = s_.sim.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    s_.map_attempts.erase(record_idx);
    JobState& j = s_.job(job_id);
    if (j.finished) continue;
    MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
    if (t.done || backup) {
      // Losers and backups leave the task itself untouched.
      if (backup) t.has_backup = false;
      continue;
    }
    const int runner = find_running_attempt(job_id, map_idx);
    if (runner >= 0) {
      t.record = runner;
      t.has_backup = false;
      s_.map_attempts.at(runner).backup = false;
      continue;
    }
    map_->unlaunch_map(j, t);
    requeue_map_task(j, map_idx);
  }

  // (2) Kill the reduce attempts that were running on the node.
  for (const core::JobId job_id : s_.active_jobs) {
    JobState& j = s_.job(job_id);
    for (std::size_t r = 0; r < j.reduces.size(); ++r) {
      ReduceTaskState& rt = j.reduces[r];
      if (!rt.assigned || rt.node != node) continue;
      ReduceTaskRecord& rec =
          s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)];
      if (rec.finish_time >= 0.0) continue;  // finished before the death
      rec.finish_time = s_.sim.now();
      rec.outcome = AttemptOutcome::kKilled;
      shuffle_->reset_reduce_attempt(j, static_cast<int>(r));
    }
  }

  // (3) Lost-map-output re-execution: completed maps of unfinished jobs ran
  // on the dead node and their shuffle outputs died with it. Re-execute the
  // ones some reducer still needs. Snapshot the index: revert_completed_map
  // never finishes a job, but abort never runs here either — keep the walk
  // robust to future retires all the same.
  const std::vector<core::JobId> active_snapshot = s_.active_jobs;
  for (const core::JobId job_id : active_snapshot) {
    JobState& j = s_.job(job_id);
    if (j.finished) continue;
    if (j.spec.num_reducers == 0) continue;
    const std::vector<int> completed = j.completed_map_records;  // snapshot
    for (const int record_idx : completed) {
      const MapTaskRecord& rec =
          s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
      if (rec.exec_node != node || rec.output_lost) continue;
      bool needed = false;
      for (const ReduceTaskState& rt : j.reduces) {
        if (rt.processing) continue;  // already pulled everything it needs
        if (!rt.assigned || rt.doomed ||
            !rt.fetched[static_cast<std::size_t>(rec.map_index)]) {
          needed = true;
          break;
        }
      }
      if (needed) revert_completed_map(j, rec.map_index, record_idx);
    }
  }
}

void FaultSupervisor::requeue_map_task(JobState& j, int map_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  const bool was_degraded = t.launched_kind == MapTaskKind::kDegraded;
  t.assigned = false;
  t.has_backup = false;
  t.record = -1;
  if (t.locations.empty()) {
    // No readable copy anymore: the task re-enters as degraded. It joins
    // M_d unless its launch already counted there.
    t.lost = true;
    if (!was_degraded) ++j.total_md;
    j.pending_degraded.push(map_idx);
    return;
  }
  // A readable copy exists (possibly repaired while the attempt ran): the
  // task re-enters the per-node pools. If it launched as degraded it leaves
  // the M_d population.
  if (was_degraded) --j.total_md;
  t.lost = false;
  // The rack list goes stale for assigned tasks (reclassify_after_failure
  // skips them before rack maintenance); rebuild it from the live locations.
  t.location_racks.clear();
  for (const NodeId loc : t.locations) {
    j.pending_by_node[static_cast<std::size_t>(loc)].repush(map_idx);
    const RackId rack = s_.cfg.topology.rack_of(loc);
    if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
        t.location_racks.end()) {
      t.location_racks.push_back(rack);
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
  }
  ++j.pending_nondegraded;
}

void FaultSupervisor::revert_completed_map(JobState& j, int map_idx,
                                           int record_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec =
      s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.output_lost = true;
  t.done = false;
  --j.maps_done;
  j.completed_map_runtime_sum -= rec.runtime();
  const auto it = std::find(j.completed_map_records.begin(),
                            j.completed_map_records.end(), record_idx);
  if (it != j.completed_map_records.end()) j.completed_map_records.erase(it);
  j.metrics.map_phase_end = -1.0;  // the map phase reopened
  const core::JobId job_id = s_.id_of(j);
  const int runner = find_running_attempt(job_id, map_idx);
  if (runner >= 0) {
    // A speculative copy is still running elsewhere: promote it to primary.
    // The task stays assigned and the pacing counters keep the original
    // launch, so nothing to reverse.
    t.record = runner;
    t.has_backup = false;
    s_.map_attempts.at(runner).backup = false;
    return;
  }
  map_->unlaunch_map(j, t);
  requeue_map_task(j, map_idx);
}

int FaultSupervisor::find_running_attempt(core::JobId job_id,
                                          int map_idx) const {
  for (const int record_idx : s_.sorted_attempt_records()) {
    const MapAttempt& a = s_.map_attempts.at(record_idx);
    if (a.job == job_id && a.map_idx == map_idx && !a.doomed) {
      return record_idx;
    }
  }
  return -1;
}

void FaultSupervisor::on_map_attempt_failed(core::JobId job_id,
                                            int record_idx, int map_idx) {
  const MapAttempt* a = s_.map_attempts.find(record_idx);
  if (a == nullptr || a->doomed) return;
  const bool backup = a->backup;
  s_.map_attempts.erase(record_idx);
  JobState& j = s_.job(job_id);
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec =
      s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.finish_time = s_.sim.now();
  rec.winner = false;
  rec.outcome = AttemptOutcome::kFailed;
  ++s_.slave(rec.exec_node).free_map_slots;
  note_attempt_failure(rec.exec_node);
  if (t.done) return;  // a winner already exists; the crash is moot
  if (backup) {
    t.has_backup = false;  // speculation may retry later
    return;
  }
  ++t.failures;
  if (t.failures >= s_.cfg.fault.max_attempts) {
    abort_job(j);
    return;
  }
  // The task sits out an exponential backoff before re-entering the pending
  // pools; it stays `assigned` meanwhile so nothing double-launches it.
  map_->unlaunch_map(j, t);
  const util::Seconds backoff =
      s_.cfg.fault.retry_backoff * std::pow(2.0, t.failures - 1);
  s_.sim.schedule_in(backoff, [this, job_id, map_idx] {
    JobState& j2 = s_.job(job_id);
    if (j2.finished) return;
    MapTaskState& t2 = j2.maps[static_cast<std::size_t>(map_idx)];
    if (t2.done || !t2.assigned) return;
    if (find_running_attempt(job_id, map_idx) >= 0) return;
    requeue_map_task(j2, map_idx);
  });
}

void FaultSupervisor::on_reduce_attempt_failed(core::JobId job_id,
                                               int reduce_idx,
                                               util::Epoch::Ticket epoch) {
  JobState& j = s_.job(job_id);
  ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(reduce_idx)];
  if (!rt.epoch.valid(epoch) || rt.doomed) return;
  ReduceTaskRecord& rec =
      s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)];
  rec.finish_time = s_.sim.now();
  rec.outcome = AttemptOutcome::kFailed;
  ++s_.slave(rt.node).free_reduce_slots;
  note_attempt_failure(rt.node);
  rt.inflight_for_each([this](const InflightFetch& f) { s_.net.cancel(f.flow); });
  rt.inflight_clear();
  ++rt.failures;
  if (rt.failures >= s_.cfg.fault.max_attempts) {
    abort_job(j);
    return;
  }
  rt.epoch.bump();  // neutralizes any stale events of the dead attempt
  rt.processing = false;
  const util::Epoch::Ticket armed_epoch = rt.epoch.ticket();
  const util::Seconds backoff =
      s_.cfg.fault.retry_backoff * std::pow(2.0, rt.failures - 1);
  // `assigned` stays true through the backoff so the task is not handed out
  // again before it elapses.
  s_.sim.schedule_in(backoff, [this, job_id, reduce_idx, armed_epoch] {
    JobState& j2 = s_.job(job_id);
    ReduceTaskState& rt2 = j2.reduces[static_cast<std::size_t>(reduce_idx)];
    if (j2.finished || !rt2.epoch.valid(armed_epoch) || rt2.doomed ||
        !rt2.assigned) {
      return;
    }
    shuffle_->reset_reduce_attempt(j2, reduce_idx);
  });
}

void FaultSupervisor::abort_job(JobState& j) {
  const core::JobId job_id = s_.id_of(j);
  for (const int record_idx : s_.sorted_attempt_records()) {
    const MapAttempt* a = s_.map_attempts.find(record_idx);
    if (a == nullptr || a->job != job_id) continue;
    MapTaskRecord& rec =
        s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.finish_time < 0.0) rec.finish_time = s_.sim.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    // Doomed attempts sit on a dead node whose slot ledger is void.
    if (!a->doomed) ++s_.slave(rec.exec_node).free_map_slots;
    for (const net::FlowId f : a->flows) s_.net.cancel(f);
    if (a->read != 0 && s_.fetch) {
      s_.fetch->cancel_read(a->read);
    }
    s_.map_attempts.erase(record_idx);
  }
  for (std::size_t r = 0; r < j.reduces.size(); ++r) {
    ReduceTaskState& rt = j.reduces[r];
    if (!rt.assigned) continue;
    ReduceTaskRecord& rec =
        s_.result.reduce_tasks[static_cast<std::size_t>(rt.record)];
    if (rec.finish_time >= 0.0) continue;
    rec.finish_time = s_.sim.now();
    rec.outcome = AttemptOutcome::kKilled;
    rt.epoch.bump();  // neutralizes pending completion / fetch events
    rt.inflight_for_each(
        [this](const InflightFetch& f) { s_.net.cancel(f.flow); });
    rt.inflight_clear();
    if (!rt.doomed) ++s_.slave(rt.node).free_reduce_slots;
  }
  // The job leaves the FIFO queue as failed; no completion hook fires.
  j.finished = true;
  j.metrics.failed = true;
  j.metrics.finish_time = s_.sim.now();
  ++s_.jobs_done;
  s_.retire_job(job_id);
}

void FaultSupervisor::note_attempt_failure(NodeId node) {
  if (s_.cfg.fault.blacklist_threshold <= 0) return;
  SlaveState& s = s_.slave(node);
  if (!s.alive || !s.heartbeating || s.blacklisted) return;
  if (++s.recent_failures < s_.cfg.fault.blacklist_threshold) return;
  s.blacklisted = true;
  ++s_.result.blacklist_events;
  const util::Epoch::Ticket inc = s.incarnation.ticket();
  s_.sim.schedule_in(s_.cfg.fault.blacklist_duration, [this, node, inc] {
    SlaveState& sl = s_.slave(node);
    if (!sl.incarnation.valid(inc) || !sl.blacklisted) return;
    sl.blacklisted = false;
    sl.recent_failures = 0;
  });
}

void FaultSupervisor::replan_inflight_reads(NodeId node) {
  for (const int record_idx : s_.sorted_attempt_records()) {
    MapAttempt* found = s_.map_attempts.find(record_idx);
    if (found == nullptr) continue;
    MapAttempt& a = *found;
    if (a.doomed) continue;
    // Supervised reads retarget themselves (FetchSupervisor::on_node_failed
    // replans around the dead source); replanning here would double up.
    if (a.read != 0) continue;
    MapTaskRecord& rec =
        s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
    if (rec.exec_node == node) continue;  // the compute-death path owns it
    if (a.flows.empty()) continue;        // input already landed
    const core::JobId job_id = a.job;
    const int map_idx = a.map_idx;
    JobState& j = s_.job(job_id);
    MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
    if (rec.kind == MapTaskKind::kDegraded) {
      bool uses_node = false;
      for (const auto& src : rec.sources) {
        if (src.node == node) {
          uses_node = true;
          break;
        }
      }
      if (!uses_node) continue;
      // Re-plan the degraded read from the surviving stripe blocks and
      // restart the whole fetch (partially-arrived shares of a different
      // source set do not compose).
      for (const net::FlowId f : a.flows) s_.net.cancel(f);
      a.flows.clear();
      auto sources =
          j.planner->plan(t.block, rec.exec_node, s_.failure, j.rng);
      if (!sources) {
        rec.unrecoverable = true;
        rec.fetch_done_time = s_.sim.now();
        rec.finish_time = s_.sim.now();
        s_.result.data_loss = true;
        s_.sim.schedule_in(0.0, [this, job_id, record_idx, map_idx] {
          map_->on_map_complete(job_id, record_idx, map_idx);
        });
        continue;
      }
      rec.sources = *sources;
      auto remaining =
          std::make_shared<int>(static_cast<int>(rec.sources.size()));
      for (const auto& src : rec.sources) {
        const net::FlowId flow = s_.net.transfer(
            src.node, rec.exec_node, s_.cfg.block_size * src.fraction,
            [this, job_id, record_idx, map_idx, remaining] {
              if (--*remaining == 0) {
                map_->on_map_input_ready(job_id, record_idx, map_idx);
              }
            });
        a.flows.push_back(flow);
      }
      continue;
    }
    // Rack-local / remote input fetch from the dead node: the attempt is
    // killed and its task requeued immediately (no transient-failure charge
    // — nothing is wrong with the executing slave).
    if (rec.source_node != node) continue;
    for (const net::FlowId f : a.flows) s_.net.cancel(f);
    a.flows.clear();
    const bool backup = a.backup;
    rec.finish_time = s_.sim.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kKilled;
    ++s_.slave(rec.exec_node).free_map_slots;
    s_.map_attempts.erase(record_idx);
    if (j.finished) continue;
    if (t.done || backup) {
      if (backup) t.has_backup = false;
      continue;
    }
    map_->unlaunch_map(j, t);
    requeue_map_task(j, map_idx);
  }
}

}  // namespace dfs::mapreduce
