#include "dfs/mapreduce/trace.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "dfs/util/jsonl.h"

namespace dfs::mapreduce {

namespace {

void write_row_end(std::ostream& os) { os << '\n'; }

}  // namespace

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void write_map_task_csv(std::ostream& os, const RunResult& result,
                        bool include_time_scale) {
  os << "task_id,job_id,stripe,block_index,kind,exec_node,source_node,"
        "assign_time,fetch_done_time,finish_time,runtime,degraded_sources,"
        "unrecoverable";
  if (include_time_scale) os << ",time_scale";
  os << '\n';
  for (const auto& t : result.map_tasks) {
    os << t.id << ',' << t.job << ',' << t.block.stripe << ','
       << t.block.index << ',' << csv_escape(to_string(t.kind)) << ','
       << t.exec_node
       << ',' << t.source_node << ',' << t.assign_time << ','
       << t.fetch_done_time << ',' << t.finish_time << ',' << t.runtime()
       << ',' << t.sources.size() << ',' << (t.unrecoverable ? 1 : 0);
    if (include_time_scale) os << ',' << t.time_scale;
    write_row_end(os);
  }
}

void write_reduce_task_csv(std::ostream& os, const RunResult& result) {
  os << "task_id,job_id,exec_node,assign_time,shuffle_done_time,"
        "process_start_time,finish_time,runtime\n";
  for (const auto& t : result.reduce_tasks) {
    os << t.id << ',' << t.job << ',' << t.exec_node << ',' << t.assign_time
       << ',' << t.shuffle_done_time << ',' << t.process_start_time << ','
       << t.finish_time << ',' << t.runtime();
    write_row_end(os);
  }
}

void write_job_csv(std::ostream& os, const RunResult& result) {
  os << "job_id,submit_time,first_map_launch,map_phase_end,finish_time,"
        "runtime,latency,local_tasks,remote_tasks,degraded_tasks\n";
  for (const auto& j : result.jobs) {
    os << j.id << ',' << j.submit_time << ',' << j.first_map_launch << ','
       << j.map_phase_end << ',' << j.finish_time << ',' << j.runtime() << ','
       << j.latency() << ',' << j.local_tasks << ',' << j.remote_tasks << ','
       << j.degraded_tasks;
    write_row_end(os);
  }
}

void write_attempt_csv(std::ostream& os, const RunResult& result) {
  os << "phase,task_id,job_id,attempt,stripe,block_index,exec_node,kind,"
        "assign_time,finish_time,outcome,speculative,output_lost\n";
  for (const auto& t : result.map_tasks) {
    os << "map," << t.id << ',' << t.job << ',' << t.attempt << ','
       << t.block.stripe << ',' << t.block.index << ',' << t.exec_node << ','
       << csv_escape(to_string(t.kind)) << ',' << t.assign_time << ','
       << t.finish_time << ',' << csv_escape(to_string(t.outcome)) << ','
       << (t.speculative ? 1 : 0) << ',' << (t.output_lost ? 1 : 0);
    write_row_end(os);
  }
  for (const auto& t : result.reduce_tasks) {
    os << "reduce," << t.id << ',' << t.job << ',' << t.attempt << ','
       << -1 << ',' << -1 << ',' << t.exec_node << ",-," << t.assign_time
       << ',' << t.finish_time << ',' << csv_escape(to_string(t.outcome))
       << ",0,0";
    write_row_end(os);
  }
}

void write_events_jsonl(std::ostream& os, const RunResult& result) {
  util::JsonlWriter w(os);
  for (const auto& t : result.map_tasks) {
    w.begin("map")
        .field("id", t.id)
        .field("job", t.job)
        .text("kind", to_string(t.kind))
        .field("node", t.exec_node)
        .field("assign", t.assign_time)
        .field("fetch_done", t.fetch_done_time)
        .field("finish", t.finish_time)
        .end();
  }
  for (const auto& t : result.reduce_tasks) {
    w.begin("reduce")
        .field("id", t.id)
        .field("job", t.job)
        .field("node", t.exec_node)
        .field("assign", t.assign_time)
        .field("shuffle_done", t.shuffle_done_time)
        .field("finish", t.finish_time)
        .end();
  }
  for (const auto& j : result.jobs) {
    w.begin("job")
        .field("id", j.id)
        .field("submit", j.submit_time)
        .field("finish", j.finish_time)
        .field("runtime", j.runtime())
        .end();
  }
}

void write_csv_files(const std::string& prefix, const RunResult& result,
                     bool include_time_scale) {
  const auto open = [](const std::string& path) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    return f;
  };
  auto maps = open(prefix + "_map_tasks.csv");
  write_map_task_csv(maps, result, include_time_scale);
  auto reduces = open(prefix + "_reduce_tasks.csv");
  write_reduce_task_csv(reduces, result);
  auto jobs = open(prefix + "_jobs.csv");
  write_job_csv(jobs, result);
}

}  // namespace dfs::mapreduce
