#pragma once

#include "dfs/mapreduce/master_state.h"

namespace dfs::mapreduce {

class MapPhase;
class ShufflePhase;

/// Fault-tolerance phase engine: compute-death detection (Hadoop-style
/// heartbeat expiry), reaping of dead nodes (kill doomed attempts, requeue
/// their tasks, re-execute lost map outputs), transient attempt failures
/// with exponential-backoff retries, slave blacklisting, job abort after
/// max_attempts, and re-planning of in-flight reads when a storage node
/// dies.
///
/// Teardown never cancels scheduled callbacks directly; detection and
/// unblacklist timers capture the slave's incarnation ticket (util::Epoch)
/// and neutralize themselves once the node has been repaired.
class FaultSupervisor {
 public:
  explicit FaultSupervisor(MasterState& state) : s_(state) {}

  /// Post-construction wiring: reaping reverses map launches and tears down
  /// reduce attempts through the owning engines.
  void wire(MapPhase& map, ShufflePhase& shuffle) {
    map_ = &map;
    shuffle_ = &shuffle;
  }

  /// The node's TaskTracker died: doom its attempts, cancel their transfers,
  /// and arm the heartbeat-expiry detection timer.
  void on_compute_failed(NodeId node);
  /// Repair-side counterpart: reap whatever the expiry window had not yet
  /// detected, void stale timers (incarnation bump), and restore the
  /// slave's compute-side state to a fresh TaskTracker.
  void restore_compute(NodeId node);

  /// Heartbeat expiry fired: the master now knows `node` is dead.
  void declare_slave_dead(NodeId node);
  /// Kill doomed attempts on `node`, requeue their tasks, re-execute
  /// completed maps whose outputs died with the node.
  void reap_dead_node(NodeId node);

  /// Return a task to the correct pending pools (degraded vs per-node),
  /// keeping total_md and the rack indexes exact.
  void requeue_map_task(JobState& j, int map_idx);
  /// A completed map's output died with its node: undo the completion so the
  /// task runs again (or promote a still-running backup attempt to primary).
  void revert_completed_map(JobState& j, int map_idx, int record_idx);
  /// Record index of a live non-finalized attempt of (job, map_idx), or -1.
  int find_running_attempt(core::JobId job_id, int map_idx) const;

  void on_map_attempt_failed(core::JobId job_id, int record_idx, int map_idx);
  void on_reduce_attempt_failed(core::JobId job_id, int reduce_idx,
                                util::Epoch::Ticket epoch);

  /// Abort the job after a task exhausted max_attempts: kill every live
  /// attempt, mark the job failed, keep the FIFO queue moving.
  void abort_job(JobState& j);
  /// Count an attempt failure on `node` toward its blacklist threshold.
  void note_attempt_failure(NodeId node);
  /// Re-plan in-flight degraded reads (and kill doomed input fetches) that
  /// were sourcing data from the newly-failed `node`.
  void replan_inflight_reads(NodeId node);

 private:
  MasterState& s_;
  MapPhase* map_ = nullptr;
  ShufflePhase* shuffle_ = nullptr;
};

}  // namespace dfs::mapreduce
