#include "dfs/mapreduce/map_phase.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "dfs/mapreduce/fault_supervisor.h"
#include "dfs/mapreduce/shuffle_phase.h"

namespace dfs::mapreduce {

void MapPhase::activate_job(JobState& j) {
  assert(!j.active);
  j.active = true;
  // Jobs activate in submission (id) order — same-time activations fire
  // FIFO — so appending keeps the active-jobs index ascending.
  const core::JobId id = s_.id_of(j);
  assert(s_.active_jobs.empty() || s_.active_jobs.back() < id);
  s_.active_jobs.push_back(id);
  // One map task per native block. A task whose input has no surviving
  // readable copy becomes a degraded task (§II-B). For k == 1 layouts
  // (replication), every surviving shard of the stripe is a readable copy,
  // so the task stays "local" to all replica holders and a degraded task
  // only arises when every copy is gone.
  const int blocks = j.layout->num_native_blocks();
  const bool replicated = j.layout->k() == 1;
  j.maps.resize(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    MapTaskState& t = j.maps[static_cast<std::size_t>(i)];
    t.block = j.layout->native_block(i);
    t.home = j.layout->node_of(t.block);
    t.lost = s_.failure.is_failed(t.home);
    if (replicated) {
      for (int b = 0; b < j.layout->n(); ++b) {
        const NodeId holder =
            j.layout->node_of(storage::BlockId{t.block.stripe, b});
        if (!s_.failure.is_failed(holder)) t.locations.push_back(holder);
      }
      t.lost = t.locations.empty();
    } else if (!t.lost) {
      t.locations.push_back(t.home);
    }
    if (t.locations.empty()) {
      j.pending_degraded.push(i);
      continue;
    }
    for (const NodeId loc : t.locations) {
      j.pending_by_node[static_cast<std::size_t>(loc)].repush(i);
      const RackId rack = s_.cfg.topology.rack_of(loc);
      if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
          t.location_racks.end()) {
        t.location_racks.push_back(rack);
      }
    }
    for (const RackId rack : t.location_racks) {
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
    ++j.pending_nondegraded;
  }
  j.total_m = blocks;
  j.total_md = j.pending_degraded.live_count();
}

void MapPhase::reclassify_after_failure(JobState& j, NodeId node) {
  for (std::size_t i = 0; i < j.maps.size(); ++i) {
    MapTaskState& t = j.maps[i];
    if (t.done) continue;
    const auto it = std::find(t.locations.begin(), t.locations.end(), node);
    if (it == t.locations.end()) continue;
    t.locations.erase(it);
    if (t.assigned) {
      // Attempts in flight keep running: the model is a storage (DataNode)
      // loss, not a TaskTracker death. Only the copy list shrinks, so any
      // later speculative backup runs degraded.
      if (t.locations.empty()) t.lost = true;
      continue;
    }
    j.pending_by_node[static_cast<std::size_t>(node)].invalidate(
        static_cast<int>(i));
    const RackId rack = s_.cfg.topology.rack_of(node);
    bool rack_still_has_copy = false;
    for (const NodeId loc : t.locations) {
      if (s_.cfg.topology.rack_of(loc) == rack) {
        rack_still_has_copy = true;
        break;
      }
    }
    if (!rack_still_has_copy) {
      const auto rit =
          std::find(t.location_racks.begin(), t.location_racks.end(), rack);
      if (rit != t.location_racks.end()) {
        t.location_racks.erase(rit);
        --j.pending_by_rack[static_cast<std::size_t>(rack)];
      }
    }
    if (t.locations.empty()) {
      // Last readable copy gone: the task joins the degraded pool and the
      // pacing totals (M_d) grow to match. Queue entries elsewhere are
      // already invalidated, so no pop can return the task node-locally.
      t.lost = true;
      --j.pending_nondegraded;
      ++j.total_md;
      j.pending_degraded.push(static_cast<int>(i));
    }
  }
}

void MapPhase::reclassify_after_repair(JobState& j, NodeId node) {
  const bool replicated = j.layout->k() == 1;
  for (std::size_t i = 0; i < j.maps.size(); ++i) {
    MapTaskState& t = j.maps[i];
    if (t.done) continue;
    bool holds_copy = false;
    if (replicated) {
      for (int b = 0; b < j.layout->n() && !holds_copy; ++b) {
        holds_copy =
            j.layout->node_of(storage::BlockId{t.block.stripe, b}) == node;
      }
    } else {
      holds_copy = t.home == node;
    }
    if (!holds_copy) continue;
    if (std::find(t.locations.begin(), t.locations.end(), node) !=
        t.locations.end()) {
      continue;
    }
    if (t.assigned) {
      // The running attempt keeps its classification; restoring the copy
      // list lets later speculative backups read the block again.
      t.locations.push_back(node);
      t.lost = false;
      continue;
    }
    if (t.locations.empty()) {
      // Leaves the degraded pool: its input is readable again. O(1): the
      // pool entry goes stale where it stands and is skipped on a later pop.
      if (!j.pending_degraded.invalidate(static_cast<int>(i))) {
        // A pending task with no readable copy must be in the degraded pool;
        // anything else means the pending indexes are corrupt. Fail loudly
        // in release builds too — silently continuing would let the pacing
        // counters drift.
        throw std::logic_error(
            "reclassify_after_repair: pending task with no locations is "
            "missing from the degraded pool");
      }
      t.lost = false;
      ++j.pending_nondegraded;
      --j.total_md;
    }
    t.locations.push_back(node);
    j.pending_by_node[static_cast<std::size_t>(node)].repush(
        static_cast<int>(i));
    const RackId rack = s_.cfg.topology.rack_of(node);
    if (std::find(t.location_racks.begin(), t.location_racks.end(), rack) ==
        t.location_racks.end()) {
      t.location_racks.push_back(rack);
      ++j.pending_by_rack[static_cast<std::size_t>(rack)];
    }
  }
}

// --- assignment ----------------------------------------------------------------

int MapPhase::pop_pending(JobState& j, NodeId node) {
  // Entries whose task was assigned through another replica's queue, or
  // whose copy on this node was lost mid-run, were invalidated at that
  // moment; pop() skips them.
  const std::optional<int> map_idx =
      j.pending_by_node[static_cast<std::size_t>(node)].pop();
  return map_idx ? *map_idx : -1;
}

void MapPhase::retire_pending(JobState& j, int map_idx) {
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  assert(!t.assigned);
  t.assigned = true;
  // Queue entries elsewhere become stale; the queue the task was popped from
  // already consumed its entry, so the invalidate is a no-op there.
  for (const NodeId loc : t.locations) {
    j.pending_by_node[static_cast<std::size_t>(loc)].invalidate(map_idx);
  }
  for (const RackId rack : t.location_racks) {
    --j.pending_by_rack[static_cast<std::size_t>(rack)];
  }
  --j.pending_nondegraded;
}

void MapPhase::assign_local(core::JobId id, NodeId s) {
  JobState& j = s_.job(id);
  if (j.pending_by_node[static_cast<std::size_t>(s)].live_count() > 0) {
    const int map_idx = pop_pending(j, s);
    assert(map_idx >= 0);
    retire_pending(j, map_idx);
    start_map(j, map_idx, s, MapTaskKind::kNodeLocal, s);
    return;
  }
  // Rack-local: steal from the rack-mate with the largest backlog.
  NodeId best = -1;
  long best_len = 0;
  for (NodeId peer :
       s_.cfg.topology.nodes_in_rack(s_.cfg.topology.rack_of(s))) {
    const long len =
        j.pending_by_node[static_cast<std::size_t>(peer)].live_count();
    if (len > best_len) {
      best_len = len;
      best = peer;
    }
  }
  if (best < 0) throw std::logic_error("assign_local without a local task");
  const int map_idx = pop_pending(j, best);
  assert(map_idx >= 0);
  retire_pending(j, map_idx);
  start_map(j, map_idx, s, MapTaskKind::kRackLocal, best);
}

void MapPhase::assign_remote(core::JobId id, NodeId s) {
  JobState& j = s_.job(id);
  const RackId my_rack = s_.cfg.topology.rack_of(s);
  NodeId best = -1;
  long best_len = 0;
  for (NodeId peer = 0; peer < s_.cfg.topology.num_nodes(); ++peer) {
    if (s_.cfg.topology.rack_of(peer) == my_rack) continue;
    const long len =
        j.pending_by_node[static_cast<std::size_t>(peer)].live_count();
    if (len > best_len) {
      best_len = len;
      best = peer;
    }
  }
  if (best < 0) throw std::logic_error("assign_remote without a remote task");
  const int map_idx = pop_pending(j, best);
  assert(map_idx >= 0);
  retire_pending(j, map_idx);
  start_map(j, map_idx, s, MapTaskKind::kRemote, best);
}

void MapPhase::assign_degraded(core::JobId id, NodeId s) {
  JobState& j = s_.job(id);
  if (j.pending_degraded.live_count() <= 0) {
    throw std::logic_error("assign_degraded without a degraded task");
  }
  // pop() discards the stale prefix: entries whose task left the pool via
  // reclassify_after_repair or re-entered under a newer generation.
  const std::optional<int> popped = j.pending_degraded.pop();
  if (!popped) {
    throw std::logic_error(
        "assign_degraded: the live count says a task exists but the "
        "pool holds only stale entries");
  }
  const int map_idx = *popped;
  j.maps[static_cast<std::size_t>(map_idx)].assigned = true;
  s_.last_degraded_assign[static_cast<std::size_t>(
      s_.cfg.topology.rack_of(s))] = s_.sim.now();
  start_map(j, map_idx, s, MapTaskKind::kDegraded, -1);
}

// --- map task lifecycle ----------------------------------------------------------

void MapPhase::start_map(JobState& j, int map_idx, NodeId s, MapTaskKind kind,
                         NodeId fetch_source, bool backup) {
  SlaveState& sl = s_.slave(s);
  assert(sl.alive && sl.free_map_slots > 0);
  --sl.free_map_slots;
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  assert(t.assigned);  // callers retire the task from the pending indexes

  MapTaskRecord rec;
  rec.id = static_cast<TaskId>(s_.result.map_tasks.size());
  rec.job = j.spec.id;
  rec.block = t.block;
  rec.map_index = map_idx;
  rec.attempt = t.attempts++;
  rec.exec_node = s;
  rec.source_node = fetch_source;
  rec.kind = kind;
  rec.time_scale = s_.cfg.time_scale(s);
  rec.assign_time = s_.sim.now();
  rec.speculative = backup;
  const int record_idx = static_cast<int>(s_.result.map_tasks.size());

  if (!backup) {
    // Backups are extra attempts: they never advance the pacing counters
    // (m, m_d), the per-kind task counts, or the first-launch milestone.
    t.record = record_idx;
    t.launched_kind = kind;
    t.launched_cost = 0.0;  // degraded launches overwrite once planned
    ++j.m;
    if (kind == MapTaskKind::kDegraded) ++j.md;
    if (j.metrics.first_map_launch < 0.0) {
      j.metrics.first_map_launch = s_.sim.now();
    }
    switch (kind) {
      case MapTaskKind::kNodeLocal:
      case MapTaskKind::kRackLocal:
        ++j.metrics.local_tasks;
        break;
      case MapTaskKind::kRemote:
        ++j.metrics.remote_tasks;
        break;
      case MapTaskKind::kDegraded:
        ++j.metrics.degraded_tasks;
        break;
    }
  }

  const core::JobId job_id = s_.id_of(j);
  // Register the live attempt. Pure bookkeeping (no events, no RNG), so it
  // is maintained whether or not the fault layer is on; every lifecycle
  // callback looks the attempt up first and no-ops once it is finalized.
  MapAttempt attempt;
  attempt.job = job_id;
  attempt.map_idx = map_idx;
  attempt.backup = backup;
  MapAttempt& reg = s_.map_attempts.emplace(record_idx, std::move(attempt));

  if (kind == MapTaskKind::kDegraded && s_.fetch) {
    // Supervised path: hedged plan + fetch supervisor (cancel-on-quorum
    // hedging, timeouts/retries, straggler injection). With hedging off the
    // primary matches plan() exactly — same RNG draws from j.rng — and the
    // robustness machinery draws only from the supervisor's own stream.
    const int extras = s_.cfg.hedge.active() ? s_.cfg.hedge.extra_sources : 0;
    auto hplan = j.planner->plan_hedged(t.block, s, s_.failure, j.rng, extras);
    if (!backup) {
      // Pacing charges the primary option's volume: hedge fetches are
      // redundant bytes the scheduler should not count as useful work.
      double plan_blocks = j.expected_degraded_cost;
      if (hplan) {
        plan_blocks = 0.0;
        for (const auto& src : hplan->primary) plan_blocks += src.fraction;
      }
      t.launched_cost = plan_blocks;
      j.md_cost += plan_blocks;
    }
    if (!hplan) {
      rec.unrecoverable = true;
      rec.fetch_done_time = s_.sim.now();
      rec.finish_time = s_.sim.now();
      s_.result.map_tasks.push_back(std::move(rec));
      s_.result.data_loss = true;
      s_.sim.schedule_in(0.0, [this, job_id, record_idx, map_idx] {
        on_map_complete(job_id, record_idx, map_idx);
      });
      return;
    }
    rec.sources = hplan->primary;  // replaced by the arrived set on completion
    s_.result.map_tasks.push_back(std::move(rec));
    reg.read = s_.fetch->start_read(
        *j.planner, std::move(*hplan), s,
        [this, job_id, record_idx, map_idx](ReadOutcome out) {
          MapAttempt* attempt_entry = s_.map_attempts.find(record_idx);
          if (attempt_entry == nullptr || attempt_entry->doomed) return;
          attempt_entry->read = 0;
          MapTaskRecord& r =
              s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
          if (!out.ok) {
            // Every fallback replan exhausted mid-flight: the block turned
            // out unrecoverable after all.
            r.unrecoverable = true;
            r.sources.clear();
            r.fetch_done_time = s_.sim.now();
            s_.result.data_loss = true;
            on_map_complete(job_id, record_idx, map_idx);
            return;
          }
          r.sources = std::move(out.sources);
          on_map_input_ready(job_id, record_idx, map_idx);
        });
    return;
  }

  if (kind == MapTaskKind::kDegraded) {
    auto sources = j.planner->plan(t.block, s, s_.failure, j.rng);
    if (!backup) {
      // Cost-weighted pacing: charge the blocks this plan actually fetches
      // (an unrecoverable plan is charged at the expected volume so the
      // m_d/M_d ratio stays consistent with its total_md entry).
      double plan_blocks = j.expected_degraded_cost;
      if (sources) {
        plan_blocks = 0.0;
        for (const auto& src : *sources) plan_blocks += src.fraction;
      }
      t.launched_cost = plan_blocks;
      j.md_cost += plan_blocks;
    }
    if (!sources) {
      rec.unrecoverable = true;
      rec.fetch_done_time = s_.sim.now();
      rec.finish_time = s_.sim.now();
      s_.result.map_tasks.push_back(std::move(rec));
      s_.result.data_loss = true;
      // Count it done so the job can still terminate.
      s_.sim.schedule_in(0.0, [this, job_id, record_idx, map_idx] {
        on_map_complete(job_id, record_idx, map_idx);
      });
      return;
    }
    rec.sources = *sources;
    s_.result.map_tasks.push_back(std::move(rec));
    // Fetch all source blocks in parallel; input ready when the last lands.
    // Sub-shard plans download only src.fraction of each block.
    auto remaining = std::make_shared<int>(static_cast<int>(
        s_.result.map_tasks[static_cast<std::size_t>(record_idx)]
            .sources.size()));
    for (const auto& src :
         s_.result.map_tasks[static_cast<std::size_t>(record_idx)].sources) {
      const net::FlowId flow = s_.net.transfer(
          src.node, s, s_.cfg.block_size * src.fraction,
          [this, job_id, record_idx, map_idx, remaining] {
            if (--*remaining == 0) {
              on_map_input_ready(job_id, record_idx, map_idx);
            }
          });
      reg.flows.push_back(flow);
    }
    return;
  }

  s_.result.map_tasks.push_back(std::move(rec));
  if (kind == MapTaskKind::kNodeLocal) {
    on_map_input_ready(job_id, record_idx, map_idx);
  } else {
    // Rack-local and remote tasks download the input block (or a replica)
    // from the location the assignment chose.
    assert(fetch_source >= 0);
    const net::FlowId flow =
        s_.net.transfer(fetch_source, s, s_.cfg.block_size,
                        [this, job_id, record_idx, map_idx] {
                          on_map_input_ready(job_id, record_idx, map_idx);
                        });
    reg.flows.push_back(flow);
  }
}

void MapPhase::on_map_input_ready(core::JobId job_id, int record_idx,
                                  int map_idx) {
  MapAttempt* reg = s_.map_attempts.find(record_idx);
  if (reg == nullptr || reg->doomed) {
    // The attempt was killed (or its node compute-failed) while the input
    // was in flight; an uncancellable zero-time flow delivered anyway.
    return;
  }
  reg->flows.clear();  // fetches landed; nothing left to cancel
  JobState& j = s_.job(job_id);
  MapTaskRecord& rec =
      s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
  rec.fetch_done_time = s_.sim.now();
  if (j.maps[static_cast<std::size_t>(map_idx)].done) {
    // Another attempt won while this one was still fetching; release the
    // slot without burning processing time (the kill a TaskTracker applies).
    rec.finish_time = s_.sim.now();
    rec.winner = false;
    rec.outcome = AttemptOutcome::kLostRace;
    ++s_.slave(rec.exec_node).free_map_slots;
    s_.map_attempts.erase(record_idx);
    return;
  }
  util::Seconds duration =
      j.rng.normal(j.spec.map_time.mean, j.spec.map_time.stddev) *
      s_.cfg.time_scale(rec.exec_node);
  if (rec.kind == MapTaskKind::kDegraded) duration += s_.cfg.decode_overhead;
  if (s_.cfg.fault.injection_enabled() &&
      s_.cfg.fault.node_flaky(rec.exec_node) &&
      j.rng.uniform(0.0, 1.0) < s_.cfg.fault.attempt_failure_prob) {
    // Transient crash partway through processing.
    const double frac = j.rng.uniform(0.0, 1.0);
    s_.sim.schedule_in(duration * frac, [this, job_id, record_idx, map_idx] {
      fault_->on_map_attempt_failed(job_id, record_idx, map_idx);
    });
    return;
  }
  s_.sim.schedule_in(duration, [this, job_id, record_idx, map_idx] {
    on_map_complete(job_id, record_idx, map_idx);
  });
}

void MapPhase::on_map_complete(core::JobId job_id, int record_idx,
                               int map_idx) {
  const MapAttempt* reg = s_.map_attempts.find(record_idx);
  if (reg == nullptr || reg->doomed) {
    // Finalized (killed / failed) before this completion event fired.
    return;
  }
  s_.map_attempts.erase(record_idx);
  JobState& j = s_.job(job_id);
  MapTaskState& t = j.maps[static_cast<std::size_t>(map_idx)];
  MapTaskRecord& rec =
      s_.result.map_tasks[static_cast<std::size_t>(record_idx)];
  if (rec.finish_time < 0.0) rec.finish_time = s_.sim.now();
  ++s_.slave(rec.exec_node).free_map_slots;
  if (t.done) {
    // A speculative race already produced this task's output; this attempt
    // merely releases its slot.
    rec.winner = false;
    rec.outcome = AttemptOutcome::kLostRace;
    return;
  }
  t.done = true;
  ++j.maps_done;
  j.completed_map_runtime_sum += rec.runtime();
  j.completed_map_records.push_back(record_idx);
  if (s_.hooks->on_map_finish && !rec.unrecoverable) {
    s_.hooks->on_map_finish(rec);
  }

  // Shuffle: push this map's partition to every already-assigned reducer
  // (skipping doomed attempts and partitions a reducer already holds from a
  // previous incarnation of this map task).
  for (int r = 0; r < j.spec.num_reducers; ++r) {
    ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
    if (!rt.assigned || rt.doomed) continue;
    if (!rt.fetched.empty() && rt.fetched[static_cast<std::size_t>(map_idx)]) {
      continue;
    }
    shuffle_->start_partition_fetch(j, r, record_idx);
  }
  if (j.maps_done == j.total_m) {
    j.metrics.map_phase_end = s_.sim.now();
    // A re-executed map (lost-output recovery) can be the last barrier both
    // for reducers that were already fully fetched and for the job itself.
    for (int r = 0; r < j.spec.num_reducers; ++r) {
      ReduceTaskState& rt = j.reduces[static_cast<std::size_t>(r)];
      if (rt.assigned && !rt.doomed && !rt.processing &&
          rt.partitions_fetched == j.total_m) {
        shuffle_->maybe_start_reduce_processing(j, r);
      }
    }
    s_.maybe_finish_job(j);
  }
}

void MapPhase::try_speculate(NodeId s) {
  SlaveState& sl = s_.slave(s);
  if (sl.blacklisted) return;
  // Iterating the live index is safe: backup launches never finish or
  // activate a job, so no retire can shift it mid-walk.
  for (std::size_t ji = 0;
       ji < s_.active_jobs.size() && sl.free_map_slots > 0; ++ji) {
    JobState& j = s_.job(s_.active_jobs[ji]);
    if (j.m < j.total_m) continue;  // unassigned work takes precedence
    if (j.maps_done >= j.total_m) continue;
    if (static_cast<double>(j.maps_done) <
        s_.cfg.speculation_min_completed_fraction * j.total_m) {
      continue;
    }
    const double mean_runtime =
        j.completed_map_runtime_sum / static_cast<double>(j.maps_done);
    // Back up the longest-running attempt that is sufficiently overdue.
    int candidate = -1;
    double worst_elapsed = s_.cfg.speculation_slowdown * mean_runtime;
    for (std::size_t i = 0; i < j.maps.size(); ++i) {
      const MapTaskState& t = j.maps[i];
      if (!t.assigned || t.done || t.has_backup) continue;
      const auto& rec =
          s_.result.map_tasks[static_cast<std::size_t>(t.record)];
      if (rec.exec_node == s) continue;  // back up on a *different* node
      // Speed-aware mode discounts elapsed time by the node's known speed
      // factor, so a configured-slow node is only flagged when it lags its
      // *own* expected pace. Off by default (scale 1.0: the classic rule,
      // bit-for-bit — stragglers are then unplanned jitter speculation is
      // meant to catch).
      const double scale =
          s_.cfg.speculation_speed_aware ? s_.cfg.time_scale(rec.exec_node)
                                         : 1.0;
      const double elapsed = (s_.sim.now() - rec.assign_time) / scale;
      if (elapsed > worst_elapsed) {
        worst_elapsed = elapsed;
        candidate = static_cast<int>(i);
      }
    }
    if (candidate < 0) continue;
    MapTaskState& t = j.maps[static_cast<std::size_t>(candidate)];
    t.has_backup = true;
    MapTaskKind kind;
    NodeId source = -1;
    if (t.lost) {
      kind = MapTaskKind::kDegraded;
    } else if (std::find(t.locations.begin(), t.locations.end(), s) !=
               t.locations.end()) {
      kind = MapTaskKind::kNodeLocal;
      source = s;
    } else {
      source = t.locations.front();
      for (const NodeId loc : t.locations) {
        if (s_.cfg.topology.same_rack(loc, s)) {
          source = loc;
          break;
        }
      }
      kind = s_.cfg.topology.same_rack(source, s) ? MapTaskKind::kRackLocal
                                                  : MapTaskKind::kRemote;
    }
    start_map(j, candidate, s, kind, source, /*backup=*/true);
  }
}

void MapPhase::unlaunch_map(JobState& j, MapTaskState& t) {
  --j.m;
  if (t.launched_kind == MapTaskKind::kDegraded) {
    --j.md;
    j.md_cost -= t.launched_cost;
  }
  t.launched_cost = 0.0;
}

}  // namespace dfs::mapreduce
