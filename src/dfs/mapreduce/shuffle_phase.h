#pragma once

#include "dfs/mapreduce/master_state.h"

namespace dfs::mapreduce {

class FaultSupervisor;

/// Reduce-side phase engine: assigns reduce tasks to heartbeating slaves,
/// pulls each finished map's partition over the network (the shuffle), and
/// starts reduce processing once every partition has landed and the map
/// phase is complete.
///
/// Attempt teardown is epoch-guarded (util::Epoch): scheduled fetch and
/// completion events carry the ticket they were armed under and no-op once
/// the attempt has been torn down and reassigned.
class ShufflePhase {
 public:
  explicit ShufflePhase(MasterState& state) : s_(state) {}

  /// Post-construction wiring: transient-crash injection reports to the
  /// fault supervisor.
  void wire(FaultSupervisor& fault) { fault_ = &fault; }

  /// Fill the slave's free reduce slots from the FIFO job queue.
  void assign_reduce_tasks(NodeId slave);

  void start_partition_fetch(JobState& j, int reduce_idx, int map_record_idx);
  void on_partition_fetched(core::JobId job_id, int reduce_idx, int map_idx,
                            util::Epoch::Ticket epoch);
  void maybe_start_reduce_processing(JobState& j, int reduce_idx);
  void on_reduce_complete(core::JobId job_id, int reduce_idx,
                          util::Epoch::Ticket epoch);

  /// Tear the current reduce attempt down so the task can be reassigned.
  void reset_reduce_attempt(JobState& j, int reduce_idx);

  /// Bytes of one map-output partition destined for one reducer.
  util::Bytes partition_bytes(const JobState& j) const;

 private:
  MasterState& s_;
  FaultSupervisor* fault_ = nullptr;
};

}  // namespace dfs::mapreduce
