#pragma once

#include <iosfwd>
#include <string>

#include "dfs/mapreduce/metrics.h"

namespace dfs::mapreduce {

/// CSV/JSONL exporters for run results, so traces can be analyzed with
/// external tooling (pandas, gnuplot, ...). One row per task / job; columns
/// documented in the header row.

/// RFC-4180 field escaping: wraps the field in double quotes (doubling any
/// inner quotes) when it contains a comma, quote, or line break; returns it
/// unchanged otherwise. The built-in columns are numeric or bare
/// identifiers, so today's traces are unchanged — the helper keeps any
/// future string column (job names, file paths) from corrupting rows.
std::string csv_escape(const std::string& field);

/// `include_time_scale` appends a time_scale column (the executing node's
/// speed factor at assignment — the attempt-trace view of the speed model).
/// Opt-in so existing trace consumers keep the exact historical columns.
void write_map_task_csv(std::ostream& os, const RunResult& result,
                        bool include_time_scale = false);
void write_reduce_task_csv(std::ostream& os, const RunResult& result);
void write_job_csv(std::ostream& os, const RunResult& result);

/// Attempt-level trace: one row per map AND reduce attempt, with the
/// attempt number and its outcome (success / lost-race / killed / failed).
/// Reduce rows carry "-" for the kind and -1 for the block columns. This is
/// a separate writer so the per-task CSVs above keep their exact columns.
void write_attempt_csv(std::ostream& os, const RunResult& result);

/// One JSON object per line, mixing task kinds (field "type" discriminates:
/// "map" / "reduce" / "job").
void write_events_jsonl(std::ostream& os, const RunResult& result);

/// Writes all three CSVs to `<prefix>_map_tasks.csv`,
/// `<prefix>_reduce_tasks.csv` and `<prefix>_jobs.csv`. Throws
/// std::runtime_error if a file cannot be opened. `include_time_scale`
/// forwards to write_map_task_csv (opt-in speed-factor column).
void write_csv_files(const std::string& prefix, const RunResult& result,
                     bool include_time_scale = false);

}  // namespace dfs::mapreduce
