#include "dfs/mapreduce/simulation.h"

#include <stdexcept>
#include <utility>

namespace dfs::mapreduce {

MapReduceSimulation::MapReduceSimulation(
    ClusterConfig config, std::vector<JobInput> jobs,
    storage::FailureScenario failure, core::Scheduler& scheduler,
    std::uint64_t seed, storage::SourceSelection source_selection,
    storage::RecoveryCostModel cost_model)
    : cfg_(std::move(config)), failure_(std::move(failure)), rng_(seed) {
  net_ = std::make_unique<net::Network>(sim_, cfg_.topology, cfg_.links,
                                        cfg_.contention);
  master_ = std::make_unique<Master>(sim_, *net_, cfg_, failure_, scheduler,
                                     rng_, source_selection, cost_model);
  for (const JobInput& j : jobs) master_->submit(j);
}

void MapReduceSimulation::set_hooks(TaskHooks hooks) {
  master_->hooks = std::move(hooks);
}

RunResult MapReduceSimulation::run() {
  if (ran_) throw std::logic_error("MapReduceSimulation::run() called twice");
  ran_ = true;
  master_->start();
  sim_.run();
  if (!master_->all_jobs_done()) {
    throw std::runtime_error(
        "simulation drained its event queue with unfinished jobs "
        "(scheduling starvation bug)");
  }
  return master_->take_result();
}

RunResult simulate(const ClusterConfig& config,
                   const std::vector<JobInput>& jobs,
                   const storage::FailureScenario& failure,
                   core::Scheduler& scheduler, std::uint64_t seed,
                   storage::SourceSelection source_selection,
                   storage::RecoveryCostModel cost_model) {
  MapReduceSimulation s(config, jobs, failure, scheduler, seed,
                        source_selection, cost_model);
  return s.run();
}

}  // namespace dfs::mapreduce
