#include "dfs/workload/scenarios.h"

#include <memory>
#include <stdexcept>

#include "dfs/ec/reed_solomon.h"

namespace dfs::workload {

using mapreduce::ClusterConfig;
using mapreduce::JobInput;

ClusterConfig default_sim_cluster() {
  ClusterConfig cfg;
  cfg.topology = net::Topology(4, 10);
  cfg.links.rack_up = util::gigabits_per_sec(1.0);
  cfg.links.rack_down = util::gigabits_per_sec(1.0);
  // The paper's analysis and simulator contend only on the per-rack links;
  // node links stay uncontended.
  cfg.links.node_up = util::kUnlimitedBandwidth;
  cfg.links.node_down = util::kUnlimitedBandwidth;
  cfg.map_slots_per_node = 4;
  cfg.reduce_slots_per_node = 1;
  cfg.block_size = util::mebibytes(128);
  cfg.heartbeat_interval = 3.0;
  return cfg;
}

ClusterConfig heterogeneous_sim_cluster() {
  ClusterConfig cfg = default_sim_cluster();
  // Half the nodes are twice as slow (§V-C doubles their mean processing
  // times). Odd node ids, so slow nodes spread evenly over the racks.
  cfg.node_time_scale.assign(
      static_cast<std::size_t>(cfg.topology.num_nodes()), 1.0);
  for (net::NodeId n = 1; n < cfg.topology.num_nodes(); n += 2) {
    cfg.node_time_scale[static_cast<std::size_t>(n)] = 2.0;
  }
  return cfg;
}

ClusterConfig extreme_sim_cluster(int bad_nodes) {
  ClusterConfig cfg = default_sim_cluster();
  const int num_nodes = cfg.topology.num_nodes();
  if (bad_nodes < 0 || bad_nodes > num_nodes) {
    throw std::invalid_argument("bad_nodes out of range");
  }
  cfg.node_time_scale.assign(static_cast<std::size_t>(num_nodes), 1.0);
  // Bad nodes run map tasks 10x slower (3 s vs 30 s in the paper's setup);
  // spread them across the racks.
  for (int i = 0; i < bad_nodes; ++i) {
    const auto idx = static_cast<std::size_t>(i * num_nodes / bad_nodes);
    cfg.node_time_scale[idx] = 10.0;
  }
  return cfg;
}

ClusterConfig testbed_cluster() {
  ClusterConfig cfg;
  cfg.topology = net::Topology(3, 4);
  // The physical testbed has 1 Gbps switch ports, but the paper's Table I
  // implies a much lower *effective* per-stream read throughput: an LF
  // degraded map spends ~54 s fetching 10 x 64 MB (~95 Mbps/stream) through
  // the SATA-disk-backed HDFS DataNode path. We model every link at an
  // effective 250 Mbps, calibrated so the single-job EDF runtime cut and
  // the degraded-map runtimes land in the paper's range (see DESIGN.md).
  const auto effective = util::megabits_per_sec(250.0);
  cfg.links.node_up = effective;
  cfg.links.node_down = effective;
  cfg.links.rack_up = effective;
  cfg.links.rack_down = effective;
  cfg.map_slots_per_node = 4;
  cfg.reduce_slots_per_node = 1;
  cfg.block_size = util::mebibytes(64);
  cfg.heartbeat_interval = 3.0;
  return cfg;
}

JobInput make_sim_job(int id, const SimJobOptions& options,
                      const net::Topology& topology, util::Rng& rng) {
  JobInput job;
  job.spec.id = id;
  job.spec.map_time = options.map_time;
  job.spec.reduce_time = options.reduce_time;
  job.spec.num_reducers = options.num_reducers;
  job.spec.shuffle_ratio = options.shuffle_ratio;
  job.spec.submit_time = options.submit_time;
  // skew == 0 takes the paper's random placement path with the exact RNG
  // draw sequence it always had; the skewed layout is a separate generator.
  job.layout = std::make_shared<storage::StorageLayout>(
      options.skew > 0.0
          ? storage::zipf_rack_skewed_layout(options.num_blocks, options.n,
                                             options.k, topology, rng,
                                             options.skew)
          : storage::random_rack_constrained_layout(
                options.num_blocks, options.n, options.k, topology, rng));
  job.code = ec::make_reed_solomon(options.n, options.k);
  return job;
}

std::vector<JobInput> make_multi_job_workload(int count,
                                              util::Seconds mean_interarrival,
                                              const SimJobOptions& options,
                                              const net::Topology& topology,
                                              util::Rng& rng) {
  std::vector<JobInput> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  util::Seconds at = 0.0;
  for (int i = 0; i < count; ++i) {
    SimJobOptions opts = options;
    opts.submit_time = at;
    jobs.push_back(make_sim_job(i, opts, topology, rng));
    at += rng.exponential(mean_interarrival);
  }
  return jobs;
}

MotivatingExample motivating_example() {
  MotivatingExample ex;
  ex.cluster.topology = net::Topology(std::vector<int>{3, 2});
  // 100 Mbps everywhere; one "128 MB" block (125e6 bytes nominal) moves
  // node-to-node in exactly 10 s, matching the paper's round numbers.
  const auto mbps100 = util::megabits_per_sec(100);
  ex.cluster.links.node_up = mbps100;
  ex.cluster.links.node_down = mbps100;
  ex.cluster.links.rack_up = mbps100;
  ex.cluster.links.rack_down = mbps100;
  ex.cluster.block_size = 125e6;
  ex.cluster.map_slots_per_node = 2;
  ex.cluster.reduce_slots_per_node = 1;
  // Fine-grained heartbeats keep the replay close to the paper's idealized
  // lock-step schedule.
  ex.cluster.heartbeat_interval = 0.5;

  ex.job.spec.id = 0;
  ex.job.spec.map_time = {10.0, 0.0};
  ex.job.spec.num_reducers = 0;  // the example follows the map phase only
  ex.job.spec.shuffle_ratio = 0.0;

  // Fig. 2's placement. Nodes 0-2 are rack A (paper's Nodes 1-3), nodes 3-4
  // are rack B (Nodes 4-5). Stripe blocks are [B_i0, B_i1, P_i0, P_i1].
  // Node 0 holds the natives B00..B30 that become lost blocks; each degraded
  // reader then holds its stripe's other native locally and fetches one
  // parity block, exactly reproducing the narrative:
  //   Node2/Node3 fetch P00/P10 from rack B (they compete on rack A's
  //   downlink), Node4 fetches P20 from Node3 cross-rack, Node5 fetches P30
  //   from Node4 within rack B.
  std::vector<std::vector<net::NodeId>> placement = {
      {0, 1, 4, 3},  // stripe 0: B00@N1, B01@N2, P00@N5, P01@N4
      {0, 2, 4, 3},  // stripe 1: B10@N1, B11@N3, P10@N5, P11@N4
      {0, 3, 2, 4},  // stripe 2: B20@N1, B21@N4, P20@N3, P21@N5
      {0, 4, 3, 1},  // stripe 3: B30@N1, B31@N5, P30@N4, P31@N2
      {1, 3, 2, 4},  // stripe 4
      {2, 4, 1, 3},  // stripe 5
  };
  ex.job.layout = std::make_shared<storage::StorageLayout>(
      storage::StorageLayout(4, 2, std::move(placement)));
  ex.job.code = ec::make_reed_solomon(4, 2);
  ex.failure = storage::FailureScenario({0});
  return ex;
}

const char* to_string(TestbedJobKind kind) {
  switch (kind) {
    case TestbedJobKind::kWordCount:
      return "WordCount";
    case TestbedJobKind::kGrep:
      return "Grep";
    case TestbedJobKind::kLineCount:
      return "LineCount";
  }
  return "?";
}

JobInput make_testbed_job(int id, TestbedJobKind kind,
                          util::Seconds submit_time) {
  JobInput job;
  job.spec.id = id;
  job.spec.num_reducers = 8;
  job.spec.submit_time = submit_time;
  // Calibrated from Table I's normal-map runtimes on 64 MB blocks; the
  // shuffle ratios order the jobs as §VI describes (LineCount shuffles more
  // than Grep; WordCount in between).
  switch (kind) {
    case TestbedJobKind::kWordCount:
      job.spec.map_time = {31.0, 2.0};
      job.spec.reduce_time = {30.0, 3.0};
      job.spec.shuffle_ratio = 0.05;
      break;
    case TestbedJobKind::kGrep:
      job.spec.map_time = {12.0, 1.0};
      job.spec.reduce_time = {15.0, 2.0};
      job.spec.shuffle_ratio = 0.01;
      break;
    case TestbedJobKind::kLineCount:
      job.spec.map_time = {36.0, 2.0};
      job.spec.reduce_time = {35.0, 3.0};
      job.spec.shuffle_ratio = 0.10;
      break;
  }
  // 15 GB of text = 240 blocks of 64 MB, (12,10) Reed-Solomon, placed
  // round-robin over the 12 slaves: 20 native blocks per slave (§VI).
  job.layout = std::make_shared<storage::StorageLayout>(
      storage::round_robin_layout(240, 12, 10, 12));
  job.code = ec::make_reed_solomon(12, 10);
  return job;
}

JobInput make_extreme_case_job(int id, const net::Topology& topology,
                               util::Rng& rng) {
  SimJobOptions opts;
  opts.num_blocks = 150;
  opts.map_time = {3.0, 0.2};
  opts.num_reducers = 0;  // map-only (§V-C)
  opts.shuffle_ratio = 0.0;
  return make_sim_job(id, opts, topology, rng);
}

}  // namespace dfs::workload
