#pragma once

#include <cstddef>
#include <string>

#include "dfs/util/rng.h"

namespace dfs::workload {

/// Generates synthetic English-like plain text: Zipf-distributed words from
/// a fixed vocabulary, arranged into lines of a few words each. Stands in
/// for the paper's 15 GB Project Gutenberg corpus in the byte-backed
/// examples; what matters for WordCount/Grep/LineCount is a realistic,
/// skewed word/line distribution, which Zipf provides.
std::string generate_text(util::Rng& rng, std::size_t approx_bytes);

/// The vocabulary used by generate_text (rank order). Exposed so tests and
/// examples can pick query words with known frequencies.
const std::string& vocabulary_word(std::size_t rank);
std::size_t vocabulary_size();

}  // namespace dfs::workload
