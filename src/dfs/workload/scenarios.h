#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/mapreduce/config.h"
#include "dfs/storage/failure.h"
#include "dfs/util/rng.h"

namespace dfs::workload {

// ---------------------------------------------------------------------------
// Cluster builders
// ---------------------------------------------------------------------------

/// §V-B default simulation cluster: 40 nodes in 4 racks, 1 Gbps rack
/// download bandwidth, 128 MB blocks, 4 map slots + 1 reduce slot per node.
mapreduce::ClusterConfig default_sim_cluster();

/// §V-C heterogeneous cluster: same as default, but half the nodes are twice
/// as slow (the paper doubles their mean map/reduce processing times).
mapreduce::ClusterConfig heterogeneous_sim_cluster();

/// §V-C extreme cluster: same as default, but `bad_nodes` nodes process map
/// tasks 10x slower (3 s vs 30 s in the paper). Returns the config; the bad
/// nodes are nodes [0, bad_nodes).
mapreduce::ClusterConfig extreme_sim_cluster(int bad_nodes = 5);

/// §VI testbed: 12 slaves in 3 racks of 4, all links 1 Gbps (node links are
/// modeled too, as on the real switches), 64 MB blocks, 4 map + 1 reduce
/// slots per slave.
mapreduce::ClusterConfig testbed_cluster();

// ---------------------------------------------------------------------------
// Job builders (simulation experiments, §V)
// ---------------------------------------------------------------------------

/// Knobs of the §V-B default job that the Fig. 7 sweeps vary.
struct SimJobOptions {
  int num_blocks = 1440;
  int n = 20;
  int k = 15;
  mapreduce::Dist map_time{20.0, 1.0};
  mapreduce::Dist reduce_time{30.0, 2.0};
  int num_reducers = 30;
  double shuffle_ratio = 0.01;
  util::Seconds submit_time = 0.0;
  /// Zipf exponent for skewed block placement: 0 (the default) keeps the
  /// paper's parity-declustered random placement; > 0 routes blocks through
  /// storage::zipf_rack_skewed_layout so popularity — and the degraded-read
  /// traffic after a failure — concentrates on hot (low-numbered) racks.
  double skew = 0.0;
};

/// Build one job over a fresh randomly-placed erasure-coded file (§III
/// placement rule, parity declustering).
mapreduce::JobInput make_sim_job(int id, const SimJobOptions& options,
                                 const net::Topology& topology,
                                 util::Rng& rng);

/// §V-B multi-job workload: `count` copies of the default job with
/// exponential(mean_interarrival) inter-arrival times, FIFO-scheduled.
std::vector<mapreduce::JobInput> make_multi_job_workload(
    int count, util::Seconds mean_interarrival, const SimJobOptions& options,
    const net::Topology& topology, util::Rng& rng);

// ---------------------------------------------------------------------------
// Motivating example (§III, Figs. 2-3)
// ---------------------------------------------------------------------------

/// The paper's hand-built five-node scenario: racks of 3 + 2 nodes joined by
/// 100 Mbps links, a 12-native-block file under a (4,2) code placed exactly
/// as the Fig. 2 narrative requires (node 0 holds B00,B10,B20,B30; each
/// survivor can read one source locally and one cross-rack), 2 map slots per
/// node, 10 s per block transfer and 10 s per map task. Node 0 fails.
///
/// Under locality-first the map phase lasts ~40 s; degraded-first brings it
/// to ~30 s (Fig. 3's 25% saving).
struct MotivatingExample {
  mapreduce::ClusterConfig cluster;
  mapreduce::JobInput job;
  storage::FailureScenario failure;
};

MotivatingExample motivating_example();

// ---------------------------------------------------------------------------
// Testbed experiment jobs (§VI)
// ---------------------------------------------------------------------------

/// The three I/O-heavy text jobs the testbed runs. Processing times and
/// shuffle volumes are calibrated from Table I's measured per-task runtimes
/// (normal map tasks: WordCount ~31 s, Grep ~12 s, LineCount ~36 s on 64 MB
/// blocks; LineCount shuffles more than Grep).
enum class TestbedJobKind { kWordCount, kGrep, kLineCount };

const char* to_string(TestbedJobKind kind);

/// Job spec for one testbed job: 240 native blocks under a (12,10) code
/// placed round-robin over the 12 slaves (each slave holds 20 native
/// blocks), 8 reducers.
mapreduce::JobInput make_testbed_job(int id, TestbedJobKind kind,
                                     util::Seconds submit_time = 0.0);

/// The Fig. 8(d) extreme-case job: map-only (no reducers), 150 blocks,
/// 3 s mean map time (bad nodes run 10x slower via the cluster config).
mapreduce::JobInput make_extreme_case_job(int id,
                                          const net::Topology& topology,
                                          util::Rng& rng);

}  // namespace dfs::workload
