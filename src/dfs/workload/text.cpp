#include "dfs/workload/text.h"

#include <array>
#include <vector>

namespace dfs::workload {

namespace {

// A ~200-word vocabulary. Rank 1 is the most frequent under the Zipf draw.
const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> words = {
      "the",     "of",       "and",      "to",        "a",
      "in",      "that",     "is",       "was",       "he",
      "for",     "it",       "with",     "as",        "his",
      "on",      "be",       "at",       "by",        "i",
      "this",    "had",      "not",      "are",       "but",
      "from",    "or",       "have",     "an",        "they",
      "which",   "one",      "you",      "were",      "her",
      "all",     "she",      "there",    "would",     "their",
      "we",      "him",      "been",     "has",       "when",
      "who",     "will",     "more",     "no",        "if",
      "out",     "so",       "said",     "what",      "up",
      "its",     "about",    "into",     "than",      "them",
      "can",     "only",     "other",    "new",       "some",
      "could",   "time",     "these",    "two",       "may",
      "then",    "do",       "first",    "any",       "my",
      "now",     "such",     "like",     "our",       "over",
      "man",     "me",       "even",     "most",      "made",
      "after",   "also",     "did",      "many",      "before",
      "must",    "through",  "years",    "where",     "much",
      "your",    "way",      "well",     "down",      "should",
      "because", "each",     "just",     "those",     "people",
      "mr",      "how",      "too",      "little",    "state",
      "good",    "very",     "make",     "world",     "still",
      "own",     "see",      "men",      "work",      "long",
      "get",     "here",     "between",  "both",      "life",
      "being",   "under",    "never",    "day",       "same",
      "another", "know",     "while",    "last",      "might",
      "us",      "great",    "old",      "year",      "off",
      "come",    "since",    "against",  "go",        "came",
      "right",   "used",     "take",     "three",     "states",
      "himself", "few",      "house",    "use",       "during",
      "without", "again",    "place",    "american",  "around",
      "however", "home",     "small",    "found",     "mrs",
      "thought", "went",     "say",      "part",      "once",
      "high",    "general",  "upon",     "school",    "every",
      "dont",    "does",     "got",      "united",    "left",
      "number",  "course",   "war",      "until",     "always",
      "away",    "something", "fact",    "though",    "water",
      "less",    "public",   "put",      "think",     "almost",
      "hand",    "enough",   "far",      "took",      "head",
  };
  return words;
}

}  // namespace

const std::string& vocabulary_word(std::size_t rank) {
  return vocabulary()[rank % vocabulary().size()];
}

std::size_t vocabulary_size() { return vocabulary().size(); }

std::string generate_text(util::Rng& rng, std::size_t approx_bytes) {
  std::string out;
  out.reserve(approx_bytes + 64);
  while (out.size() < approx_bytes) {
    const int words_in_line = rng.uniform_int(4, 12);
    for (int w = 0; w < words_in_line; ++w) {
      const std::size_t rank = rng.zipf(vocabulary_size(), 1.05);
      if (w > 0) out.push_back(' ');
      out += vocabulary_word(rank - 1);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dfs::workload
