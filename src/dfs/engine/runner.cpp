#include "dfs/engine/runner.h"

#include <functional>
#include <string_view>
#include <vector>

#include "dfs/mapreduce/simulation.h"

namespace dfs::engine {

namespace {

std::string_view as_text(const ec::Shard& shard) {
  return std::string_view(reinterpret_cast<const char*>(shard.data()),
                          shard.size());
}

}  // namespace

FunctionalRunResult run_functional_job(const mapreduce::ClusterConfig& config,
                                       const mapreduce::JobInput& job,
                                       const ByteBlockStore& store,
                                       const TextJob& text_job,
                                       const storage::FailureScenario& failure,
                                       core::Scheduler& scheduler,
                                       std::uint64_t seed) {
  FunctionalRunResult out;
  const int reducers = job.spec.num_reducers;
  std::vector<KeyCounts> partitions(
      static_cast<std::size_t>(reducers > 0 ? reducers : 1));
  const std::hash<std::string> hasher;

  mapreduce::MapReduceSimulation sim(config, {job}, failure, scheduler, seed);
  mapreduce::TaskHooks hooks;
  hooks.on_map_finish = [&](const mapreduce::MapTaskRecord& rec) {
    // Obtain the input block the simulated task processed — really decoding
    // it from the simulated degraded read's sources when it was lost.
    const ec::Shard* input = nullptr;
    ec::Shard rebuilt;
    if (rec.kind == mapreduce::MapTaskKind::kDegraded) {
      rebuilt = store.reconstruct(rec.block, rec.sources);
      ++out.degraded_reconstructions;
      if (rebuilt != store.shard(rec.block)) {
        out.reconstruction_verified = false;
      }
      input = &rebuilt;
    } else {
      input = &store.shard(rec.block);
    }
    const KeyCounts emitted = text_job.map(as_text(*input));
    // Hash-partition the intermediate pairs over the reducers.
    for (const auto& [key, count] : emitted) {
      const std::size_t p =
          reducers > 0 ? hasher(key) % static_cast<std::size_t>(reducers) : 0;
      partitions[p][key] += count;
    }
  };
  int reduces_ran = 0;
  hooks.on_reduce_finish =
      [&](const mapreduce::ReduceTaskRecord&) { ++reduces_ran; };
  sim.set_hooks(std::move(hooks));
  out.timing = sim.run();

  // Reduce: sum each partition into the final result (all three text jobs
  // reduce by summation).
  for (const auto& partition : partitions) {
    merge_counts(out.totals, partition);
  }
  return out;
}

KeyCounts reference_run(const ByteBlockStore& store, const TextJob& text_job) {
  KeyCounts totals;
  for (int i = 0; i < store.layout().num_native_blocks(); ++i) {
    merge_counts(totals, text_job.map(as_text(store.native(i))));
  }
  return totals;
}

}  // namespace dfs::engine
