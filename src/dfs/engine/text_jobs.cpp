#include "dfs/engine/text_jobs.h"

#include <utility>

namespace dfs::engine {

namespace {

bool is_word_char(char c) {
  return c != ' ' && c != '\n' && c != '\t' && c != '\r' && c != '\0';
}

/// Calls fn(line) for every '\n'-terminated (or trailing) line.
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    fn(text.substr(start, end - start));
    start = end + 1;
  }
}

class WordCountJob final : public TextJob {
 public:
  std::string name() const override { return "WordCount"; }

  KeyCounts map(std::string_view text) const override {
    KeyCounts counts;
    std::size_t i = 0;
    while (i < text.size()) {
      while (i < text.size() && !is_word_char(text[i])) ++i;
      const std::size_t start = i;
      while (i < text.size() && is_word_char(text[i])) ++i;
      if (i > start) {
        ++counts[std::string(text.substr(start, i - start))];
      }
    }
    return counts;
  }
};

class GrepJob final : public TextJob {
 public:
  explicit GrepJob(std::string pattern) : pattern_(std::move(pattern)) {}

  std::string name() const override { return "Grep(" + pattern_ + ")"; }

  KeyCounts map(std::string_view text) const override {
    KeyCounts counts;
    for_each_line(text, [&](std::string_view line) {
      if (line.find(pattern_) != std::string_view::npos) {
        ++counts[std::string(line)];
      }
    });
    return counts;
  }

 private:
  std::string pattern_;
};

class LineCountJob final : public TextJob {
 public:
  std::string name() const override { return "LineCount"; }

  KeyCounts map(std::string_view text) const override {
    KeyCounts counts;
    for_each_line(text, [&](std::string_view line) {
      if (!line.empty()) ++counts[std::string(line)];
    });
    return counts;
  }
};

}  // namespace

std::unique_ptr<TextJob> make_word_count() {
  return std::make_unique<WordCountJob>();
}

std::unique_ptr<TextJob> make_grep(std::string pattern) {
  return std::make_unique<GrepJob>(std::move(pattern));
}

std::unique_ptr<TextJob> make_line_count() {
  return std::make_unique<LineCountJob>();
}

void merge_counts(KeyCounts& dst, const KeyCounts& src) {
  for (const auto& [key, count] : src) dst[key] += count;
}

}  // namespace dfs::engine
