#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace dfs::engine {

/// Key -> count pairs emitted by a map task (std::map for deterministic
/// iteration in tests and example output).
using KeyCounts = std::map<std::string, long>;

/// A text-processing MapReduce job in the functional layer. All three of the
/// paper's testbed jobs (§VI) fit one shape: map emits (key, count) pairs
/// from a block of text, reduce sums the counts per key.
class TextJob {
 public:
  virtual ~TextJob() = default;
  virtual std::string name() const = 0;
  /// Map one input block's text into (key, count) pairs.
  virtual KeyCounts map(std::string_view text) const = 0;
};

/// WordCount: emits every whitespace-separated word with count 1 (combined
/// per block, as a Hadoop combiner would).
std::unique_ptr<TextJob> make_word_count();

/// Grep: emits every line containing `pattern` (key = the line).
std::unique_ptr<TextJob> make_grep(std::string pattern);

/// LineCount: emits every line with count 1 — like WordCount over lines, and
/// shuffles more data than Grep (§VI).
std::unique_ptr<TextJob> make_line_count();

/// Reduce-side merge: sums `src` into `dst` per key.
void merge_counts(KeyCounts& dst, const KeyCounts& src);

}  // namespace dfs::engine
