#include "dfs/engine/block_store.h"

#include <algorithm>
#include <stdexcept>

namespace dfs::engine {

ByteBlockStore::ByteBlockStore(const std::string& data,
                               const storage::StorageLayout& layout,
                               const ec::ErasureCode& code,
                               std::size_t block_bytes)
    : layout_(layout), code_(code), block_bytes_(block_bytes) {
  if (block_bytes == 0 || block_bytes % 8 != 0) {
    throw std::invalid_argument("block_bytes must be a positive multiple of 8");
  }
  if (layout.n() != code.n() || layout.k() != code.k()) {
    throw std::invalid_argument("layout and code disagree on (n, k)");
  }
  const int k = layout.k();
  stripes_.resize(static_cast<std::size_t>(layout.num_stripes()));
  std::size_t offset = 0;
  for (int s = 0; s < layout.num_stripes(); ++s) {
    std::vector<ec::Shard> natives;
    natives.reserve(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
      ec::Shard shard(block_bytes_, static_cast<std::uint8_t>('\n'));
      const std::size_t take =
          offset < data.size()
              ? std::min(block_bytes_, data.size() - offset)
              : 0;
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), take,
                  shard.begin());
      offset += take;
      natives.push_back(std::move(shard));
    }
    std::vector<ec::Shard> parity = code.encode(natives);
    auto& stripe = stripes_[static_cast<std::size_t>(s)];
    stripe = std::move(natives);
    for (auto& p : parity) stripe.push_back(std::move(p));
  }
}

const ec::Shard& ByteBlockStore::shard(storage::BlockId id) const {
  return stripes_[static_cast<std::size_t>(id.stripe)]
                 [static_cast<std::size_t>(id.index)];
}

const ec::Shard& ByteBlockStore::native(int i) const {
  return shard(layout_.native_block(i));
}

ec::Shard ByteBlockStore::reconstruct(
    storage::BlockId lost,
    const std::vector<storage::DegradedSource>& sources) const {
  // Hand the decoder exactly the bytes the plan said to download: for a
  // sub-shard source, slice out just its fetched substripes — this verifies
  // end-to-end that partial fetches really suffice to rebuild the block.
  const int parts = code_.substripe_count();
  const std::size_t sub = block_bytes_ / static_cast<std::size_t>(parts);
  std::vector<ec::Shard> sliced(sources.size());
  std::vector<ec::ErasureCode::PresentSlice> present;
  present.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto& src = sources[i];
    if (src.block.stripe != lost.stripe) {
      throw std::invalid_argument("source from a different stripe");
    }
    const ec::Shard& full = shard(src.block);
    const ec::Shard* bytes = &full;
    if (src.substripes != code_.full_substripe_mask()) {
      ec::Shard& slice = sliced[i];
      for (int s = 0; s < parts; ++s) {
        if (!(src.substripes & (1u << static_cast<unsigned>(s)))) continue;
        slice.insert(slice.end(),
                     full.begin() + static_cast<std::ptrdiff_t>(
                                        static_cast<std::size_t>(s) * sub),
                     full.begin() + static_cast<std::ptrdiff_t>(
                                        (static_cast<std::size_t>(s) + 1) *
                                        sub));
      }
      bytes = &slice;
    }
    present.push_back(ec::ErasureCode::PresentSlice{src.block.index,
                                                    src.substripes, bytes});
  }
  auto rebuilt = code_.reconstruct_slices(present, {lost.index});
  if (!rebuilt) {
    throw std::runtime_error("degraded read sources cannot decode the block");
  }
  return std::move(rebuilt->front());
}

}  // namespace dfs::engine
