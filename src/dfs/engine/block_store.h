#pragma once

#include <string>
#include <vector>

#include "dfs/ec/erasure_code.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/layout.h"

namespace dfs::engine {

/// A byte-backed erasure-coded block store: the functional counterpart of
/// HDFS-RAID. A file's bytes are split into the layout's native blocks,
/// each group of k native blocks is encoded into a stripe, and every shard
/// (native and parity) is retained.
///
/// The store deliberately keeps all shards even for "failed" nodes — node
/// failure is a property of the simulation scenario, not of the store — so
/// examples and tests can verify that a degraded reconstruction reproduces
/// the original bytes exactly.
///
/// Blocks here are small (kilobytes) stand-ins for the simulator's 64/128 MB
/// blocks: the timing model uses the configured block size while the
/// functional layer exercises the identical code paths on manageable data.
class ByteBlockStore {
 public:
  /// Splits `data` into layout.num_native_blocks() blocks of `block_bytes`
  /// (padding the tail with '\n'), encoding stripe by stripe with `code`.
  /// `block_bytes` must be a multiple of 8 (CRS packet alignment).
  ByteBlockStore(const std::string& data,
                 const storage::StorageLayout& layout,
                 const ec::ErasureCode& code, std::size_t block_bytes);

  const storage::StorageLayout& layout() const { return layout_; }
  const ec::ErasureCode& code() const { return code_; }
  std::size_t block_bytes() const { return block_bytes_; }

  /// Bytes of any shard (native or parity).
  const ec::Shard& shard(storage::BlockId id) const;

  /// Bytes of native block i of the file.
  const ec::Shard& native(int i) const;

  /// Rebuild the lost shard from exactly the given surviving sources — the
  /// same sources the simulated degraded read downloaded. Throws
  /// std::runtime_error if those sources cannot decode the shard.
  ec::Shard reconstruct(storage::BlockId lost,
                        const std::vector<storage::DegradedSource>& sources)
      const;

 private:
  const storage::StorageLayout& layout_;
  const ec::ErasureCode& code_;
  std::size_t block_bytes_;
  // stripes_[s][b] = bytes of block b of stripe s (b < n).
  std::vector<std::vector<ec::Shard>> stripes_;
};

}  // namespace dfs::engine
