#pragma once

#include <cstdint>

#include "dfs/core/scheduler.h"
#include "dfs/engine/block_store.h"
#include "dfs/engine/text_jobs.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/storage/failure.h"

namespace dfs::engine {

/// Outcome of a functional run: simulated timings plus the real reduced
/// output, with degraded reconstructions verified byte-for-byte against the
/// original blocks.
struct FunctionalRunResult {
  mapreduce::RunResult timing;
  KeyCounts totals;
  int degraded_reconstructions = 0;
  bool reconstruction_verified = true;
};

/// Runs one text job end-to-end: the discrete-event simulator decides when
/// and where every task runs (under the given scheduler and failure
/// scenario), and at each simulated map completion the real bytes are
/// processed — lost blocks are really reconstructed from the very sources
/// the simulated degraded read downloaded.
FunctionalRunResult run_functional_job(const mapreduce::ClusterConfig& config,
                                       const mapreduce::JobInput& job,
                                       const ByteBlockStore& store,
                                       const TextJob& text_job,
                                       const storage::FailureScenario& failure,
                                       core::Scheduler& scheduler,
                                       std::uint64_t seed);

/// Reference executor: maps every native block sequentially and merges, with
/// no simulation. run_functional_job must produce identical totals.
KeyCounts reference_run(const ByteBlockStore& store, const TextJob& text_job);

}  // namespace dfs::engine
