#pragma once

#include <cassert>
#include <vector>

namespace dfs::net {

using NodeId = int;
using RackId = int;

/// Typed "no such node" sentinel: the default for not-yet-resolved NodeId
/// fields (e.g. a degraded source before the planner fills the holder in).
/// Planners must never emit it — storage::DegradedReadPlanner asserts so.
inline constexpr NodeId kInvalidNode = -1;

/// Two-level cluster topology (Fig. 1 of the paper): nodes grouped into
/// racks, each rack behind a top-of-rack switch, racks joined by a core
/// switch. Racks may have unequal sizes (the motivating example uses a
/// 3-node rack and a 2-node rack).
class Topology {
 public:
  /// Uniform topology: `racks` racks of `nodes_per_rack` nodes each.
  Topology(int racks, int nodes_per_rack);

  /// Explicit topology: `rack_sizes[r]` nodes in rack r.
  explicit Topology(const std::vector<int>& rack_sizes);

  int num_nodes() const { return static_cast<int>(rack_of_.size()); }
  int num_racks() const { return static_cast<int>(racks_.size()); }

  RackId rack_of(NodeId n) const {
    assert(n >= 0 && n < num_nodes());
    return rack_of_[static_cast<std::size_t>(n)];
  }

  const std::vector<NodeId>& nodes_in_rack(RackId r) const {
    assert(r >= 0 && r < num_racks());
    return racks_[static_cast<std::size_t>(r)];
  }

  bool same_rack(NodeId a, NodeId b) const { return rack_of(a) == rack_of(b); }

 private:
  std::vector<RackId> rack_of_;             // node -> rack
  std::vector<std::vector<NodeId>> racks_;  // rack -> nodes
};

}  // namespace dfs::net
