#include "dfs/net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "dfs/runner/thread_pool.h"
#include "dfs/util/jsonl.h"

namespace dfs::net {

namespace {
// Flows whose residual drops below this many bytes are considered finished;
// absorbs floating-point drift from repeated rate recomputations. Real block
// and shuffle transfers are kilobytes to megabytes, so half a byte is noise.
constexpr util::Bytes kFinishEpsilon = 0.5;

// Lower bound on the time to the next completion event. Without it, a flow
// whose residual is epsilon-small can yield a horizon below the floating-
// point ULP of the current simulated time; now + horizon == now then loops
// the event queue forever at a frozen timestamp. One nanosecond of simulated
// time is far below anything the model measures and guarantees progress.
constexpr util::Seconds kMinHorizon = 1e-9;
}  // namespace

Network::Network(sim::Simulator& simulator, const Topology& topology,
                 const LinkConfig& links, ContentionModel model)
    : sim_(simulator), topology_(topology), model_(model) {
  links_.resize(static_cast<std::size_t>(core_link()) + 1);
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    links_[static_cast<std::size_t>(node_up_link(n))].capacity = links.node_up;
    links_[static_cast<std::size_t>(node_down_link(n))].capacity =
        links.node_down;
  }
  for (RackId r = 0; r < topology_.num_racks(); ++r) {
    links_[static_cast<std::size_t>(rack_up_link(r))].capacity = links.rack_up;
    links_[static_cast<std::size_t>(rack_down_link(r))].capacity =
        links.rack_down;
  }
  links_[static_cast<std::size_t>(core_link())].capacity = links.core;
  // All per-link side tables are sized once here. The water-filling scratch
  // maintains the invariant that every seeded count returns to zero, so
  // recomputes never pay an O(links) clear; the flood-fill marks are
  // versioned by visit_epoch_ for the same reason.
  link_classes_.resize(links_.size());
  link_dirty_.assign(links_.size(), 0);
  link_visit_.assign(links_.size(), 0);
  scratch_residual_.assign(links_.size(), 0.0);
  scratch_count_.assign(links_.size(), 0);
  scratch_link_flows_.resize(links_.size());
}

std::vector<int> Network::contended_path(NodeId src, NodeId dst) const {
  std::vector<int> path;
  if (src == dst) return path;
  auto add_if_limited = [&](int link) {
    if (links_[static_cast<std::size_t>(link)].capacity !=
        util::kUnlimitedBandwidth) {
      path.push_back(link);
    }
  };
  add_if_limited(node_up_link(src));
  if (!topology_.same_rack(src, dst)) {
    add_if_limited(rack_up_link(topology_.rack_of(src)));
    add_if_limited(core_link());
    add_if_limited(rack_down_link(topology_.rack_of(dst)));
  }
  add_if_limited(node_down_link(dst));
  return path;
}

util::Seconds Network::isolated_transfer_time(NodeId src, NodeId dst,
                                              util::Bytes size) const {
  util::BytesPerSec bottleneck = std::numeric_limits<double>::infinity();
  for (int link : contended_path(src, dst)) {
    bottleneck =
        std::min(bottleneck, links_[static_cast<std::size_t>(link)].capacity);
  }
  if (bottleneck == std::numeric_limits<double>::infinity()) return 0.0;
  return size / bottleneck;
}

FlowId Network::transfer(NodeId src, NodeId dst, util::Bytes size,
                         std::function<void()> done) {
  assert(size >= 0.0);
  Flow flow;
  flow.id = next_flow_id_++;
  flow.src = src;
  flow.dst = dst;
  flow.size = size;
  flow.remaining = size;
  flow.links = contended_path(src, dst);
  flow.done = std::move(done);
  ++flows_started_;

  if (flow.links.empty() || size <= kFinishEpsilon) {
    // Uncontended (same node, or all segments unlimited): deliver on the
    // next dispatch so callers never observe re-entrant completion.
    sim_.schedule_in(0.0, [this, f = std::move(flow)]() mutable {
      Flow local = std::move(f);
      finish_flow(local);
    });
    return next_flow_id_ - 1;
  }

  if (model_ == ContentionModel::kMaxMinFairShare) {
    fair_share_add(std::move(flow));
  } else {
    fifo_pending_.push_back(std::move(flow));
    fifo_try_start_pending();
  }
  return next_flow_id_ - 1;
}

bool Network::cancel(FlowId id) {
  // Not started yet (FIFO queue): just drop it.
  for (auto it = fifo_pending_.begin(); it != fifo_pending_.end(); ++it) {
    if (it->id != id) continue;
    fifo_pending_.erase(it);
    ++flows_cancelled_;
    return true;
  }
  auto it = active_.find(id);
  if (it == active_.end()) {
    // Cancel-after-completion inside the current dispatch batch: the flow
    // left active_ when the batch was collected, but its callback has not
    // fired yet — suppress it and count the flow cancelled. Flows at or
    // before dispatch_pos_ already delivered (or were suppressed), so a
    // second cancel of the same flow falls through to false (idempotence).
    if (dispatch_batch_ != nullptr) {
      for (std::size_t i = dispatch_pos_ + 1; i < dispatch_batch_->size();
           ++i) {
        if ((*dispatch_batch_)[i].id != id) continue;
        if (dispatch_suppressed_[i]) return false;
        dispatch_suppressed_[i] = 1;
        ++flows_cancelled_;
        return true;
      }
    }
    return false;
  }
  if (model_ == ContentionModel::kMaxMinFairShare) {
    fair_share_advance();
    Flow flow = std::move(it->second);
    active_.erase(it);
    mark_links_active(flow.links, -1);
    ++flows_cancelled_;
    fair_share_leave_class(flow);
    fair_share_mark_dirty(flow.links);
  } else {
    Flow flow = std::move(it->second);
    active_.erase(it);
    sim_.cancel(flow.completion);
    for (int link : flow.links) {
      links_[static_cast<std::size_t>(link)].held = false;
    }
    mark_links_active(flow.links, -1);
    ++flows_cancelled_;
    fifo_try_start_pending();
  }
  return true;
}

void Network::mark_links_active(const std::vector<int>& links, int delta) {
  for (int link : links) {
    Link& l = links_[static_cast<std::size_t>(link)];
    if (delta > 0 && l.active_flows == 0) l.busy_since = sim_.now();
    l.active_flows += delta;
    assert(l.active_flows >= 0);
    if (delta < 0 && l.active_flows == 0) {
      l.busy_total += sim_.now() - l.busy_since;
    }
  }
}

void Network::finish_flow(Flow& flow) {
  ++flows_completed_;
  bytes_delivered_ += flow.size;
  if (flow.done) flow.done();
}

util::Seconds Network::rack_down_busy_time(RackId r) const {
  const Link& l = links_[static_cast<std::size_t>(rack_down_link(r))];
  util::Seconds total = l.busy_total;
  if (l.active_flows > 0) total += sim_.now() - l.busy_since;
  return total;
}

Network::Stats Network::stats() const {
  Stats s;
  s.flows_started = flows_started_;
  s.flows_completed = flows_completed_;
  s.flows_cancelled = flows_cancelled_;
  s.fast_paths = fast_paths_;
  s.full_recomputes = full_recomputes_;
  s.batched_recomputes = batched_recomputes_;
  s.component_recomputes = component_recomputes_;
  s.classes_active = fair_share_classes_active();
  s.bytes_delivered = bytes_delivered_;
  return s;
}

// --- max-min fair share ------------------------------------------------------
//
// Rates change only inside fair_share_batched_recompute(), the single
// zero-delay event every mutation coalesces into. Flow residuals, link busy
// accounting, and the active set itself are still updated eagerly at each
// mutation, so nothing observable depends on when (within the timestamp) the
// recompute runs — and since the simulator's FIFO tie-break runs the
// recompute after every already-queued event at the same timestamp, no
// simulated time ever passes under stale rates.

void Network::fair_share_add(Flow flow) {
  fair_share_advance();
  mark_links_active(flow.links, +1);
  flow.cls = fair_share_class_for(flow.links);
  ++classes_[static_cast<std::size_t>(flow.cls)].count;
  const FlowId id = flow.id;
  auto [it, inserted] = active_.emplace(id, std::move(flow));
  assert(inserted);
  fair_share_mark_dirty(it->second.links);
}

int Network::fair_share_class_for(const std::vector<int>& path) {
  const auto found = class_by_path_.find(path);
  if (found != class_by_path_.end()) return found->second;
  int cid;
  if (!free_classes_.empty()) {
    cid = free_classes_.back();
    free_classes_.pop_back();
  } else {
    cid = static_cast<int>(classes_.size());
    classes_.emplace_back();
  }
  FlowClass& c = classes_[static_cast<std::size_t>(cid)];
  c.links = path;
  c.link_pos.resize(path.size());
  c.count = 0;
  c.rate = 0.0;
  for (std::size_t s = 0; s < path.size(); ++s) {
    auto& lc = link_classes_[static_cast<std::size_t>(path[s])];
    c.link_pos[s] = static_cast<int>(lc.size());
    lc.emplace_back(cid, static_cast<int>(s));
  }
  class_by_path_.emplace(path, cid);
  return cid;
}

void Network::fair_share_leave_class(const Flow& flow) {
  FlowClass& c = classes_[static_cast<std::size_t>(flow.cls)];
  assert(c.count > 0);
  if (--c.count > 0) return;
  // Last member gone: unlink the class from every link's membership list
  // (swap-removal; the back-reference in the moved entry is patched) and
  // recycle the slot.
  for (std::size_t s = 0; s < c.links.size(); ++s) {
    auto& lc = link_classes_[static_cast<std::size_t>(c.links[s])];
    const auto pos = static_cast<std::size_t>(c.link_pos[s]);
    const std::pair<int, int> moved = lc.back();
    lc[pos] = moved;
    lc.pop_back();
    if (pos < lc.size()) {
      classes_[static_cast<std::size_t>(moved.first)]
          .link_pos[static_cast<std::size_t>(moved.second)] =
          static_cast<int>(pos);
    }
  }
  class_by_path_.erase(c.links);
  c.links.clear();
  c.link_pos.clear();
  free_classes_.push_back(flow.cls);
}

void Network::fair_share_mark_dirty(const std::vector<int>& links) {
  for (const int l : links) {
    if (!link_dirty_[static_cast<std::size_t>(l)]) {
      link_dirty_[static_cast<std::size_t>(l)] = 1;
      dirty_links_.push_back(l);
    }
  }
  // The armed completion horizon was computed from the pre-change rates;
  // disarm it and let the batched recompute re-arm from fresh ones (exactly
  // what the old per-mutation recompute did with its cancel-and-rearm). The
  // recompute runs at the current timestamp, so no time passes in between.
  if (next_completion_.valid()) {
    sim_.cancel(next_completion_);
    next_completion_ = {};
  }
  if (!recompute_scheduled_) {
    recompute_scheduled_ = true;
    sim_.schedule_now([this] { fair_share_batched_recompute(); });
  }
}

void Network::fair_share_advance() {
  const util::Seconds now = sim_.now();
  const util::Seconds dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& [id, f] : active_) {
      f.remaining = std::max(
          0.0, f.remaining -
                   classes_[static_cast<std::size_t>(f.cls)].rate * dt);
    }
  }
  last_advance_ = now;
}

void Network::fair_share_batched_recompute() {
  recompute_scheduled_ = false;
  ++batched_recomputes_;
  fair_share_advance();
  // Flood-fill the class/link sharing graph from every dirty link; each
  // fill is one connected component, water-filled in isolation (max–min
  // allocations decompose over components, so everyone outside keeps their
  // rate). A dirty link with no classes left is the old idle-removal case:
  // its departures shared nothing with any survivor.
  const util::Epoch::Ticket epoch = visit_epoch_.bump();
  comp_links_.clear();
  comp_classes_.clear();
  comp_ranges_.clear();
  for (const int seed : dirty_links_) {
    link_dirty_[static_cast<std::size_t>(seed)] = 0;
    if (link_visit_[static_cast<std::size_t>(seed)] == epoch) continue;
    link_visit_[static_cast<std::size_t>(seed)] = epoch;
    if (link_classes_[static_cast<std::size_t>(seed)].empty()) continue;
    ComponentRange comp;
    comp.links_begin = comp_links_.size();
    comp.classes_begin = comp_classes_.size();
    comp_links_.push_back(seed);
    for (std::size_t qi = comp.links_begin; qi < comp_links_.size(); ++qi) {
      const auto l = static_cast<std::size_t>(comp_links_[qi]);
      for (const auto& entry : link_classes_[l]) {
        FlowClass& c = classes_[static_cast<std::size_t>(entry.first)];
        if (c.visit == epoch) continue;
        c.visit = epoch;
        comp_classes_.push_back(entry.first);
        for (const int l2 : c.links) {
          if (link_visit_[static_cast<std::size_t>(l2)] == epoch) continue;
          link_visit_[static_cast<std::size_t>(l2)] = epoch;
          comp_links_.push_back(l2);
        }
      }
    }
    comp.links_end = comp_links_.size();
    comp.classes_end = comp_classes_.size();
    comp_ranges_.push_back(comp);
    // Counters stay on the deterministic collection path, not in the
    // (possibly concurrent) water-filling passes.
    if (comp.classes_end - comp.classes_begin == 1) {
      ++fast_paths_;
    } else {
      ++component_recomputes_;
    }
  }
  dirty_links_.clear();
  // Components are disjoint in links, classes, and scratch slots, so the
  // passes commute; fan out when a dedicated pool is attached. Rates are
  // identical either way — the allocation per component does not depend on
  // execution order or interleaving.
  if (pool_ != nullptr && pool_->threads() > 1 && comp_ranges_.size() > 1) {
    for (const ComponentRange& comp : comp_ranges_) {
      pool_->submit([this, comp] { fair_share_waterfill_component(comp); });
    }
    pool_->wait_idle();
  } else {
    for (const ComponentRange& comp : comp_ranges_) {
      fair_share_waterfill_component(comp);
    }
  }
  if (cross_check_) fair_share_cross_check();
  fair_share_arm();
}

void Network::fair_share_waterfill_component(const ComponentRange& comp) {
  if (comp.classes_end - comp.classes_begin == 1) {
    // Single class: progressive filling would run exactly one round and
    // freeze it at its path bottleneck share. Computing that share directly
    // subsumes the old isolated-flow fast path and generalizes it to any
    // multiplicity.
    FlowClass& c =
        classes_[static_cast<std::size_t>(comp_classes_[comp.classes_begin])];
    double best = std::numeric_limits<double>::infinity();
    for (const int l : c.links) {
      const double share =
          std::max(0.0, links_[static_cast<std::size_t>(l)].capacity) /
          c.count;
      best = std::min(best, share);
    }
    c.rate = best;
    return;
  }
  // Progressive water-filling over classes: repeatedly saturate the link
  // with the lowest per-flow fair share and freeze the classes that cross
  // it at that share.
  for (std::size_t i = comp.links_begin; i < comp.links_end; ++i) {
    const int l = comp_links_[i];
    scratch_residual_[static_cast<std::size_t>(l)] =
        links_[static_cast<std::size_t>(l)].capacity;
    scratch_count_[static_cast<std::size_t>(l)] = 0;
  }
  long unfrozen = 0;
  for (std::size_t i = comp.classes_begin; i < comp.classes_end; ++i) {
    FlowClass& c = classes_[static_cast<std::size_t>(comp_classes_[i])];
    c.wf_rate = -1.0;  // unfrozen marker
    unfrozen += c.count;
    for (const int l : c.links) {
      scratch_count_[static_cast<std::size_t>(l)] += c.count;
    }
  }
  while (unfrozen > 0) {
    int bottleneck = -1;
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = comp.links_begin; i < comp.links_end; ++i) {
      const auto l = static_cast<std::size_t>(comp_links_[i]);
      if (scratch_count_[l] <= 0) continue;
      const double share =
          std::max(0.0, scratch_residual_[l]) / scratch_count_[l];
      if (share < best_share) {
        best_share = share;
        bottleneck = comp_links_[i];
      }
    }
    assert(bottleneck >= 0 && "every class crosses at least one limited link");
    for (const auto& entry :
         link_classes_[static_cast<std::size_t>(bottleneck)]) {
      FlowClass& c = classes_[static_cast<std::size_t>(entry.first)];
      if (c.wf_rate >= 0.0) continue;  // already frozen via another link
      c.wf_rate = best_share;
      unfrozen -= c.count;
      for (const int link : c.links) {
        double& r = scratch_residual_[static_cast<std::size_t>(link)];
        // One subtraction per member flow, not one fused count*share
        // multiply: this replays the naive per-flow pass's floating-point
        // sequence exactly, keeping the aggregated engine bit-identical to
        // the reference (and to the pre-aggregation engine's outputs).
        for (int m = 0; m < c.count; ++m) r -= best_share;
        scratch_count_[static_cast<std::size_t>(link)] -= c.count;
      }
    }
  }
  for (std::size_t i = comp.classes_begin; i < comp.classes_end; ++i) {
    FlowClass& c = classes_[static_cast<std::size_t>(comp_classes_[i])];
    c.rate = c.wf_rate;
  }
}

void Network::fair_share_arm() {
  if (next_completion_.valid()) {
    sim_.cancel(next_completion_);
    next_completion_ = {};
  }
  if (active_.empty()) return;

  // Arm the next completion event. Flows frozen at a zero rate (possible
  // only through floating-point drift on a saturated link) simply wait for
  // the next recompute, when a competing flow's completion frees capacity.
  util::Seconds horizon = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : active_) {
    const double rate = classes_[static_cast<std::size_t>(f.cls)].rate;
    if (rate <= 0.0) continue;
    horizon = std::min(horizon, f.remaining / rate);
  }
  assert(horizon < std::numeric_limits<double>::infinity());
  next_completion_ = sim_.schedule_in(std::max(kMinHorizon, horizon),
                                      [this] { fair_share_on_completion(); });
}

void Network::fair_share_on_completion() {
  next_completion_ = {};
  fair_share_advance();
  std::vector<Flow> finished;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining <= kFinishEpsilon) {
      finished.push_back(std::move(it->second));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (finished.empty()) {
    // Nothing actually crossed the finish line (floating-point drift on the
    // horizon); re-arm from the unchanged rates and try again.
    fair_share_arm();
    return;
  }
  for (Flow& f : finished) mark_links_active(f.links, -1);
  for (const Flow& f : finished) fair_share_leave_class(f);
  // Mark dirty before the callbacks so their re-entrant transfers coalesce
  // into the same zero-delay recompute, which also performs the final
  // re-arm for this timestamp.
  for (const Flow& f : finished) fair_share_mark_dirty(f.links);
  // Deliver the batch. A callback may cancel() a later flow of this same
  // batch (hedged reads cancelling losers); cancel marks it in
  // dispatch_suppressed_ and the loop skips it — cancelled, not completed.
  dispatch_suppressed_.assign(finished.size(), 0);
  dispatch_batch_ = &finished;
  for (dispatch_pos_ = 0; dispatch_pos_ < finished.size(); ++dispatch_pos_) {
    if (dispatch_suppressed_[dispatch_pos_]) continue;
    finish_flow(finished[dispatch_pos_]);
  }
  dispatch_batch_ = nullptr;
}

void Network::fair_share_naive_rates(std::unordered_map<FlowId, double>& out) {
  ++full_recomputes_;
  out.clear();
  if (active_.empty()) return;

  // The pre-aggregation engine's progressive water-filling, verbatim, over
  // individual flows: the reference every class/component/batching decision
  // is checked against. Scratch counts return to zero by construction (one
  // increment while seeding, one decrement when the flow freezes), so the
  // production component passes never see leftovers.
  scratch_touched_.clear();
  for (auto& [id, f] : active_) {
    out[id] = -1.0;  // unfrozen marker
    for (int link : f.links) {
      const auto l = static_cast<std::size_t>(link);
      if (scratch_count_[l] == 0) {
        scratch_touched_.push_back(link);
        scratch_residual_[l] = links_[l].capacity;
        scratch_link_flows_[l].clear();
      }
      ++scratch_count_[l];
      scratch_link_flows_[l].push_back(id);
    }
  }
  std::size_t unfrozen = active_.size();
  while (unfrozen > 0) {
    int bottleneck = -1;
    double best_share = std::numeric_limits<double>::infinity();
    for (const int link : scratch_touched_) {
      const auto l = static_cast<std::size_t>(link);
      if (scratch_count_[l] <= 0) continue;
      const double share =
          std::max(0.0, scratch_residual_[l]) / scratch_count_[l];
      if (share < best_share) {
        best_share = share;
        bottleneck = link;
      }
    }
    assert(bottleneck >= 0 && "every flow crosses at least one limited link");
    for (FlowId id : scratch_link_flows_[static_cast<std::size_t>(bottleneck)]) {
      double& rate = out[id];
      if (rate >= 0.0) continue;  // already frozen via another link
      rate = best_share;
      --unfrozen;
      const auto fit = active_.find(id);
      assert(fit != active_.end() && "water-filling indexed an unknown flow");
      for (int link : fit->second.links) {
        scratch_residual_[static_cast<std::size_t>(link)] -= best_share;
        --scratch_count_[static_cast<std::size_t>(link)];
      }
    }
  }
}

void Network::fair_share_cross_check() {
  // Bookkeeping invariants: the class multiplicities must tile the active
  // set exactly, and every class must be reachable through its links.
  std::size_t members = 0;
  for (const auto& [path, cid] : class_by_path_) {
    const FlowClass& c = classes_[static_cast<std::size_t>(cid)];
    if (c.count <= 0) {
      throw std::logic_error("fair-share cross check: empty class survived");
    }
    members += static_cast<std::size_t>(c.count);
  }
  if (members != active_.size()) {
    throw std::logic_error(
        "fair-share cross check: class multiplicities (" +
        std::to_string(members) + ") do not tile the active set (" +
        std::to_string(active_.size()) + ")");
  }
  // Re-derive every rate with the naive per-flow reference and demand
  // agreement (up to floating-point noise: the reference accumulates link
  // residuals in flow order rather than class order).
  std::unordered_map<FlowId, double> naive;
  fair_share_naive_rates(naive);
  for (const auto& [id, f] : active_) {
    const double engine = classes_[static_cast<std::size_t>(f.cls)].rate;
    const auto it = naive.find(id);
    assert(it != naive.end());
    const double full = it->second;
    const double tol = 1e-9 * std::max(1.0, std::abs(full));
    if (std::abs(full - engine) > tol) {
      throw std::logic_error(
          "fair-share batched/aggregated engine diverged from the naive "
          "per-flow pass: flow " +
          std::to_string(id) + " engine=" + std::to_string(engine) +
          " naive=" + std::to_string(full));
    }
  }
}

// --- exclusive FIFO (the paper's NodeTree hold model) -------------------------

void Network::fifo_try_start_pending() {
  for (auto it = fifo_pending_.begin(); it != fifo_pending_.end();) {
    const bool all_free = std::all_of(
        it->links.begin(), it->links.end(), [this](int link) {
          return !links_[static_cast<std::size_t>(link)].held;
        });
    if (!all_free) {
      ++it;
      continue;
    }
    Flow flow = std::move(*it);
    it = fifo_pending_.erase(it);
    for (int link : flow.links) {
      links_[static_cast<std::size_t>(link)].held = true;
    }
    mark_links_active(flow.links, +1);
    util::BytesPerSec bottleneck = std::numeric_limits<double>::infinity();
    for (int link : flow.links) {
      bottleneck = std::min(
          bottleneck, links_[static_cast<std::size_t>(link)].capacity);
    }
    const util::Seconds duration = flow.remaining / bottleneck;
    const FlowId id = flow.id;
    auto [slot, inserted] = active_.emplace(id, std::move(flow));
    assert(inserted);
    slot->second.completion =
        sim_.schedule_in(duration, [this, id] { fifo_complete(id); });
  }
}

void Network::fifo_complete(FlowId id) {
  auto it = active_.find(id);
  assert(it != active_.end());
  Flow flow = std::move(it->second);
  active_.erase(it);
  for (int link : flow.links) {
    links_[static_cast<std::size_t>(link)].held = false;
  }
  mark_links_active(flow.links, -1);
  flow.remaining = 0.0;
  finish_flow(flow);
  fifo_try_start_pending();
}

void append_net_stats(util::JsonlWriter& w, const Network::Stats& s) {
  w.field("flows_started", s.flows_started)
      .field("flows_completed", s.flows_completed)
      .field("flows_cancelled", s.flows_cancelled)
      .field("fast_paths", s.fast_paths)
      .field("full_recomputes", s.full_recomputes)
      .field("batched_recomputes", s.batched_recomputes)
      .field("component_recomputes", s.component_recomputes)
      .field("classes_active", s.classes_active)
      .field("bytes_delivered", s.bytes_delivered);
}

}  // namespace dfs::net
