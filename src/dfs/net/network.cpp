#include "dfs/net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace dfs::net {

namespace {
// Flows whose residual drops below this many bytes are considered finished;
// absorbs floating-point drift from repeated rate recomputations. Real block
// and shuffle transfers are kilobytes to megabytes, so half a byte is noise.
constexpr util::Bytes kFinishEpsilon = 0.5;

// Lower bound on the time to the next completion event. Without it, a flow
// whose residual is epsilon-small can yield a horizon below the floating-
// point ULP of the current simulated time; now + horizon == now then loops
// the event queue forever at a frozen timestamp. One nanosecond of simulated
// time is far below anything the model measures and guarantees progress.
constexpr util::Seconds kMinHorizon = 1e-9;
}  // namespace

Network::Network(sim::Simulator& simulator, const Topology& topology,
                 const LinkConfig& links, ContentionModel model)
    : sim_(simulator), topology_(topology), model_(model) {
  links_.resize(static_cast<std::size_t>(core_link()) + 1);
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    links_[static_cast<std::size_t>(node_up_link(n))].capacity = links.node_up;
    links_[static_cast<std::size_t>(node_down_link(n))].capacity =
        links.node_down;
  }
  for (RackId r = 0; r < topology_.num_racks(); ++r) {
    links_[static_cast<std::size_t>(rack_up_link(r))].capacity = links.rack_up;
    links_[static_cast<std::size_t>(rack_down_link(r))].capacity =
        links.rack_down;
  }
  links_[static_cast<std::size_t>(core_link())].capacity = links.core;
  // Water-filling scratch is sized once here; fair_share_compute_rates
  // maintains the invariant that every touched count returns to zero, so
  // recomputes never pay an O(links) clear.
  scratch_residual_.assign(links_.size(), 0.0);
  scratch_count_.assign(links_.size(), 0);
  scratch_link_flows_.resize(links_.size());
}

std::vector<int> Network::contended_path(NodeId src, NodeId dst) const {
  std::vector<int> path;
  if (src == dst) return path;
  auto add_if_limited = [&](int link) {
    if (links_[static_cast<std::size_t>(link)].capacity !=
        util::kUnlimitedBandwidth) {
      path.push_back(link);
    }
  };
  add_if_limited(node_up_link(src));
  if (!topology_.same_rack(src, dst)) {
    add_if_limited(rack_up_link(topology_.rack_of(src)));
    add_if_limited(core_link());
    add_if_limited(rack_down_link(topology_.rack_of(dst)));
  }
  add_if_limited(node_down_link(dst));
  return path;
}

util::Seconds Network::isolated_transfer_time(NodeId src, NodeId dst,
                                              util::Bytes size) const {
  util::BytesPerSec bottleneck = std::numeric_limits<double>::infinity();
  for (int link : contended_path(src, dst)) {
    bottleneck =
        std::min(bottleneck, links_[static_cast<std::size_t>(link)].capacity);
  }
  if (bottleneck == std::numeric_limits<double>::infinity()) return 0.0;
  return size / bottleneck;
}

FlowId Network::transfer(NodeId src, NodeId dst, util::Bytes size,
                         std::function<void()> done) {
  assert(size >= 0.0);
  Flow flow;
  flow.id = next_flow_id_++;
  flow.src = src;
  flow.dst = dst;
  flow.size = size;
  flow.remaining = size;
  flow.links = contended_path(src, dst);
  flow.done = std::move(done);
  ++flows_started_;

  if (flow.links.empty() || size <= kFinishEpsilon) {
    // Uncontended (same node, or all segments unlimited): deliver on the
    // next dispatch so callers never observe re-entrant completion.
    sim_.schedule_in(0.0, [this, f = std::move(flow)]() mutable {
      Flow local = std::move(f);
      finish_flow(local);
    });
    return next_flow_id_ - 1;
  }

  if (model_ == ContentionModel::kMaxMinFairShare) {
    fair_share_add(std::move(flow));
  } else {
    fifo_pending_.push_back(std::move(flow));
    fifo_try_start_pending();
  }
  return next_flow_id_ - 1;
}

bool Network::cancel(FlowId id) {
  // Not started yet (FIFO queue): just drop it.
  for (auto it = fifo_pending_.begin(); it != fifo_pending_.end(); ++it) {
    if (it->id != id) continue;
    fifo_pending_.erase(it);
    ++flows_cancelled_;
    return true;
  }
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  if (model_ == ContentionModel::kMaxMinFairShare) {
    fair_share_advance();
    Flow flow = std::move(it->second);
    active_.erase(it);
    mark_links_active(flow.links, -1);
    ++flows_cancelled_;
    if (fair_share_links_idle(flow.links)) {
      // The cancelled flow shared no link with any survivor, so the max-min
      // allocation of the survivors is untouched; only the completion
      // horizon needs re-arming.
      ++fast_paths_;
      if (cross_check_) fair_share_cross_check("cancel");
    } else {
      fair_share_compute_rates();
    }
    fair_share_arm();
  } else {
    Flow flow = std::move(it->second);
    active_.erase(it);
    sim_.cancel(flow.completion);
    for (int link : flow.links) {
      links_[static_cast<std::size_t>(link)].held = false;
    }
    mark_links_active(flow.links, -1);
    ++flows_cancelled_;
    fifo_try_start_pending();
  }
  return true;
}

void Network::mark_links_active(const std::vector<int>& links, int delta) {
  for (int link : links) {
    Link& l = links_[static_cast<std::size_t>(link)];
    if (delta > 0 && l.active_flows == 0) l.busy_since = sim_.now();
    l.active_flows += delta;
    assert(l.active_flows >= 0);
    if (delta < 0 && l.active_flows == 0) {
      l.busy_total += sim_.now() - l.busy_since;
    }
  }
}

void Network::finish_flow(Flow& flow) {
  ++flows_completed_;
  bytes_delivered_ += flow.size;
  if (flow.done) flow.done();
}

util::Seconds Network::rack_down_busy_time(RackId r) const {
  const Link& l = links_[static_cast<std::size_t>(rack_down_link(r))];
  util::Seconds total = l.busy_total;
  if (l.active_flows > 0) total += sim_.now() - l.busy_since;
  return total;
}

// --- max-min fair share ------------------------------------------------------

void Network::fair_share_add(Flow flow) {
  fair_share_advance();
  mark_links_active(flow.links, +1);
  const FlowId id = flow.id;
  auto [it, inserted] = active_.emplace(id, std::move(flow));
  assert(inserted);
  Flow& f = it->second;
  bool isolated = true;
  for (int link : f.links) {
    if (links_[static_cast<std::size_t>(link)].active_flows != 1) {
      isolated = false;
      break;
    }
  }
  if (isolated) {
    // Fast path: the new flow shares no link with any active flow. Max-min
    // fairness decomposes over connected components of the flow/link graph,
    // so every existing rate is unchanged and the new flow gets its path
    // bottleneck to itself — identical to what the full pass would produce.
    double rate = std::numeric_limits<double>::infinity();
    for (int link : f.links) {
      rate = std::min(rate, links_[static_cast<std::size_t>(link)].capacity);
    }
    f.rate = rate;
    ++fast_paths_;
    if (cross_check_) fair_share_cross_check("add");
  } else {
    fair_share_compute_rates();
  }
  fair_share_arm();
}

bool Network::fair_share_links_idle(const std::vector<int>& links) const {
  for (int link : links) {
    if (links_[static_cast<std::size_t>(link)].active_flows != 0) return false;
  }
  return true;
}

void Network::fair_share_advance() {
  const util::Seconds now = sim_.now();
  const util::Seconds dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& [id, f] : active_) {
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  }
  last_advance_ = now;
}

void Network::fair_share_compute_rates() {
  ++full_recomputes_;
  if (active_.empty()) return;

  // Progressive water-filling: repeatedly saturate the link with the lowest
  // per-flow fair share and freeze the flows that cross it at that rate.
  // Scratch buffers are members, reused across the ~10^5 recomputes per
  // simulation run; counts return to zero by construction (one increment
  // while seeding, one decrement when the flow freezes), so only the
  // touched-links list needs clearing here.
  scratch_touched_.clear();
  for (auto& [id, f] : active_) {
    f.rate = -1.0;  // unfrozen marker
    for (int link : f.links) {
      const auto l = static_cast<std::size_t>(link);
      if (scratch_count_[l] == 0) {
        scratch_touched_.push_back(link);
        scratch_residual_[l] = links_[l].capacity;
        scratch_link_flows_[l].clear();
      }
      ++scratch_count_[l];
      scratch_link_flows_[l].push_back(id);
    }
  }
  std::size_t unfrozen = active_.size();
  while (unfrozen > 0) {
    int bottleneck = -1;
    double best_share = std::numeric_limits<double>::infinity();
    for (const int link : scratch_touched_) {
      const auto l = static_cast<std::size_t>(link);
      if (scratch_count_[l] <= 0) continue;
      const double share =
          std::max(0.0, scratch_residual_[l]) / scratch_count_[l];
      if (share < best_share) {
        best_share = share;
        bottleneck = link;
      }
    }
    assert(bottleneck >= 0 && "every flow crosses at least one limited link");
    for (FlowId id : scratch_link_flows_[static_cast<std::size_t>(bottleneck)]) {
      auto fit = active_.find(id);
      assert(fit != active_.end() && "water-filling indexed an unknown flow");
      Flow& f = fit->second;
      if (f.rate >= 0.0) continue;  // already frozen via another link
      f.rate = best_share;
      --unfrozen;
      for (int link : f.links) {
        scratch_residual_[static_cast<std::size_t>(link)] -= best_share;
        --scratch_count_[static_cast<std::size_t>(link)];
      }
    }
  }
}

void Network::fair_share_arm() {
  if (next_completion_.valid()) {
    sim_.cancel(next_completion_);
    next_completion_ = {};
  }
  if (active_.empty()) return;

  // Arm the next completion event. Flows frozen at a zero rate (possible
  // only through floating-point drift on a saturated link) simply wait for
  // the next recompute, when a competing flow's completion frees capacity.
  util::Seconds horizon = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : active_) {
    if (f.rate <= 0.0) continue;
    horizon = std::min(horizon, f.remaining / f.rate);
  }
  assert(horizon < std::numeric_limits<double>::infinity());
  next_completion_ = sim_.schedule_in(std::max(kMinHorizon, horizon),
                                      [this] { fair_share_on_completion(); });
}

void Network::fair_share_on_completion() {
  next_completion_ = {};
  fair_share_advance();
  std::vector<Flow> finished;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining <= kFinishEpsilon) {
      finished.push_back(std::move(it->second));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  for (Flow& f : finished) mark_links_active(f.links, -1);
  // If every finished flow's links are now idle, the finished flows shared
  // no link with any survivor and the survivors' allocation is unchanged —
  // the water-filling pass can be skipped outright.
  bool idle = true;
  for (const Flow& f : finished) {
    if (!fair_share_links_idle(f.links)) {
      idle = false;
      break;
    }
  }
  if (!active_.empty()) {
    if (idle) {
      ++fast_paths_;
      if (cross_check_) fair_share_cross_check("completion");
    } else {
      fair_share_compute_rates();
    }
  }
  // Completion callbacks may start new flows re-entrantly; survivor rates
  // are already correct at this point, so each re-entrant add updates the
  // allocation incrementally (fast path or full pass) and re-arms itself.
  // The final arm below covers the case where no new flow was started.
  for (Flow& f : finished) finish_flow(f);
  fair_share_arm();
}

void Network::fair_share_cross_check(const char* where) {
  // Save the fast path's rates, run the full water-filling pass over the
  // same active set, and demand agreement (up to floating-point noise: the
  // full pass accumulates link residuals in a different order). The fast
  // path's values are restored afterwards so the production code path stays
  // the one under test downstream.
  std::vector<std::pair<FlowId, double>> saved;
  saved.reserve(active_.size());
  for (const auto& [id, f] : active_) saved.emplace_back(id, f.rate);
  fair_share_compute_rates();
  for (const auto& [id, rate] : saved) {
    const auto it = active_.find(id);
    assert(it != active_.end());
    const double full = it->second.rate;
    const double tol = 1e-9 * std::max(1.0, std::abs(full));
    if (std::abs(full - rate) > tol) {
      throw std::logic_error(
          std::string("fair-share fast path diverged from full recompute at ") +
          where + ": flow " + std::to_string(id) + " fast=" +
          std::to_string(rate) + " full=" + std::to_string(full));
    }
  }
  for (const auto& [id, rate] : saved) active_.find(id)->second.rate = rate;
}

// --- exclusive FIFO (the paper's NodeTree hold model) -------------------------

void Network::fifo_try_start_pending() {
  for (auto it = fifo_pending_.begin(); it != fifo_pending_.end();) {
    const bool all_free = std::all_of(
        it->links.begin(), it->links.end(), [this](int link) {
          return !links_[static_cast<std::size_t>(link)].held;
        });
    if (!all_free) {
      ++it;
      continue;
    }
    Flow flow = std::move(*it);
    it = fifo_pending_.erase(it);
    for (int link : flow.links) {
      links_[static_cast<std::size_t>(link)].held = true;
    }
    mark_links_active(flow.links, +1);
    util::BytesPerSec bottleneck = std::numeric_limits<double>::infinity();
    for (int link : flow.links) {
      bottleneck = std::min(
          bottleneck, links_[static_cast<std::size_t>(link)].capacity);
    }
    const util::Seconds duration = flow.remaining / bottleneck;
    const FlowId id = flow.id;
    auto [slot, inserted] = active_.emplace(id, std::move(flow));
    assert(inserted);
    slot->second.completion =
        sim_.schedule_in(duration, [this, id] { fifo_complete(id); });
  }
}

void Network::fifo_complete(FlowId id) {
  auto it = active_.find(id);
  assert(it != active_.end());
  Flow flow = std::move(it->second);
  active_.erase(it);
  for (int link : flow.links) {
    links_[static_cast<std::size_t>(link)].held = false;
  }
  mark_links_active(flow.links, -1);
  flow.remaining = 0.0;
  finish_flow(flow);
  fifo_try_start_pending();
}

}  // namespace dfs::net
