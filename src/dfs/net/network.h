#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dfs/net/topology.h"
#include "dfs/sim/simulator.h"
#include "dfs/util/units.h"

namespace dfs::net {

/// How concurrent transfers share a link.
///
/// The paper's simulator "notifies the NodeTree structure to hold the
/// communication link for a duration needed for the data transmission" —
/// i.e. exclusive FIFO holds. Real TCP flows approximate max–min fair
/// sharing. Both reproduce the headline contention effect (two simultaneous
/// cross-rack degraded reads into one rack finish in twice the time of one),
/// so we support both and compare them in bench/ablation_contention.
enum class ContentionModel {
  kMaxMinFairShare,  ///< fluid-flow water-filling (default)
  kExclusiveFifo,    ///< the paper's NodeTree hold model
};

/// Per-link bandwidths of the two-level tree. `util::kUnlimitedBandwidth`
/// (0) removes a link from the contention set entirely. The paper's analysis
/// and simulation contend only on the per-rack links (bandwidth W), so node
/// links default to unlimited.
struct LinkConfig {
  util::BytesPerSec node_up = util::kUnlimitedBandwidth;
  util::BytesPerSec node_down = util::kUnlimitedBandwidth;
  util::BytesPerSec rack_up = util::gigabits_per_sec(1.0);
  util::BytesPerSec rack_down = util::gigabits_per_sec(1.0);
  util::BytesPerSec core = util::kUnlimitedBandwidth;  ///< aggregate core cap
};

using FlowId = std::uint64_t;

/// Flow-level network model over a Topology, driven by a Simulator.
///
/// Transfers are fluid flows routed src-node-up → src-rack-up → core →
/// dst-rack-down → dst-node-down (segments collapse away when the endpoints
/// share a rack or a node, or when a segment is unlimited). Completion
/// callbacks fire at the simulated completion time.
class Network {
 public:
  Network(sim::Simulator& simulator, const Topology& topology,
          const LinkConfig& links,
          ContentionModel model = ContentionModel::kMaxMinFairShare);

  /// Start a transfer of `size` bytes from `src` to `dst`; `done` fires when
  /// the last byte arrives. A transfer with an empty contended path (e.g.
  /// src == dst, or all links on the path unlimited) completes after zero
  /// simulated time, on the next event-loop dispatch.
  FlowId transfer(NodeId src, NodeId dst, util::Bytes size,
                  std::function<void()> done);

  /// Cancel an in-flight transfer: its callback never fires and its share of
  /// every link is released immediately. Returns false when the flow is not
  /// cancellable — already completed, unknown, or uncontended (uncontended
  /// flows complete on the next dispatch and are never tracked; callers must
  /// guard their callbacks instead).
  bool cancel(FlowId id);

  /// Lower bound on the completion time of one isolated transfer.
  util::Seconds isolated_transfer_time(NodeId src, NodeId dst,
                                       util::Bytes size) const;

  ContentionModel model() const { return model_; }
  const Topology& topology() const { return topology_; }

  /// Debug mode: after every fair-share fast path, re-run the full
  /// water-filling pass and verify the fast path produced the same rates
  /// (throws std::logic_error on divergence). Costs a full recompute per
  /// fast path — for tests only.
  void set_fair_share_cross_check(bool on) { cross_check_ = on; }

  // --- observability -------------------------------------------------------
  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t flows_cancelled() const { return flows_cancelled_; }
  /// Fair-share allocation updates that skipped the water-filling pass
  /// because the arriving/departing flows shared no link with the rest.
  std::uint64_t fair_share_fast_paths() const { return fast_paths_; }
  /// Full water-filling passes executed (includes cross-check re-runs).
  std::uint64_t fair_share_full_recomputes() const { return full_recomputes_; }
  util::Bytes bytes_delivered() const { return bytes_delivered_; }
  int active_flow_count() const { return static_cast<int>(active_.size()); }
  /// Total time the given rack's downlink had at least one active flow.
  util::Seconds rack_down_busy_time(RackId r) const;

 private:
  struct Link {
    util::BytesPerSec capacity = util::kUnlimitedBandwidth;
    int active_flows = 0;       // flows currently routed through (both models)
    bool held = false;          // kExclusiveFifo: exclusively held
    util::Seconds busy_since = 0.0;
    util::Seconds busy_total = 0.0;
  };

  struct Flow {
    FlowId id = 0;
    NodeId src = 0;
    NodeId dst = 0;
    util::Bytes size = 0.0;
    util::Bytes remaining = 0.0;
    double rate = 0.0;  // bytes/sec, fair-share model only
    std::vector<int> links;
    std::function<void()> done;
    sim::EventId completion{};  // kExclusiveFifo: armed completion event
  };

  std::vector<int> contended_path(NodeId src, NodeId dst) const;

  // Fair-share model.
  void fair_share_add(Flow flow);
  void fair_share_advance();
  void fair_share_compute_rates();
  void fair_share_arm();
  void fair_share_on_completion();
  void fair_share_cross_check(const char* where);
  /// True when none of `links` carries an active flow (used after removal:
  /// the departed flows were isolated, so survivor rates are unchanged).
  bool fair_share_links_idle(const std::vector<int>& links) const;

  // Exclusive-FIFO model.
  void fifo_try_start_pending();
  void fifo_complete(FlowId id);

  void mark_links_active(const std::vector<int>& links, int delta);
  void finish_flow(Flow& flow);

  // Link index layout: [0, 2N) node up/down, [2N, 2N+2R) rack up/down,
  // [2N+2R] core.
  int node_up_link(NodeId n) const { return 2 * n; }
  int node_down_link(NodeId n) const { return 2 * n + 1; }
  int rack_up_link(RackId r) const { return 2 * topology_.num_nodes() + 2 * r; }
  int rack_down_link(RackId r) const {
    return 2 * topology_.num_nodes() + 2 * r + 1;
  }
  int core_link() const {
    return 2 * topology_.num_nodes() + 2 * topology_.num_racks();
  }

  sim::Simulator& sim_;
  const Topology& topology_;
  ContentionModel model_;
  std::vector<Link> links_;

  FlowId next_flow_id_ = 1;
  std::unordered_map<FlowId, Flow> active_;
  std::deque<Flow> fifo_pending_;

  // Fair-share bookkeeping.
  util::Seconds last_advance_ = 0.0;
  sim::EventId next_completion_{};
  // Water-filling scratch buffers (see fair_share_recompute_and_arm).
  std::vector<double> scratch_residual_;
  std::vector<int> scratch_count_;
  std::vector<int> scratch_touched_;
  std::vector<std::vector<FlowId>> scratch_link_flows_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_cancelled_ = 0;
  std::uint64_t fast_paths_ = 0;
  std::uint64_t full_recomputes_ = 0;
  bool cross_check_ = false;
  util::Bytes bytes_delivered_ = 0.0;
};

}  // namespace dfs::net
