#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dfs/net/topology.h"
#include "dfs/sim/simulator.h"
#include "dfs/util/epoch.h"
#include "dfs/util/units.h"

namespace dfs::util {
class JsonlWriter;
}

namespace dfs::runner {
class ThreadPool;
}

namespace dfs::net {

/// How concurrent transfers share a link.
///
/// The paper's simulator "notifies the NodeTree structure to hold the
/// communication link for a duration needed for the data transmission" —
/// i.e. exclusive FIFO holds. Real TCP flows approximate max–min fair
/// sharing. Both reproduce the headline contention effect (two simultaneous
/// cross-rack degraded reads into one rack finish in twice the time of one),
/// so we support both and compare them in bench/ablation_contention.
enum class ContentionModel {
  kMaxMinFairShare,  ///< fluid-flow water-filling (default)
  kExclusiveFifo,    ///< the paper's NodeTree hold model
};

/// Per-link bandwidths of the two-level tree. `util::kUnlimitedBandwidth`
/// (0) removes a link from the contention set entirely. The paper's analysis
/// and simulation contend only on the per-rack links (bandwidth W), so node
/// links default to unlimited.
struct LinkConfig {
  util::BytesPerSec node_up = util::kUnlimitedBandwidth;
  util::BytesPerSec node_down = util::kUnlimitedBandwidth;
  util::BytesPerSec rack_up = util::gigabits_per_sec(1.0);
  util::BytesPerSec rack_down = util::gigabits_per_sec(1.0);
  util::BytesPerSec core = util::kUnlimitedBandwidth;  ///< aggregate core cap
};

using FlowId = std::uint64_t;

/// Flow-level network model over a Topology, driven by a Simulator.
///
/// Transfers are fluid flows routed src-node-up → src-rack-up → core →
/// dst-rack-down → dst-node-down (segments collapse away when the endpoints
/// share a rack or a node, or when a segment is unlimited). Completion
/// callbacks fire at the simulated completion time.
///
/// The max–min fair-share model allocates rates by water-filling, organized
/// around three exact optimizations (docs/performance.md has the full
/// derivation):
///
/// - **Flow classes.** Flows with the same contended path receive the same
///   max–min rate, so they collapse into one class with a multiplicity
///   count; water-filling runs over classes, not flows. Under the default
///   LinkConfig every cross-rack flow contends on exactly its two rack
///   links, so the class count is bounded by rack pairs regardless of how
///   many flows are in flight.
/// - **Component-scoped recompute.** Max–min allocations decompose over
///   connected components of the class/link sharing graph, so a change
///   re-waterfills only the component it touched (discovered by flood-fill
///   from the changed links); everyone else's rate is provably unchanged.
/// - **Batch coalescing.** transfer()/cancel()/completions mark their links
///   dirty and schedule one zero-delay recompute through the simulator, so
///   a k-source degraded read or an n-flow shuffle wave pays one pass per
///   simulated timestamp instead of k or n.
class Network {
 public:
  /// Counter snapshot for observability (JSONL reporting in the tools).
  struct Stats {
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_cancelled = 0;
    std::uint64_t fast_paths = 0;          ///< single-class component passes
    std::uint64_t full_recomputes = 0;     ///< naive passes (cross-check)
    std::uint64_t batched_recomputes = 0;  ///< coalesced recompute events
    std::uint64_t component_recomputes = 0;  ///< multi-class component passes
    int classes_active = 0;                  ///< live flow classes right now
    util::Bytes bytes_delivered = 0.0;
  };

  Network(sim::Simulator& simulator, const Topology& topology,
          const LinkConfig& links,
          ContentionModel model = ContentionModel::kMaxMinFairShare);

  /// Start a transfer of `size` bytes from `src` to `dst`; `done` fires when
  /// the last byte arrives. A transfer with an empty contended path (e.g.
  /// src == dst, or all links on the path unlimited) completes after zero
  /// simulated time, on the next event-loop dispatch.
  FlowId transfer(NodeId src, NodeId dst, util::Bytes size,
                  std::function<void()> done);

  /// Cancel an in-flight transfer: its callback never fires and its share of
  /// every link is released immediately. Idempotent — a second cancel of the
  /// same flow returns false and changes nothing. Safe against the
  /// cancel-after-completion race inside a same-timestamp completion batch:
  /// when a completion callback cancels another flow that finished in the
  /// same batch but whose callback has not yet been delivered (a hedged
  /// loser crossing the line together with the winner), the victim's
  /// callback is suppressed and the flow counts as cancelled, not
  /// completed. Returns false when the flow is not cancellable — already
  /// completed (callback delivered), unknown, or uncontended (uncontended
  /// flows complete on the next dispatch and are never tracked; callers must
  /// guard their callbacks instead).
  bool cancel(FlowId id);

  /// Lower bound on the completion time of one isolated transfer.
  util::Seconds isolated_transfer_time(NodeId src, NodeId dst,
                                       util::Bytes size) const;

  ContentionModel model() const { return model_; }
  const Topology& topology() const { return topology_; }

  /// Fan the per-component water-filling passes of a batched recompute
  /// across `pool`'s workers. Components are independent by construction
  /// (disjoint links and classes — that's why component-scoped recompute is
  /// exact), and each pass writes only its own component's state, so the
  /// resulting rates are identical to the serial engine at any worker
  /// count; components are still collected (and counted) in deterministic
  /// seed order. nullptr, or a pool with fewer than two workers, keeps the
  /// serial path. The pool must be DEDICATED to this network: the recompute
  /// blocks on wait_idle(), so handing it a pool whose worker is currently
  /// running this simulation (e.g. the seed-sweep pool) deadlocks.
  void set_thread_pool(runner::ThreadPool* pool) { pool_ = pool; }

  /// Debug mode: after every batched fair-share recompute, re-derive every
  /// rate with a naive per-flow water-filling pass over the whole active set
  /// and verify the class-aggregated, component-scoped engine produced the
  /// same allocation (throws std::logic_error on divergence). Also checks
  /// the class bookkeeping invariants. Costs a full pass per recompute — for
  /// tests only.
  void set_fair_share_cross_check(bool on) { cross_check_ = on; }

  // --- observability -------------------------------------------------------
  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t flows_cancelled() const { return flows_cancelled_; }
  /// Fair-share component passes that collapsed to a single class: the rate
  /// is its path bottleneck divided by its multiplicity, no water-filling
  /// loop needed (subsumes the old isolated-add/idle-removal fast paths).
  std::uint64_t fair_share_fast_paths() const { return fast_paths_; }
  /// Naive per-flow water-filling passes executed. The production engine
  /// never runs these anymore; they count cross-check reference passes.
  std::uint64_t fair_share_full_recomputes() const { return full_recomputes_; }
  /// Coalesced zero-delay recompute events processed (one per simulated
  /// timestamp with fair-share changes, however many flows changed).
  std::uint64_t fair_share_batched_recomputes() const {
    return batched_recomputes_;
  }
  /// Water-filling passes over a multi-class connected component.
  std::uint64_t fair_share_component_recomputes() const {
    return component_recomputes_;
  }
  /// Live flow classes (distinct contended paths with at least one flow).
  int fair_share_classes_active() const {
    return static_cast<int>(class_by_path_.size());
  }
  Stats stats() const;
  util::Bytes bytes_delivered() const { return bytes_delivered_; }
  int active_flow_count() const { return static_cast<int>(active_.size()); }
  /// Total time the given rack's downlink had at least one active flow.
  util::Seconds rack_down_busy_time(RackId r) const;

 private:
  struct Link {
    util::BytesPerSec capacity = util::kUnlimitedBandwidth;
    int active_flows = 0;       // flows currently routed through (both models)
    bool held = false;          // kExclusiveFifo: exclusively held
    util::Seconds busy_since = 0.0;
    util::Seconds busy_total = 0.0;
  };

  struct Flow {
    FlowId id = 0;
    NodeId src = 0;
    NodeId dst = 0;
    util::Bytes size = 0.0;
    util::Bytes remaining = 0.0;
    int cls = -1;  // fair-share model: index into classes_
    std::vector<int> links;
    std::function<void()> done;
    sim::EventId completion{};  // kExclusiveFifo: armed completion event
  };

  /// One equivalence class of fair-share flows: every flow with this
  /// contended path. Max–min gives them all the same rate, so the class
  /// carries one rate and a multiplicity; water-filling runs over classes.
  struct FlowClass {
    std::vector<int> links;     ///< the shared contended path
    std::vector<int> link_pos;  ///< this class's slot in link_classes_[links[i]]
    int count = 0;              ///< member flows
    double rate = 0.0;          ///< bytes/sec per member flow
    double wf_rate = 0.0;       ///< water-filling scratch (unfrozen marker)
    util::Epoch::Ticket visit = 0;  ///< flood-fill epoch mark
  };

  struct PathHash {
    std::size_t operator()(const std::vector<int>& p) const {
      std::size_t h = 1469598103934665603ull;
      for (int v : p) {
        h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  std::vector<int> contended_path(NodeId src, NodeId dst) const;

  // Fair-share model.
  void fair_share_add(Flow flow);
  void fair_share_advance();
  /// Find or create the class for `path`; returns its index.
  int fair_share_class_for(const std::vector<int>& path);
  /// Drop one member from flow's class, destroying the class at zero.
  void fair_share_leave_class(const Flow& flow);
  /// Mark the flow's links dirty and ensure one zero-delay recompute event
  /// is queued; also disarms the stale completion horizon (the recompute
  /// re-arms from fresh rates, exactly like the old per-op re-arm did).
  void fair_share_mark_dirty(const std::vector<int>& links);
  /// The coalesced recompute: flood-fill components from the dirty links,
  /// water-fill each touched component over its classes, cross-check if
  /// enabled, re-arm the completion horizon.
  void fair_share_batched_recompute();
  /// One flood-filled component, as ranges into comp_links_/comp_classes_.
  struct ComponentRange {
    std::size_t links_begin = 0;
    std::size_t links_end = 0;
    std::size_t classes_begin = 0;
    std::size_t classes_end = 0;
  };
  /// Water-fill one component. Touches only that component's classes and
  /// scratch slots (disjoint across components), so concurrent calls on
  /// different components are race-free.
  void fair_share_waterfill_component(const ComponentRange& comp);
  void fair_share_arm();
  void fair_share_on_completion();
  /// Naive per-flow water-filling over the whole active set (the reference
  /// the optimized engine must agree with); writes into `out`.
  void fair_share_naive_rates(std::unordered_map<FlowId, double>& out);
  void fair_share_cross_check();

  // Exclusive-FIFO model.
  void fifo_try_start_pending();
  void fifo_complete(FlowId id);

  void mark_links_active(const std::vector<int>& links, int delta);
  void finish_flow(Flow& flow);

  // Link index layout: [0, 2N) node up/down, [2N, 2N+2R) rack up/down,
  // [2N+2R] core.
  int node_up_link(NodeId n) const { return 2 * n; }
  int node_down_link(NodeId n) const { return 2 * n + 1; }
  int rack_up_link(RackId r) const { return 2 * topology_.num_nodes() + 2 * r; }
  int rack_down_link(RackId r) const {
    return 2 * topology_.num_nodes() + 2 * r + 1;
  }
  int core_link() const {
    return 2 * topology_.num_nodes() + 2 * topology_.num_racks();
  }

  sim::Simulator& sim_;
  const Topology& topology_;
  ContentionModel model_;
  std::vector<Link> links_;

  FlowId next_flow_id_ = 1;
  std::unordered_map<FlowId, Flow> active_;
  std::deque<Flow> fifo_pending_;

  // Fair-share bookkeeping.
  util::Seconds last_advance_ = 0.0;
  sim::EventId next_completion_{};

  // Flow classes and the class/link sharing graph.
  std::vector<FlowClass> classes_;  ///< slab; free slots on free_classes_
  std::vector<int> free_classes_;
  std::unordered_map<std::vector<int>, int, PathHash> class_by_path_;
  /// Per link: (class index, slot of this link in that class's `links`).
  /// The back-reference keeps swap-removal O(1) on class destruction.
  std::vector<std::vector<std::pair<int, int>>> link_classes_;

  // Dirty set between coalesced recomputes.
  std::vector<int> dirty_links_;
  std::vector<char> link_dirty_;
  bool recompute_scheduled_ = false;

  // Completion-batch dispatch state: while fair_share_on_completion delivers
  // its batch of callbacks, cancel() of a later flow in the same batch marks
  // it suppressed here instead of failing (a hedged read cancelling a loser
  // that finished in the winner's timestamp batch). Null outside dispatch.
  std::vector<Flow>* dispatch_batch_ = nullptr;
  std::size_t dispatch_pos_ = 0;
  std::vector<char> dispatch_suppressed_;

  // Flood-fill + water-filling scratch, reused across recomputes. Residuals
  // and counts are only read for links seeded by the current component, so
  // they never need a global clear; `visit_epoch_` versions the flood-fill
  // marks the same way.
  util::Epoch visit_epoch_;
  std::vector<util::Epoch::Ticket> link_visit_;
  std::vector<int> comp_links_;    ///< doubles as the flood-fill queue
  std::vector<int> comp_classes_;
  std::vector<ComponentRange> comp_ranges_;  ///< components of this batch
  runner::ThreadPool* pool_ = nullptr;  ///< dedicated recompute pool or null
  std::vector<double> scratch_residual_;
  std::vector<int> scratch_count_;
  std::vector<int> scratch_touched_;  ///< naive reference pass only
  std::vector<std::vector<FlowId>> scratch_link_flows_;  ///< naive pass only

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_cancelled_ = 0;
  std::uint64_t fast_paths_ = 0;
  std::uint64_t full_recomputes_ = 0;
  std::uint64_t batched_recomputes_ = 0;
  std::uint64_t component_recomputes_ = 0;
  bool cross_check_ = false;
  util::Bytes bytes_delivered_ = 0.0;
};

/// Append the Stats counters to an open JSONL record, in the canonical field
/// order shared by every tool that reports network statistics. The caller
/// owns begin()/end() and any leading fields (e.g. dfsim's per-seed tag).
void append_net_stats(util::JsonlWriter& w, const Network::Stats& s);

}  // namespace dfs::net
