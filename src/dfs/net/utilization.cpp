#include "dfs/net/utilization.h"

#include <utility>

namespace dfs::net {

UtilizationSampler::UtilizationSampler(sim::Simulator& simulator,
                                       Network& network,
                                       util::Seconds interval,
                                       std::function<bool()> keep_going)
    : sim_(simulator),
      net_(network),
      interval_(interval),
      keep_going_(std::move(keep_going)) {
  prev_busy_.assign(static_cast<std::size_t>(net_.topology().num_racks()),
                    0.0);
}

void UtilizationSampler::start() {
  prev_time_ = sim_.now();
  for (RackId r = 0; r < net_.topology().num_racks(); ++r) {
    prev_busy_[static_cast<std::size_t>(r)] = net_.rack_down_busy_time(r);
  }
  sim_.schedule_periodic(interval_, interval_, [this] {
    const util::Seconds now = sim_.now();
    const double dt = now - prev_time_;
    double busy_fraction_sum = 0.0;
    for (RackId r = 0; r < net_.topology().num_racks(); ++r) {
      const double busy = net_.rack_down_busy_time(r);
      busy_fraction_sum +=
          dt > 0.0
              ? (busy - prev_busy_[static_cast<std::size_t>(r)]) / dt
              : 0.0;
      prev_busy_[static_cast<std::size_t>(r)] = busy;
    }
    prev_time_ = now;
    samples_.push_back(
        Sample{now, busy_fraction_sum / net_.topology().num_racks()});
    return keep_going_ ? keep_going_() : true;
  });
}

double UtilizationSampler::mean_utilization(util::Seconds from,
                                            util::Seconds to) const {
  double sum = 0.0;
  int count = 0;
  for (const Sample& s : samples_) {
    if (s.time > from && s.time <= to) {
      sum += s.utilization;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace dfs::net
