#pragma once

#include <functional>
#include <vector>

#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"

namespace dfs::net {

/// Samples the fraction of time the rack download links were busy in each
/// interval — the quantity behind the paper's §III observation that "while
/// local tasks are running, the MapReduce job does not fully utilize the
/// available network resources". Locality-first leaves the links idle early
/// and saturates them at the end of the map phase; degraded-first spreads
/// the load.
class UtilizationSampler {
 public:
  struct Sample {
    util::Seconds time = 0.0;   ///< end of the interval
    double utilization = 0.0;   ///< mean busy fraction of rack downlinks
  };

  /// Samples every `interval` seconds while `keep_going()` returns true
  /// (pass e.g. [&] { return !master.all_jobs_done(); }).
  UtilizationSampler(sim::Simulator& simulator, Network& network,
                     util::Seconds interval,
                     std::function<bool()> keep_going);

  /// Arm the periodic sampling. Call before Simulator::run().
  void start();

  const std::vector<Sample>& samples() const { return samples_; }

  /// Mean utilization over the samples in [from, to).
  double mean_utilization(util::Seconds from, util::Seconds to) const;

 private:
  sim::Simulator& sim_;
  Network& net_;
  util::Seconds interval_;
  std::function<bool()> keep_going_;
  std::vector<double> prev_busy_;  ///< per rack, at the last sample
  util::Seconds prev_time_ = 0.0;
  std::vector<Sample> samples_;
};

}  // namespace dfs::net
