#include "dfs/net/topology.h"

namespace dfs::net {

Topology::Topology(int racks, int nodes_per_rack)
    : Topology(std::vector<int>(static_cast<std::size_t>(racks),
                                nodes_per_rack)) {}

Topology::Topology(const std::vector<int>& rack_sizes) {
  assert(!rack_sizes.empty());
  NodeId next = 0;
  racks_.reserve(rack_sizes.size());
  for (std::size_t r = 0; r < rack_sizes.size(); ++r) {
    assert(rack_sizes[r] > 0);
    std::vector<NodeId> members;
    members.reserve(static_cast<std::size_t>(rack_sizes[r]));
    for (int i = 0; i < rack_sizes[r]; ++i) {
      rack_of_.push_back(static_cast<RackId>(r));
      members.push_back(next++);
    }
    racks_.push_back(std::move(members));
  }
}

}  // namespace dfs::net
