#pragma once

#include <memory>
#include <vector>

#include "dfs/ec/erasure_code.h"
#include "dfs/mapreduce/master.h"
#include "dfs/mapreduce/repair.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/rng.h"

namespace dfs::cluster {

struct LifecycleOptions {
  /// Per-node exponential mean time to failure, in hours of simulated time.
  /// Deliberately accelerated relative to real hardware (months) so a
  /// multi-hour run exercises several failure/repair cycles; scale up for
  /// realistic rates.
  double node_mttf_hours = 6.0;
  /// Mean of the exponential delay between a failure and the start of its
  /// reconstruction (detection + disk replacement). Reconstruction time
  /// itself is endogenous: real repair traffic through the shared network.
  util::Seconds mean_repair_delay = 60.0;
  /// Probability that a failure event takes the node's whole rack (ToR
  /// switch loss) instead of just the node.
  double rack_failure_fraction = 0.0;
  /// Cap on simultaneously failed nodes for node-level events; a failure
  /// clock that fires at the cap is redrawn instead of fired (keeps the
  /// default scenario inside the code's tolerance so runs measure latency,
  /// not data loss). Rack events ignore the cap and instead fire only into
  /// an otherwise healthy cluster.
  int max_concurrent_failed = 4;
  /// Simultaneous block reconstructions per failure event.
  int repair_concurrency = 4;
  /// Size of each rebuilt block.
  util::Bytes block_size = util::mebibytes(128);
  /// No new failures are injected after the horizon; repairs already
  /// running still complete.
  util::Seconds horizon = 2.0 * 3600.0;
  /// Fault layer: a failure also kills the node's TaskTracker (the master
  /// detects it by heartbeat expiry and reschedules its attempts), and
  /// failures are forwarded to in-flight repairs so transfers touching the
  /// dead node are re-planned. Requires ClusterConfig::fault to match.
  bool compute_failures = false;
};

/// One node- or rack-failure event and its repair outcome.
struct FailureEvent {
  util::Seconds fail_time = -1.0;
  util::Seconds repair_start = -1.0;
  util::Seconds restore_time = -1.0;  ///< -1 while the repair is in flight
  std::vector<net::NodeId> nodes;
  bool rack = false;
  int blocks_repaired = 0;
  int blocks_unrecoverable = 0;
};

/// Drives the cluster through failure/repair cycles while jobs run: each
/// alive node carries an exponential MTTF clock; when one fires, the node
/// (or, with rack_failure_fraction, its rack) drops out of the shared
/// FailureScenario, the master reclassifies the affected pending tasks as
/// degraded, and after an MTTR delay a RepairProcess rebuilds the node's
/// share of the cluster's archival data over the shared network. When the
/// last block lands the node rejoins, full locality is restored, and its
/// MTTF clock is redrawn.
class LifecycleDriver {
 public:
  LifecycleDriver(sim::Simulator& simulator, net::Network& network,
                  mapreduce::Master& master,
                  storage::FailureScenario& failure,
                  const storage::StorageLayout& archive_layout,
                  const ec::ErasureCode& archive_code,
                  LifecycleOptions options, util::Rng rng);

  /// Arms every node's failure clock and the horizon stop. Call before
  /// Simulator::run().
  void start();

  /// Blocks queued or being rebuilt right now, across all active repairs.
  int repair_backlog() const;
  /// Failure events whose nodes have not been restored yet.
  int active_failures() const;
  /// Nodes currently down across all active events.
  int failed_node_count() const;
  bool idle() const { return active_failures() == 0; }

  int failures_injected() const { return static_cast<int>(events_.size()); }
  int blocks_repaired() const;
  int blocks_unrecoverable() const;
  /// All events, in injection order; restore_time == -1 for unfinished ones.
  std::vector<FailureEvent> events() const;

 private:
  struct ActiveEvent {
    FailureEvent event;
    std::unique_ptr<mapreduce::RepairProcess> repair;
  };

  void arm_failure_clock(net::NodeId node);
  void on_failure_clock(net::NodeId node);
  void trigger_failure(std::vector<net::NodeId> nodes, bool rack);
  void on_repair_complete(std::size_t event_index);
  void stop_at_horizon();

  sim::Simulator& sim_;
  net::Network& net_;
  mapreduce::Master& master_;
  storage::FailureScenario& failure_;
  const storage::StorageLayout& archive_layout_;
  const ec::ErasureCode& archive_code_;
  LifecycleOptions options_;
  util::Rng rng_;

  std::vector<sim::EventId> clocks_;  ///< pending failure clock per node
  std::vector<std::unique_ptr<ActiveEvent>> events_;
  int active_failures_ = 0;
  bool stopped_ = false;  ///< horizon passed: no new failures
};

}  // namespace dfs::cluster
