#pragma once

#include <string>
#include <vector>

#include "dfs/mapreduce/master.h"
#include "dfs/net/topology.h"
#include "dfs/sim/simulator.h"
#include "dfs/util/rng.h"
#include "dfs/workload/scenarios.h"

namespace dfs::cluster {

/// Inter-arrival law of the open-loop job stream.
enum class ArrivalModel {
  kPoisson,  ///< exponential gaps — the classic M/G/k queueing view
  kPareto,   ///< heavy-tailed gaps (bursty traffic; shape > 1 keeps the mean)
  kDiurnal,  ///< Poisson with a sinusoidal day/night rate modulation
};

/// Parses "poisson" / "pareto" / "diurnal"; throws std::invalid_argument.
ArrivalModel parse_arrival_model(const std::string& name);
const char* to_string(ArrivalModel model);

/// One tenant class of a multi-tenant job stream.
struct TenantClass {
  /// Relative share of the arrival stream this class submits (any positive
  /// scale; shares are normalized over the classes). Must be > 0.
  double arrival_share = 1.0;
  /// Multiplier on the template job's input size: the class's jobs carry
  /// round(num_blocks * job_scale) native blocks, rounded to whole stripes
  /// (a multiple of k, at least one stripe). Must be > 0.
  double job_scale = 1.0;
};

struct ArrivalOptions {
  ArrivalModel model = ArrivalModel::kPoisson;
  /// Mean gap between submissions (the diurnal modulation preserves this
  /// time-average over a full period).
  util::Seconds mean_interarrival = 60.0;
  /// Pareto shape; must be > 1 so the mean exists. Smaller = heavier tail.
  double pareto_alpha = 1.5;
  /// Diurnal rate: lambda(t) = base * (1 + amplitude * sin(2*pi*t/period)),
  /// amplitude in [0, 1).
  double diurnal_amplitude = 0.5;
  util::Seconds diurnal_period = 24.0 * 3600.0;
  /// Admission stops at the horizon; already-queued jobs still drain.
  util::Seconds horizon = 2.0 * 3600.0;
  /// Template of every submitted job. Each arrival gets a fresh randomly
  /// placed erasure-coded input file under these knobs.
  workload::SimJobOptions job;
  /// Tenant classes of the stream. Empty (the default) is the single-tenant
  /// stream: every job lands in class 0, no extra state, no extra RNG draws
  /// — byte-identical to the pre-tenant generator. With classes configured,
  /// each arrival is tagged by a largest-deficit weighted round-robin over
  /// `arrival_share` (deterministic, zero RNG draws) and sized by its
  /// class's `job_scale`.
  std::vector<TenantClass> tenants;
};

/// Open-loop arrival generator: submits jobs into the master's FIFO queue
/// at generated times *while the simulation runs* — the online counterpart
/// of workload::make_multi_job_workload's pre-built batch. The job stream
/// does not react to cluster state (open loop), which is what makes the
/// steady-state latency percentiles meaningful.
class ArrivalProcess {
 public:
  ArrivalProcess(sim::Simulator& simulator, mapreduce::Master& master,
                 const net::Topology& topology, ArrivalOptions options,
                 util::Rng rng);

  /// Arms the first arrival. Call after Master::start(), before
  /// Simulator::run(). The master must be in online mode.
  void start();

  int submitted() const { return submitted_; }

 private:
  void schedule_next();
  void on_candidate();
  /// One draw of the configured inter-arrival law (thinning candidates for
  /// the diurnal model, accepted gaps otherwise).
  util::Seconds next_gap();
  void submit_job();
  /// Tenant class of the next arrival: largest-deficit weighted round-robin
  /// over the classes' arrival shares (no RNG; lowest class id wins ties).
  int next_tenant();

  sim::Simulator& sim_;
  mapreduce::Master& master_;
  const net::Topology& topology_;
  ArrivalOptions options_;
  util::Rng rng_;
  int submitted_ = 0;
  int next_job_id_ = 0;
  std::vector<double> tenant_share_;  ///< normalized arrival shares
  std::vector<long> tenant_issued_;   ///< jobs tagged per class so far
};

}  // namespace dfs::cluster
