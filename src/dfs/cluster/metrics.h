#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "dfs/cluster/lifecycle.h"
#include "dfs/mapreduce/master.h"
#include "dfs/mapreduce/metrics.h"
#include "dfs/net/network.h"
#include "dfs/sim/simulator.h"

namespace dfs::cluster {

/// One point of the per-interval cluster timeline.
struct TimelineSample {
  util::Seconds time = 0.0;          ///< end of the interval
  int jobs_in_system = 0;            ///< submitted and not yet finished
  int failed_nodes = 0;
  int repair_backlog = 0;            ///< blocks queued or being rebuilt
  /// Mean busy fraction of the rack downlinks over the interval (job,
  /// shuffle, and repair traffic combined).
  double rack_down_utilization = 0.0;
};

/// Periodically samples master / lifecycle / network state into a timeline.
class ClusterSampler {
 public:
  ClusterSampler(sim::Simulator& simulator, net::Network& network,
                 const mapreduce::Master& master,
                 const LifecycleDriver& lifecycle, util::Seconds interval,
                 std::function<bool()> keep_going);

  /// Arms the periodic sampling. Call before Simulator::run(). One final
  /// sample is taken when keep_going() first returns false.
  void start();

  const std::vector<TimelineSample>& samples() const { return samples_; }

 private:
  void sample();

  sim::Simulator& sim_;
  net::Network& net_;
  const mapreduce::Master& master_;
  const LifecycleDriver& lifecycle_;
  util::Seconds interval_;
  std::function<bool()> keep_going_;
  std::vector<double> prev_busy_;  ///< per-rack downlink busy time
  util::Seconds prev_time_ = 0.0;
  std::vector<TimelineSample> samples_;
};

/// Steady-state view of one long-horizon run: jobs submitted inside
/// [warmup, horizon] form the measurement window (warm-up transients and the
/// drain tail are excluded); the window's completion latencies give the
/// percentiles.
struct SteadyStateSummary {
  util::Seconds warmup = 0.0;
  util::Seconds horizon = 0.0;
  int jobs_submitted = 0;  ///< whole run
  int jobs_completed = 0;
  /// Jobs aborted after a task exhausted its attempts (fault layer; 0
  /// otherwise). Failed jobs count in neither jobs_completed nor the
  /// latency percentiles.
  int jobs_failed = 0;
  int jobs_measured = 0;   ///< submitted inside the measurement window
  /// Completion-latency samples behind the percentiles below (measured jobs
  /// that finished). Explicit so thin-sample percentiles are auditable —
  /// the tools warn when p99 rests on fewer than 10 samples.
  int latency_samples = 0;
  double latency_p50 = 0.0;   ///< submit-to-finish, measured jobs
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  double mean_job_runtime = 0.0;  ///< first-map-launch-to-finish
  /// Fraction of the measured jobs' map tasks that ran degraded.
  double degraded_task_fraction = 0.0;
  /// Mean block equivalents fetched per recoverable degraded read of the
  /// measured jobs (sum of RecoveryPlan source fractions — fractional for
  /// sub-shard codes like Hitchhiker, k for plain RS). 0 when no degraded
  /// task ran. Only written to JSONL when `report_recovery_stats` is set.
  double mean_degraded_fetch_blocks = 0.0;
  // --- degraded-read tail latency (meaningful when the fetch supervisor
  // ran; only written to JSONL when `report_hedging` is set) ---------------
  /// Per-task degraded read time (request issue to reconstructability) of
  /// the measured jobs' recoverable degraded tasks.
  double degraded_read_p50 = 0.0;
  double degraded_read_p99 = 0.0;
  double degraded_read_p999 = 0.0;
  int degraded_read_samples = 0;
  /// Per-fetch latency (attempt launch, service wait included, to last
  /// byte) of completed supervised fetches launched inside the window.
  double fetch_p50 = 0.0;
  double fetch_p99 = 0.0;
  double fetch_p999 = 0.0;
  int fetch_samples = 0;
  mapreduce::HedgeStats hedge;  ///< supervisor counters (zero when off)
  // --- per-tenant latency (multi-tenant streams; only written to JSONL
  // when `report_tenants` is set) ------------------------------------------
  /// Completion-latency percentiles of one tenant class's measured jobs.
  struct TenantSummary {
    int tenant = 0;
    int jobs_measured = 0;    ///< class jobs submitted inside the window
    int latency_samples = 0;  ///< of those, finished (the percentile base)
    double latency_p50 = 0.0;
    double latency_p95 = 0.0;
    double latency_p99 = 0.0;
    double latency_mean = 0.0;
  };
  /// One entry per tenant class seen among the run's jobs, ordered by class
  /// id. Single-tenant runs (every job in class 0) leave this empty — the
  /// breakdown would just repeat the overall percentiles.
  std::vector<TenantSummary> tenants;
  int failures_injected = 0;
  int rack_failures = 0;
  int blocks_repaired = 0;
  int blocks_unrecoverable = 0;
  int max_repair_backlog = 0;
  double mean_rack_down_utilization = 0.0;  ///< over the measurement window
  bool data_loss = false;
};

/// Everything one cluster run produces: the raw per-task/job records (the
/// same RunResult the snapshot simulations emit, so the existing
/// mapreduce::trace writers apply), the steady-state summary, the sampled
/// timeline, and the failure log.
struct ClusterResult {
  mapreduce::RunResult run;
  SteadyStateSummary summary;
  std::vector<TimelineSample> timeline;
  std::vector<FailureEvent> failures;
  /// Network engine counters for the run (flow totals, recompute/fast-path
  /// breakdown — see net::Network::Stats). Only written to JSONL when
  /// `report_net_stats` is set, so default output stays byte-identical to
  /// earlier versions.
  net::Network::Stats net_stats;
  bool report_net_stats = false;
  /// Adds the summary's recovery-volume field to JSONL; gated so default
  /// output stays byte-identical to pre-RecoveryPlan versions.
  bool report_recovery_stats = false;
  /// Adds the "hedging" record (degraded-read/fetch tail latencies plus the
  /// fetch-supervisor counters) to JSONL. Set automatically when the fetch
  /// supervisor ran; gated so supervisor-off output stays byte-identical.
  bool report_hedging = false;
  /// Adds the per-class "tenant" records to JSONL. Set automatically when
  /// the arrival stream has tenant classes configured; gated so
  /// single-tenant output stays byte-identical.
  bool report_tenants = false;
};

/// Computes the summary from the run's records plus the lifecycle/timeline
/// outputs. Exposed for tests; ClusterSimulation::run() calls it.
SteadyStateSummary summarize_steady_state(
    const mapreduce::RunResult& run, const std::vector<FailureEvent>& failures,
    const std::vector<TimelineSample>& timeline, util::Seconds warmup,
    util::Seconds horizon);

/// One JSON object per line: a "summary" line, then "failure", "sample" and
/// measured "job" lines in that order. Deterministic for a given seed —
/// byte-identical across runs.
void write_cluster_jsonl(std::ostream& os, const ClusterResult& result);

/// CSV of the timeline (one row per sample interval).
void write_timeline_csv(std::ostream& os, const ClusterResult& result);

}  // namespace dfs::cluster
