#include "dfs/cluster/lifecycle.h"

#include <algorithm>
#include <stdexcept>

namespace dfs::cluster {

LifecycleDriver::LifecycleDriver(sim::Simulator& simulator,
                                 net::Network& network,
                                 mapreduce::Master& master,
                                 storage::FailureScenario& failure,
                                 const storage::StorageLayout& archive_layout,
                                 const ec::ErasureCode& archive_code,
                                 LifecycleOptions options, util::Rng rng)
    : sim_(simulator),
      net_(network),
      master_(master),
      failure_(failure),
      archive_layout_(archive_layout),
      archive_code_(archive_code),
      options_(options),
      rng_(rng) {
  if (options_.node_mttf_hours <= 0.0) {
    throw std::invalid_argument("node_mttf_hours must be > 0");
  }
  if (options_.max_concurrent_failed < 1) {
    throw std::invalid_argument("max_concurrent_failed must be >= 1");
  }
  clocks_.resize(static_cast<std::size_t>(net_.topology().num_nodes()));
}

void LifecycleDriver::start() {
  for (net::NodeId n = 0; n < net_.topology().num_nodes(); ++n) {
    if (!failure_.is_failed(n)) arm_failure_clock(n);
  }
  sim_.schedule_at(options_.horizon, [this] { stop_at_horizon(); });
}

void LifecycleDriver::arm_failure_clock(net::NodeId node) {
  const util::Seconds ttf =
      rng_.exponential(options_.node_mttf_hours * 3600.0);
  if (sim_.now() + ttf > options_.horizon) return;  // never fires in-window
  clocks_[static_cast<std::size_t>(node)] =
      sim_.schedule_in(ttf, [this, node] { on_failure_clock(node); });
}

void LifecycleDriver::on_failure_clock(net::NodeId node) {
  clocks_[static_cast<std::size_t>(node)] = sim::EventId{};
  if (stopped_ || failure_.is_failed(node)) return;
  const int failed_now = static_cast<int>(failure_.failed_nodes().size());
  const bool rack =
      rng_.uniform(0.0, 1.0) < options_.rack_failure_fraction;
  std::vector<net::NodeId> victims;
  if (rack) {
    // A whole rack exceeds any per-node cap, so it gets its own guard: fire
    // only into an otherwise healthy cluster. The §III placement rule keeps
    // one rack's share of a stripe within the code's tolerance (n - k), so
    // a lone rack failure stays recoverable where rack-plus-node might not.
    if (failed_now > 0) {
      arm_failure_clock(node);  // redraw instead of firing
      return;
    }
    for (const net::NodeId peer :
         net_.topology().nodes_in_rack(net_.topology().rack_of(node))) {
      victims.push_back(peer);
    }
  } else {
    if (failed_now + 1 > options_.max_concurrent_failed) {
      arm_failure_clock(node);  // over the cap: redraw instead of firing
      return;
    }
    victims.push_back(node);
  }
  trigger_failure(std::move(victims), rack);
}

void LifecycleDriver::trigger_failure(std::vector<net::NodeId> nodes,
                                      bool rack) {
  auto active = std::make_unique<ActiveEvent>();
  active->event.fail_time = sim_.now();
  active->event.nodes = nodes;
  active->event.rack = rack;

  std::vector<storage::BlockId> lost_blocks;
  for (const net::NodeId n : nodes) {
    sim_.cancel(clocks_[static_cast<std::size_t>(n)]);
    clocks_[static_cast<std::size_t>(n)] = sim::EventId{};
    failure_.fail(n);
    master_.on_node_failed(n);
    if (options_.compute_failures) {
      master_.on_compute_failed(n);
      // Other events' in-flight repairs may be reading from or rebuilding
      // onto the newly-dead node.
      for (const auto& prior : events_) {
        if (prior->repair && !prior->repair->done()) {
          prior->repair->on_node_failed(n);
        }
      }
    }
    const auto blocks = archive_layout_.blocks_on_node(n);
    lost_blocks.insert(lost_blocks.end(), blocks.begin(), blocks.end());
  }

  mapreduce::RepairProcess::Options ropts;
  ropts.concurrency = options_.repair_concurrency;
  ropts.block_size = options_.block_size;
  ropts.start_time =
      sim_.now() + rng_.exponential(options_.mean_repair_delay);
  active->event.repair_start = ropts.start_time;
  active->repair = std::make_unique<mapreduce::RepairProcess>(
      sim_, net_, archive_layout_, archive_code_, failure_, ropts,
      rng_.fork());

  const std::size_t index = events_.size();
  active->repair->on_complete = [this, index] { on_repair_complete(index); };
  events_.push_back(std::move(active));
  ++active_failures_;
  events_.back()->repair->start(std::move(lost_blocks));
}

void LifecycleDriver::on_repair_complete(std::size_t event_index) {
  ActiveEvent& active = *events_[event_index];
  active.event.restore_time = sim_.now();
  active.event.blocks_repaired = active.repair->stats().blocks_repaired;
  active.event.blocks_unrecoverable =
      active.repair->stats().blocks_unrecoverable;
  --active_failures_;
  for (const net::NodeId n : active.event.nodes) {
    failure_.restore(n);
    master_.on_node_repaired(n);
    if (!stopped_) arm_failure_clock(n);
  }
}

void LifecycleDriver::stop_at_horizon() {
  stopped_ = true;
  for (auto& clock : clocks_) {
    sim_.cancel(clock);
    clock = sim::EventId{};
  }
}

int LifecycleDriver::repair_backlog() const {
  int backlog = 0;
  for (const auto& active : events_) {
    if (!active->repair->done()) backlog += active->repair->backlog();
  }
  return backlog;
}

int LifecycleDriver::active_failures() const { return active_failures_; }

int LifecycleDriver::failed_node_count() const {
  int count = 0;
  for (const auto& active : events_) {
    if (active->event.restore_time < 0.0) {
      count += static_cast<int>(active->event.nodes.size());
    }
  }
  return count;
}

int LifecycleDriver::blocks_repaired() const {
  int total = 0;
  for (const auto& active : events_) {
    total += active->repair->stats().blocks_repaired;
  }
  return total;
}

int LifecycleDriver::blocks_unrecoverable() const {
  int total = 0;
  for (const auto& active : events_) {
    total += active->repair->stats().blocks_unrecoverable;
  }
  return total;
}

std::vector<FailureEvent> LifecycleDriver::events() const {
  std::vector<FailureEvent> out;
  out.reserve(events_.size());
  for (const auto& active : events_) out.push_back(active->event);
  return out;
}

}  // namespace dfs::cluster
