#include "dfs/cluster/arrivals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dfs::cluster {

ArrivalModel parse_arrival_model(const std::string& name) {
  if (name == "poisson") return ArrivalModel::kPoisson;
  if (name == "pareto") return ArrivalModel::kPareto;
  if (name == "diurnal") return ArrivalModel::kDiurnal;
  throw std::invalid_argument("unknown arrival model: " + name +
                              " (expected poisson | pareto | diurnal)");
}

const char* to_string(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kPareto:
      return "pareto";
    case ArrivalModel::kDiurnal:
      return "diurnal";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(sim::Simulator& simulator,
                               mapreduce::Master& master,
                               const net::Topology& topology,
                               ArrivalOptions options, util::Rng rng)
    : sim_(simulator),
      master_(master),
      topology_(topology),
      options_(options),
      rng_(rng) {
  if (options_.mean_interarrival <= 0.0) {
    throw std::invalid_argument("mean_interarrival must be > 0");
  }
  if (options_.pareto_alpha <= 1.0) {
    throw std::invalid_argument("pareto_alpha must be > 1 (finite mean)");
  }
  if (options_.diurnal_amplitude < 0.0 || options_.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("diurnal_amplitude must be in [0, 1)");
  }
  if (!options_.tenants.empty()) {
    double total_share = 0.0;
    for (const TenantClass& cls : options_.tenants) {
      if (cls.arrival_share <= 0.0) {
        throw std::invalid_argument("tenant arrival_share must be > 0");
      }
      if (cls.job_scale <= 0.0) {
        throw std::invalid_argument("tenant job_scale must be > 0");
      }
      total_share += cls.arrival_share;
    }
    tenant_share_.reserve(options_.tenants.size());
    for (const TenantClass& cls : options_.tenants) {
      tenant_share_.push_back(cls.arrival_share / total_share);
    }
    tenant_issued_.assign(options_.tenants.size(), 0);
  }
}

void ArrivalProcess::start() { schedule_next(); }

util::Seconds ArrivalProcess::next_gap() {
  switch (options_.model) {
    case ArrivalModel::kPoisson:
      return rng_.exponential(options_.mean_interarrival);
    case ArrivalModel::kPareto: {
      // Pareto with mean = mean_interarrival: x_m = mean * (alpha-1)/alpha,
      // inverse CDF x_m * u^{-1/alpha} over u in (0, 1].
      const double alpha = options_.pareto_alpha;
      const double x_m =
          options_.mean_interarrival * (alpha - 1.0) / alpha;
      const double u = 1.0 - rng_.uniform(0.0, 1.0);  // (0, 1]
      return x_m * std::pow(u, -1.0 / alpha);
    }
    case ArrivalModel::kDiurnal: {
      // Candidate gaps at the peak rate; on_candidate() thins them down to
      // the instantaneous rate (Lewis-Shedler), so the accepted stream is an
      // exact inhomogeneous Poisson process.
      const double peak_rate = (1.0 + options_.diurnal_amplitude) /
                               options_.mean_interarrival;
      return rng_.exponential(1.0 / peak_rate);
    }
  }
  return options_.mean_interarrival;
}

void ArrivalProcess::schedule_next() {
  const util::Seconds at = sim_.now() + next_gap();
  // Strictly before the horizon: admission closes *at* the horizon, and a
  // candidate tying with that event would lose the FIFO tie-break.
  if (at >= options_.horizon) return;
  sim_.schedule_at(at, [this] { on_candidate(); });
}

void ArrivalProcess::on_candidate() {
  if (options_.model == ArrivalModel::kDiurnal) {
    const double base_rate = 1.0 / options_.mean_interarrival;
    const double rate =
        base_rate * (1.0 + options_.diurnal_amplitude *
                               std::sin(2.0 * M_PI * sim_.now() /
                                        options_.diurnal_period));
    const double peak_rate = base_rate * (1.0 + options_.diurnal_amplitude);
    if (rng_.uniform(0.0, 1.0) * peak_rate > rate) {
      schedule_next();  // thinned-out candidate
      return;
    }
  }
  submit_job();
  schedule_next();
}

int ArrivalProcess::next_tenant() {
  // Largest deficit first: class c is owed share_c * (jobs so far + 1) and
  // has been issued tenant_issued_[c]. Deterministic — no RNG draw — and
  // exact in proportion over any window; lowest class id breaks ties.
  const double target = static_cast<double>(submitted_) + 1.0;
  int best = 0;
  double best_deficit = 0.0;
  for (std::size_t c = 0; c < tenant_share_.size(); ++c) {
    const double deficit =
        tenant_share_[c] * target - static_cast<double>(tenant_issued_[c]);
    if (c == 0 || deficit > best_deficit) {
      best = static_cast<int>(c);
      best_deficit = deficit;
    }
  }
  ++tenant_issued_[static_cast<std::size_t>(best)];
  return best;
}

void ArrivalProcess::submit_job() {
  workload::SimJobOptions opts = options_.job;
  opts.submit_time = sim_.now();
  int tenant = 0;
  if (!options_.tenants.empty()) {
    tenant = next_tenant();
    const TenantClass& cls =
        options_.tenants[static_cast<std::size_t>(tenant)];
    if (cls.job_scale != 1.0) {
      // Scale the input in whole stripes so the layout stays legal.
      const double blocks =
          static_cast<double>(opts.num_blocks) * cls.job_scale;
      const int stripes = std::max(
          1, static_cast<int>(std::lround(blocks / opts.k)));
      opts.num_blocks = stripes * opts.k;
    }
  }
  mapreduce::JobInput job =
      workload::make_sim_job(next_job_id_++, opts, topology_, rng_);
  job.spec.tenant = tenant;
  master_.submit(job);
  ++submitted_;
}

}  // namespace dfs::cluster
