#pragma once

#include <cstdint>
#include <memory>

#include "dfs/cluster/arrivals.h"
#include "dfs/cluster/lifecycle.h"
#include "dfs/cluster/metrics.h"
#include "dfs/core/admission.h"
#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/config.h"
#include "dfs/mapreduce/master.h"
#include "dfs/mapreduce/speed_model.h"
#include "dfs/net/network.h"
#include "dfs/runner/thread_pool.h"
#include "dfs/sim/simulator.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"

namespace dfs::cluster {

/// Knobs of one long-horizon cluster run. Defaults give a 2-hour window on
/// the paper's §V-B cluster at roughly 70% map-slot load with a handful of
/// failure/repair cycles.
struct ClusterOptions {
  mapreduce::ClusterConfig config;  ///< default: §V-B cluster (see .cpp)
  ArrivalOptions arrivals;
  LifecycleOptions lifecycle;
  /// Admission + failure-injection window; jobs in flight at the horizon
  /// still drain, so the simulation usually ends a little after it.
  util::Seconds horizon = 2.0 * 3600.0;
  /// Jobs submitted before the warm-up cutoff are excluded from the
  /// steady-state statistics (queue fill-up transient).
  util::Seconds warmup = 600.0;
  util::Seconds sample_interval = 60.0;
  /// The cluster's archival data: a random rack-constrained (archive_n,
  /// archive_k) layout whose per-node share is what a repair rebuilds. Its
  /// size sets the repair traffic volume per failure.
  int archive_native_blocks = 600;
  int archive_n = 20;
  int archive_k = 15;
  storage::SourceSelection source_selection =
      storage::SourceSelection::kRandom;
  /// Per-slave speed profile, materialized into config.node_time_scale at
  /// construction. The uniform default materializes to the empty vector and
  /// leaves any explicitly-set config.node_time_scale untouched, so it is
  /// byte-identical to never having had a speed model.
  mapreduce::SpeedModel speed;
  /// Job-queue ordering policy: "fifo" (the default — no policy object is
  /// even installed), "fair", or "fair:w0,w1,..." per-tenant weights.
  std::string admission = "fifo";
  /// Worker threads for the network's fair-share component recompute. At 1
  /// (the default) everything runs inline; above 1 the simulation owns a
  /// dedicated ThreadPool and independent congestion components are water-
  /// filled concurrently. Output is byte-identical at any setting — the
  /// components are disjoint, so only wall-clock changes.
  int net_jobs = 1;

  ClusterOptions();  ///< fills config/arrivals/lifecycle with §V-B defaults
};

/// Online long-horizon cluster lifecycle simulation: an open-loop job
/// stream, mid-run failures and repairs, and steady-state latency metrics —
/// the regime the snapshot experiments (MapReduceSimulation) cannot reach.
/// Owns every component and keeps them consistent: one Simulator, one
/// flow-level Network carrying job + shuffle + repair traffic, one Master in
/// online-admission mode, and one shared time-varying FailureScenario.
class ClusterSimulation {
 public:
  ClusterSimulation(ClusterOptions options, core::Scheduler& scheduler,
                    std::uint64_t seed);

  /// Runs to the horizon plus drain and returns the collected result.
  /// Throws std::runtime_error if the run stalls.
  ClusterResult run();

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }
  mapreduce::Master& master() { return *master_; }
  LifecycleDriver& lifecycle() { return *lifecycle_; }
  const storage::FailureScenario& failure() const { return failure_; }

 private:
  ClusterOptions opts_;
  util::Rng rng_;
  sim::Simulator sim_;
  storage::FailureScenario failure_;  ///< shared time-varying health view
  /// Dedicated pool for the network's component recompute (never shared
  /// with a seed-sweep pool: Network::wait_idle on a pool whose worker is
  /// running this simulation would deadlock). Null when net_jobs <= 1.
  std::unique_ptr<runner::ThreadPool> net_pool_;
  std::unique_ptr<net::Network> net_;
  /// Owns the master's admission policy; null for FIFO (no policy at all).
  std::unique_ptr<core::AdmissionPolicy> admission_policy_;
  std::unique_ptr<mapreduce::Master> master_;
  std::shared_ptr<const storage::StorageLayout> archive_layout_;
  std::shared_ptr<const ec::ErasureCode> archive_code_;
  std::unique_ptr<LifecycleDriver> lifecycle_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<ClusterSampler> sampler_;
  bool ran_ = false;
};

}  // namespace dfs::cluster
