#include "dfs/cluster/metrics.h"

#include <algorithm>
#include <ostream>

#include "dfs/util/stats.h"

namespace dfs::cluster {

ClusterSampler::ClusterSampler(sim::Simulator& simulator, net::Network& network,
                               const mapreduce::Master& master,
                               const LifecycleDriver& lifecycle,
                               util::Seconds interval,
                               std::function<bool()> keep_going)
    : sim_(simulator),
      net_(network),
      master_(master),
      lifecycle_(lifecycle),
      interval_(interval),
      keep_going_(std::move(keep_going)) {
  prev_busy_.assign(static_cast<std::size_t>(net_.topology().num_racks()),
                    0.0);
}

void ClusterSampler::start() {
  prev_time_ = sim_.now();
  sim_.schedule_periodic(interval_, interval_, [this] {
    sample();
    return keep_going_();
  });
}

void ClusterSampler::sample() {
  TimelineSample s;
  s.time = sim_.now();
  s.jobs_in_system = static_cast<int>(master_.jobs_submitted()) -
                     static_cast<int>(master_.jobs_completed());
  s.failed_nodes = lifecycle_.failed_node_count();
  s.repair_backlog = lifecycle_.repair_backlog();
  const double elapsed = sim_.now() - prev_time_;
  double busy_sum = 0.0;
  for (net::RackId r = 0; r < net_.topology().num_racks(); ++r) {
    const double busy = net_.rack_down_busy_time(r);
    busy_sum += busy - prev_busy_[static_cast<std::size_t>(r)];
    prev_busy_[static_cast<std::size_t>(r)] = busy;
  }
  s.rack_down_utilization =
      elapsed > 0.0
          ? busy_sum / (elapsed * net_.topology().num_racks())
          : 0.0;
  prev_time_ = sim_.now();
  samples_.push_back(s);
}

SteadyStateSummary summarize_steady_state(
    const mapreduce::RunResult& run, const std::vector<FailureEvent>& failures,
    const std::vector<TimelineSample>& timeline, util::Seconds warmup,
    util::Seconds horizon) {
  SteadyStateSummary s;
  s.warmup = warmup;
  s.horizon = horizon;
  s.jobs_submitted = static_cast<int>(run.jobs.size());
  s.data_loss = run.data_loss;

  std::vector<double> latencies, runtimes;
  long degraded = 0, total_tasks = 0;
  for (const auto& j : run.jobs) {
    if (j.failed) {
      ++s.jobs_failed;
      continue;  // an abort is not a completion and has no useful latency
    }
    if (j.finish_time >= 0.0) ++s.jobs_completed;
    if (j.submit_time < warmup || j.submit_time > horizon ||
        j.finish_time < 0.0) {
      continue;
    }
    ++s.jobs_measured;
    latencies.push_back(j.latency());
    runtimes.push_back(j.runtime());
    degraded += j.degraded_tasks;
    total_tasks += j.local_tasks + j.remote_tasks + j.degraded_tasks;
  }
  if (!latencies.empty()) {
    s.latency_p50 = util::percentile(latencies, 50.0);
    s.latency_p95 = util::percentile(latencies, 95.0);
    s.latency_p99 = util::percentile(latencies, 99.0);
    s.latency_mean = util::summarize(latencies).mean;
    s.mean_job_runtime = util::summarize(runtimes).mean;
  }
  if (total_tasks > 0) {
    s.degraded_task_fraction =
        static_cast<double>(degraded) / static_cast<double>(total_tasks);
  }

  s.failures_injected = static_cast<int>(failures.size());
  for (const auto& f : failures) {
    if (f.rack) ++s.rack_failures;
    s.blocks_repaired += f.blocks_repaired;
    s.blocks_unrecoverable += f.blocks_unrecoverable;
  }
  if (s.blocks_unrecoverable > 0) s.data_loss = true;

  double util_sum = 0.0;
  int util_count = 0;
  for (const auto& t : timeline) {
    s.max_repair_backlog = std::max(s.max_repair_backlog, t.repair_backlog);
    if (t.time >= warmup && t.time <= horizon) {
      util_sum += t.rack_down_utilization;
      ++util_count;
    }
  }
  if (util_count > 0) s.mean_rack_down_utilization = util_sum / util_count;
  return s;
}

void write_cluster_jsonl(std::ostream& os, const ClusterResult& result) {
  const SteadyStateSummary& s = result.summary;
  os << "{\"type\":\"summary\",\"warmup\":" << s.warmup
     << ",\"horizon\":" << s.horizon
     << ",\"jobs_submitted\":" << s.jobs_submitted
     << ",\"jobs_completed\":" << s.jobs_completed;
  // Gated so fault-off runs stay byte-identical to pre-fault-layer output.
  if (s.jobs_failed > 0) os << ",\"jobs_failed\":" << s.jobs_failed;
  os << ",\"jobs_measured\":" << s.jobs_measured
     << ",\"latency_p50\":" << s.latency_p50
     << ",\"latency_p95\":" << s.latency_p95
     << ",\"latency_p99\":" << s.latency_p99
     << ",\"latency_mean\":" << s.latency_mean
     << ",\"mean_job_runtime\":" << s.mean_job_runtime
     << ",\"degraded_task_fraction\":" << s.degraded_task_fraction
     << ",\"failures_injected\":" << s.failures_injected
     << ",\"rack_failures\":" << s.rack_failures
     << ",\"blocks_repaired\":" << s.blocks_repaired
     << ",\"blocks_unrecoverable\":" << s.blocks_unrecoverable
     << ",\"max_repair_backlog\":" << s.max_repair_backlog
     << ",\"mean_rack_down_utilization\":" << s.mean_rack_down_utilization
     << ",\"data_loss\":" << (s.data_loss ? 1 : 0) << "}\n";
  // Gated behind the tool flag (--net-stats) so default output stays
  // byte-identical to earlier versions, like jobs_failed above.
  if (result.report_net_stats) {
    const net::Network::Stats& n = result.net_stats;
    os << "{\"type\":\"net_stats\",\"flows_started\":" << n.flows_started
       << ",\"flows_completed\":" << n.flows_completed
       << ",\"flows_cancelled\":" << n.flows_cancelled
       << ",\"fast_paths\":" << n.fast_paths
       << ",\"full_recomputes\":" << n.full_recomputes
       << ",\"batched_recomputes\":" << n.batched_recomputes
       << ",\"component_recomputes\":" << n.component_recomputes
       << ",\"classes_active\":" << n.classes_active
       << ",\"bytes_delivered\":" << n.bytes_delivered << "}\n";
  }
  for (const auto& f : result.failures) {
    os << "{\"type\":\"failure\",\"fail_time\":" << f.fail_time
       << ",\"repair_start\":" << f.repair_start
       << ",\"restore_time\":" << f.restore_time << ",\"rack\":"
       << (f.rack ? 1 : 0) << ",\"nodes\":[";
    for (std::size_t i = 0; i < f.nodes.size(); ++i) {
      if (i > 0) os << ',';
      os << f.nodes[i];
    }
    os << "],\"blocks_repaired\":" << f.blocks_repaired
       << ",\"blocks_unrecoverable\":" << f.blocks_unrecoverable << "}\n";
  }
  for (const auto& t : result.timeline) {
    os << "{\"type\":\"sample\",\"time\":" << t.time
       << ",\"jobs_in_system\":" << t.jobs_in_system
       << ",\"failed_nodes\":" << t.failed_nodes
       << ",\"repair_backlog\":" << t.repair_backlog
       << ",\"rack_down_utilization\":" << t.rack_down_utilization << "}\n";
  }
  for (const auto& j : result.run.jobs) {
    if (j.failed || j.submit_time < s.warmup || j.submit_time > s.horizon ||
        j.finish_time < 0.0) {
      continue;
    }
    os << "{\"type\":\"job\",\"id\":" << j.id << ",\"submit\":"
       << j.submit_time << ",\"finish\":" << j.finish_time
       << ",\"latency\":" << j.latency() << ",\"runtime\":" << j.runtime()
       << ",\"local\":" << j.local_tasks << ",\"remote\":" << j.remote_tasks
       << ",\"degraded\":" << j.degraded_tasks << "}\n";
  }
}

void write_timeline_csv(std::ostream& os, const ClusterResult& result) {
  os << "time,jobs_in_system,failed_nodes,repair_backlog,"
        "rack_down_utilization\n";
  for (const auto& t : result.timeline) {
    os << t.time << ',' << t.jobs_in_system << ',' << t.failed_nodes << ','
       << t.repair_backlog << ',' << t.rack_down_utilization << '\n';
  }
}

}  // namespace dfs::cluster
