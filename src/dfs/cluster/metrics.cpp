#include "dfs/cluster/metrics.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "dfs/util/jsonl.h"
#include "dfs/util/streaming_quantile.h"

namespace dfs::cluster {

ClusterSampler::ClusterSampler(sim::Simulator& simulator, net::Network& network,
                               const mapreduce::Master& master,
                               const LifecycleDriver& lifecycle,
                               util::Seconds interval,
                               std::function<bool()> keep_going)
    : sim_(simulator),
      net_(network),
      master_(master),
      lifecycle_(lifecycle),
      interval_(interval),
      keep_going_(std::move(keep_going)) {
  prev_busy_.assign(static_cast<std::size_t>(net_.topology().num_racks()),
                    0.0);
}

void ClusterSampler::start() {
  prev_time_ = sim_.now();
  sim_.schedule_periodic(interval_, interval_, [this] {
    sample();
    return keep_going_();
  });
}

void ClusterSampler::sample() {
  TimelineSample s;
  s.time = sim_.now();
  s.jobs_in_system = static_cast<int>(master_.jobs_submitted()) -
                     static_cast<int>(master_.jobs_completed());
  s.failed_nodes = lifecycle_.failed_node_count();
  s.repair_backlog = lifecycle_.repair_backlog();
  const double elapsed = sim_.now() - prev_time_;
  double busy_sum = 0.0;
  for (net::RackId r = 0; r < net_.topology().num_racks(); ++r) {
    const double busy = net_.rack_down_busy_time(r);
    busy_sum += busy - prev_busy_[static_cast<std::size_t>(r)];
    prev_busy_[static_cast<std::size_t>(r)] = busy;
  }
  s.rack_down_utilization =
      elapsed > 0.0
          ? busy_sum / (elapsed * net_.topology().num_racks())
          : 0.0;
  prev_time_ = sim_.now();
  samples_.push_back(s);
}

SteadyStateSummary summarize_steady_state(
    const mapreduce::RunResult& run, const std::vector<FailureEvent>& failures,
    const std::vector<TimelineSample>& timeline, util::Seconds warmup,
    util::Seconds horizon) {
  SteadyStateSummary s;
  s.warmup = warmup;
  s.horizon = horizon;
  s.jobs_submitted = static_cast<int>(run.jobs.size());
  s.data_loss = run.data_loss;

  // Streaming accumulators: bounded memory at the 10k-slave tier (where
  // task records run to the millions), byte-identical exact percentiles at
  // paper scale (the small-sample regime never leaves the exact buffer).
  util::StreamingQuantile latencies({50.0, 95.0, 99.0});
  util::StreamingQuantile runtimes({});
  long degraded = 0, total_tasks = 0;
  for (const auto& j : run.jobs) {
    if (j.failed) {
      ++s.jobs_failed;
      continue;  // an abort is not a completion and has no useful latency
    }
    if (j.finish_time >= 0.0) ++s.jobs_completed;
    if (j.submit_time < warmup || j.submit_time > horizon ||
        j.finish_time < 0.0) {
      continue;
    }
    ++s.jobs_measured;
    latencies.add(j.latency());
    runtimes.add(j.runtime());
    degraded += j.degraded_tasks;
    total_tasks += j.local_tasks + j.remote_tasks + j.degraded_tasks;
  }
  s.latency_samples = static_cast<int>(latencies.count());
  if (!latencies.empty()) {
    s.latency_p50 = latencies.quantile(50.0);
    s.latency_p95 = latencies.quantile(95.0);
    s.latency_p99 = latencies.quantile(99.0);
    s.latency_mean = latencies.mean();
    s.mean_job_runtime = runtimes.mean();
  }
  if (total_tasks > 0) {
    s.degraded_task_fraction =
        static_cast<double>(degraded) / static_cast<double>(total_tasks);
  }

  // Per-tenant latency breakdown — materialized only when some job carries
  // a non-zero class, so single-tenant summaries stay structurally
  // identical to older versions (the breakdown would just repeat the
  // overall percentiles).
  int max_tenant = 0;
  for (const auto& j : run.jobs) max_tenant = std::max(max_tenant, j.tenant);
  if (max_tenant > 0) {
    std::vector<util::StreamingQuantile> per_tenant;
    per_tenant.reserve(static_cast<std::size_t>(max_tenant) + 1);
    std::vector<int> per_tenant_measured(
        static_cast<std::size_t>(max_tenant) + 1, 0);
    for (int c = 0; c <= max_tenant; ++c) {
      per_tenant.emplace_back(std::vector<double>{50.0, 95.0, 99.0});
    }
    for (const auto& j : run.jobs) {
      if (j.failed || j.submit_time < warmup || j.submit_time > horizon ||
          j.finish_time < 0.0) {
        continue;
      }
      const auto c = static_cast<std::size_t>(j.tenant);
      ++per_tenant_measured[c];
      per_tenant[c].add(j.latency());
    }
    s.tenants.reserve(per_tenant.size());
    for (int c = 0; c <= max_tenant; ++c) {
      const auto& q = per_tenant[static_cast<std::size_t>(c)];
      SteadyStateSummary::TenantSummary t;
      t.tenant = c;
      t.jobs_measured = per_tenant_measured[static_cast<std::size_t>(c)];
      t.latency_samples = static_cast<int>(q.count());
      if (!q.empty()) {
        t.latency_p50 = q.quantile(50.0);
        t.latency_p95 = q.quantile(95.0);
        t.latency_p99 = q.quantile(99.0);
        t.latency_mean = q.mean();
      }
      s.tenants.push_back(t);
    }
  }

  // Recovery volume of the same measurement window: block equivalents
  // actually fetched per recoverable degraded read.
  std::set<mapreduce::JobId> measured;
  for (const auto& j : run.jobs) {
    if (!j.failed && j.finish_time >= 0.0 && j.submit_time >= warmup &&
        j.submit_time <= horizon) {
      measured.insert(j.id);
    }
  }
  double fetched = 0.0;
  int degraded_reads = 0;
  util::StreamingQuantile read_times({50.0, 99.0, 99.9});
  for (const auto& t : run.map_tasks) {
    if (t.kind != mapreduce::MapTaskKind::kDegraded || t.unrecoverable ||
        measured.count(t.job) == 0) {
      continue;
    }
    for (const auto& src : t.sources) fetched += src.fraction;
    ++degraded_reads;
    if (t.fetch_done_time >= 0.0) read_times.add(t.degraded_read_time());
  }
  if (degraded_reads > 0) {
    s.mean_degraded_fetch_blocks = fetched / degraded_reads;
  }

  // Degraded-read tail latency (per task, then per supervised fetch). The
  // per-task tail is well defined for every run; the per-fetch tail only has
  // samples when the fetch supervisor ran.
  s.degraded_read_samples = static_cast<int>(read_times.count());
  if (!read_times.empty()) {
    s.degraded_read_p50 = read_times.quantile(50.0);
    s.degraded_read_p99 = read_times.quantile(99.0);
    s.degraded_read_p999 = read_times.quantile(99.9);
  }
  util::StreamingQuantile fetch_times({50.0, 99.0, 99.9});
  for (const auto& f : run.degraded_fetches) {
    if (f.outcome != mapreduce::FetchOutcome::kCompleted) continue;
    if (f.start < warmup || f.start > horizon) continue;
    fetch_times.add(f.latency());
  }
  s.fetch_samples = static_cast<int>(fetch_times.count());
  if (!fetch_times.empty()) {
    s.fetch_p50 = fetch_times.quantile(50.0);
    s.fetch_p99 = fetch_times.quantile(99.0);
    s.fetch_p999 = fetch_times.quantile(99.9);
  }
  s.hedge = run.hedge;

  s.failures_injected = static_cast<int>(failures.size());
  for (const auto& f : failures) {
    if (f.rack) ++s.rack_failures;
    s.blocks_repaired += f.blocks_repaired;
    s.blocks_unrecoverable += f.blocks_unrecoverable;
  }
  if (s.blocks_unrecoverable > 0) s.data_loss = true;

  double util_sum = 0.0;
  int util_count = 0;
  for (const auto& t : timeline) {
    s.max_repair_backlog = std::max(s.max_repair_backlog, t.repair_backlog);
    if (t.time >= warmup && t.time <= horizon) {
      util_sum += t.rack_down_utilization;
      ++util_count;
    }
  }
  if (util_count > 0) s.mean_rack_down_utilization = util_sum / util_count;
  return s;
}

void write_cluster_jsonl(std::ostream& os, const ClusterResult& result) {
  const SteadyStateSummary& s = result.summary;
  util::JsonlWriter w(os);
  w.begin("summary")
      .field("warmup", s.warmup)
      .field("horizon", s.horizon)
      .field("jobs_submitted", s.jobs_submitted)
      .field("jobs_completed", s.jobs_completed);
  // Gated so fault-off runs stay byte-identical to pre-fault-layer output.
  if (s.jobs_failed > 0) w.field("jobs_failed", s.jobs_failed);
  w.field("jobs_measured", s.jobs_measured)
      .field("latency_samples", s.latency_samples)
      .field("latency_p50", s.latency_p50)
      .field("latency_p95", s.latency_p95)
      .field("latency_p99", s.latency_p99)
      .field("latency_mean", s.latency_mean)
      .field("mean_job_runtime", s.mean_job_runtime)
      .field("degraded_task_fraction", s.degraded_task_fraction);
  // Gated so default output stays byte-identical to pre-RecoveryPlan runs.
  if (result.report_recovery_stats) {
    w.field("mean_degraded_fetch_blocks", s.mean_degraded_fetch_blocks);
  }
  w.field("failures_injected", s.failures_injected)
      .field("rack_failures", s.rack_failures)
      .field("blocks_repaired", s.blocks_repaired)
      .field("blocks_unrecoverable", s.blocks_unrecoverable)
      .field("max_repair_backlog", s.max_repair_backlog)
      .field("mean_rack_down_utilization", s.mean_rack_down_utilization)
      .field("data_loss", s.data_loss ? 1 : 0)
      .end();
  // Gated behind the tool flag (--net-stats) so default output stays
  // byte-identical to earlier versions, like jobs_failed above.
  if (result.report_net_stats) {
    w.begin("net_stats");
    net::append_net_stats(w, result.net_stats);
    w.end();
  }
  // Gated on the fetch supervisor having run, so supervisor-off output
  // stays byte-identical (the strictly-additive contract).
  if (result.report_hedging) {
    w.begin("hedging")
        .field("degraded_read_p50", s.degraded_read_p50)
        .field("degraded_read_p99", s.degraded_read_p99)
        .field("degraded_read_p999", s.degraded_read_p999)
        .field("degraded_read_samples", s.degraded_read_samples)
        .field("fetch_p50", s.fetch_p50)
        .field("fetch_p99", s.fetch_p99)
        .field("fetch_p999", s.fetch_p999)
        .field("fetch_samples", s.fetch_samples)
        .field("reads_started", static_cast<long>(s.hedge.reads_started))
        .field("reads_completed", static_cast<long>(s.hedge.reads_completed))
        .field("reads_failed", static_cast<long>(s.hedge.reads_failed))
        .field("fetches_launched",
               static_cast<long>(s.hedge.fetches_launched))
        .field("hedges_launched", static_cast<long>(s.hedge.hedges_launched))
        .field("losers_cancelled",
               static_cast<long>(s.hedge.losers_cancelled))
        .field("fetch_timeouts", static_cast<long>(s.hedge.fetch_timeouts))
        .field("transient_failures",
               static_cast<long>(s.hedge.transient_failures))
        .field("fetch_retries", static_cast<long>(s.hedge.fetch_retries))
        .field("fallback_replans",
               static_cast<long>(s.hedge.fallback_replans))
        .field("last_resort_reads",
               static_cast<long>(s.hedge.last_resort_reads))
        .end();
  }
  // Gated on the arrival stream having tenant classes, so single-tenant
  // output stays byte-identical (the strictly-additive contract).
  if (result.report_tenants) {
    for (const auto& t : s.tenants) {
      w.begin("tenant")
          .field("tenant", t.tenant)
          .field("jobs_measured", t.jobs_measured)
          .field("latency_samples", t.latency_samples)
          .field("latency_p50", t.latency_p50)
          .field("latency_p95", t.latency_p95)
          .field("latency_p99", t.latency_p99)
          .field("latency_mean", t.latency_mean)
          .end();
    }
  }
  for (const auto& f : result.failures) {
    w.begin("failure")
        .field("fail_time", f.fail_time)
        .field("repair_start", f.repair_start)
        .field("restore_time", f.restore_time)
        .field("rack", f.rack ? 1 : 0)
        .array("nodes", f.nodes)
        .field("blocks_repaired", f.blocks_repaired)
        .field("blocks_unrecoverable", f.blocks_unrecoverable)
        .end();
  }
  for (const auto& t : result.timeline) {
    w.begin("sample")
        .field("time", t.time)
        .field("jobs_in_system", t.jobs_in_system)
        .field("failed_nodes", t.failed_nodes)
        .field("repair_backlog", t.repair_backlog)
        .field("rack_down_utilization", t.rack_down_utilization)
        .end();
  }
  for (const auto& j : result.run.jobs) {
    if (j.failed || j.submit_time < s.warmup || j.submit_time > s.horizon ||
        j.finish_time < 0.0) {
      continue;
    }
    w.begin("job").field("id", j.id);
    // Gated like the "tenant" records: class tags on the job lines only
    // exist for multi-tenant streams.
    if (result.report_tenants) w.field("tenant", j.tenant);
    w.field("submit", j.submit_time)
        .field("finish", j.finish_time)
        .field("latency", j.latency())
        .field("runtime", j.runtime())
        .field("local", j.local_tasks)
        .field("remote", j.remote_tasks)
        .field("degraded", j.degraded_tasks)
        .end();
  }
}

void write_timeline_csv(std::ostream& os, const ClusterResult& result) {
  os << "time,jobs_in_system,failed_nodes,repair_backlog,"
        "rack_down_utilization\n";
  for (const auto& t : result.timeline) {
    os << t.time << ',' << t.jobs_in_system << ',' << t.failed_nodes << ','
       << t.repair_backlog << ',' << t.rack_down_utilization << '\n';
  }
}

}  // namespace dfs::cluster
