#include "dfs/cluster/simulation.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "dfs/ec/registry.h"
#include "dfs/workload/scenarios.h"

namespace dfs::cluster {

ClusterOptions::ClusterOptions() {
  config = workload::default_sim_cluster();
  // Lighter than the paper's §V-B job (1440 blocks) so the default stream
  // keeps the cluster moderately loaded at one submission per minute: 240
  // maps of ~20 s each is ~30 s of work for the 160 map slots, plus shuffle
  // — roughly 40% network utilization, queueing but not saturation.
  arrivals.job.num_blocks = 240;
  arrivals.job.num_reducers = 10;
}

ClusterSimulation::ClusterSimulation(ClusterOptions options,
                                     core::Scheduler& scheduler,
                                     std::uint64_t seed)
    : opts_(std::move(options)), rng_(seed) {
  // ClusterOptions::horizon is authoritative for every component window.
  opts_.arrivals.horizon = opts_.horizon;
  opts_.lifecycle.horizon = opts_.horizon;
  opts_.lifecycle.block_size = opts_.config.block_size;
  opts_.lifecycle.compute_failures = opts_.config.fault.compute_failures;

  // Materialize the speed profile before the master snapshots the config.
  // Uniform materializes to the empty vector: skip the assignment entirely
  // so an explicitly-set node_time_scale survives and inert runs stay
  // byte-identical.
  if (!opts_.speed.uniform()) {
    opts_.config.node_time_scale =
        opts_.speed.materialize(opts_.config.topology.num_nodes());
  }

  net_ = std::make_unique<net::Network>(sim_, opts_.config.topology,
                                        opts_.config.links,
                                        opts_.config.contention);
  if (opts_.net_jobs > 1) {
    net_pool_ = std::make_unique<runner::ThreadPool>(opts_.net_jobs);
    net_->set_thread_pool(net_pool_.get());
  }
  master_ = std::make_unique<mapreduce::Master>(sim_, *net_, opts_.config,
                                                failure_, scheduler, rng_,
                                                opts_.source_selection);
  master_->set_admission_open(true);
  // FIFO keeps the null fast path (no policy call per heartbeat); anything
  // else is built by the factory and installed for the master's lifetime.
  if (!opts_.admission.empty() && opts_.admission != "fifo") {
    admission_policy_ = core::make_admission_policy(opts_.admission);
    master_->set_admission_policy(admission_policy_.get());
  }

  // The cluster's archival data: what a failed node actually loses and a
  // repair actually rebuilds. Shares the network with the job traffic.
  archive_layout_ = std::make_shared<const storage::StorageLayout>(
      storage::random_rack_constrained_layout(
          opts_.archive_native_blocks, opts_.archive_n, opts_.archive_k,
          opts_.config.topology, rng_));
  archive_code_ = ec::make_code_from_spec(
      "rs:" + std::to_string(opts_.archive_n) + "," +
      std::to_string(opts_.archive_k));
  if (!archive_code_) {
    throw std::invalid_argument("bad archive code parameters");
  }

  lifecycle_ = std::make_unique<LifecycleDriver>(
      sim_, *net_, *master_, failure_, *archive_layout_, *archive_code_,
      opts_.lifecycle, rng_.fork());
  arrivals_ = std::make_unique<ArrivalProcess>(
      sim_, *master_, opts_.config.topology, opts_.arrivals, rng_.fork());
  sampler_ = std::make_unique<ClusterSampler>(
      sim_, *net_, *master_, *lifecycle_, opts_.sample_interval, [this] {
        // Keep sampling through the drain tail: until admission has closed,
        // the queue has emptied, and the last repair has finished.
        return sim_.now() < opts_.horizon || !master_->all_jobs_done() ||
               !lifecycle_->idle();
      });
}

ClusterResult ClusterSimulation::run() {
  if (ran_) throw std::logic_error("ClusterSimulation::run() called twice");
  ran_ = true;

  master_->start();
  arrivals_->start();
  lifecycle_->start();
  sampler_->start();
  sim_.schedule_at(opts_.horizon, [this] { master_->finish_admission(); });

  sim_.run();

  if (!master_->all_jobs_done()) {
    throw std::runtime_error(
        "cluster simulation drained its event queue with unfinished jobs "
        "(scheduling starvation bug)");
  }

  ClusterResult result;
  result.run = master_->take_result();
  result.failures = lifecycle_->events();
  result.timeline = sampler_->samples();
  result.net_stats = net_->stats();
  result.report_hedging = opts_.config.fetch_supervised();
  result.report_tenants = !opts_.arrivals.tenants.empty();
  result.summary = summarize_steady_state(result.run, result.failures,
                                          result.timeline, opts_.warmup,
                                          opts_.horizon);
  return result;
}

}  // namespace dfs::cluster
