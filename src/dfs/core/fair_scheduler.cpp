#include "dfs/core/fair_scheduler.h"

#include <algorithm>

namespace dfs::core {

FairScheduler::FairScheduler(bool degraded_first)
    : degraded_first_(degraded_first) {}

std::string FairScheduler::name() const {
  return degraded_first_ ? "FAIR+DF" : "FAIR";
}

std::vector<JobId> FairScheduler::fair_order(
    const SchedulerContext& ctx) const {
  std::vector<JobId> jobs = ctx.running_jobs();
  std::stable_sort(jobs.begin(), jobs.end(), [&ctx](JobId a, JobId b) {
    return ctx.running_maps(a) < ctx.running_maps(b);
  });
  return jobs;
}

void FairScheduler::on_heartbeat(SchedulerContext& ctx, NodeId slave) {
  bool degraded_task_assigned = false;
  for (const JobId job : fair_order(ctx)) {
    if (degraded_first_ && !degraded_task_assigned &&
        ctx.free_map_slots(slave) > 0 && ctx.has_unassigned_degraded(job)) {
      // Algorithm 2's pacing rule, m/M >= m_d/M_d, via cross-multiplication.
      const long m = ctx.launched_maps(job);
      const long big_m = ctx.total_maps(job);
      const long md = ctx.launched_degraded(job);
      const long big_md = ctx.total_degraded(job);
      if (big_m > 0 && big_md > 0 && m * big_md >= md * big_m) {
        ctx.assign_degraded(job, slave);
        degraded_task_assigned = true;
      }
    }
    while (ctx.free_map_slots(slave) > 0) {
      if (ctx.has_unassigned_local(job, slave)) {
        ctx.assign_local(job, slave);
      } else if (ctx.has_unassigned_remote(job, slave)) {
        ctx.assign_remote(job, slave);
      } else if (!degraded_first_ && ctx.has_unassigned_degraded(job)) {
        ctx.assign_degraded(job, slave);
      } else {
        break;
      }
    }
  }
}

}  // namespace dfs::core
