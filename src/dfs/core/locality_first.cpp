#include "dfs/core/locality_first.h"

namespace dfs::core {

void LocalityFirstScheduler::on_heartbeat(SchedulerContext& ctx,
                                          NodeId slave) {
  for (const JobId job : ctx.running_jobs()) {
    while (ctx.free_map_slots(slave) > 0) {
      if (ctx.has_unassigned_local(job, slave)) {
        ctx.assign_local(job, slave);
      } else if (ctx.has_unassigned_remote(job, slave)) {
        ctx.assign_remote(job, slave);
      } else if (ctx.has_unassigned_degraded(job)) {
        ctx.assign_degraded(job, slave);
      } else {
        break;  // job has nothing left to hand out; try the next job
      }
    }
  }
}

}  // namespace dfs::core
