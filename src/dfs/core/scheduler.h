#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfs/net/topology.h"
#include "dfs/util/units.h"

namespace dfs::core {

using JobId = int;
using net::NodeId;
using net::RackId;

/// Non-owning view over the context's running-jobs scratch buffer.
///
/// The underlying storage is recycled: it stays valid only until the next
/// running_jobs() call or the next assignment-state mutation on the same
/// context. Debug builds carry a generation snapshot and assert on every
/// access through a stale view; release builds compile down to a bare
/// pointer. Copy into a std::vector (the implicit conversion below) before
/// mutating or retaining the list.
class RunningJobsView {
 public:
#ifndef NDEBUG
  RunningJobsView(const std::vector<JobId>& jobs,
                  const std::uint64_t* generation)
      : jobs_(&jobs), generation_(generation), snapshot_(*generation) {}
#else
  explicit RunningJobsView(const std::vector<JobId>& jobs) : jobs_(&jobs) {}
#endif

  std::vector<JobId>::const_iterator begin() const {
    check();
    return jobs_->begin();
  }
  std::vector<JobId>::const_iterator end() const {
    check();
    return jobs_->end();
  }
  std::size_t size() const {
    check();
    return jobs_->size();
  }
  bool empty() const {
    check();
    return jobs_->empty();
  }
  JobId operator[](std::size_t i) const {
    check();
    return (*jobs_)[i];
  }

  /// Lets `std::vector<JobId> copy = ctx.running_jobs();` snapshot the list.
  operator const std::vector<JobId>&() const {  // NOLINT(google-explicit-constructor)
    check();
    return *jobs_;
  }

 private:
  void check() const {
#ifndef NDEBUG
    assert(*generation_ == snapshot_ &&
           "stale running_jobs() view: the scratch buffer was recycled by a "
           "later running_jobs() call or assignment mutation");
#endif
  }

  const std::vector<JobId>* jobs_;
#ifndef NDEBUG
  const std::uint64_t* generation_;
  std::uint64_t snapshot_;
#endif
};

/// The master's view offered to a scheduling policy at each heartbeat.
///
/// This mirrors what Hadoop's JobTracker exposes to a TaskScheduler plugin:
/// the FIFO job list, slot availability on the heartbeating slave, the
/// job's unassigned task pools partitioned the way Algorithms 1-3 need them
/// (local / remote / degraded), the launch counters that drive the
/// degraded-first pacing rule, and the cluster statistics behind the
/// enhanced heuristics.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// Current simulated time (schedulers may keep time-based state, e.g.
  /// delay scheduling's per-job skip timers).
  virtual util::Seconds now() const = 0;

  /// Jobs with unfinished map work, ordered by the context's admission
  /// policy (FIFO submission order by default). The view is valid until the
  /// next running_jobs() call or assignment mutation on the same context —
  /// implementations reuse one scratch buffer per heartbeat rather than
  /// allocate (this query runs once per slave per heartbeat interval, which
  /// at 10k slaves makes a per-call allocation the scheduler's hot spot).
  /// Copy it first if you need to mutate or retain the list; debug builds
  /// assert on any access through a stale view.
  RunningJobsView running_jobs() const {
    // Handing out a fresh view recycles the scratch buffer, so any earlier
    // view over it goes stale right here.
    invalidate_running_jobs();
    const std::vector<JobId>& jobs = running_jobs_ref();
#ifndef NDEBUG
    return RunningJobsView(jobs, &running_jobs_generation_);
#else
    return RunningJobsView(jobs);
#endif
  }

  /// Tenant class the job was submitted under (multi-tenant admission).
  /// Single-tenant contexts leave everything in class 0.
  virtual int tenant_of(JobId /*job*/) const { return 0; }

  /// Free map slots on the heartbeating slave right now.
  virtual int free_map_slots(NodeId slave) const = 0;

  // --- unassigned task pools -------------------------------------------------
  /// True if job has an unassigned map task whose (surviving) input block is
  /// on `slave` or on a node in `slave`'s rack — the paper's "local" class.
  virtual bool has_unassigned_local(JobId job, NodeId slave) const = 0;
  /// True if job has any unassigned non-degraded map task at all (a task
  /// local nowhere near `slave` runs as a remote task).
  virtual bool has_unassigned_remote(JobId job, NodeId slave) const = 0;
  /// True if job has an unassigned degraded task (input block lost).
  virtual bool has_unassigned_degraded(JobId job) const = 0;

  // --- assignment (each consumes one free map slot on `slave`) ---------------
  virtual void assign_local(JobId job, NodeId slave) = 0;
  virtual void assign_remote(JobId job, NodeId slave) = 0;
  virtual void assign_degraded(JobId job, NodeId slave) = 0;

  /// Number of surviving blocks of the next pending degraded task's stripe
  /// stored on `slave` (0 if the job has no pending degraded task). Running
  /// the degraded task there lets that part of its degraded read stay
  /// node-local — the trick the paper's §III example plays by hand.
  virtual int degraded_affinity(JobId job, NodeId slave) const = 0;

  // --- pacing counters (Algorithm 2) -----------------------------------------
  virtual long launched_maps(JobId job) const = 0;      ///< m
  /// Map tasks of `job` currently executing (launched and not yet finished);
  /// drives fair-share job ordering.
  virtual long running_maps(JobId job) const = 0;
  virtual long total_maps(JobId job) const = 0;         ///< M
  virtual long launched_degraded(JobId job) const = 0;  ///< m_d
  virtual long total_degraded(JobId job) const = 0;     ///< M_d
  /// Cost-weighted pacing numerators for codes whose degraded reads fetch
  /// variable volumes (sub-shard repair): the blocks actually fetched by
  /// launched degraded tasks, and the expected fetch volume of all degraded
  /// tasks. The defaults weigh every task at 1 (plain task counts), which is
  /// exactly the paper's fixed-cost m_d/M_d rule; the Master overrides them
  /// with measured per-plan volumes.
  virtual double launched_degraded_cost(JobId job) const {
    return static_cast<double>(launched_degraded(job));
  }
  virtual double total_degraded_cost(JobId job) const {
    return static_cast<double>(total_degraded(job));
  }

  // --- enhanced heuristics (Algorithm 3) --------------------------------------
  /// t_s: estimated processing time of the unassigned map tasks local to
  /// `slave`, accounting for the slave's computing power (§IV-C).
  virtual util::Seconds local_work_seconds(NodeId slave) const = 0;
  /// E[t_s] over all alive slaves.
  virtual util::Seconds mean_local_work_seconds() const = 0;
  /// t_r: time since a degraded task was last assigned to rack r (a large
  /// value if none has been).
  virtual util::Seconds time_since_last_degraded(RackId rack) const = 0;
  /// E[t_r] over all racks.
  virtual util::Seconds mean_time_since_last_degraded() const = 0;
  /// The rack-awareness threshold (R-1)kS/(RW): the expected duration of one
  /// degraded read (§IV-B).
  virtual util::Seconds degraded_read_threshold() const = 0;

  virtual RackId rack_of(NodeId slave) const = 0;

 protected:
  /// Backs running_jobs(): rebuild (or return) the runnable-job list in
  /// whatever order the context's admission policy dictates. The returned
  /// reference may alias a per-context scratch buffer.
  virtual const std::vector<JobId>& running_jobs_ref() const = 0;

  /// Implementations call this from every mutation that can change the
  /// runnable-job list (task assignment, job activation/retirement) so
  /// outstanding debug views go stale. Free in release builds.
  void invalidate_running_jobs() const {
#ifndef NDEBUG
    ++running_jobs_generation_;
#endif
  }

 private:
#ifndef NDEBUG
  mutable std::uint64_t running_jobs_generation_ = 0;
#endif
};

/// A map-task scheduling policy, invoked once per slave heartbeat.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual void on_heartbeat(SchedulerContext& ctx, NodeId slave) = 0;
};

/// Named factory used by benches and examples: "LF", "BDF", or "EDF".
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace dfs::core
