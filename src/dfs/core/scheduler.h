#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfs/net/topology.h"
#include "dfs/util/units.h"

namespace dfs::core {

using JobId = int;
using net::NodeId;
using net::RackId;

/// The master's view offered to a scheduling policy at each heartbeat.
///
/// This mirrors what Hadoop's JobTracker exposes to a TaskScheduler plugin:
/// the FIFO job list, slot availability on the heartbeating slave, the
/// job's unassigned task pools partitioned the way Algorithms 1-3 need them
/// (local / remote / degraded), the launch counters that drive the
/// degraded-first pacing rule, and the cluster statistics behind the
/// enhanced heuristics.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// Current simulated time (schedulers may keep time-based state, e.g.
  /// delay scheduling's per-job skip timers).
  virtual util::Seconds now() const = 0;

  /// Jobs with unfinished map work, in FIFO submission order. The reference
  /// is valid until the next running_jobs() call on the same context —
  /// implementations may reuse one scratch buffer per heartbeat rather than
  /// allocate (this query runs once per slave per heartbeat interval, which
  /// at 10k slaves makes a per-call allocation the scheduler's hot spot).
  /// Copy it first if you need to mutate or retain the list.
  virtual const std::vector<JobId>& running_jobs() const = 0;

  /// Free map slots on the heartbeating slave right now.
  virtual int free_map_slots(NodeId slave) const = 0;

  // --- unassigned task pools -------------------------------------------------
  /// True if job has an unassigned map task whose (surviving) input block is
  /// on `slave` or on a node in `slave`'s rack — the paper's "local" class.
  virtual bool has_unassigned_local(JobId job, NodeId slave) const = 0;
  /// True if job has any unassigned non-degraded map task at all (a task
  /// local nowhere near `slave` runs as a remote task).
  virtual bool has_unassigned_remote(JobId job, NodeId slave) const = 0;
  /// True if job has an unassigned degraded task (input block lost).
  virtual bool has_unassigned_degraded(JobId job) const = 0;

  // --- assignment (each consumes one free map slot on `slave`) ---------------
  virtual void assign_local(JobId job, NodeId slave) = 0;
  virtual void assign_remote(JobId job, NodeId slave) = 0;
  virtual void assign_degraded(JobId job, NodeId slave) = 0;

  /// Number of surviving blocks of the next pending degraded task's stripe
  /// stored on `slave` (0 if the job has no pending degraded task). Running
  /// the degraded task there lets that part of its degraded read stay
  /// node-local — the trick the paper's §III example plays by hand.
  virtual int degraded_affinity(JobId job, NodeId slave) const = 0;

  // --- pacing counters (Algorithm 2) -----------------------------------------
  virtual long launched_maps(JobId job) const = 0;      ///< m
  /// Map tasks of `job` currently executing (launched and not yet finished);
  /// drives fair-share job ordering.
  virtual long running_maps(JobId job) const = 0;
  virtual long total_maps(JobId job) const = 0;         ///< M
  virtual long launched_degraded(JobId job) const = 0;  ///< m_d
  virtual long total_degraded(JobId job) const = 0;     ///< M_d
  /// Cost-weighted pacing numerators for codes whose degraded reads fetch
  /// variable volumes (sub-shard repair): the blocks actually fetched by
  /// launched degraded tasks, and the expected fetch volume of all degraded
  /// tasks. The defaults weigh every task at 1 (plain task counts), which is
  /// exactly the paper's fixed-cost m_d/M_d rule; the Master overrides them
  /// with measured per-plan volumes.
  virtual double launched_degraded_cost(JobId job) const {
    return static_cast<double>(launched_degraded(job));
  }
  virtual double total_degraded_cost(JobId job) const {
    return static_cast<double>(total_degraded(job));
  }

  // --- enhanced heuristics (Algorithm 3) --------------------------------------
  /// t_s: estimated processing time of the unassigned map tasks local to
  /// `slave`, accounting for the slave's computing power (§IV-C).
  virtual util::Seconds local_work_seconds(NodeId slave) const = 0;
  /// E[t_s] over all alive slaves.
  virtual util::Seconds mean_local_work_seconds() const = 0;
  /// t_r: time since a degraded task was last assigned to rack r (a large
  /// value if none has been).
  virtual util::Seconds time_since_last_degraded(RackId rack) const = 0;
  /// E[t_r] over all racks.
  virtual util::Seconds mean_time_since_last_degraded() const = 0;
  /// The rack-awareness threshold (R-1)kS/(RW): the expected duration of one
  /// degraded read (§IV-B).
  virtual util::Seconds degraded_read_threshold() const = 0;

  virtual RackId rack_of(NodeId slave) const = 0;
};

/// A map-task scheduling policy, invoked once per slave heartbeat.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual void on_heartbeat(SchedulerContext& ctx, NodeId slave) = 0;
};

/// Named factory used by benches and examples: "LF", "BDF", or "EDF".
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace dfs::core
