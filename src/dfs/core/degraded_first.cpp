#include "dfs/core/degraded_first.h"

#include <algorithm>

namespace dfs::core {

DegradedFirstScheduler::DegradedFirstScheduler(DegradedFirstOptions options)
    : options_(options) {}

DegradedFirstScheduler DegradedFirstScheduler::basic() {
  return DegradedFirstScheduler(
      DegradedFirstOptions{.locality_preservation = false,
                           .rack_awareness = false,
                           .assign_to_slave_listing_variant = false});
}

DegradedFirstScheduler DegradedFirstScheduler::enhanced() {
  return DegradedFirstScheduler(DegradedFirstOptions{});
}

std::string DegradedFirstScheduler::name() const {
  std::string base;
  if (!options_.locality_preservation && !options_.rack_awareness) {
    base = "BDF";
  } else if (options_.locality_preservation && options_.rack_awareness) {
    base = "EDF";
  } else {
    base = std::string("DF(") +
           (options_.locality_preservation ? "+slave" : "") +
           (options_.rack_awareness ? "+rack" : "") + ")";
  }
  if (options_.stripe_affinity) base += "+affinity";
  return base;
}

bool DegradedFirstScheduler::pacing_allows_degraded(
    const SchedulerContext& ctx, JobId job) const {
  const long m = ctx.launched_maps(job);
  const long big_m = ctx.total_maps(job);
  const double md = ctx.launched_degraded_cost(job);
  const double big_md = ctx.total_degraded_cost(job);
  if (big_md <= 0.0 || big_m == 0) return false;
  // Once every normal map has launched there is nothing left to pace
  // degraded work against; the gate must stay open or the degraded tail
  // livelocks. With count-based costs this was implied: all normals
  // launched means m = (M - M_d) + m_d, and (M-M_d+m_d)·M_d >= m_d·M
  // reduces to M_d >= m_d, always true. Launched *cost* however can exceed
  // the pro-rata share when individual plans come in above the
  // single-failure expectation — e.g. an LRC group broken by a second
  // failure decodes globally at cost k instead of the local-group cost —
  // so the tail guarantee has to be explicit. For fixed-cost codes the
  // cross-multiplication below is already true whenever this fires, so the
  // clause is behavior-neutral for them.
  if (m - ctx.launched_degraded(job) >= big_m - ctx.total_degraded(job)) {
    return true;
  }
  // m/M >= m_d/M_d, compared via cross-multiplication. The degraded terms
  // are cost-weighted (blocks fetched, not task counts) so codes with cheap
  // sub-shard repairs pace their degraded launches proportionally faster.
  // For fixed-cost codes every degraded task costs the same c, c factors
  // out of both sides and the comparison is exactly the paper's integer
  // rule (the products stay far below 2^53, so doubles compare exactly).
  return static_cast<double>(m) * big_md >= md * static_cast<double>(big_m);
}

bool DegradedFirstScheduler::assign_to_slave(const SchedulerContext& ctx,
                                             NodeId slave) const {
  const util::Seconds ts = ctx.local_work_seconds(slave);
  const util::Seconds mean = ctx.mean_local_work_seconds();
  if (options_.assign_to_slave_listing_variant) {
    return !(ts < mean);
  }
  // Prose semantics: a slave with an above-average local backlog has no
  // spare slots for a degraded task — giving it one would push its local
  // tasks onto other nodes as remote tasks.
  return !(ts > mean);
}

bool DegradedFirstScheduler::affinity_allows(const SchedulerContext& ctx,
                                             JobId job, NodeId slave) const {
  if (!options_.stripe_affinity) return true;
  if (ctx.degraded_affinity(job, slave) > 0) return true;
  // Fall back once only degraded work remains, so the tail never starves
  // waiting for a stripe-mate holder's heartbeat.
  return !ctx.has_unassigned_local(job, slave) &&
         !ctx.has_unassigned_remote(job, slave);
}

bool DegradedFirstScheduler::assign_to_rack(const SchedulerContext& ctx,
                                            RackId rack) const {
  const util::Seconds tr = ctx.time_since_last_degraded(rack);
  const util::Seconds mean = ctx.mean_time_since_last_degraded();
  const util::Seconds threshold = ctx.degraded_read_threshold();
  // The rack just launched a degraded task that is likely still downloading;
  // adding another would make them compete on the rack's links.
  return !(tr < std::min(mean, threshold));
}

void DegradedFirstScheduler::on_heartbeat(SchedulerContext& ctx,
                                          NodeId slave) {
  bool degraded_task_assigned = false;
  for (const JobId job : ctx.running_jobs()) {
    // Degraded-first step: at most one degraded task per heartbeat (two
    // concurrent degraded reads on one node would compete for its links).
    if (!degraded_task_assigned && ctx.free_map_slots(slave) > 0 &&
        ctx.has_unassigned_degraded(job) && pacing_allows_degraded(ctx, job)) {
      const bool slave_ok =
          !options_.locality_preservation || assign_to_slave(ctx, slave);
      const bool rack_ok =
          !options_.rack_awareness || assign_to_rack(ctx, ctx.rack_of(slave));
      if (slave_ok && rack_ok && affinity_allows(ctx, job, slave)) {
        ctx.assign_degraded(job, slave);
        degraded_task_assigned = true;
      }
    }
    // Then the usual locality-first assignment for the remaining free slots.
    while (ctx.free_map_slots(slave) > 0) {
      if (ctx.has_unassigned_local(job, slave)) {
        ctx.assign_local(job, slave);
      } else if (ctx.has_unassigned_remote(job, slave)) {
        ctx.assign_remote(job, slave);
      } else {
        break;
      }
    }
  }
}

}  // namespace dfs::core
