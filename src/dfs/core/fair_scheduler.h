#pragma once

#include "dfs/core/scheduler.h"

namespace dfs::core {

/// A simplified Hadoop Fair Scheduler (§VII cites [34, 35]): instead of
/// draining jobs in FIFO order, each heartbeat considers jobs in order of
/// fewest currently-running map tasks, so small jobs are not starved behind
/// large ones. Within a job the map-task choice is pluggable:
///
///  - `FairScheduler(false)`: locality-first inside each job (fair + Alg 1)
///  - `FairScheduler(true)`:  degraded-first pacing inside each job
///    (fair + Alg 2) — showing that fair sharing and degraded-first
///    scheduling compose.
class FairScheduler : public Scheduler {
 public:
  explicit FairScheduler(bool degraded_first = false);

  std::string name() const override;
  void on_heartbeat(SchedulerContext& ctx, NodeId slave) override;

 private:
  /// Jobs with unfinished map work, fewest running map tasks first
  /// (FIFO-stable among ties).
  std::vector<JobId> fair_order(const SchedulerContext& ctx) const;

  bool degraded_first_;
};

}  // namespace dfs::core
