#include "dfs/core/delay_scheduler.h"

namespace dfs::core {

void DelayScheduler::on_heartbeat(SchedulerContext& ctx, NodeId slave) {
  for (const JobId job : ctx.running_jobs()) {
    while (ctx.free_map_slots(slave) > 0) {
      if (ctx.has_unassigned_local(job, slave)) {
        ctx.assign_local(job, slave);
        skip_since_.erase(job);  // locality achieved: reset the skip timer
        continue;
      }
      if (ctx.has_unassigned_remote(job, slave)) {
        const auto [it, inserted] = skip_since_.try_emplace(job, ctx.now());
        if (!inserted && ctx.now() - it->second >= delay_) {
          // The job has waited long enough; stop insisting on locality.
          ctx.assign_remote(job, slave);
          continue;
        }
        break;  // keep waiting for a local slot; try the next job
      }
      if (ctx.has_unassigned_degraded(job)) {
        ctx.assign_degraded(job, slave);
        continue;
      }
      break;
    }
  }
}

}  // namespace dfs::core
