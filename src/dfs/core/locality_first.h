#pragma once

#include "dfs/core/scheduler.h"

namespace dfs::core {

/// Hadoop's default locality-first scheduling on HDFS-RAID (Algorithm 1):
/// for every free map slot, assign a local task if one exists, else a
/// remote task, else — last of all — a degraded task. This is the baseline
/// whose failure-mode behaviour the paper improves on: all degraded tasks
/// end up launched back-to-back after the local tasks drain, competing for
/// cross-rack bandwidth.
class LocalityFirstScheduler : public Scheduler {
 public:
  std::string name() const override { return "LF"; }
  void on_heartbeat(SchedulerContext& ctx, NodeId slave) override;
};

}  // namespace dfs::core
