#pragma once

#include "dfs/core/scheduler.h"

namespace dfs::core {

/// Options for the degraded-first family. The basic version (Algorithm 2)
/// has both heuristics off; the enhanced version (Algorithm 3) has both on.
struct DegradedFirstOptions {
  /// Locality preservation (ASSIGNTOSLAVE): only hand a degraded task to a
  /// slave whose estimated local-task backlog t_s is not above the cluster
  /// mean E[t_s], so the slave never needs to push its own local tasks onto
  /// other nodes as remote tasks (§IV-C).
  bool locality_preservation = true;

  /// Rack awareness (ASSIGNTORACK): do not give a rack a second degraded
  /// task while one it recently launched is likely still mid-degraded-read,
  /// i.e. while t_r < min(E[t_r], (R-1)kS/(RW)) (§IV-C).
  bool rack_awareness = true;

  /// Stripe affinity (an extension beyond the paper): only hand a degraded
  /// task to a slave that stores at least one surviving block of the task's
  /// stripe, so part of the degraded read is a local disk read instead of a
  /// network fetch — the assignment the §III example makes by hand. Falls
  /// back to any slave once no local/remote work remains (no starvation).
  bool stripe_affinity = false;

  /// The paper's prose ("if t_s > E[t_s] ... we do not assign a degraded
  /// task to it", and Fig. 8's discussion: "EDF assigns degraded tasks to
  /// the nodes that have low processing time for local tasks") contradicts
  /// the pseudo-code listing of Algorithm 3, whose ASSIGNTOSLAVE returns
  /// false when t_s < E[t_s]. We follow the prose — it is stated twice and
  /// is what makes the Fig. 8(a) remote-task reduction possible — but keep
  /// the listing variant behind this flag for the ablation bench.
  bool assign_to_slave_listing_variant = false;
};

/// Degraded-first scheduling (Algorithms 2 and 3), the paper's contribution.
///
/// At each heartbeat, before the usual local/remote assignment, at most one
/// degraded task is handed to the slave if the fraction of degraded tasks
/// launched so far is not ahead of the fraction of all map tasks launched
/// (m/M >= m_d/M_d). This paces degraded reads evenly over the whole map
/// phase, letting them use rack bandwidth that the local tasks leave idle.
class DegradedFirstScheduler : public Scheduler {
 public:
  explicit DegradedFirstScheduler(DegradedFirstOptions options);

  /// Algorithm 2: no heuristics.
  static DegradedFirstScheduler basic();
  /// Algorithm 3: locality preservation + rack awareness.
  static DegradedFirstScheduler enhanced();

  std::string name() const override;
  void on_heartbeat(SchedulerContext& ctx, NodeId slave) override;

  const DegradedFirstOptions& options() const { return options_; }

 private:
  bool pacing_allows_degraded(const SchedulerContext& ctx, JobId job) const;
  bool affinity_allows(const SchedulerContext& ctx, JobId job,
                       NodeId slave) const;
  bool assign_to_slave(const SchedulerContext& ctx, NodeId slave) const;
  bool assign_to_rack(const SchedulerContext& ctx, RackId rack) const;

  DegradedFirstOptions options_;
};

}  // namespace dfs::core
