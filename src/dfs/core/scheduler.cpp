#include "dfs/core/scheduler.h"

#include <stdexcept>

#include "dfs/core/degraded_first.h"
#include "dfs/core/delay_scheduler.h"
#include "dfs/core/fair_scheduler.h"
#include "dfs/core/locality_first.h"

namespace dfs::core {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "LF") return std::make_unique<LocalityFirstScheduler>();
  if (name == "BDF") {
    return std::make_unique<DegradedFirstScheduler>(
        DegradedFirstScheduler::basic());
  }
  if (name == "EDF") {
    return std::make_unique<DegradedFirstScheduler>(
        DegradedFirstScheduler::enhanced());
  }
  if (name == "DELAY") return std::make_unique<DelayScheduler>();
  if (name == "FAIR") return std::make_unique<FairScheduler>(false);
  if (name == "FAIR+DF") return std::make_unique<FairScheduler>(true);
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace dfs::core
