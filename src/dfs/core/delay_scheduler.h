#pragma once

#include <unordered_map>

#include "dfs/core/scheduler.h"

namespace dfs::core {

/// Delay scheduling (Zaharia et al., EuroSys 2010) — a related-work baseline
/// the paper contrasts against (§VII). When the heartbeating slave has no
/// local task for a job, the job *waits* instead of immediately launching a
/// non-local task; only after being skipped for longer than `delay` seconds
/// may it launch remote tasks. This raises data locality on multi-user
/// clusters, but like locality-first it leaves degraded tasks for last — so
/// it inherits the same failure-mode pathology degraded-first fixes.
class DelayScheduler : public Scheduler {
 public:
  /// `delay`: how long a job forgoes non-local slots before giving up
  /// (Zaharia et al. found a few seconds suffices; default 5 s).
  explicit DelayScheduler(util::Seconds delay = 5.0) : delay_(delay) {}

  std::string name() const override { return "DELAY"; }
  void on_heartbeat(SchedulerContext& ctx, NodeId slave) override;

  util::Seconds delay() const { return delay_; }

 private:
  util::Seconds delay_;
  /// Job -> time it started being skipped for lack of locality; erased when
  /// the job launches a local task again.
  std::unordered_map<JobId, util::Seconds> skip_since_;
};

}  // namespace dfs::core
