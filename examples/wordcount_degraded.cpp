// End-to-end functional example: WordCount over a *byte-backed*
// erasure-coded store with a failed node. The discrete-event simulator
// decides when and where every task runs; at each simulated map completion
// the real bytes are processed — and for degraded tasks the lost block is
// really reconstructed (Reed-Solomon decode) from exactly the surviving
// blocks the simulated degraded read downloaded.
//
// The example verifies that the final word counts are bit-identical to a
// failure-free reference run: erasure coding makes the node failure
// invisible to the job's output, scheduling only changes when things happen.

#include <iostream>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/engine/block_store.h"
#include "dfs/engine/runner.h"
#include "dfs/engine/text_jobs.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/table.h"
#include "dfs/workload/text.h"

int main() {
  using namespace dfs;

  // A 6-node, 3-rack cluster storing a (6,4)-coded text file (each rack may
  // hold at most n-k = 2 blocks of a stripe, so three racks are needed).
  // Blocks carry real bytes (16 KiB each here — small stand-ins for HDFS's
  // 64 MB; the simulator's timing model still uses the configured size).
  mapreduce::ClusterConfig cluster;
  cluster.topology = net::Topology(3, 2);
  cluster.links.rack_up = util::megabits_per_sec(500);
  cluster.links.rack_down = util::megabits_per_sec(500);
  cluster.block_size = util::mebibytes(64);
  cluster.map_slots_per_node = 2;

  util::Rng rng(7);
  const int kBlocks = 48;
  const std::size_t kBlockBytes = 16 * 1024;

  mapreduce::JobInput job;
  job.spec.map_time = {10.0, 1.0};
  job.spec.reduce_time = {8.0, 1.0};
  job.spec.num_reducers = 4;
  job.spec.shuffle_ratio = 0.05;
  job.layout = std::make_shared<storage::StorageLayout>(
      storage::random_rack_constrained_layout(kBlocks, 6, 4, cluster.topology,
                                              rng));
  job.code = ec::make_reed_solomon(6, 4);

  // Generate a synthetic Gutenberg-like corpus and encode it into stripes.
  std::string corpus = workload::generate_text(rng, kBlocks * kBlockBytes);
  corpus.resize(kBlocks * kBlockBytes);
  const engine::ByteBlockStore store(corpus, *job.layout, *job.code,
                                     kBlockBytes);
  std::cout << "Stored " << corpus.size() / 1024 << " KiB of text as "
            << kBlocks << " native + "
            << job.layout->num_stripes() * 2 << " parity blocks (RS(6,4)).\n";

  // Fail a node and run WordCount under both schedulers.
  const auto failure = storage::single_node_failure(cluster.topology, rng);
  std::cout << "Failing node " << failure.failed_nodes().front() << ".\n\n";
  const auto word_count = engine::make_word_count();
  const engine::KeyCounts expected = engine::reference_run(store, *word_count);

  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();
  util::Table table({"scheduler", "runtime (s)", "degraded rebuilds",
                     "bytes verified", "output == reference"});
  for (core::Scheduler* sched : {static_cast<core::Scheduler*>(&lf),
                                 static_cast<core::Scheduler*>(&edf)}) {
    const auto result = engine::run_functional_job(
        cluster, job, store, *word_count, failure, *sched, /*seed=*/3);
    table.add_row(
        {sched->name(),
         util::Table::num(result.timing.jobs.front().runtime(), 1),
         std::to_string(result.degraded_reconstructions),
         result.reconstruction_verified ? "yes" : "NO",
         result.totals == expected ? "yes" : "NO"});
  }
  std::cout << table;

  // Show the job's actual output: the ten most frequent words.
  std::cout << "\nTop words (from the degraded-mode run):\n";
  const auto result = engine::run_functional_job(cluster, job, store,
                                                 *word_count, failure, edf, 3);
  std::vector<std::pair<long, std::string>> ranked;
  for (const auto& [word, count] : result.totals) {
    ranked.emplace_back(count, word);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    std::cout << "  " << ranked[i].second << ": " << ranked[i].first << '\n';
  }
  return 0;
}
