// Extending the library: writing your own MapReduce scheduling policy.
//
// The dfs::core::Scheduler interface is the plug point the paper's three
// algorithms implement; anything that can be decided from a heartbeat can be
// expressed. This example adds a deliberately aggressive "degraded-flood"
// policy — launch every degraded task as early as possible, ignoring the
// paper's pacing rule — and shows why the paper paces instead: flooding
// degraded reads at the start congests the rack links just like
// locality-first congests them at the end.

#include <iostream>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/storage/failure.h"
#include "dfs/util/table.h"
#include "dfs/workload/scenarios.h"

namespace {

/// Assigns degraded tasks greedily before anything else — the mirror image
/// of locality-first, with no pacing and no topology awareness.
class DegradedFloodScheduler final : public dfs::core::Scheduler {
 public:
  std::string name() const override { return "FLOOD"; }

  void on_heartbeat(dfs::core::SchedulerContext& ctx,
                    dfs::core::NodeId slave) override {
    for (const dfs::core::JobId job : ctx.running_jobs()) {
      while (ctx.free_map_slots(slave) > 0 &&
             ctx.has_unassigned_degraded(job)) {
        ctx.assign_degraded(job, slave);
      }
      while (ctx.free_map_slots(slave) > 0) {
        if (ctx.has_unassigned_local(job, slave)) {
          ctx.assign_local(job, slave);
        } else if (ctx.has_unassigned_remote(job, slave)) {
          ctx.assign_remote(job, slave);
        } else {
          break;
        }
      }
    }
  }
};

}  // namespace

int main() {
  using namespace dfs;

  auto cluster = workload::default_sim_cluster();
  // A busier network (250 Mbps racks) makes the congestion trade-offs of
  // the three policies clearly visible.
  cluster.links.rack_up = util::megabits_per_sec(250);
  cluster.links.rack_down = util::megabits_per_sec(250);
  util::Rng rng(5);
  workload::SimJobOptions opts;
  opts.num_blocks = 720;
  const auto job = workload::make_sim_job(0, opts, cluster.topology, rng);
  const auto failure = storage::single_node_failure(cluster.topology, rng);

  core::LocalityFirstScheduler lf;
  DegradedFloodScheduler flood;
  auto edf = core::DegradedFirstScheduler::enhanced();

  std::cout << "Custom scheduling policies on one failure-mode scenario\n\n";
  util::Table table({"scheduler", "policy", "runtime (s)",
                     "degraded read (mean s)"});
  const char* policy[] = {
      "degraded tasks last (Hadoop default)",
      "degraded tasks first, all at once",
      "degraded tasks paced evenly (the paper)",
  };
  core::Scheduler* scheds[] = {&lf, &flood, &edf};
  for (int i = 0; i < 3; ++i) {
    const auto result =
        mapreduce::simulate(cluster, {job}, failure, *scheds[i], 1);
    table.add_row({scheds[i]->name(), policy[i],
                   util::Table::num(result.jobs.front().runtime(), 1),
                   util::Table::num(result.mean_degraded_read_time(), 1)});
  }
  std::cout << table
            << "\nFlooding merely moves the congestion from the end of the "
               "map phase to its start — here\nit is even worse than "
               "locality-first. Pacing the launches evenly (degraded-first) "
               "is what\nactually exploits the idle bandwidth.\n";
  return 0;
}
