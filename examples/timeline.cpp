// Visualizing map-slot activity: replays the paper's §III motivating example
// and prints Fig. 3-style ASCII timelines of every map slot under
// locality-first and degraded-first scheduling.
//
//   .  idle     L  local processing     =  degraded download
//   D  degraded processing              R  remote/rack-local download

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/workload/scenarios.h"

namespace {

using namespace dfs;

void print_timeline(const mapreduce::RunResult& result, int num_nodes,
                    int slots_per_node, double horizon) {
  const double step = 1.0;  // one column per second
  const int columns = static_cast<int>(horizon / step) + 1;
  // slot_rows[node][slot] = row of characters.
  std::vector<std::vector<std::string>> rows(
      static_cast<std::size_t>(num_nodes),
      std::vector<std::string>(static_cast<std::size_t>(slots_per_node),
                               std::string(static_cast<std::size_t>(columns),
                                           '.')));
  // Track per-node slot occupancy over time: assign each task to the first
  // slot row that is free at its start column.
  std::vector<std::vector<double>> slot_free(
      static_cast<std::size_t>(num_nodes),
      std::vector<double>(static_cast<std::size_t>(slots_per_node), 0.0));
  auto paint = [&](int node, double from, double to, char c) -> int {
    auto& free_at = slot_free[static_cast<std::size_t>(node)];
    for (std::size_t s = 0; s < free_at.size(); ++s) {
      if (free_at[s] <= from + 1e-9) {
        free_at[s] = to;
        auto& row = rows[static_cast<std::size_t>(node)][s];
        const int c0 = std::clamp(static_cast<int>(from / step), 0, columns);
        const int c1 = std::clamp(static_cast<int>(to / step), c0, columns);
        for (int col = c0; col < std::max(c1, c0 + 1) && col < columns;
             ++col) {
          row[static_cast<std::size_t>(col)] = c;
        }
        return static_cast<int>(s);
      }
    }
    return -1;
  };
  std::vector<mapreduce::MapTaskRecord> tasks = result.map_tasks;
  std::sort(tasks.begin(), tasks.end(),
            [](const auto& a, const auto& b) {
              return a.assign_time < b.assign_time;
            });
  for (const auto& t : tasks) {
    const bool has_fetch = t.fetch_done_time > t.assign_time + 1e-9;
    const char fetch_char =
        t.kind == mapreduce::MapTaskKind::kDegraded ? '=' : 'R';
    const char proc_char =
        t.kind == mapreduce::MapTaskKind::kDegraded ? 'D' : 'L';
    // Paint fetch and processing as one slot reservation.
    auto& free_at = slot_free[static_cast<std::size_t>(t.exec_node)];
    (void)free_at;
    if (has_fetch) {
      const int slot = paint(t.exec_node, t.assign_time, t.fetch_done_time,
                             fetch_char);
      if (slot >= 0) {
        // Continue processing in the same slot row.
        auto& row = rows[static_cast<std::size_t>(t.exec_node)]
                        [static_cast<std::size_t>(slot)];
        slot_free[static_cast<std::size_t>(t.exec_node)]
                 [static_cast<std::size_t>(slot)] = t.finish_time;
        const int c0 = std::clamp(static_cast<int>(t.fetch_done_time / 1.0),
                                  0, columns);
        const int c1 =
            std::clamp(static_cast<int>(t.finish_time / 1.0), c0, columns);
        for (int col = c0; col < c1 && col < columns; ++col) {
          row[static_cast<std::size_t>(col)] = proc_char;
        }
      }
    } else {
      paint(t.exec_node, t.assign_time, t.finish_time, proc_char);
    }
  }
  // Header ruler.
  std::cout << "           ";
  for (int c = 0; c < columns; c += 10) {
    std::string mark = std::to_string(static_cast<int>(c * step));
    mark.resize(10, ' ');
    std::cout << mark;
  }
  std::cout << "\n";
  for (int n = 0; n < num_nodes; ++n) {
    for (int s = 0; s < slots_per_node; ++s) {
      std::cout << "node" << n << "/s" << s << "   "
                << rows[static_cast<std::size_t>(n)]
                       [static_cast<std::size_t>(s)]
                << '\n';
    }
  }
}

}  // namespace

int main() {
  const auto ex = workload::motivating_example();
  core::LocalityFirstScheduler lf;
  auto bdf = core::DegradedFirstScheduler::basic();

  std::cout << "Map-slot timelines for the motivating example "
               "(node 0 failed; L local, R remote fetch,\n'=' degraded "
               "download, D degraded processing, . idle)\n";
  for (core::Scheduler* sched : {static_cast<core::Scheduler*>(&lf),
                                 static_cast<core::Scheduler*>(&bdf)}) {
    const auto result =
        mapreduce::simulate(ex.cluster, {ex.job}, ex.failure, *sched, 1,
                            storage::SourceSelection::kPreferSameRack);
    std::cout << "\n--- " << sched->name() << " (map phase ends at "
              << result.jobs.front().map_phase_end << " s) ---\n";
    print_timeline(result, ex.cluster.topology.num_nodes(),
                   ex.cluster.map_slots_per_node,
                   result.jobs.front().map_phase_end);
  }
  return 0;
}
