// Quickstart: simulate one MapReduce job over an erasure-coded cluster in
// failure mode, under Hadoop's default locality-first scheduling and under
// this library's degraded-first scheduling, and compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/table.h"

int main() {
  using namespace dfs;

  // 1. Describe the cluster: 20 nodes in 4 racks, 1 Gbps rack links,
  //    128 MB blocks, 4 map slots and 1 reduce slot per node.
  mapreduce::ClusterConfig cluster;
  cluster.topology = net::Topology(/*racks=*/4, /*nodes_per_rack=*/5);
  cluster.links.rack_up = util::gigabits_per_sec(1.0);
  cluster.links.rack_down = util::gigabits_per_sec(1.0);
  cluster.block_size = util::mebibytes(128);

  // 2. Describe the job: a 540-block file protected by a (12,9)
  //    Reed-Solomon code, placed under HDFS's rack rule, with normally
  //    distributed task times and a 1% shuffle.
  util::Rng rng(/*seed=*/2024);
  mapreduce::JobInput job;
  job.spec.map_time = {20.0, 1.0};
  job.spec.reduce_time = {30.0, 2.0};
  job.spec.num_reducers = 12;
  job.spec.shuffle_ratio = 0.01;
  job.layout = std::make_shared<storage::StorageLayout>(
      storage::random_rack_constrained_layout(540, 12, 9, cluster.topology,
                                              rng));
  job.code = ec::make_reed_solomon(12, 9);

  // 3. Fail one node: every map task whose input block lived there becomes
  //    a *degraded task* that must fetch k=9 surviving blocks and decode.
  const auto failure = storage::single_node_failure(cluster.topology, rng);
  std::cout << "Failed node: " << failure.failed_nodes().front() << "\n\n";

  // 4. Run the same scenario under each scheduler.
  core::LocalityFirstScheduler lf;                         // Algorithm 1
  auto bdf = core::DegradedFirstScheduler::basic();        // Algorithm 2
  auto edf = core::DegradedFirstScheduler::enhanced();     // Algorithm 3

  util::Table table({"scheduler", "job runtime (s)", "map phase (s)",
                     "degraded read (mean s)", "remote tasks"});
  double lf_runtime = 0.0;
  for (core::Scheduler* sched : {static_cast<core::Scheduler*>(&lf),
                                 static_cast<core::Scheduler*>(&bdf),
                                 static_cast<core::Scheduler*>(&edf)}) {
    const mapreduce::RunResult result =
        mapreduce::simulate(cluster, {job}, failure, *sched, /*seed=*/1);
    const auto& metrics = result.jobs.front();
    if (sched == &lf) lf_runtime = metrics.runtime();
    table.add_row({sched->name(), util::Table::num(metrics.runtime(), 1),
                   util::Table::num(
                       metrics.map_phase_end - metrics.first_map_launch, 1),
                   util::Table::num(result.mean_degraded_read_time(), 1),
                   std::to_string(metrics.remote_tasks)});
  }
  std::cout << table;

  const mapreduce::RunResult edf_result =
      mapreduce::simulate(cluster, {job}, failure, edf, /*seed=*/1);
  std::cout << "\nDegraded-first scheduling cut the failure-mode runtime by "
            << util::Table::pct(
                   (lf_runtime - edf_result.jobs.front().runtime()) /
                       lf_runtime * 100.0,
                   1)
            << " versus locality-first.\n";
  return 0;
}
