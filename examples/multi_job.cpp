// Multi-job example: several MapReduce jobs with Poisson arrivals share the
// cluster under Hadoop's FIFO job scheduling while a node is down. Shows
// per-job runtimes and queueing latency under locality-first vs
// degraded-first map scheduling (§V-B's multi-job scenario).

#include <iostream>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/storage/failure.h"
#include "dfs/util/table.h"
#include "dfs/workload/scenarios.h"

int main() {
  using namespace dfs;

  const auto cluster = workload::default_sim_cluster();
  util::Rng rng(11);

  // Five jobs with exponential(90 s) inter-arrival times; each processes its
  // own 480-block (20,15)-coded file.
  workload::SimJobOptions opts;
  opts.num_blocks = 480;
  opts.num_reducers = 10;
  const auto jobs =
      workload::make_multi_job_workload(5, 90.0, opts, cluster.topology, rng);
  const auto failure = storage::single_node_failure(cluster.topology, rng);

  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();
  const auto lf_result = mapreduce::simulate(cluster, jobs, failure, lf, 1);
  const auto edf_result = mapreduce::simulate(cluster, jobs, failure, edf, 1);

  std::cout << "Five FIFO jobs, single-node failure, 40-node cluster\n\n";
  util::Table table({"job", "submit (s)", "LF runtime", "EDF runtime",
                     "EDF cut", "LF latency", "EDF latency"});
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& a = lf_result.jobs[j];
    const auto& b = edf_result.jobs[j];
    table.add_row({std::to_string(j), util::Table::num(a.submit_time, 0),
                   util::Table::num(a.runtime(), 1),
                   util::Table::num(b.runtime(), 1),
                   util::Table::pct(
                       (a.runtime() - b.runtime()) / a.runtime() * 100.0, 1),
                   util::Table::num(a.latency(), 1),
                   util::Table::num(b.latency(), 1)});
  }
  std::cout << table << "\nMakespan: LF " << lf_result.makespan << " s, EDF "
            << edf_result.makespan << " s\n"
            << "(runtime = first map launch to last reduce; latency = "
               "submission to last reduce)\n";
  return 0;
}
