// dfsim — drive MapReduce-over-erasure-coding simulations from the command
// line, without writing any C++.
//
//   dfsim --scheduler EDF --failure node --seeds 10
//   dfsim --racks 3 --nodes-per-rack 4 --code rs:12,10 --blocks 240
//         --block-mb 64 --bandwidth-mbps 250 --scheduler LF --csv out/run
//
// Flags (defaults follow the paper's §V-B simulation setup):
//   --racks N             racks in the cluster              [4]
//   --nodes-per-rack N    nodes per rack                    [10]
//   --map-slots N         map slots per node                [4]
//   --reduce-slots N      reduce slots per node             [1]
//   --block-mb N          block size in MiB                 [128]
//   --bandwidth-mbps X    rack up/down bandwidth            [1000]
//   --node-bandwidth-mbps X  node link bandwidth (0 = unlimited) [0]
//   --contention MODEL    fair | fifo                       [fair]
//   --heartbeat X         heartbeat interval in seconds     [3]
//   --blocks F            native blocks (= map tasks)       [1440]
//   --code SPEC           rs:n,k | crs:n,k | lrc:k,l,r | hh:n,k | rep:r
//                                                           [rs:20,15]
//   --placement P         random | roundrobin | replicated  [random]
//   --reducers N          reduce tasks                      [30]
//   --shuffle X           shuffle ratio (fraction of block) [0.01]
//   --map-time M,SD       map processing time, normal dist  [20,1]
//   --reduce-time M,SD    reduce processing time            [30,2]
//   --scheduler S         LF | BDF | EDF | DELAY            [LF]
//   --failure F           none | node | 2node | rack        [node]
//   --seeds N             independent runs                  [10]
//   --jobs N              worker threads for the seed sweep
//                         [all hardware threads; output is byte-identical
//                          for any value — seeds are independent cells]
//   --sources POLICY      random | samerack                 [random]
//   --planner P           cheapest | fullshard: degraded-read planning;
//                         fullshard disables sub-shard recovery options
//                         (every source fetches whole blocks)  [cheapest]
//   --cross-rack-cost X   cost-model weight of a cross-rack fetch relative
//                         to an in-rack fetch (1 = neutral)    [1]
//   --recovery-stats      print one recovery_stats JSON line per seed
//                         (degraded fetch volume in block units)
//   --hetero X            every other node is X times slower (1 = off)
//   --speed-profile SPEC  per-node speed profile: uniform |
//                         bimodal:FRAC,SLOWDOWN[,SEED] | vector:F0,F1,...
//                         (mutually exclusive with --hetero; when active,
//                         the map-task CSV gains a time_scale column)
//                                                           [uniform]
//   --skew S              Zipf exponent for the random placement — rack 0
//                         gets the hottest blocks (0 = uniform)   [0]
//   --speculate           enable Hadoop-style speculative execution
//   --repair N            run background repair with concurrency N
//   --utilization         print a rack-downlink utilization timeline
//   --net-stats           print one net_stats JSON line per seed (network
//                         engine counters: flow totals, fast paths,
//                         batched/component recomputes)
//   --csv PREFIX          write per-task/job CSVs of the first run
//   --normalize           also run normal mode and report ratios

#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "dfs/core/scheduler.h"
#include "dfs/ec/registry.h"
#include "dfs/mapreduce/repair.h"
#include "dfs/net/utilization.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/mapreduce/speed_model.h"
#include "dfs/mapreduce/trace.h"
#include "dfs/runner/jobs_flag.h"
#include "dfs/runner/sweep.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/util/args.h"
#include "dfs/util/jsonl.h"
#include "dfs/util/stats.h"
#include "dfs/util/table.h"

using namespace dfs;

namespace {

int fail(const std::string& message) {
  std::cerr << "dfsim: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "dfsim - MapReduce-over-erasure-coding simulator\n"
           "  --racks N --nodes-per-rack N --map-slots N --reduce-slots N\n"
           "  --block-mb N --bandwidth-mbps X --node-bandwidth-mbps X\n"
           "  --contention fair|fifo --heartbeat X\n"
           "  --blocks F --code SPEC --placement random|roundrobin|replicated\n"
           "  --reducers N --shuffle X --map-time M,SD --reduce-time M,SD\n"
           "  --scheduler LF|BDF|EDF|DELAY|FAIR|FAIR+DF\n"
           "  --failure none|node|2node|rack --sources random|samerack\n"
           "  --planner cheapest|fullshard --cross-rack-cost X\n"
           "  --speed-profile uniform|bimodal:F,S[,SEED]|vector:F0,...\n"
           "  --skew S\n"
           "  --seeds N --jobs N --speculate --repair N --normalize\n"
           "  --csv PREFIX --utilization --net-stats --recovery-stats\n"
           "  code SPEC: "
        << ec::code_spec_help() << "\n";
    return 0;
  }

  mapreduce::ClusterConfig cfg;
  cfg.topology = net::Topology(args.get_int("racks", 4),
                               args.get_int("nodes-per-rack", 10));
  cfg.map_slots_per_node = args.get_int("map-slots", 4);
  cfg.reduce_slots_per_node = args.get_int("reduce-slots", 1);
  cfg.block_size = util::mebibytes(args.get_double("block-mb", 128.0));
  cfg.heartbeat_interval = args.get_double("heartbeat", 3.0);
  const double rack_mbps = args.get_double("bandwidth-mbps", 1000.0);
  cfg.links.rack_up = util::megabits_per_sec(rack_mbps);
  cfg.links.rack_down = util::megabits_per_sec(rack_mbps);
  const double node_mbps = args.get_double("node-bandwidth-mbps", 0.0);
  cfg.links.node_up = node_mbps > 0 ? util::megabits_per_sec(node_mbps)
                                    : util::kUnlimitedBandwidth;
  cfg.links.node_down = cfg.links.node_up;
  const std::string contention = args.get_or("contention", "fair");
  if (contention == "fifo") {
    cfg.contention = net::ContentionModel::kExclusiveFifo;
  } else if (contention != "fair") {
    return fail("unknown --contention " + contention);
  }

  std::shared_ptr<ec::ErasureCode> code;
  try {
    code = ec::make_code_from_spec(args.get_or("code", "rs:20,15"));
  } catch (const std::invalid_argument& e) {
    return fail(std::string("bad --code parameters: ") + e.what());
  }
  if (!code) {
    return fail(std::string("bad --code spec (") + ec::code_spec_help() + ")");
  }
  const int blocks = args.get_int("blocks", 1440);

  mapreduce::JobSpec spec;
  spec.num_reducers = args.get_int("reducers", 30);
  spec.shuffle_ratio = args.get_double("shuffle", 0.01);
  const auto mt = util::split(args.get_or("map-time", "20,1"), ',');
  const auto rt = util::split(args.get_or("reduce-time", "30,2"), ',');
  if (mt.size() != 2 || rt.size() != 2) return fail("bad --map-time/--reduce-time");
  spec.map_time = {std::atof(mt[0].c_str()), std::atof(mt[1].c_str())};
  spec.reduce_time = {std::atof(rt[0].c_str()), std::atof(rt[1].c_str())};

  // Validate the scheduler spec once up front; every sweep cell builds its
  // own instance from the same name (schedulers like DELAY carry mutable
  // state, so one instance must never be shared across concurrent seeds).
  const std::string scheduler_name = args.get_or("scheduler", "LF");
  std::unique_ptr<core::Scheduler> scheduler;
  try {
    scheduler = core::make_scheduler(scheduler_name);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  const std::string placement = args.get_or("placement", "random");
  const std::string failure_kind = args.get_or("failure", "node");
  const std::string sources = args.get_or("sources", "random");
  const auto selection = sources == "samerack"
                             ? storage::SourceSelection::kPreferSameRack
                             : storage::SourceSelection::kRandom;
  const std::string planner_name = args.get_or("planner", "cheapest");
  storage::RecoveryCostModel cost_model;
  if (planner_name == "fullshard") {
    cost_model.allow_subshard = false;
  } else if (planner_name != "cheapest") {
    return fail("unknown --planner " + planner_name);
  }
  cost_model.cross_rack_weight = args.get_double("cross-rack-cost", 1.0);
  const bool show_recovery_stats = args.has("recovery-stats");
  const int seeds = args.get_int("seeds", 10);
  const auto jobs = runner::jobs_from_args(args);
  const bool normalize = args.has("normalize");
  const auto csv_prefix = args.get("csv");
  cfg.speculative_execution = args.has("speculate");
  const int repair_concurrency = args.get_int("repair", 0);
  const bool show_utilization = args.has("utilization");
  const bool show_net_stats = args.has("net-stats");
  const double hetero = args.get_double("hetero", 1.0);
  if (hetero != 1.0) {
    cfg.node_time_scale.assign(
        static_cast<std::size_t>(cfg.topology.num_nodes()), 1.0);
    for (net::NodeId n = 1; n < cfg.topology.num_nodes(); n += 2) {
      cfg.node_time_scale[static_cast<std::size_t>(n)] = hetero;
    }
  }
  mapreduce::SpeedModel speed;
  try {
    speed = mapreduce::SpeedModel::parse(
        args.get_or("speed-profile", "uniform"));
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (!speed.uniform()) {
    if (hetero != 1.0) {
      return fail("--speed-profile and --hetero are mutually exclusive");
    }
    cfg.node_time_scale = speed.materialize(cfg.topology.num_nodes());
  }
  const double skew = args.get_double("skew", 0.0);
  if (skew < 0.0) return fail("--skew must be >= 0");
  if (skew > 0.0 && placement != "random") {
    return fail("--skew needs --placement random");
  }

  if (const auto unknown = args.unrecognized(); !unknown.empty()) {
    return fail("unknown flag --" + unknown.front());
  }

  if (cfg.map_slots_per_node < 0) return fail("--map-slots must be >= 0");
  if (cfg.reduce_slots_per_node < 0) return fail("--reduce-slots must be >= 0");
  if (cfg.block_size <= 0.0) return fail("--block-mb must be > 0");
  if (cfg.heartbeat_interval <= 0.0) return fail("--heartbeat must be > 0");
  if (rack_mbps <= 0.0) return fail("--bandwidth-mbps must be > 0");
  if (node_mbps < 0.0) return fail("--node-bandwidth-mbps must be >= 0");
  if (blocks < 1) return fail("--blocks must be >= 1");
  if (spec.num_reducers < 0) return fail("--reducers must be >= 0");
  if (spec.shuffle_ratio < 0.0) return fail("--shuffle must be >= 0");
  if (spec.map_time.mean <= 0.0 || spec.map_time.stddev < 0.0) {
    return fail("--map-time needs mean > 0 and stddev >= 0");
  }
  if (spec.reduce_time.mean <= 0.0 || spec.reduce_time.stddev < 0.0) {
    return fail("--reduce-time needs mean > 0 and stddev >= 0");
  }
  if (seeds < 1) return fail("--seeds must be >= 1");
  if (!jobs) return fail(runner::jobs_error());
  if (repair_concurrency < 0) return fail("--repair must be >= 0");
  if (cost_model.cross_rack_weight <= 0.0) {
    return fail("--cross-rack-cost must be > 0");
  }
  if (hetero <= 0.0) return fail("--hetero must be > 0");
  if (placement != "random" && placement != "roundrobin" &&
      placement != "replicated") {
    return fail("unknown --placement " + placement);
  }
  if (failure_kind != "none" && failure_kind != "node" &&
      failure_kind != "2node" && failure_kind != "rack") {
    return fail("unknown --failure " + failure_kind);
  }

  util::Table table({"seed", "runtime(s)", "map_phase(s)", "degraded",
                     "remote", "mean_drt(s)", "normalized"});
  // Each seed is one sweep cell. A cell owns its entire stack (Rng, layout,
  // scheduler, simulation) and buffers its stdout/stderr text; the buffers
  // are flushed in seed order below, so the streams are byte-identical for
  // any --jobs value.
  struct SeedOutcome {
    std::string log;   // per-seed stdout lines
    std::string warn;  // per-seed stderr lines
    std::vector<std::string> row;
    double runtime = 0.0;
    double norm = 0.0;
  };
  runner::ThreadPool pool(*jobs);
  std::vector<SeedOutcome> outcomes;
  try {
    outcomes = runner::sweep(
        pool, static_cast<std::size_t>(seeds), [&](std::size_t cell) {
          const int s = static_cast<int>(cell);
          SeedOutcome out;
          std::ostringstream log, warn;
          const auto sched = core::make_scheduler(scheduler_name);
          util::Rng rng(static_cast<std::uint64_t>(s) * 100003 + 7);
          mapreduce::JobInput job;
          job.spec = spec;
          job.code = code;
          try {
            if (placement == "roundrobin") {
              job.layout = std::make_shared<storage::StorageLayout>(
                  storage::round_robin_layout(blocks, code->n(), code->k(),
                                              cfg.topology.num_nodes()));
            } else if (placement == "replicated") {
              job.layout = std::make_shared<storage::StorageLayout>(
                  storage::replicated_layout(blocks, code->n(), cfg.topology,
                                             rng));
            } else if (skew > 0.0) {
              job.layout = std::make_shared<storage::StorageLayout>(
                  storage::zipf_rack_skewed_layout(blocks, code->n(),
                                                   code->k(), cfg.topology,
                                                   rng, skew));
            } else {
              job.layout = std::make_shared<storage::StorageLayout>(
                  storage::random_rack_constrained_layout(
                      blocks, code->n(), code->k(), cfg.topology, rng));
            }
          } catch (const std::exception& e) {
            throw std::runtime_error(std::string("layout: ") + e.what());
          }

          storage::FailureScenario failure;
          if (failure_kind == "node") {
            failure = storage::single_node_failure(cfg.topology, rng);
          } else if (failure_kind == "2node") {
            failure = storage::double_node_failure(cfg.topology, rng);
          } else if (failure_kind == "rack") {
            failure = storage::rack_failure(cfg.topology, rng);
          }

          const std::uint64_t seed = static_cast<std::uint64_t>(s) + 1;
          mapreduce::MapReduceSimulation simulation(
              cfg, {job}, failure, *sched, seed, selection, cost_model);
          bool finished = false;
          std::unique_ptr<net::UtilizationSampler> sampler;
          if (show_utilization && s == 0) {
            mapreduce::TaskHooks hooks;
            hooks.on_job_finish =
                [&finished](const mapreduce::JobMetrics&) { finished = true; };
            simulation.set_hooks(std::move(hooks));
            sampler = std::make_unique<net::UtilizationSampler>(
                simulation.simulator(), simulation.network(),
                /*interval=*/10.0, [&finished] { return !finished; });
            sampler->start();
          }
          std::unique_ptr<mapreduce::RepairProcess> repair;
          if (repair_concurrency > 0) {
            mapreduce::RepairProcess::Options ropts;
            ropts.concurrency = repair_concurrency;
            ropts.block_size = cfg.block_size;
            ropts.selection = selection;
            repair = std::make_unique<mapreduce::RepairProcess>(
                simulation.simulator(), simulation.network(), *job.layout,
                *job.code, failure, ropts, util::Rng(seed * 31 + 3));
            repair->start();
          }
          const auto result = simulation.run();
          if (repair) {
            log << "seed " << s << ": repair rebuilt "
                << repair->stats().blocks_repaired << " blocks by t="
                << util::Table::num(repair->stats().finish_time, 1) << "s\n";
          }
          if (sampler) {
            log << "rack-downlink utilization (seed 0, 10 s buckets):\n";
            for (const auto& sample : sampler->samples()) {
              const int bars = static_cast<int>(sample.utilization * 40.0 + 0.5);
              log << "  " << util::Table::num(sample.time, 0) << "s\t"
                  << std::string(static_cast<std::size_t>(bars), '#') << ' '
                  << util::Table::pct(sample.utilization * 100.0, 0) << "\n";
            }
          }
          const auto& m = result.jobs.front();
          if (normalize) {
            const auto base = mapreduce::simulate(
                cfg, {job}, storage::no_failure(), *sched, seed, selection,
                cost_model);
            out.norm = m.runtime() / base.jobs.front().runtime();
          }
          if (result.speculative_attempts() > 0) {
            log << "seed " << s << ": " << result.speculative_attempts()
                << " speculative attempts (" << result.speculative_losses()
                << " wasted)\n";
          }
          // Gated behind --net-stats so default output stays byte-identical
          // to earlier versions. One JSON line per seed, emitted in seed
          // order via the buffered cell log.
          if (show_net_stats) {
            const net::Network::Stats ns = simulation.network().stats();
            util::JsonlWriter w(log);
            w.begin("net_stats").field("seed", s);
            net::append_net_stats(w, ns);
            w.end();
          }
          // Gated behind --recovery-stats (same buffering contract as
          // --net-stats): degraded fetch volume in block units.
          if (show_recovery_stats) {
            util::JsonlWriter w(log);
            w.begin("recovery_stats")
                .field("seed", s)
                .field("degraded_tasks", m.degraded_tasks)
                .field("fetch_blocks", result.degraded_fetch_blocks())
                .field("mean_fetch_blocks",
                       result.mean_degraded_fetch_blocks());
            w.end();
          }
          out.runtime = m.runtime();
          out.row = {std::to_string(s), util::Table::num(m.runtime(), 1),
                     util::Table::num(m.map_phase_end - m.first_map_launch, 1),
                     std::to_string(m.degraded_tasks),
                     std::to_string(m.remote_tasks),
                     util::Table::num(result.mean_degraded_read_time(), 1),
                     normalize ? util::Table::num(out.norm, 3) : ""};
          if (result.data_loss) {
            warn << "warning: seed " << s
                 << " had unrecoverable blocks (data loss)\n";
          }
          if (s == 0 && csv_prefix) {
            // Non-uniform speed profiles opt the map-task CSV into the
            // time_scale column; default traces keep their exact columns.
            mapreduce::write_csv_files(*csv_prefix, result,
                                       !speed.uniform());
          }
          out.log = log.str();
          out.warn = warn.str();
          return out;
        });
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  std::vector<double> runtimes, normalized;
  for (auto& out : outcomes) {
    std::cout << out.log;
    std::cerr << out.warn;
    runtimes.push_back(out.runtime);
    if (normalize) normalized.push_back(out.norm);
    table.add_row(std::move(out.row));
  }
  std::cout << "dfsim: scheduler=" << scheduler->name() << " code="
            << code->name() << " blocks=" << blocks << " failure="
            << failure_kind << '\n'
            << table;
  const auto box = util::boxplot(runtimes);
  std::cout << "runtime: " << util::to_string(box) << '\n';
  if (normalize) {
    std::cout << "normalized: " << util::to_string(util::boxplot(normalized))
              << '\n';
  }
  if (csv_prefix) {
    std::cout << "CSV trace of seed 0 written to " << *csv_prefix
              << "_{map_tasks,reduce_tasks,jobs}.csv\n";
  }
  return 0;
}
