// dfscluster — online long-horizon cluster lifecycle simulation: an
// open-loop job stream runs while nodes fail and get repaired mid-run, and
// steady-state latency percentiles are reported.
//
//   dfscluster --hours 2 --scheduler df --seed 1
//   dfscluster --hours 6 --arrivals pareto --interarrival 30 --mttf-hours 3
//              --scheduler lf --jsonl out/run.jsonl --csv out/timeline.csv
//
// Flags (defaults give the paper's §V-B cluster under moderate sustained
// load — about half the map slots busy):
//   --hours X             admission + failure window          [2]
//   --warmup X            warm-up cutoff in seconds           [600]
//   --scheduler S         lf | df | edf (or any dfsim name)   [df]
//   --seed N              base RNG seed                       [1]
//   --seeds N             independent runs (seed, seed+1, …)  [1]
//   --jobs N              worker threads for the seed sweep and the
//                         network's fair-share component recompute
//                         [all hardware threads; per-seed reports and JSONL
//                          records always come out in seed order and the
//                          recompute is order-insensitive, so output is
//                          byte-identical for any value]
//   --slaves N            total slave nodes; racks = N / nodes-per-rack
//                         [40 — the paper's §V-B cluster. The scale tier
//                          (10000 slaves, ~1M map tasks over a few hours)
//                          is a supported, benchmarked configuration; see
//                          bench/scale_regression and docs/performance.md]
//   --nodes-per-rack N    rack width when --slaves is given       [10]
//   --rack-gbps X         rack up/down link bandwidth, Gbps       [1]
//   --arrivals M          poisson | pareto | diurnal          [poisson]
//   --interarrival X      mean gap between jobs, seconds      [60]
//   --pareto-alpha X      Pareto shape (> 1)                  [1.5]
//   --diurnal-amplitude X rate swing in [0, 1)                [0.5]
//   --diurnal-period X    modulation period, seconds          [86400]
//   --blocks N            native blocks per job (= map tasks) [240]
//   --reducers N          reduce tasks per job                [10]
//   --mttf-hours X        per-node mean time to failure       [6]
//   --repair-delay X      mean failure-to-repair-start delay  [60]
//   --rack-failures X     fraction of failures taking a rack  [0]
//   --repair N            block repairs in flight per event   [4]
//   --sample-interval X   timeline sampling period, seconds   [60]
//   --speed-profile SPEC  per-slave speed profile: uniform |
//                         bimodal:FRAC,SLOWDOWN[,SEED] (FRAC of the slaves
//                         run SLOWDOWN x slower; SEED shuffles which ones) |
//                         vector:F0,F1,... (explicit per-node factors,
//                         tiled over the slaves)            [uniform]
//   --tenants N           tenant classes in the arrival stream; jobs are
//                         tagged round-robin by arrival share  [0 = single]
//   --tenant-shares W,..  per-class arrival shares (default: equal)
//   --tenant-scales S,..  per-class job-size multipliers (default: 1)
//   --admission P         job-queue ordering: fifo | fair |
//                         fair:w0,w1,... (per-tenant weights)  [fifo]
//   --skew S              Zipf exponent for block placement — rack 0 is the
//                         hottest, so degraded reads concentrate there
//                         [0 = the classic uniform random placement]
//   --jsonl PATH          write the full run as JSON lines
//   --net-stats           add a per-seed "net_stats" JSONL record with the
//                         network engine counters (flows, recompute/fast-path
//                         breakdown); off by default so existing JSONL
//                         consumers see byte-identical output
//   --recovery-stats      add mean_degraded_fetch_blocks (block equivalents
//                         per degraded read, fractional for sub-shard codes
//                         like hh) to the summary JSONL record and report;
//                         off by default for the same reason
//   --csv PATH            write the sampled timeline as CSV
//
// Fault layer (compute-failure fault tolerance; everything below is inert
// unless --faults is given):
//   --faults                   failures also kill the TaskTracker
//   --expiry X                 heartbeat-expiry multiplier          [10]
//   --attempt-failure-prob X   per-attempt transient failure prob   [0]
//   --max-attempts N           attempts per task before job abort   [4]
//   --retry-backoff X          base retry backoff, seconds          [1]
//   --blacklist-threshold N    failures before a slave is shunned   [3]
//   --blacklist-duration X     blacklist residence time, seconds    [300]
//   --attempts-csv PATH        write the attempt-level trace as CSV
//
// Hedged degraded reads + storage fault injection (the fetch supervisor
// engages when --hedge > 0 or any straggler/fail-prob knob is nonzero;
// everything below is inert otherwise and output stays byte-identical):
//   --hedge N                  extra hedge fetches per degraded read; the
//                              read completes on the first quorum able to
//                              reconstruct and cancels the losers    [0]
//   --hedge-quorum N           completed fetches required before a
//                              quorum may be declared (0 = coverage) [0]
//   --fetch-timeout X          per-fetch timeout, seconds (0 = none) [0]
//   --fetch-retries N          retries per source before falling back
//                              to an alternative recovery option     [2]
//   --fetch-backoff X          base retry backoff, seconds (doubles) [0.5]
//   --straggler-fraction X     fraction of nodes serving reads slowly
//                              (chosen evenly across racks)          [0]
//   --straggler-slowdown X     service-jitter multiplier on them     [4]
//   --straggler-jitter X       mean per-fetch service delay, seconds
//                              (0 disables jitter)                   [0]
//   --straggler-alpha X        Pareto tail shape for the jitter
//                              (0 = exponential; > 1 = Pareto)       [0]
//   --straggler-fail-prob X    transient fetch-failure probability   [0]

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "dfs/cluster/simulation.h"
#include "dfs/core/scheduler.h"
#include "dfs/mapreduce/trace.h"
#include "dfs/runner/jobs_flag.h"
#include "dfs/runner/sweep.h"
#include "dfs/util/args.h"
#include "dfs/util/table.h"

using namespace dfs;

namespace {

int fail(const std::string& message) {
  std::cerr << "dfscluster: " << message << "\n";
  return 1;
}

/// Friendly lowercase aliases on top of core::make_scheduler's names.
std::string scheduler_name(const std::string& flag) {
  if (flag == "lf") return "LF";
  if (flag == "df") return "BDF";  // the paper's basic degraded-first
  if (flag == "edf") return "EDF";
  return flag;
}

/// Parses a comma-separated list of doubles; throws std::invalid_argument
/// on anything non-numeric, trailing junk, or an empty list.
std::vector<double> parse_double_list(const std::string& flag,
                                      const std::string& value) {
  std::vector<double> out;
  for (const std::string& item : util::split(value, ',')) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size() || item.empty()) {
      throw std::invalid_argument("--" + flag + ": bad number '" + item +
                                  "'");
    }
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("--" + flag + ": empty list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "dfscluster - online cluster lifecycle simulator\n"
           "  --hours X --warmup X --scheduler lf|df|edf\n"
           "  --seed N --seeds N --jobs N\n"
           "  --slaves N --nodes-per-rack N --rack-gbps X\n"
           "  --arrivals poisson|pareto|diurnal --interarrival X\n"
           "  --pareto-alpha X --diurnal-amplitude X --diurnal-period X\n"
           "  --blocks N --reducers N\n"
           "  --mttf-hours X --repair-delay X --rack-failures X --repair N\n"
           "  --sample-interval X --jsonl PATH --net-stats "
           "--recovery-stats --csv PATH\n"
           "  --speed-profile uniform|bimodal:F,S[,SEED]|vector:F0,...\n"
           "  --tenants N --tenant-shares W,... --tenant-scales S,...\n"
           "  --admission fifo|fair|fair:w0,... --skew S\n"
           "  --faults --expiry X --attempt-failure-prob X --max-attempts N\n"
           "  --retry-backoff X --blacklist-threshold N "
           "--blacklist-duration X\n"
           "  --attempts-csv PATH\n"
           "  --hedge N --hedge-quorum N --fetch-timeout X "
           "--fetch-retries N --fetch-backoff X\n"
           "  --straggler-fraction X --straggler-slowdown X "
           "--straggler-jitter X\n"
           "  --straggler-alpha X --straggler-fail-prob X\n";
    return 0;
  }

  cluster::ClusterOptions opts;
  opts.horizon = args.get_double("hours", 2.0) * 3600.0;
  opts.warmup = args.get_double("warmup", 600.0);
  opts.sample_interval = args.get_double("sample-interval", 60.0);

  // Cluster size. The default keeps the paper's 4x10 §V-B topology
  // byte-identical; --slaves rebuilds the topology at any scale (the 10k
  // tier is the benchmarked ceiling, not a hard limit).
  const int nodes_per_rack = args.get_int("nodes-per-rack", 10);
  const int slaves =
      args.get_int("slaves", opts.config.topology.num_nodes());
  const double rack_gbps = args.get_double("rack-gbps", 1.0);
  if (nodes_per_rack < 1) return fail("--nodes-per-rack must be >= 1");
  if (slaves < 1) return fail("--slaves must be >= 1");
  if (slaves % nodes_per_rack != 0) {
    return fail("--slaves must be a multiple of --nodes-per-rack");
  }
  if (rack_gbps <= 0.0) return fail("--rack-gbps must be > 0");
  opts.config.topology =
      net::Topology(slaves / nodes_per_rack, nodes_per_rack);
  opts.config.links.rack_up = util::gigabits_per_sec(rack_gbps);
  opts.config.links.rack_down = util::gigabits_per_sec(rack_gbps);

  opts.arrivals.mean_interarrival = args.get_double("interarrival", 60.0);
  opts.arrivals.pareto_alpha = args.get_double("pareto-alpha", 1.5);
  opts.arrivals.diurnal_amplitude = args.get_double("diurnal-amplitude", 0.5);
  opts.arrivals.diurnal_period = args.get_double("diurnal-period", 86400.0);
  opts.arrivals.job.num_blocks = args.get_int("blocks", 240);
  opts.arrivals.job.num_reducers = args.get_int("reducers", 10);
  opts.arrivals.job.skew = args.get_double("skew", 0.0);
  if (opts.arrivals.job.skew < 0.0) return fail("--skew must be >= 0");

  // Tenant classes: --tenants N makes N equal classes; the share/scale
  // lists override per class and must carry exactly one value per tenant.
  const int tenants = args.get_int("tenants", 0);
  if (args.has("tenants") && tenants < 1) return fail("--tenants must be >= 1");
  const auto tenant_shares = args.get("tenant-shares");
  const auto tenant_scales = args.get("tenant-scales");
  if ((tenant_shares || tenant_scales) && tenants < 1) {
    return fail("--tenant-shares / --tenant-scales require --tenants N");
  }
  if (tenants >= 1) {
    opts.arrivals.tenants.assign(static_cast<std::size_t>(tenants),
                                 cluster::TenantClass{});
    try {
      if (tenant_shares) {
        const auto shares =
            parse_double_list("tenant-shares", *tenant_shares);
        if (static_cast<int>(shares.size()) != tenants) {
          return fail("--tenant-shares needs exactly --tenants values");
        }
        for (std::size_t c = 0; c < shares.size(); ++c) {
          if (shares[c] <= 0.0) return fail("--tenant-shares must be > 0");
          opts.arrivals.tenants[c].arrival_share = shares[c];
        }
      }
      if (tenant_scales) {
        const auto scales =
            parse_double_list("tenant-scales", *tenant_scales);
        if (static_cast<int>(scales.size()) != tenants) {
          return fail("--tenant-scales needs exactly --tenants values");
        }
        for (std::size_t c = 0; c < scales.size(); ++c) {
          if (scales[c] <= 0.0) return fail("--tenant-scales must be > 0");
          opts.arrivals.tenants[c].job_scale = scales[c];
        }
      }
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }

  opts.lifecycle.node_mttf_hours = args.get_double("mttf-hours", 6.0);
  opts.lifecycle.mean_repair_delay = args.get_double("repair-delay", 60.0);
  opts.lifecycle.rack_failure_fraction = args.get_double("rack-failures", 0.0);
  opts.lifecycle.repair_concurrency = args.get_int("repair", 4);

  mapreduce::FaultConfig& fault = opts.config.fault;
  fault.compute_failures = args.has("faults");
  fault.expiry_multiplier = args.get_double("expiry", 10.0);
  fault.attempt_failure_prob = args.get_double("attempt-failure-prob", 0.0);
  fault.max_attempts = args.get_int("max-attempts", 4);
  fault.retry_backoff = args.get_double("retry-backoff", 1.0);
  fault.blacklist_threshold = args.get_int("blacklist-threshold", 3);
  fault.blacklist_duration = args.get_double("blacklist-duration", 300.0);

  mapreduce::HedgeConfig& hedge = opts.config.hedge;
  const int hedge_extras = args.get_int("hedge", 0);
  hedge.enabled = hedge_extras > 0;
  hedge.extra_sources = hedge_extras;
  hedge.min_quorum = args.get_int("hedge-quorum", 0);
  mapreduce::FetchPolicy& fetch = opts.config.fetch;
  fetch.timeout = args.get_double("fetch-timeout", 0.0);
  fetch.max_retries = args.get_int("fetch-retries", 2);
  fetch.retry_backoff = args.get_double("fetch-backoff", 0.5);
  mapreduce::StragglerConfig& straggler = opts.config.straggler;
  straggler.fraction = args.get_double("straggler-fraction", 0.0);
  straggler.slowdown = args.get_double("straggler-slowdown", 4.0);
  straggler.service_mean = args.get_double("straggler-jitter", 0.0);
  straggler.pareto_alpha = args.get_double("straggler-alpha", 0.0);
  straggler.fail_prob = args.get_double("straggler-fail-prob", 0.0);

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int seeds = args.get_int("seeds", 1);
  const auto jobs = runner::jobs_from_args(args);
  const std::string scheduler_flag = args.get_or("scheduler", "df");
  const auto jsonl_path = args.get("jsonl");
  const bool net_stats = args.has("net-stats");
  const bool recovery_stats = args.has("recovery-stats");
  const auto csv_path = args.get("csv");
  const auto attempts_csv_path = args.get("attempts-csv");

  if (seeds < 1) return fail("--seeds must be >= 1");
  if (!jobs) return fail(runner::jobs_error());
  // Each simulation also water-fills independent congestion components on
  // --jobs threads (a dedicated pool per cell; the recompute is
  // order-insensitive, so this never changes output). Single-seed runs —
  // the scale tier's shape — get the full thread budget; multi-seed sweeps
  // already keep every core busy with whole cells, so they stay serial
  // inside the network rather than oversubscribing jobs^2 threads.
  opts.net_jobs = seeds == 1 ? *jobs : 1;
  if (opts.horizon <= 0.0) return fail("--hours must be > 0");
  if (opts.warmup < 0.0) return fail("--warmup must be >= 0");
  if (opts.sample_interval <= 0.0) return fail("--sample-interval must be > 0");
  if (opts.arrivals.mean_interarrival <= 0.0) {
    return fail("--interarrival must be > 0");
  }
  if (opts.arrivals.pareto_alpha <= 1.0) {
    return fail("--pareto-alpha must be > 1");
  }
  if (opts.arrivals.diurnal_amplitude < 0.0 ||
      opts.arrivals.diurnal_amplitude >= 1.0) {
    return fail("--diurnal-amplitude must be in [0, 1)");
  }
  if (opts.arrivals.diurnal_period <= 0.0) {
    return fail("--diurnal-period must be > 0");
  }
  if (opts.arrivals.job.num_blocks < 1) return fail("--blocks must be >= 1");
  if (opts.arrivals.job.num_reducers < 0) {
    return fail("--reducers must be >= 0");
  }
  if (opts.lifecycle.node_mttf_hours <= 0.0) {
    return fail("--mttf-hours must be > 0");
  }
  if (opts.lifecycle.mean_repair_delay < 0.0) {
    return fail("--repair-delay must be >= 0");
  }
  if (opts.lifecycle.rack_failure_fraction < 0.0 ||
      opts.lifecycle.rack_failure_fraction > 1.0) {
    return fail("--rack-failures must be in [0, 1]");
  }
  if (opts.lifecycle.repair_concurrency < 1) {
    return fail("--repair must be >= 1");
  }
  if (fault.expiry_multiplier <= 0.0) return fail("--expiry must be > 0");
  if (fault.attempt_failure_prob < 0.0 || fault.attempt_failure_prob > 1.0) {
    return fail("--attempt-failure-prob must be in [0, 1]");
  }
  if (fault.max_attempts < 1) return fail("--max-attempts must be >= 1");
  if (fault.retry_backoff < 0.0) return fail("--retry-backoff must be >= 0");
  if (fault.blacklist_duration < 0.0) {
    return fail("--blacklist-duration must be >= 0");
  }
  if (hedge_extras < 0) return fail("--hedge must be >= 0");
  if (hedge.min_quorum < 0) return fail("--hedge-quorum must be >= 0");
  if (fetch.timeout < 0.0) return fail("--fetch-timeout must be >= 0");
  if (fetch.max_retries < 0) return fail("--fetch-retries must be >= 0");
  if (fetch.retry_backoff < 0.0) return fail("--fetch-backoff must be >= 0");
  if (straggler.fraction < 0.0 || straggler.fraction > 1.0) {
    return fail("--straggler-fraction must be in [0, 1]");
  }
  if (straggler.slowdown < 1.0) return fail("--straggler-slowdown must be >= 1");
  if (straggler.service_mean < 0.0) {
    return fail("--straggler-jitter must be >= 0");
  }
  if (straggler.pareto_alpha != 0.0 && straggler.pareto_alpha <= 1.0) {
    return fail("--straggler-alpha must be 0 (exponential) or > 1");
  }
  if (straggler.fail_prob < 0.0 || straggler.fail_prob >= 1.0) {
    // < 1 strictly: a certain failure would retry forever.
    return fail("--straggler-fail-prob must be in [0, 1)");
  }

  std::unique_ptr<core::Scheduler> scheduler;
  try {
    opts.arrivals.model = cluster::parse_arrival_model(
        args.get_or("arrivals", "poisson"));
    // Negative fractions, slowdowns below 1, bad weights etc. are rejected
    // here, before any sweep cell starts.
    opts.speed =
        mapreduce::SpeedModel::parse(args.get_or("speed-profile", "uniform"));
    opts.admission = args.get_or("admission", "fifo");
    if (opts.admission != "fifo") {
      core::make_admission_policy(opts.admission);  // validate the spec
    }
    scheduler = core::make_scheduler(scheduler_name(scheduler_flag));
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  if (const auto unknown = args.unrecognized(); !unknown.empty()) {
    return fail("unknown flag --" + unknown.front());
  }

  // Each seed is one sweep cell; every cell owns its scheduler and
  // simulation and renders its report into a string, so the per-seed blocks
  // (and the JSONL records appended below) come out in seed order whatever
  // --jobs is — byte-identical output for any thread count.
  struct SeedOutcome {
    std::string report;
    std::string warn;
    cluster::ClusterResult result;
  };
  runner::ThreadPool pool(*jobs);
  std::vector<SeedOutcome> outcomes;
  try {
    outcomes = runner::sweep(
        pool, static_cast<std::size_t>(seeds), [&](std::size_t cell) {
          const std::uint64_t cell_seed = seed + cell;
          const auto sched = core::make_scheduler(
              scheduler_name(scheduler_flag));
          cluster::ClusterSimulation simulation(opts, *sched, cell_seed);
          SeedOutcome out;
          out.result = simulation.run();
          out.result.report_net_stats = net_stats;
          out.result.report_recovery_stats = recovery_stats;
          const auto& s = out.result.summary;
          std::ostringstream rep;
          rep << "dfscluster: scheduler=" << sched->name()
              << " arrivals=" << to_string(opts.arrivals.model)
              << " horizon=" << util::Table::num(opts.horizon / 3600.0, 2)
              << "h warmup=" << util::Table::num(opts.warmup, 0)
              << "s seed=" << cell_seed << '\n';
          // Extra config line only when some heterogeneity / tenancy /
          // skew knob is active, so default reports keep their old shape.
          if (opts.admission != "fifo" || !opts.speed.uniform() ||
              !opts.arrivals.tenants.empty() ||
              opts.arrivals.job.skew > 0.0) {
            rep << "config: admission=" << opts.admission
                << " speed=" << opts.speed.describe()
                << " tenants=" << opts.arrivals.tenants.size()
                << " skew=" << util::Table::num(opts.arrivals.job.skew, 2)
                << '\n';
          }
          rep << "jobs: " << s.jobs_submitted << " submitted, "
              << s.jobs_completed << " completed, " << s.jobs_measured
              << " in the measurement window\n";
          util::Table table({"metric", "value"});
          table.add_row({"latency samples",
                         std::to_string(s.latency_samples)});
          table.add_row({"latency p50 (s)", util::Table::num(s.latency_p50, 1)});
          table.add_row({"latency p95 (s)", util::Table::num(s.latency_p95, 1)});
          table.add_row({"latency p99 (s)", util::Table::num(s.latency_p99, 1)});
          table.add_row({"latency mean (s)",
                         util::Table::num(s.latency_mean, 1)});
          table.add_row({"job runtime mean (s)",
                         util::Table::num(s.mean_job_runtime, 1)});
          table.add_row({"degraded task fraction",
                         util::Table::pct(s.degraded_task_fraction * 100.0, 2)});
          if (recovery_stats) {
            table.add_row({"degraded fetch (blocks/read)",
                           util::Table::num(s.mean_degraded_fetch_blocks, 2)});
          }
          if (opts.config.fetch_supervised()) {
            table.add_row({"degraded read p50 (s)",
                           util::Table::num(s.degraded_read_p50, 2)});
            table.add_row({"degraded read p99 (s)",
                           util::Table::num(s.degraded_read_p99, 2)});
            table.add_row({"degraded read p999 (s)",
                           util::Table::num(s.degraded_read_p999, 2)});
            table.add_row({"degraded read samples",
                           std::to_string(s.degraded_read_samples)});
            table.add_row({"fetch p99 (s)", util::Table::num(s.fetch_p99, 2)});
            table.add_row({"fetch samples",
                           std::to_string(s.fetch_samples)});
          }
          table.add_row({"failures injected",
                         std::to_string(s.failures_injected) + " (" +
                             std::to_string(s.rack_failures) + " rack)"});
          table.add_row({"blocks repaired", std::to_string(s.blocks_repaired)});
          table.add_row({"max repair backlog",
                         std::to_string(s.max_repair_backlog)});
          table.add_row({"rack downlink utilization",
                         util::Table::pct(s.mean_rack_down_utilization * 100.0,
                                          1)});
          rep << table;
          if (!opts.arrivals.tenants.empty()) {
            util::Table tt({"tenant", "measured", "p50 (s)", "p95 (s)",
                            "p99 (s)", "mean (s)"});
            for (const auto& t : s.tenants) {
              tt.add_row({std::to_string(t.tenant),
                          std::to_string(t.jobs_measured),
                          util::Table::num(t.latency_p50, 1),
                          util::Table::num(t.latency_p95, 1),
                          util::Table::num(t.latency_p99, 1),
                          util::Table::num(t.latency_mean, 1)});
            }
            rep << "per-tenant latency:\n" << tt;
          }
          if (opts.config.fault.compute_failures) {
            const auto& run = out.result.run;
            rep << "faults: "
                << run.count_map_attempts(mapreduce::AttemptOutcome::kKilled) +
                       run.count_reduce_attempts(
                           mapreduce::AttemptOutcome::kKilled)
                << " attempts killed, "
                << run.count_map_attempts(mapreduce::AttemptOutcome::kFailed) +
                       run.count_reduce_attempts(
                           mapreduce::AttemptOutcome::kFailed)
                << " failed, " << run.blacklist_events
                << " blacklist events, " << run.jobs_failed()
                << " jobs aborted\n";
            rep << "faults: " << run.detections.size()
                << " slave deaths detected, mean detection latency "
                << util::Table::num(run.mean_detection_latency(), 1) << " s\n";
          }
          if (opts.config.fetch_supervised()) {
            const auto& h = s.hedge;
            rep << "hedging: " << h.reads_started << " reads supervised, "
                << h.hedges_launched << " hedges launched, "
                << h.losers_cancelled << " losers cancelled, "
                << h.fetch_timeouts << " timeouts, " << h.transient_failures
                << " transient failures, " << h.fetch_retries << " retries, "
                << h.fallback_replans << " fallback replans, "
                << h.last_resort_reads << " last-resort reads\n";
          }
          std::ostringstream warn;
          if (s.blocks_unrecoverable > 0) {
            warn << "warning: " << s.blocks_unrecoverable
                 << " blocks were unrecoverable (data loss)";
            if (seeds > 1) warn << " (seed " << cell_seed << ")";
            warn << '\n';
          }
          if (s.latency_samples > 0 && s.latency_samples < 10) {
            warn << "warning: latency p99 rests on only " << s.latency_samples
                 << " samples";
            if (seeds > 1) warn << " (seed " << cell_seed << ")";
            warn << '\n';
          }
          if (opts.config.fetch_supervised() && s.degraded_read_samples > 0 &&
              s.degraded_read_samples < 10) {
            warn << "warning: degraded-read p99 rests on only "
                 << s.degraded_read_samples << " samples";
            if (seeds > 1) warn << " (seed " << cell_seed << ")";
            warn << '\n';
          }
          out.warn = warn.str();
          out.report = rep.str();
          return out;
        });
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  for (const auto& out : outcomes) {
    std::cout << out.report;
    std::cerr << out.warn;
  }

  if (jsonl_path) {
    std::ofstream out(*jsonl_path);
    if (!out) return fail("cannot write " + *jsonl_path);
    // One record stream, seeds concatenated in seed order.
    for (const auto& outcome : outcomes) {
      cluster::write_cluster_jsonl(out, outcome.result);
    }
    std::cout << "JSONL run record written to " << *jsonl_path << '\n';
  }
  if (csv_path) {
    std::ofstream out(*csv_path);
    if (!out) return fail("cannot write " + *csv_path);
    cluster::write_timeline_csv(out, outcomes.front().result);
    std::cout << "timeline CSV written to " << *csv_path;
    if (seeds > 1) std::cout << " (first seed only)";
    std::cout << '\n';
  }
  if (attempts_csv_path) {
    std::ofstream out(*attempts_csv_path);
    if (!out) return fail("cannot write " + *attempts_csv_path);
    mapreduce::write_attempt_csv(out, outcomes.front().result.run);
    std::cout << "attempt trace CSV written to " << *attempts_csv_path;
    if (seeds > 1) std::cout << " (first seed only)";
    std::cout << '\n';
  }
  return 0;
}
