// dfsec — a real file-level erasure coder over the dfs::ec codes, in the
// spirit of HDFS-RAID's RaidShell. Splits a file into k-block stripes,
// writes every shard as its own file, can verify archives, reconstruct
// deliberately deleted shards, and decode the original file back.
//
//   dfsec encode  --code rs:6,4  --block-kb 64 input.bin outdir/
//   dfsec verify  --code rs:6,4 outdir/
//   dfsec repair  --code rs:6,4 outdir/          (rebuild missing shards)
//   dfsec decode  --code rs:6,4 outdir/ restored.bin
//
// Shard files are named shard_<stripe>_<index>; a small manifest file
// records the geometry so decode can restore the exact original length.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "dfs/ec/registry.h"
#include "dfs/util/args.h"

namespace fs = std::filesystem;
using namespace dfs;

namespace {

int fail(const std::string& message) {
  std::cerr << "dfsec: " << message << '\n';
  return 1;
}

fs::path shard_path(const fs::path& dir, int stripe, int index) {
  std::ostringstream name;
  name << "shard_" << stripe << "_" << index;
  return dir / name.str();
}

struct Manifest {
  std::size_t file_bytes = 0;
  std::size_t block_bytes = 0;
  int stripes = 0;
};

bool write_manifest(const fs::path& dir, const Manifest& m) {
  std::ofstream f(dir / "manifest");
  f << m.file_bytes << ' ' << m.block_bytes << ' ' << m.stripes << '\n';
  return static_cast<bool>(f);
}

std::optional<Manifest> read_manifest(const fs::path& dir) {
  std::ifstream f(dir / "manifest");
  Manifest m;
  if (!(f >> m.file_bytes >> m.block_bytes >> m.stripes)) return std::nullopt;
  return m;
}

std::optional<ec::Shard> read_shard(const fs::path& path,
                                    std::size_t expect_bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  ec::Shard shard(expect_bytes);
  f.read(reinterpret_cast<char*>(shard.data()),
         static_cast<std::streamsize>(expect_bytes));
  if (static_cast<std::size_t>(f.gcount()) != expect_bytes) {
    return std::nullopt;
  }
  return shard;
}

bool write_shard(const fs::path& path, const ec::Shard& shard) {
  std::ofstream f(path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(shard.data()),
          static_cast<std::streamsize>(shard.size()));
  return static_cast<bool>(f);
}

int cmd_encode(const ec::ErasureCode& code, std::size_t block_bytes,
               const fs::path& input, const fs::path& dir) {
  std::ifstream in(input, std::ios::binary);
  if (!in) return fail("cannot open " + input.string());
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  fs::create_directories(dir);

  const std::size_t stripe_bytes = block_bytes * static_cast<std::size_t>(code.k());
  const int stripes =
      static_cast<int>((data.size() + stripe_bytes - 1) / stripe_bytes);
  Manifest m{data.size(), block_bytes, std::max(stripes, 1)};

  std::size_t offset = 0;
  for (int s = 0; s < m.stripes; ++s) {
    std::vector<ec::Shard> natives;
    for (int b = 0; b < code.k(); ++b) {
      ec::Shard shard(block_bytes, 0);
      const std::size_t take =
          offset < data.size() ? std::min(block_bytes, data.size() - offset)
                               : 0;
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), take,
                  shard.begin());
      offset += take;
      natives.push_back(std::move(shard));
    }
    const auto parity = code.encode(natives);
    for (int b = 0; b < code.k(); ++b) {
      if (!write_shard(shard_path(dir, s, b),
                       natives[static_cast<std::size_t>(b)])) {
        return fail("write failed");
      }
    }
    for (int p = 0; p < code.parity_count(); ++p) {
      if (!write_shard(shard_path(dir, s, code.k() + p),
                       parity[static_cast<std::size_t>(p)])) {
        return fail("write failed");
      }
    }
  }
  if (!write_manifest(dir, m)) return fail("cannot write manifest");
  std::cout << "encoded " << m.file_bytes << " bytes into " << m.stripes
            << " stripes of " << code.n() << " shards (" << code.name()
            << ", " << block_bytes << " B blocks) in " << dir.string()
            << '\n';
  return 0;
}

/// Gathers the shards present on disk for one stripe.
std::vector<std::pair<int, ec::Shard>> present_shards(
    const ec::ErasureCode& code, const Manifest& m, const fs::path& dir,
    int stripe) {
  std::vector<std::pair<int, ec::Shard>> present;
  for (int b = 0; b < code.n(); ++b) {
    if (auto shard = read_shard(shard_path(dir, stripe, b), m.block_bytes)) {
      present.emplace_back(b, std::move(*shard));
    }
  }
  return present;
}

int cmd_verify(const ec::ErasureCode& code, const fs::path& dir) {
  const auto m = read_manifest(dir);
  if (!m) return fail("no manifest in " + dir.string());
  int missing = 0, undecodable = 0;
  for (int s = 0; s < m->stripes; ++s) {
    const auto present = present_shards(code, *m, dir, s);
    missing += code.n() - static_cast<int>(present.size());
    if (static_cast<int>(present.size()) < code.k()) ++undecodable;
  }
  std::cout << dir.string() << ": " << m->stripes << " stripes, " << missing
            << " missing shards, " << undecodable
            << " unrecoverable stripes\n";
  return undecodable == 0 ? 0 : 2;
}

int cmd_repair(const ec::ErasureCode& code, const fs::path& dir) {
  const auto m = read_manifest(dir);
  if (!m) return fail("no manifest in " + dir.string());
  int rebuilt = 0;
  for (int s = 0; s < m->stripes; ++s) {
    const auto present = present_shards(code, *m, dir, s);
    std::vector<int> want;
    for (int b = 0; b < code.n(); ++b) {
      if (std::none_of(present.begin(), present.end(),
                       [b](const auto& p) { return p.first == b; })) {
        want.push_back(b);
      }
    }
    if (want.empty()) continue;
    std::vector<std::pair<int, const ec::Shard*>> view;
    for (const auto& [id, shard] : present) view.emplace_back(id, &shard);
    const auto shards = code.reconstruct(view, want);
    if (!shards) {
      return fail("stripe " + std::to_string(s) + " is unrecoverable");
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (!write_shard(shard_path(dir, s, want[i]), (*shards)[i])) {
        return fail("write failed");
      }
      ++rebuilt;
    }
  }
  std::cout << "rebuilt " << rebuilt << " shards\n";
  return 0;
}

int cmd_decode(const ec::ErasureCode& code, const fs::path& dir,
               const fs::path& output) {
  const auto m = read_manifest(dir);
  if (!m) return fail("no manifest in " + dir.string());
  std::ofstream out(output, std::ios::binary);
  if (!out) return fail("cannot open " + output.string());
  std::size_t remaining = m->file_bytes;
  for (int s = 0; s < m->stripes; ++s) {
    const auto present = present_shards(code, *m, dir, s);
    std::vector<std::pair<int, const ec::Shard*>> view;
    for (const auto& [id, shard] : present) view.emplace_back(id, &shard);
    for (int b = 0; b < code.k() && remaining > 0; ++b) {
      const ec::Shard* native = nullptr;
      ec::Shard rebuilt;
      const auto it =
          std::find_if(present.begin(), present.end(),
                       [b](const auto& p) { return p.first == b; });
      if (it != present.end()) {
        native = &it->second;
      } else {
        auto shards = code.reconstruct(view, {b});  // degraded read
        if (!shards) {
          return fail("stripe " + std::to_string(s) + " is unrecoverable");
        }
        rebuilt = std::move(shards->front());
        native = &rebuilt;
      }
      const std::size_t take = std::min(remaining, m->block_bytes);
      out.write(reinterpret_cast<const char*>(native->data()),
                static_cast<std::streamsize>(take));
      remaining -= take;
    }
  }
  std::cout << "decoded " << m->file_bytes << " bytes to " << output.string()
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto& pos = args.positional();
  if (pos.empty()) {
    return fail(
        "usage: dfsec <encode|verify|repair|decode> --code rs:n,k "
        "[--block-kb N] <paths...>");
  }
  std::shared_ptr<ec::ErasureCode> code;
  try {
    code = ec::make_code_from_spec(args.get_or("code", "rs:6,4"));
  } catch (const std::invalid_argument& e) {
    return fail(std::string("bad --code parameters: ") + e.what());
  }
  if (!code) {
    return fail(std::string("bad --code spec (") + ec::code_spec_help() + ")");
  }
  const int block_kb = args.get_int("block-kb", 64);
  if (block_kb < 1) return fail("--block-kb must be >= 1");
  if (const auto unknown = args.unrecognized(); !unknown.empty()) {
    return fail("unknown flag --" + unknown.front());
  }
  const std::size_t block_bytes = static_cast<std::size_t>(block_kb) * 1024;

  const std::string& cmd = pos[0];
  if (cmd == "encode" && pos.size() == 3) {
    return cmd_encode(*code, block_bytes, pos[1], pos[2]);
  }
  if (cmd == "verify" && pos.size() == 2) return cmd_verify(*code, pos[1]);
  if (cmd == "repair" && pos.size() == 2) return cmd_repair(*code, pos[1]);
  if (cmd == "decode" && pos.size() == 3) {
    return cmd_decode(*code, pos[1], pos[2]);
  }
  return fail("bad command line (see header comment for usage)");
}
