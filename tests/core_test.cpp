#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dfs/core/admission.h"
#include "dfs/core/degraded_first.h"
#include "dfs/core/delay_scheduler.h"
#include "dfs/core/fair_scheduler.h"
#include "dfs/core/locality_first.h"
#include "dfs/core/scheduler.h"

namespace dfs::core {
namespace {

/// A scripted SchedulerContext: the tests configure task pools, counters and
/// heuristic inputs directly and record the exact assignment sequence each
/// algorithm produces.
class FakeContext : public SchedulerContext {
 public:
  struct JobCfg {
    int local = 0;
    int remote = 0;
    int degraded = 0;
    long m = 0;
    long total_m = 0;
    long md = 0;
    long total_md = 0;
    long running = 0;
  };

  std::vector<JobCfg> jobs;
  int free_slots = 1;
  std::vector<std::string> log;

  util::Seconds sim_now = 0.0;  // advanced manually by the tests
  util::Seconds ts = 0.0;       // t_s of the heartbeating slave
  util::Seconds mean_ts = 0.0;  // E[t_s]
  util::Seconds tr = 1.0e9;     // t_r of the slave's rack
  util::Seconds mean_tr = 1.0e9;
  util::Seconds threshold = 10.0;
  int affinity = 0;  // degraded_affinity of the heartbeating slave
  mutable std::vector<JobId> running_scratch_;  // backs running_jobs()

  util::Seconds now() const override { return sim_now; }

 protected:
  const std::vector<JobId>& running_jobs_ref() const override {
    running_scratch_.clear();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const JobCfg& j = jobs[i];
      if (j.m < j.total_m) running_scratch_.push_back(static_cast<JobId>(i));
    }
    return running_scratch_;
  }

 public:
  int free_map_slots(NodeId) const override { return free_slots; }
  bool has_unassigned_local(JobId j, NodeId) const override {
    return jobs[static_cast<std::size_t>(j)].local > 0;
  }
  bool has_unassigned_remote(JobId j, NodeId) const override {
    return jobs[static_cast<std::size_t>(j)].remote > 0;
  }
  bool has_unassigned_degraded(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].degraded > 0;
  }
  void assign_local(JobId j, NodeId) override {
    auto& job = jobs[static_cast<std::size_t>(j)];
    --job.local;
    ++job.m;
    --free_slots;
    log.push_back("L" + std::to_string(j));
  }
  void assign_remote(JobId j, NodeId) override {
    auto& job = jobs[static_cast<std::size_t>(j)];
    --job.remote;
    ++job.m;
    --free_slots;
    log.push_back("R" + std::to_string(j));
  }
  void assign_degraded(JobId j, NodeId) override {
    auto& job = jobs[static_cast<std::size_t>(j)];
    --job.degraded;
    ++job.m;
    ++job.md;
    --free_slots;
    log.push_back("D" + std::to_string(j));
  }
  int degraded_affinity(JobId, NodeId) const override { return affinity; }
  long running_maps(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].running;
  }
  long launched_maps(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].m;
  }
  long total_maps(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].total_m;
  }
  long launched_degraded(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].md;
  }
  long total_degraded(JobId j) const override {
    return jobs[static_cast<std::size_t>(j)].total_md;
  }
  util::Seconds local_work_seconds(NodeId) const override { return ts; }
  util::Seconds mean_local_work_seconds() const override { return mean_ts; }
  util::Seconds time_since_last_degraded(RackId) const override { return tr; }
  util::Seconds mean_time_since_last_degraded() const override {
    return mean_tr;
  }
  util::Seconds degraded_read_threshold() const override { return threshold; }
  RackId rack_of(NodeId) const override { return 0; }
};

// --- locality-first (Algorithm 1) ------------------------------------------------

TEST(LocalityFirst, PrefersLocalThenRemoteThenDegraded) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .remote = 1, .degraded = 1, .total_m = 3,
                      .total_md = 1});
  ctx.free_slots = 3;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "R0", "D0"}));
}

TEST(LocalityFirst, AssignsMultipleDegradedInOneHeartbeat) {
  // The paper's pathology: with only degraded tasks left, LF launches them
  // back-to-back, one per free slot.
  FakeContext ctx;
  ctx.jobs.push_back({.degraded = 4, .total_m = 4, .total_md = 4});
  ctx.free_slots = 4;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0", "D0", "D0", "D0"}));
}

TEST(LocalityFirst, StopsWhenSlotsExhausted) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 5, .total_m = 5});
  ctx.free_slots = 2;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log.size(), 2u);
  EXPECT_EQ(ctx.jobs[0].local, 3);
}

TEST(LocalityFirst, FifoAcrossJobs) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  ctx.jobs.push_back({.local = 2, .total_m = 2});
  ctx.free_slots = 3;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "L1", "L1"}));
}

TEST(LocalityFirst, NoTasksNoAssignments) {
  FakeContext ctx;
  ctx.jobs.push_back({.total_m = 0});
  ctx.free_slots = 2;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx, 0);
  EXPECT_TRUE(ctx.log.empty());
}

// --- basic degraded-first (Algorithm 2) --------------------------------------------

TEST(BasicDegradedFirst, LaunchesDegradedFirstWhenPacingAllows) {
  // m/M = 0 >= m_d/M_d = 0 at the start: the very first assignment of the
  // map phase is a degraded task.
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 3;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0", "L0", "L0"}));
}

TEST(BasicDegradedFirst, AtMostOneDegradedPerHeartbeat) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .degraded = 3, .total_m = 4, .total_md = 3});
  ctx.free_slots = 4;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx, 0);
  // One degraded, then locals; remaining slots stay free rather than taking
  // a second degraded task (two degraded reads would contend on the node).
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0", "L0"}));
  EXPECT_EQ(ctx.free_slots, 2);
}

TEST(BasicDegradedFirst, PacingBlocksWhenDegradedAhead) {
  // m/M = 4/12, m_d/M_d = 2/3: degraded fraction ahead -> no degraded now.
  FakeContext ctx;
  ctx.jobs.push_back({.local = 3, .degraded = 1, .m = 4, .total_m = 12,
                      .md = 2, .total_md = 3});
  ctx.free_slots = 2;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "L0"}));
}

TEST(BasicDegradedFirst, PacingAllowsAtExactEquality) {
  // m/M = 6/12 == m_d/M_d = 1/2 -> the >= comparison admits a degraded task.
  FakeContext ctx;
  ctx.jobs.push_back({.local = 3, .degraded = 1, .m = 6, .total_m = 12,
                      .md = 1, .total_md = 2});
  ctx.free_slots = 1;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(BasicDegradedFirst, NormalModeIdenticalToLocalityFirst) {
  // No degraded tasks: Algorithm 2 degenerates to lines 12-18 == Algorithm 1.
  FakeContext ctx_bdf;
  ctx_bdf.jobs.push_back({.local = 2, .remote = 1, .total_m = 3});
  ctx_bdf.free_slots = 3;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx_bdf, 0);

  FakeContext ctx_lf;
  ctx_lf.jobs.push_back({.local = 2, .remote = 1, .total_m = 3});
  ctx_lf.free_slots = 3;
  LocalityFirstScheduler lf;
  lf.on_heartbeat(ctx_lf, 0);

  EXPECT_EQ(ctx_bdf.log, ctx_lf.log);
}

TEST(BasicDegradedFirst, DegradedTasksNeverStarve) {
  // Drive repeated heartbeats until everything is assigned: pacing must
  // never leave degraded tasks unassigned once non-degraded tasks are gone.
  FakeContext ctx;
  ctx.jobs.push_back({.local = 9, .degraded = 3, .total_m = 12, .total_md = 3});
  auto bdf = DegradedFirstScheduler::basic();
  for (int hb = 0; hb < 50 && ctx.jobs[0].m < 12; ++hb) {
    ctx.free_slots = 1;
    bdf.on_heartbeat(ctx, 0);
  }
  EXPECT_EQ(ctx.jobs[0].degraded, 0);
  EXPECT_EQ(ctx.jobs[0].local, 0);
}

TEST(BasicDegradedFirst, EvenPacingOverMapPhase) {
  // 12 tasks, 3 degraded, one slot per heartbeat: degraded launches land at
  // positions 1, 5, 9 of the launch sequence (the Fig. 4 schedule).
  FakeContext ctx;
  ctx.jobs.push_back({.local = 9, .degraded = 3, .total_m = 12, .total_md = 3});
  auto bdf = DegradedFirstScheduler::basic();
  for (int hb = 0; hb < 12; ++hb) {
    ctx.free_slots = 1;
    bdf.on_heartbeat(ctx, 0);
  }
  ASSERT_EQ(ctx.log.size(), 12u);
  std::vector<int> degraded_positions;
  for (std::size_t i = 0; i < ctx.log.size(); ++i) {
    if (ctx.log[i] == "D0") degraded_positions.push_back(static_cast<int>(i));
  }
  EXPECT_EQ(degraded_positions, (std::vector<int>{0, 4, 8}));
}

TEST(BasicDegradedFirst, OneDegradedPerHeartbeatAcrossJobs) {
  // The isDegradedTaskAssigned flag spans the whole job list.
  FakeContext ctx;
  ctx.jobs.push_back({.degraded = 1, .total_m = 1, .total_md = 1});
  ctx.jobs.push_back({.degraded = 1, .total_m = 1, .total_md = 1});
  ctx.free_slots = 2;
  auto bdf = DegradedFirstScheduler::basic();
  bdf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

// --- enhanced degraded-first (Algorithm 3) ------------------------------------------

TEST(EnhancedDegradedFirst, LocalityPreservationBlocksBusySlave) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.ts = 100.0;      // this slave has an above-average local backlog
  ctx.mean_ts = 50.0;
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
}

TEST(EnhancedDegradedFirst, LocalityPreservationAdmitsIdleSlave) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.ts = 10.0;  // below-average backlog: spare capacity for a degraded task
  ctx.mean_ts = 50.0;
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(EnhancedDegradedFirst, ListingVariantInvertsSlaveCheck) {
  DegradedFirstOptions opts;
  opts.assign_to_slave_listing_variant = true;
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.ts = 10.0;
  ctx.mean_ts = 50.0;  // listing variant refuses t_s < E[t_s]
  DegradedFirstScheduler edf(opts);
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
}

TEST(EnhancedDegradedFirst, RackAwarenessBlocksRecentRack) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.tr = 2.0;  // a degraded task launched into this rack 2 s ago
  ctx.mean_tr = 100.0;
  ctx.threshold = 9.0;  // a degraded read takes ~9 s: still in flight
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
}

TEST(EnhancedDegradedFirst, RackAwarenessAdmitsAfterThreshold) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.tr = 9.5;  // the previous degraded read should have finished
  ctx.mean_tr = 100.0;
  ctx.threshold = 9.0;
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(EnhancedDegradedFirst, RackAwarenessUsesMinOfMeanAndThreshold) {
  // t_r = 5 < threshold = 9, but E[t_r] = 4 < t_r: min(E, thr) = 4 admits.
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.tr = 5.0;
  ctx.mean_tr = 4.0;
  ctx.threshold = 9.0;
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(EnhancedDegradedFirst, FallsBackToLocalWorkWhenHeuristicsBlock) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 3, .degraded = 1, .total_m = 4, .total_md = 1});
  ctx.free_slots = 2;
  ctx.ts = 100.0;
  ctx.mean_ts = 1.0;
  auto edf = DegradedFirstScheduler::enhanced();
  edf.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "L0"}));
}

// --- stripe affinity (extension) ------------------------------------------------------

TEST(StripeAffinity, BlocksSlavesWithoutStripeMates) {
  DegradedFirstOptions opts;
  opts.stripe_affinity = true;
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.affinity = 0;  // this slave holds no block of the lost stripe
  DegradedFirstScheduler sched(opts);
  sched.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
}

TEST(StripeAffinity, AdmitsStripeMateHolders) {
  DegradedFirstOptions opts;
  opts.stripe_affinity = true;
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 1;
  ctx.affinity = 2;
  DegradedFirstScheduler sched(opts);
  sched.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(StripeAffinity, FallsBackWhenOnlyDegradedRemain) {
  DegradedFirstOptions opts;
  opts.stripe_affinity = true;
  FakeContext ctx;
  ctx.jobs.push_back({.degraded = 1, .total_m = 1, .total_md = 1});
  ctx.free_slots = 1;
  ctx.affinity = 0;  // nothing local anywhere: never starve the tail
  DegradedFirstScheduler sched(opts);
  sched.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

TEST(StripeAffinity, NameReflectsOption) {
  DegradedFirstOptions opts;
  opts.stripe_affinity = true;
  EXPECT_EQ(DegradedFirstScheduler(opts).name(), "EDF+affinity");
}

// --- delay scheduling (related-work baseline) ---------------------------------------

TEST(DelayScheduler, AssignsLocalImmediately) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .total_m = 2});
  ctx.free_slots = 2;
  DelayScheduler ds(5.0);
  ds.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "L0"}));
}

TEST(DelayScheduler, DelaysRemoteUntilTimeout) {
  FakeContext ctx;
  ctx.jobs.push_back({.remote = 1, .total_m = 1});
  ctx.free_slots = 1;
  DelayScheduler ds(5.0);
  ds.on_heartbeat(ctx, 0);  // first skip: starts the timer
  EXPECT_TRUE(ctx.log.empty());
  ctx.sim_now = 3.0;
  ds.on_heartbeat(ctx, 0);  // still within the delay window
  EXPECT_TRUE(ctx.log.empty());
  ctx.sim_now = 5.0;
  ds.on_heartbeat(ctx, 0);  // waited long enough: give up on locality
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"R0"}));
}

TEST(DelayScheduler, LocalAssignmentResetsTimer) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 0, .remote = 2, .total_m = 3});
  ctx.free_slots = 1;
  DelayScheduler ds(5.0);
  ds.on_heartbeat(ctx, 0);  // timer starts at t=0
  ctx.sim_now = 4.0;
  ctx.jobs[0].local = 1;    // a local task appears (e.g. another failure)
  ds.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
  // The reset means remote tasks wait a fresh full delay again.
  ctx.sim_now = 6.0;
  ctx.free_slots = 1;
  ds.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0"}));
  ctx.sim_now = 11.0;
  ds.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "R0"}));
}

TEST(DelayScheduler, DegradedTasksStillLast) {
  FakeContext ctx;
  ctx.jobs.push_back({.degraded = 1, .total_m = 1, .total_md = 1});
  ctx.free_slots = 1;
  DelayScheduler ds(5.0);
  ds.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0"}));
}

// --- fair scheduler (related-work baseline) --------------------------------------------

TEST(FairScheduler, ServesJobWithFewestRunningTasks) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 3, .total_m = 10, .running = 8});
  ctx.jobs.push_back({.local = 3, .total_m = 10, .running = 1});
  ctx.free_slots = 2;
  FairScheduler fair;
  fair.on_heartbeat(ctx, 0);
  // Job 1 (fewest running) drains first.
  EXPECT_EQ(ctx.log[0], "L1");
}

TEST(FairScheduler, FifoStableAmongTies) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .total_m = 1, .running = 2});
  ctx.jobs.push_back({.local = 1, .total_m = 1, .running = 2});
  ctx.free_slots = 2;
  FairScheduler fair;
  fair.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "L1"}));
}

TEST(FairScheduler, DegradedFirstVariantPaces) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 2, .degraded = 1, .total_m = 3, .total_md = 1});
  ctx.free_slots = 3;
  FairScheduler fair(true);
  fair.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"D0", "L0", "L0"}));
}

TEST(FairScheduler, PlainVariantLeavesDegradedLast) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .degraded = 1, .total_m = 2, .total_md = 1});
  ctx.free_slots = 2;
  FairScheduler fair(false);
  fair.on_heartbeat(ctx, 0);
  EXPECT_EQ(ctx.log, (std::vector<std::string>{"L0", "D0"}));
}

// --- factory & naming ------------------------------------------------------------

TEST(SchedulerFactory, MakesAllSchedulers) {
  EXPECT_EQ(make_scheduler("LF")->name(), "LF");
  EXPECT_EQ(make_scheduler("BDF")->name(), "BDF");
  EXPECT_EQ(make_scheduler("EDF")->name(), "EDF");
  EXPECT_EQ(make_scheduler("DELAY")->name(), "DELAY");
  EXPECT_EQ(make_scheduler("FAIR")->name(), "FAIR");
  EXPECT_EQ(make_scheduler("FAIR+DF")->name(), "FAIR+DF");
  EXPECT_THROW(make_scheduler("nope"), std::invalid_argument);
}

// --- running_jobs() scratch-buffer contract --------------------------------------

TEST(RunningJobsView, IteratesAndConvertsWhileFresh) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  const auto view = ctx.running_jobs();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(view[0], 0);
  std::vector<JobId> seen(view.begin(), view.end());
  EXPECT_EQ(seen, (std::vector<JobId>{0, 1}));
}

TEST(RunningJobsView, CopyOutlivesRecycle) {
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  // The implicit conversion is how FairScheduler snapshots the queue; the
  // copy must stay valid after the scratch buffer is recycled.
  std::vector<JobId> copied = ctx.running_jobs();
  (void)ctx.running_jobs();
  EXPECT_EQ(copied, (std::vector<JobId>{0, 1}));
}

#ifndef NDEBUG
TEST(RunningJobsViewDeathTest, StaleViewAssertsAfterRecycle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FakeContext ctx;
  ctx.jobs.push_back({.local = 1, .total_m = 1});
  const auto view = ctx.running_jobs();
  (void)ctx.running_jobs();  // recycles the scratch buffer
  EXPECT_DEATH((void)view.size(), "stale running_jobs");
}
#endif

// --- admission policies ----------------------------------------------------------

/// FakeContext plus per-job tenant tags, for exercising fair admission.
class TenantFakeContext : public FakeContext {
 public:
  std::vector<int> tenants;  // indexed by job id
  int tenant_of(JobId j) const override {
    return tenants[static_cast<std::size_t>(j)];
  }
};

TEST(Admission, FactoryParsesSpecs) {
  EXPECT_EQ(make_admission_policy("")->name(), "fifo");
  EXPECT_EQ(make_admission_policy("fifo")->name(), "fifo");
  EXPECT_EQ(make_admission_policy("fair")->name(), "fair");
  EXPECT_EQ(make_admission_policy("fair:2,1")->name(), "fair");
  EXPECT_THROW(make_admission_policy("lottery"), std::invalid_argument);
  EXPECT_THROW(make_admission_policy("fair:"), std::invalid_argument);
  EXPECT_THROW(make_admission_policy("fair:2,x"), std::invalid_argument);
  EXPECT_THROW(make_admission_policy("fair:1,-1"), std::invalid_argument);
  EXPECT_THROW(make_admission_policy("fair:0"), std::invalid_argument);
}

TEST(Admission, FifoLeavesQueueUntouched) {
  TenantFakeContext ctx;
  std::vector<JobId> jobs = {3, 1, 2, 0};
  FifoAdmission fifo;
  fifo.order(ctx, jobs);
  EXPECT_EQ(jobs, (std::vector<JobId>{3, 1, 2, 0}));
}

TEST(Admission, FairMovesUnderServedTenantForward) {
  TenantFakeContext ctx;
  // Tenant 0 already runs 4 maps across jobs 0 and 1; tenant 1 runs 1.
  ctx.jobs.push_back({.total_m = 10, .running = 3});
  ctx.jobs.push_back({.total_m = 10, .running = 1});
  ctx.jobs.push_back({.total_m = 10, .running = 1});
  ctx.tenants = {0, 0, 1};
  std::vector<JobId> jobs = {0, 1, 2};
  WeightedFairAdmission fair;
  fair.order(ctx, jobs);
  EXPECT_EQ(jobs, (std::vector<JobId>{2, 0, 1}));
}

TEST(Admission, FairKeepsFifoWithinAndAcrossTies) {
  TenantFakeContext ctx;
  // Weighted usage ties at 1.0 per tenant (4/4 vs 1/1): submission order
  // must survive the stable sort both across tenants and within tenant 0.
  ctx.jobs.push_back({.total_m = 10, .running = 3});
  ctx.jobs.push_back({.total_m = 10, .running = 1});
  ctx.jobs.push_back({.total_m = 10, .running = 1});
  ctx.tenants = {0, 0, 1};
  std::vector<JobId> jobs = {0, 1, 2};
  WeightedFairAdmission fair({4.0, 1.0});
  fair.order(ctx, jobs);
  EXPECT_EQ(jobs, (std::vector<JobId>{0, 1, 2}));
}

TEST(Admission, FairSingleTenantIsFifo) {
  TenantFakeContext ctx;
  ctx.jobs.push_back({.total_m = 10, .running = 5});
  ctx.jobs.push_back({.total_m = 10, .running = 0});
  ctx.tenants = {0, 0};
  std::vector<JobId> jobs = {0, 1};
  WeightedFairAdmission fair;
  fair.order(ctx, jobs);
  // One tenant = one sort key; fair degenerates to FIFO, not shortest-job.
  EXPECT_EQ(jobs, (std::vector<JobId>{0, 1}));
}

TEST(Admission, RejectsNonPositiveWeights) {
  EXPECT_THROW(WeightedFairAdmission({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedFairAdmission({-2.0}), std::invalid_argument);
}

TEST(SchedulerNaming, PartialHeuristicNames) {
  DegradedFirstOptions slave_only;
  slave_only.locality_preservation = true;
  slave_only.rack_awareness = false;
  EXPECT_EQ(DegradedFirstScheduler(slave_only).name(), "DF(+slave)");
  DegradedFirstOptions rack_only;
  rack_only.locality_preservation = false;
  rack_only.rack_awareness = true;
  EXPECT_EQ(DegradedFirstScheduler(rack_only).name(), "DF(+rack)");
}

}  // namespace
}  // namespace dfs::core
