#include <gtest/gtest.h>

#include "dfs/analysis/model.h"

namespace dfs::analysis {
namespace {

TEST(Analysis, NormalModeRuntimeDefaults) {
  const ModelParams p;  // paper defaults
  // F*T/(N*L) = 1440*20/(40*4) = 180 s.
  EXPECT_DOUBLE_EQ(normal_mode_runtime(p), 180.0);
}

TEST(Analysis, DegradedReadTimeFormula) {
  const ModelParams p;
  // (R-1)*k*S/(R*W) = 3*12*128MiB / (4*125MB/s).
  const double expect = 3.0 * 12.0 * 128 * 1024 * 1024 / (4.0 * 125e6);
  EXPECT_DOUBLE_EQ(degraded_read_time(p), expect);
  EXPECT_NEAR(degraded_read_time(p), 9.66, 0.01);
}

TEST(Analysis, LocalityFirstComposition) {
  const ModelParams p;
  // 180 + 9 * 9.66 + 20.
  EXPECT_NEAR(locality_first_runtime(p), 286.9, 0.1);
}

TEST(Analysis, DegradedFirstTakesMaxOfBounds) {
  const ModelParams p;
  // Processing bound: 1440*20/(39*4) + 20 = 204.6; transfer bound: 107.0.
  EXPECT_NEAR(degraded_first_runtime(p), 204.6, 0.1);

  // At W = 100 Mbps the transfer bound dominates.
  ModelParams slow = p;
  slow.rack_bandwidth = util::megabits_per_sec(100);
  const double transfer =
      static_cast<double>(slow.num_blocks) /
          (slow.num_nodes * slow.num_racks) * degraded_read_time(slow) +
      slow.map_task_time;
  EXPECT_DOUBLE_EQ(degraded_first_runtime(slow), transfer);
  EXPECT_GT(degraded_first_runtime(slow), degraded_first_runtime(p));
}

TEST(Analysis, DegradedFirstAlwaysBeatsLocalityFirst) {
  // Property sweep over the paper's parameter ranges (Fig. 5).
  for (const auto& [n, k] : {std::pair{8, 6}, {12, 9}, {16, 12}, {20, 15}}) {
    for (const long f : {720L, 1440L, 2160L, 2880L}) {
      for (const double wmbps : {100.0, 200.0, 500.0, 1000.0}) {
        ModelParams p;
        p.n = n;
        p.k = k;
        p.num_blocks = f;
        p.rack_bandwidth = util::megabits_per_sec(wmbps);
        EXPECT_LT(degraded_first_runtime(p), locality_first_runtime(p))
            << "n=" << n << " F=" << f << " W=" << wmbps;
        EXPECT_GT(runtime_reduction_percent(p), 0.0);
      }
    }
  }
}

TEST(Analysis, Figure5aShape) {
  // LF grows with k; DF stays flat (all degraded reads fit in one round).
  double prev_lf = 0.0;
  double first_df = -1.0;
  for (const auto& [n, k] : {std::pair{8, 6}, {12, 9}, {16, 12}, {20, 15}}) {
    ModelParams p;
    p.n = n;
    p.k = k;
    const double lf = normalized_locality_first(p);
    const double df = normalized_degraded_first(p);
    EXPECT_GT(lf, prev_lf);
    prev_lf = lf;
    if (first_df < 0) {
      first_df = df;
    } else {
      EXPECT_DOUBLE_EQ(df, first_df);
    }
    // The paper reports 15%-32% reductions across these schemes.
    const double red = runtime_reduction_percent(p);
    EXPECT_GT(red, 10.0);
    EXPECT_LT(red, 40.0);
  }
}

TEST(Analysis, Figure5bShape) {
  // Normalized runtimes of both schemes decrease with F; reduction 25-28%.
  double prev_lf = 1e9;
  double prev_df = 1e9;
  for (const long f : {720L, 1440L, 2160L, 2880L}) {
    ModelParams p;
    p.num_blocks = f;
    EXPECT_LT(normalized_locality_first(p), prev_lf);
    EXPECT_LE(normalized_degraded_first(p), prev_df);
    prev_lf = normalized_locality_first(p);
    prev_df = normalized_degraded_first(p);
    const double red = runtime_reduction_percent(p);
    EXPECT_GT(red, 20.0);
    EXPECT_LT(red, 35.0);
  }
}

TEST(Analysis, Figure5cShape) {
  // DF runtime is identical at 500 Mbps and 1 Gbps (degraded reads finish
  // within one round), while LF keeps improving with bandwidth.
  ModelParams p500;
  p500.rack_bandwidth = util::megabits_per_sec(500);
  ModelParams p1000;
  p1000.rack_bandwidth = util::megabits_per_sec(1000);
  EXPECT_DOUBLE_EQ(degraded_first_runtime(p500),
                   degraded_first_runtime(p1000));
  EXPECT_GT(locality_first_runtime(p500), locality_first_runtime(p1000));

  ModelParams p100;
  p100.rack_bandwidth = util::megabits_per_sec(100);
  EXPECT_GT(degraded_first_runtime(p100), degraded_first_runtime(p500));
}

TEST(Analysis, NormalizedValuesAboveOne) {
  const ModelParams p;
  EXPECT_GT(normalized_locality_first(p), 1.0);
  EXPECT_GT(normalized_degraded_first(p), 1.0);
}

}  // namespace
}  // namespace dfs::analysis
