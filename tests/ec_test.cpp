#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <cstring>
#include <tuple>

#include "dfs/ec/cauchy.h"
#include "dfs/ec/gf65536.h"
#include "dfs/ec/gf256.h"
#include "dfs/ec/gf256_kernels.h"
#include "dfs/ec/hitchhiker.h"
#include "dfs/ec/linear_code.h"
#include "dfs/ec/lrc.h"
#include "dfs/ec/matrix.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/registry.h"
#include "dfs/ec/wide_rs.h"
#include "dfs/util/rng.h"

namespace dfs::ec {
namespace {

std::vector<Shard> random_shards(util::Rng& rng, int count, std::size_t len) {
  std::vector<Shard> shards(static_cast<std::size_t>(count), Shard(len));
  for (auto& s : shards) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return shards;
}

/// All shards of a stripe: natives followed by parity.
std::vector<Shard> full_stripe(const ErasureCode& code,
                               const std::vector<Shard>& data) {
  std::vector<Shard> all = data;
  for (auto& p : code.encode(data)) all.push_back(std::move(p));
  return all;
}

// --- gf256 ---------------------------------------------------------------------

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, 1), x);
    EXPECT_EQ(gf256::mul(1, x), x);
    EXPECT_EQ(gf256::mul(x, 0), 0);
  }
}

TEST(Gf256, MulCommutative) {
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
  }
}

TEST(Gf256, MulAssociative) {
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c),
              gf256::mul(a, gf256::mul(b, c)));
  }
}

TEST(Gf256, DistributesOverXor) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << a;
    EXPECT_EQ(gf256::div(x, x), 1);
  }
}

TEST(Gf256, DivIsMulByInverse) {
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    EXPECT_EQ(gf256::div(a, b), gf256::mul(a, gf256::inv(b)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 7) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 300; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, MulAddRegionMatchesScalar) {
  util::Rng rng(5);
  Shard dst(333), src(333), expect(333);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const std::uint8_t c = 0x57;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expect[i] = gf256::add(dst[i], gf256::mul(c, src[i]));
  }
  gf256::mul_add_region(dst.data(), src.data(), c, dst.size());
  EXPECT_EQ(dst, expect);
}

TEST(Gf256, ExhaustiveAgainstCarrylessReference) {
  // Reference: schoolbook polynomial multiplication mod x^8+x^4+x^3+x^2+1.
  auto ref_mul = [](std::uint8_t a, std::uint8_t b) {
    unsigned acc = 0;
    unsigned aa = a;
    for (int bit = 0; bit < 8; ++bit) {
      if ((b >> bit) & 1u) acc ^= aa << bit;
    }
    for (int bit = 15; bit >= 8; --bit) {
      if ((acc >> bit) & 1u) acc ^= 0x11Du << (bit - 8);
    }
    return static_cast<std::uint8_t>(acc);
  };
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                ref_mul(static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

// --- matrix ---------------------------------------------------------------------

TEST(Matrix, IdentityInverse) {
  const Matrix i = Matrix::identity(6);
  const auto inv = i.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, i);
}

TEST(Matrix, InvertRoundTrip) {
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(5, 5);
    for (int r = 0; r < 5; ++r) {
      for (int c = 0; c < 5; ++c) {
        m.set(r, c, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
    }
    const auto inv = m.inverted();
    if (!inv) continue;  // singular random matrix; skip
    EXPECT_EQ(m.multiply(*inv), Matrix::identity(5));
    EXPECT_EQ(inv->multiply(m), Matrix::identity(5));
  }
}

TEST(Matrix, SingularReturnsNullopt) {
  Matrix m(3, 3);  // all zeros
  EXPECT_FALSE(m.inverted().has_value());
  Matrix dup(2, 2);  // duplicate rows
  dup.set(0, 0, 7);
  dup.set(0, 1, 9);
  dup.set(1, 0, 7);
  dup.set(1, 1, 9);
  EXPECT_FALSE(dup.inverted().has_value());
}

TEST(Matrix, VandermondeSquareInvertible) {
  for (int k = 1; k <= 20; ++k) {
    EXPECT_TRUE(Matrix::vandermonde(k, k).inverted().has_value()) << k;
  }
}

TEST(Matrix, CauchyAllEntriesNonzero) {
  const Matrix c = Matrix::cauchy(8, 12);
  for (int r = 0; r < 8; ++r) {
    for (int col = 0; col < 12; ++col) EXPECT_NE(c.at(r, col), 0);
  }
}

TEST(Matrix, RankOfProjection) {
  Matrix m(3, 4);
  m.set(0, 0, 1);
  m.set(1, 1, 2);
  m.set(2, 0, 1);  // row 2 == row 0
  EXPECT_EQ(rank(m), 2);
  EXPECT_EQ(rank(Matrix::identity(4)), 4);
  EXPECT_EQ(rank(Matrix(3, 3)), 0);
}

TEST(Matrix, SelectRowsAndAppend) {
  Matrix m = Matrix::vandermonde(4, 3);
  const Matrix sel = m.select_rows({2, 0});
  EXPECT_EQ(sel.rows(), 2);
  EXPECT_EQ(sel.at(0, 1), m.at(2, 1));
  EXPECT_EQ(sel.at(1, 1), m.at(0, 1));
  Matrix top = Matrix::identity(3);
  top.append_rows(sel);
  EXPECT_EQ(top.rows(), 5);
  EXPECT_EQ(top.at(4, 1), m.at(0, 1));
}

// --- Reed-Solomon (parameterized over the paper's coding schemes) ------------------

class RsParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsParamTest, EncodeDecodeAllSingleLosses) {
  const auto [n, k] = GetParam();
  const ReedSolomonCode code(n, k);
  util::Rng rng(100);
  const auto data = random_shards(rng, k, 64);
  const auto stripe = full_stripe(code, data);

  for (int lost = 0; lost < n; ++lost) {
    // Degraded read: any k survivors rebuild the lost shard.
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < n && static_cast<int>(present.size()) < k; ++i) {
      if (i == lost) continue;
      present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code.reconstruct(present, {lost});
    ASSERT_TRUE(rebuilt.has_value()) << "lost=" << lost;
    EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)]);
  }
}

TEST_P(RsParamTest, ToleratesAnyNMinusKLossesSampled) {
  const auto [n, k] = GetParam();
  const ReedSolomonCode code(n, k);
  util::Rng rng(200);
  const auto data = random_shards(rng, k, 40);
  const auto stripe = full_stripe(code, data);

  for (int trial = 0; trial < 25; ++trial) {
    const auto lost_idx =
        rng.sample_indices(static_cast<std::size_t>(n),
                           static_cast<std::size_t>(n - k));
    std::vector<bool> is_lost(static_cast<std::size_t>(n), false);
    std::vector<int> want;
    for (auto l : lost_idx) {
      is_lost[l] = true;
      want.push_back(static_cast<int>(l));
    }
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < n; ++i) {
      if (!is_lost[static_cast<std::size_t>(i)]) {
        present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
      }
    }
    const auto rebuilt = code.reconstruct(present, want);
    ASSERT_TRUE(rebuilt.has_value());
    for (std::size_t w = 0; w < want.size(); ++w) {
      EXPECT_EQ((*rebuilt)[w],
                stripe[static_cast<std::size_t>(want[w])]);
    }
  }
}

TEST_P(RsParamTest, PlanReadUsesKSources) {
  const auto [n, k] = GetParam();
  const ReedSolomonCode code(n, k);
  std::vector<int> available;
  for (int i = 1; i < n; ++i) available.push_back(i);
  const auto plan = code.recovery_plan(available, 0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->options.size(), 1u);
  const auto& opt = plan->options.front();
  EXPECT_EQ(static_cast<int>(opt.sources.size()), k);
  EXPECT_DOUBLE_EQ(opt.total_fraction(), static_cast<double>(k));
  // Honors preference order: the first k available are chosen for MDS codes.
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(opt.sources[static_cast<std::size_t>(i)].shard, i + 1);
    EXPECT_DOUBLE_EQ(opt.sources[static_cast<std::size_t>(i)].fraction, 1.0);
  }
}

TEST_P(RsParamTest, TooFewSurvivorsUndecodable) {
  const auto [n, k] = GetParam();
  const ReedSolomonCode code(n, k);
  util::Rng rng(300);
  const auto data = random_shards(rng, k, 16);
  const auto stripe = full_stripe(code, data);
  std::vector<std::pair<int, const Shard*>> present;
  for (int i = 1; i < k; ++i) {  // only k-1 survivors
    present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(code.reconstruct(present, {0}).has_value());
  std::vector<int> avail;
  for (int i = 1; i < k; ++i) avail.push_back(i);
  EXPECT_FALSE(code.recovery_plan(avail, 0).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    PaperCodingSchemes, RsParamTest,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(8, 6),
                      std::make_tuple(12, 9), std::make_tuple(12, 10),
                      std::make_tuple(16, 12), std::make_tuple(20, 15)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReedSolomon, IsMdsSmallCodes) {
  EXPECT_TRUE(ReedSolomonCode(4, 2).is_mds());
  EXPECT_TRUE(ReedSolomonCode(8, 6).is_mds());
  EXPECT_TRUE(ReedSolomonCode(12, 9).is_mds());
}

TEST(ReedSolomon, SystematicPrefix) {
  const ReedSolomonCode code(8, 6);
  util::Rng rng(7);
  const auto data = random_shards(rng, 6, 24);
  // The first k shards of the stripe are the data itself (systematic).
  const auto stripe = full_stripe(code, data);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(stripe[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)]);
  }
}

TEST(ReedSolomon, RejectsBadShapes) {
  EXPECT_THROW(ReedSolomonCode(2, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCode(2, 0), std::invalid_argument);
  const ReedSolomonCode code(4, 2);
  util::Rng rng(8);
  auto data = random_shards(rng, 2, 16);
  data[1].resize(8);
  EXPECT_THROW(code.encode(data), std::invalid_argument);
  EXPECT_THROW(code.encode({}), std::invalid_argument);
}

TEST(ReedSolomon, CanRegenerateParityShards) {
  const ReedSolomonCode code(6, 4);
  util::Rng rng(9);
  const auto data = random_shards(rng, 4, 32);
  const auto stripe = full_stripe(code, data);
  std::vector<std::pair<int, const Shard*>> present;
  for (int i = 0; i < 4; ++i) {
    present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
  }
  const auto parity = code.reconstruct(present, {4, 5});
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ((*parity)[0], stripe[4]);
  EXPECT_EQ((*parity)[1], stripe[5]);
}

// --- GF(2^16) and wide Reed-Solomon -------------------------------------------------

TEST(Gf65536, InverseRoundTripSampled) {
  util::Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    EXPECT_EQ(gf65536::mul(a, gf65536::inv(a)), 1);
  }
}

TEST(Gf65536, FieldAxiomsSampled) {
  util::Rng rng(22);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const auto b = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const auto c = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    EXPECT_EQ(gf65536::mul(a, b), gf65536::mul(b, a));
    EXPECT_EQ(gf65536::mul(gf65536::mul(a, b), c),
              gf65536::mul(a, gf65536::mul(b, c)));
    EXPECT_EQ(gf65536::mul(a, gf65536::add(b, c)),
              gf65536::add(gf65536::mul(a, b), gf65536::mul(a, c)));
  }
}

TEST(Gf65536, GeneratorHasFullOrder) {
  // alpha = 2 generates the multiplicative group: 2^65535 == 1 and no
  // smaller power among the factor-of-65535 checkpoints is 1.
  EXPECT_EQ(gf65536::pow(2, 65535), 1);
  for (const unsigned d : {3u, 5u, 17u, 257u, 13107u, 21845u, 3855u}) {
    EXPECT_NE(gf65536::pow(2, 65535 / d), 1) << d;
  }
}

TEST(Gf65536, MulAddRegionMatchesScalar) {
  util::Rng rng(23);
  Shard dst(128), src(128), expect(128);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  expect = dst;
  const std::uint16_t c = 0x1e57;
  for (std::size_t i = 0; i < src.size(); i += 2) {
    std::uint16_t s, d;
    std::memcpy(&s, &src[i], 2);
    std::memcpy(&d, &expect[i], 2);
    d = gf65536::add(d, gf65536::mul(c, s));
    std::memcpy(&expect[i], &d, 2);
  }
  gf65536::mul_add_region(dst.data(), src.data(), c, dst.size());
  EXPECT_EQ(dst, expect);
}

TEST(WideRs, RoundTripBeyondGf256Limit) {
  // n = 300 shards is impossible over GF(256); GF(2^16) handles it.
  const WideReedSolomonCode code(300, 290);
  util::Rng rng(24);
  const auto data = random_shards(rng, 290, 16);
  const auto stripe = full_stripe(code, data);
  ASSERT_EQ(stripe.size(), 300u);
  // Lose 10 random shards (the maximum) and rebuild them all.
  const auto lost_idx = rng.sample_indices(300, 10);
  std::vector<bool> is_lost(300, false);
  std::vector<int> want;
  for (auto l : lost_idx) {
    is_lost[l] = true;
    want.push_back(static_cast<int>(l));
  }
  std::vector<std::pair<int, const Shard*>> present;
  for (int i = 0; i < 300; ++i) {
    if (!is_lost[static_cast<std::size_t>(i)]) {
      present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
  }
  const auto rebuilt = code.reconstruct(present, want);
  ASSERT_TRUE(rebuilt.has_value());
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ((*rebuilt)[w], stripe[static_cast<std::size_t>(want[w])]);
  }
}

TEST(WideRs, RejectsOddShardLength) {
  const WideReedSolomonCode code(6, 4);
  util::Rng rng(25);
  const auto data = random_shards(rng, 4, 15);  // odd length
  EXPECT_THROW(code.encode(data), std::invalid_argument);
}

TEST(WideRs, PlanReadUsesKSources) {
  const WideReedSolomonCode code(40, 32);
  std::vector<int> available;
  for (int i = 1; i < 40; ++i) available.push_back(i);
  const auto plan = code.recovery_plan(available, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(static_cast<int>(plan->options.front().sources.size()), 32);
}

TEST(WideRs, AgreesWithGf256RsWhereBothApply) {
  // For n <= 255 both constructions are MDS systematic RS; decodability and
  // read-cost behaviour must match even though the symbols differ.
  const WideReedSolomonCode wide(12, 9);
  const ReedSolomonCode narrow(12, 9);
  util::Rng rng(26);
  const auto data = random_shards(rng, 9, 32);
  const auto ws = full_stripe(wide, data);
  const auto ns = full_stripe(narrow, data);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ws[static_cast<std::size_t>(i)], ns[static_cast<std::size_t>(i)]);
  }
  // Parity bytes differ (different fields), but both rebuild identically.
  for (const auto* stripe : {&ws, &ns}) {
    const ErasureCode& code =
        stripe == &ws ? static_cast<const ErasureCode&>(wide)
                      : static_cast<const ErasureCode&>(narrow);
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 3; i < 12; ++i) {
      present.emplace_back(i, &(*stripe)[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code.reconstruct(present, {0, 1, 2});
    ASSERT_TRUE(rebuilt.has_value());
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ((*rebuilt)[static_cast<std::size_t>(i)],
                data[static_cast<std::size_t>(i)]);
    }
  }
}

// --- single parity & replication ---------------------------------------------------

TEST(SingleParity, XorRecoversAnyOne) {
  const auto code = make_single_parity(5);
  util::Rng rng(10);
  const auto data = random_shards(rng, 5, 16);
  const auto stripe = full_stripe(*code, data);
  for (int lost = 0; lost < 6; ++lost) {
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < 6; ++i) {
      if (i != lost) present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code->reconstruct(present, {lost});
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)]);
  }
}

TEST(Replication, CopiesAreIdentical) {
  const auto code = make_replication(3);
  util::Rng rng(11);
  const auto data = random_shards(rng, 1, 16);
  const auto parity = code->encode(data);
  ASSERT_EQ(parity.size(), 2u);
  EXPECT_EQ(parity[0], data[0]);
  EXPECT_EQ(parity[1], data[0]);
  // Reading a lost copy needs exactly one survivor.
  const auto plan = code->recovery_plan({2}, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->options.front().sources.size(), 1u);
}

// --- Cauchy Reed-Solomon (bit-matrix XOR path) --------------------------------------

class CrsParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrsParamTest, RoundTripAllSingleLosses) {
  const auto [n, k] = GetParam();
  const CauchyReedSolomonCode code(n, k);
  util::Rng rng(400);
  const auto data = random_shards(rng, k, 64);  // multiple of 8
  const auto stripe = full_stripe(code, data);
  for (int lost = 0; lost < n; ++lost) {
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < n && static_cast<int>(present.size()) < k; ++i) {
      if (i != lost) present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code.reconstruct(present, {lost});
    ASSERT_TRUE(rebuilt.has_value()) << lost;
    EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)]);
  }
}

TEST_P(CrsParamTest, MultiLossSampled) {
  const auto [n, k] = GetParam();
  const CauchyReedSolomonCode code(n, k);
  util::Rng rng(500);
  const auto data = random_shards(rng, k, 32);
  const auto stripe = full_stripe(code, data);
  for (int trial = 0; trial < 15; ++trial) {
    const auto lost_idx = rng.sample_indices(static_cast<std::size_t>(n),
                                             static_cast<std::size_t>(n - k));
    std::vector<bool> is_lost(static_cast<std::size_t>(n), false);
    std::vector<int> want;
    for (auto l : lost_idx) {
      is_lost[l] = true;
      want.push_back(static_cast<int>(l));
    }
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < n; ++i) {
      if (!is_lost[static_cast<std::size_t>(i)]) {
        present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
      }
    }
    const auto rebuilt = code.reconstruct(present, want);
    ASSERT_TRUE(rebuilt.has_value());
    for (std::size_t w = 0; w < want.size(); ++w) {
      EXPECT_EQ((*rebuilt)[w], stripe[static_cast<std::size_t>(want[w])]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CrsParamTest,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(8, 6),
                      std::make_tuple(12, 10), std::make_tuple(14, 10)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Crs, RequiresAlignedShards) {
  const CauchyReedSolomonCode code(6, 4);
  util::Rng rng(12);
  const auto data = random_shards(rng, 4, 12);  // not a multiple of 8
  EXPECT_THROW(code.encode(data), std::invalid_argument);
}

TEST(Crs, PlanReadCostIsK) {
  const CauchyReedSolomonCode code(12, 10);
  std::vector<int> available;
  for (int i = 1; i < 12; ++i) available.push_back(i);
  const auto plan = code.recovery_plan(available, 0);
  ASSERT_TRUE(plan.has_value());
  const auto& opt = plan->options.front();
  EXPECT_EQ(opt.sources.size(), 10u);
  EXPECT_DOUBLE_EQ(opt.total_fraction(), 10.0);
}

TEST(Crs, AgreesWithMatrixRsOnDecodability) {
  // Both are MDS: any k-subset decodes. Spot-check agreement of plan sizes.
  const CauchyReedSolomonCode crs(10, 6);
  const ReedSolomonCode rs(10, 6);
  util::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    auto avail = rng.sample_indices(10, 7);
    std::vector<int> a;
    for (auto v : avail) a.push_back(static_cast<int>(v));
    const int lost = [&] {
      for (int i = 0; i < 10; ++i) {
        if (std::find(a.begin(), a.end(), i) == a.end()) return i;
      }
      return -1;
    }();
    const auto p1 = crs.recovery_plan(a, lost);
    const auto p2 = rs.recovery_plan(a, lost);
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p1->options.front().sources.size(),
              p2->options.front().sources.size());
  }
}

// --- LRC -----------------------------------------------------------------------------

TEST(Lrc, SingleDataLossUsesLocalGroup) {
  // LRC(12, 2, 2): groups {0..5}, {6..11}; locals 12, 13; globals 14, 15.
  const LocalReconstructionCode code(12, 2, 2);
  EXPECT_EQ(code.n(), 16);
  EXPECT_EQ(code.group_size(), 6);
  std::vector<int> available;
  for (int i = 0; i < 16; ++i) {
    if (i != 3) available.push_back(i);
  }
  const auto plan = code.recovery_plan(available, 3);
  ASSERT_TRUE(plan.has_value());
  // The local-group option is listed first (preferred).
  const auto& local = plan->options.front();
  EXPECT_EQ(local.sources.size(), 6u);  // 5 group members + local parity
  EXPECT_DOUBLE_EQ(local.total_fraction(), 6.0);
  for (const auto& src : local.sources) {
    EXPECT_TRUE((src.shard >= 0 && src.shard < 6) || src.shard == 12)
        << src.shard;
  }
}

TEST(Lrc, LocalParityLossUsesGroupData) {
  const LocalReconstructionCode code(12, 2, 2);
  std::vector<int> available;
  for (int i = 0; i < 16; ++i) {
    if (i != 13) available.push_back(i);
  }
  const auto plan = code.recovery_plan(available, 13);
  ASSERT_TRUE(plan.has_value());
  const auto& local = plan->options.front();
  EXPECT_EQ(local.sources.size(), 6u);
  for (const auto& src : local.sources) {
    EXPECT_GE(src.shard, 6);
    EXPECT_LT(src.shard, 12);
  }
}

TEST(Lrc, FallsBackToGlobalDecodeWhenGroupBroken) {
  const LocalReconstructionCode code(12, 2, 2);
  // Lose shard 3 AND its local parity 12: the local repair path is gone.
  std::vector<int> available;
  for (int i = 0; i < 16; ++i) {
    if (i != 3 && i != 12) available.push_back(i);
  }
  const auto plan = code.recovery_plan(available, 3);
  ASSERT_TRUE(plan.has_value());
  // The local option is gone; only the global matrix decode remains.
  EXPECT_GT(plan->options.front().sources.size(), 6u);
}

TEST(Lrc, ReconstructsRealBytesLocally) {
  const LocalReconstructionCode code(8, 2, 2);
  util::Rng rng(14);
  const auto data = random_shards(rng, 8, 48);
  const auto stripe = full_stripe(code, data);
  // Lose data shard 1; rebuild from its group (0..3) + local parity 8.
  std::vector<std::pair<int, const Shard*>> present;
  for (int i : {0, 2, 3, 8}) {
    present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
  }
  const auto rebuilt = code.reconstruct(present, {1});
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->front(), stripe[1]);
}

TEST(Lrc, SurvivesUpToGlobalParityLosses) {
  const LocalReconstructionCode code(8, 2, 2);
  util::Rng rng(15);
  const auto data = random_shards(rng, 8, 32);
  const auto stripe = full_stripe(code, data);
  // Lose one data shard per group plus one global: 3 losses, decodable via
  // locals + remaining global.
  std::vector<std::pair<int, const Shard*>> present;
  std::vector<int> want = {0, 4, 10};
  for (int i = 0; i < 12; ++i) {
    if (std::find(want.begin(), want.end(), i) == want.end()) {
      present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
  }
  const auto rebuilt = code.reconstruct(present, want);
  ASSERT_TRUE(rebuilt.has_value());
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ((*rebuilt)[w], stripe[static_cast<std::size_t>(want[w])]);
  }
}

TEST(Lrc, RejectsBadParameters) {
  EXPECT_THROW(LocalReconstructionCode(12, 5, 2), std::invalid_argument);
  EXPECT_THROW(LocalReconstructionCode(12, 0, 2), std::invalid_argument);
}

// --- Hitchhiker-XOR ----------------------------------------------------------------

/// Slice a full shard down to the substripes a RecoverySource asks for,
/// exactly as a degraded reader would fetch them (ascending, concatenated).
Shard slice_shard(const Shard& full, unsigned substripes, int parts) {
  const std::size_t sub = full.size() / static_cast<std::size_t>(parts);
  Shard out;
  for (int s = 0; s < parts; ++s) {
    if (!(substripes & (1u << static_cast<unsigned>(s)))) continue;
    out.insert(out.end(),
               full.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(s) * sub),
               full.begin() + static_cast<std::ptrdiff_t>(
                                  (static_cast<std::size_t>(s) + 1) * sub));
  }
  return out;
}

/// Decode `lost` from the given recovery option, feeding the decoder only
/// the substripes the option says to fetch.
std::optional<std::vector<Shard>> decode_via_option(
    const ErasureCode& code, const std::vector<Shard>& stripe,
    const RecoveryOption& opt, int lost) {
  std::vector<Shard> sliced;
  sliced.reserve(opt.sources.size());
  for (const auto& src : opt.sources) {
    sliced.push_back(slice_shard(stripe[static_cast<std::size_t>(src.shard)],
                                 src.substripes, code.substripe_count()));
  }
  std::vector<ErasureCode::PresentSlice> present;
  for (std::size_t i = 0; i < opt.sources.size(); ++i) {
    present.push_back(
        {opt.sources[i].shard, opt.sources[i].substripes, &sliced[i]});
  }
  return code.reconstruct_slices(present, {lost});
}

TEST(Hitchhiker, RoundTripAllSingleLossesFullShards) {
  const HitchhikerXorCode code(14, 10);
  util::Rng rng(700);
  const auto data = random_shards(rng, 10, 64);
  const auto stripe = full_stripe(code, data);
  for (int lost = 0; lost < 14; ++lost) {
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < 14 && static_cast<int>(present.size()) < 10; ++i) {
      if (i != lost) present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code.reconstruct(present, {lost});
    ASSERT_TRUE(rebuilt.has_value()) << lost;
    EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)]) << lost;
  }
}

TEST(Hitchhiker, MultiLossDecodableLikeRs) {
  // Any n - k = 4 erasures stay decodable: the code keeps RS fault tolerance.
  const HitchhikerXorCode code(14, 10);
  util::Rng rng(701);
  const auto data = random_shards(rng, 10, 32);
  const auto stripe = full_stripe(code, data);
  for (int trial = 0; trial < 12; ++trial) {
    const auto lost_idx = rng.sample_indices(14, 4);
    std::vector<bool> is_lost(14, false);
    std::vector<int> want;
    for (auto l : lost_idx) {
      is_lost[l] = true;
      want.push_back(static_cast<int>(l));
    }
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 0; i < 14; ++i) {
      if (!is_lost[static_cast<std::size_t>(i)]) {
        present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
      }
    }
    const auto rebuilt = code.reconstruct(present, want);
    ASSERT_TRUE(rebuilt.has_value());
    for (std::size_t w = 0; w < want.size(); ++w) {
      EXPECT_EQ((*rebuilt)[w], stripe[static_cast<std::size_t>(want[w])]);
    }
  }
}

TEST(Hitchhiker, GroupsPartitionDataShards) {
  const HitchhikerXorCode code(14, 10);
  EXPECT_EQ(code.substripe_count(), 2);
  EXPECT_EQ(code.piggyback_groups(), 3);  // parities 1..3 carry piggybacks
  int total = 0;
  for (int g = 0; g < code.piggyback_groups(); ++g) {
    EXPECT_GT(code.group_size(g), 0);
    total += code.group_size(g);
  }
  EXPECT_EQ(total, 10);
  for (int i = 0; i < 10; ++i) {
    const int g = code.group_of(i);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, code.piggyback_groups());
  }
  // Balanced contiguous split of 10 over 3 groups: sizes 4, 3, 3.
  EXPECT_EQ(code.group_size(0), 4);
  EXPECT_EQ(code.group_size(1), 3);
  EXPECT_EQ(code.group_size(2), 3);
}

TEST(Hitchhiker, DataRepairDownloadsSubShards) {
  const HitchhikerXorCode code(14, 10);
  std::vector<int> available;
  for (int i = 1; i < 14; ++i) available.push_back(i);
  const auto plan = code.recovery_plan(available, 0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_GE(plan->options.size(), 2u);
  // Preferred option: (k + |G_0|) / 2 = (10 + 4) / 2 = 7 shard-equivalents,
  // versus k = 10 for the full-shard fallback.
  const auto& sub = plan->options.front();
  EXPECT_DOUBLE_EQ(sub.total_fraction(), 7.0);
  EXPECT_LT(sub.total_fraction(), 10.0);
  const auto& fallback = plan->options.back();
  EXPECT_DOUBLE_EQ(fallback.total_fraction(), 10.0);
  // Group-mates of shard 0 (shards 1..3) are fetched whole; everything else
  // contributes a half shard.
  for (const auto& src : sub.sources) {
    if (src.shard >= 1 && src.shard <= 3) {
      EXPECT_DOUBLE_EQ(src.fraction, 1.0) << src.shard;
    } else {
      EXPECT_DOUBLE_EQ(src.fraction, 0.5) << src.shard;
    }
  }
}

TEST(Hitchhiker, SubShardRepairIsByteExact) {
  const HitchhikerXorCode code(14, 10);
  util::Rng rng(702);
  const auto data = random_shards(rng, 10, 128);
  const auto stripe = full_stripe(code, data);
  std::vector<int> all;
  for (int i = 0; i < 14; ++i) all.push_back(i);
  for (int lost = 0; lost < 10; ++lost) {
    std::vector<int> available;
    for (int i : all) {
      if (i != lost) available.push_back(i);
    }
    const auto plan = code.recovery_plan(available, lost);
    ASSERT_TRUE(plan.has_value()) << lost;
    const auto& opt = plan->options.front();
    EXPECT_LT(opt.total_fraction(), 10.0) << lost;
    const auto rebuilt = decode_via_option(code, stripe, opt, lost);
    ASSERT_TRUE(rebuilt.has_value()) << lost;
    EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)]) << lost;
  }
}

TEST(Hitchhiker, FallsBackToFullShardsWhenSubSetBroken) {
  const HitchhikerXorCode code(14, 10);
  // Lose data shard 0 AND data shard 9 (outside 0's group): the sub-shard
  // set needs every other data shard's b-half, so only the fallback remains.
  std::vector<int> available;
  for (int i = 1; i < 14; ++i) {
    if (i != 9) available.push_back(i);
  }
  const auto plan = code.recovery_plan(available, 0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->options.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->options.front().total_fraction(), 10.0);
}

TEST(Hitchhiker, ParityRepairUsesFullShards) {
  const HitchhikerXorCode code(14, 10);
  std::vector<int> available;
  for (int i = 0; i < 13; ++i) available.push_back(i);
  const auto plan = code.recovery_plan(available, 13);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->options.front().total_fraction(), 10.0);
}

TEST(Hitchhiker, RejectsOddShardLength) {
  const HitchhikerXorCode code(6, 4);
  util::Rng rng(703);
  const auto data = random_shards(rng, 4, 15);  // odd length
  EXPECT_THROW(code.encode(data), std::invalid_argument);
}

TEST(Hitchhiker, RejectsBadParameters) {
  EXPECT_THROW(HitchhikerXorCode(5, 4), std::invalid_argument);   // n-k < 2
  EXPECT_THROW(HitchhikerXorCode(4, 0), std::invalid_argument);
  EXPECT_THROW(HitchhikerXorCode(4, 4), std::invalid_argument);
}

// --- code spec registry -----------------------------------------------------------

TEST(Registry, ParsesEveryFamily) {
  EXPECT_EQ(make_code_from_spec("rs:20,15")->name(), "RS(20,15)");
  EXPECT_EQ(make_code_from_spec("rs16:300,290")->name(), "RS16(300,290)");
  EXPECT_EQ(make_code_from_spec("crs:12,10")->name(), "CRS(12,10)");
  EXPECT_EQ(make_code_from_spec("lrc:12,2,2")->name(), "LRC(k=12,l=2,r=2)");
  EXPECT_EQ(make_code_from_spec("hh:14,10")->name(), "HH-XOR(14,10)");
  EXPECT_EQ(make_code_from_spec("xor:5")->name(), "XOR(6,5)");
  EXPECT_EQ(make_code_from_spec("rep:3")->name(), "REP(3)");
}

TEST(Registry, MalformedSpecsReturnNull) {
  // Contract: nullptr iff the TEXT is malformed (unknown family, wrong
  // arity, or non-numeric parameters) — for every family, uniformly.
  EXPECT_EQ(make_code_from_spec(""), nullptr);
  EXPECT_EQ(make_code_from_spec("rs"), nullptr);
  EXPECT_EQ(make_code_from_spec("rs:12"), nullptr);
  EXPECT_EQ(make_code_from_spec("rs:12,10,3"), nullptr);
  EXPECT_EQ(make_code_from_spec("rs:12,ten"), nullptr);
  EXPECT_EQ(make_code_from_spec("rs:12,10x"), nullptr);
  EXPECT_EQ(make_code_from_spec("rs16:300"), nullptr);
  EXPECT_EQ(make_code_from_spec("crs:"), nullptr);
  EXPECT_EQ(make_code_from_spec("lrc:12,2"), nullptr);
  EXPECT_EQ(make_code_from_spec("hh:14"), nullptr);
  EXPECT_EQ(make_code_from_spec("hh:14,10,2"), nullptr);
  EXPECT_EQ(make_code_from_spec("xor:"), nullptr);
  EXPECT_EQ(make_code_from_spec("rep:three"), nullptr);
  EXPECT_EQ(make_code_from_spec("nope:1,2"), nullptr);
}

TEST(Registry, InvalidParametersThrow) {
  // Contract: std::invalid_argument iff the text parses but the NUMBERS are
  // invalid for the family.
  EXPECT_THROW(make_code_from_spec("rs:2,5"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("rs16:2,5"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("crs:2,5"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("lrc:12,5,2"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("hh:12,11"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("xor:0"), std::invalid_argument);
  EXPECT_THROW(make_code_from_spec("rep:1"), std::invalid_argument);
}

TEST(Registry, HelpMentionsEveryFamily) {
  const std::string help = code_spec_help();
  for (const char* family : {"rs:", "rs16:", "crs:", "lrc:", "hh:", "xor:",
                             "rep:"}) {
    EXPECT_NE(help.find(family), std::string::npos) << family;
  }
}

// --- randomized loss-pattern property test over every registry family --------------

TEST(RecoveryPlanProperty, RandomLossPatternsDecodeByteExactly) {
  // For every code family: under random loss patterns, whenever the code
  // offers a RecoveryPlan, (a) each option only cites available shards,
  // (b) no option costs more than k full shards, and (c) fetching exactly
  // the bytes any option asks for rebuilds the lost shard byte-exactly.
  util::Rng rng(800);
  for (const char* spec : {"rs:6,4", "rs16:12,9", "crs:8,6", "lrc:8,2,2",
                           "hh:8,4", "hh:14,10", "xor:4", "rep:3"}) {
    const auto code = make_code_from_spec(spec);
    ASSERT_NE(code, nullptr) << spec;
    const int n = code->n();
    const int k = code->k();
    const auto data = random_shards(rng, k, 48);  // 48 = lcm-friendly length
    const auto stripe = full_stripe(*code, data);
    for (int trial = 0; trial < 40; ++trial) {
      const int losses = 1 + static_cast<int>(rng.uniform_int(0, n - k));
      const auto lost_idx = rng.sample_indices(static_cast<std::size_t>(n),
                                               static_cast<std::size_t>(losses));
      std::vector<bool> is_lost(static_cast<std::size_t>(n), false);
      for (auto l : lost_idx) is_lost[l] = true;
      std::vector<int> available;
      for (int i = 0; i < n; ++i) {
        if (!is_lost[static_cast<std::size_t>(i)]) available.push_back(i);
      }
      for (auto l : lost_idx) {
        const int lost = static_cast<int>(l);
        const auto plan = code->recovery_plan(available, lost);
        if (!plan.has_value()) continue;  // not decodable under this pattern
        ASSERT_FALSE(plan->options.empty()) << spec;
        for (const auto& opt : plan->options) {
          EXPECT_LE(opt.total_fraction(), static_cast<double>(k) + 1e-9)
              << spec << " lost=" << lost;
          for (const auto& src : opt.sources) {
            EXPECT_TRUE(std::find(available.begin(), available.end(),
                                  src.shard) != available.end())
                << spec << " cites unavailable shard " << src.shard;
            EXPECT_GT(src.fraction, 0.0);
            EXPECT_NE(src.substripes, 0u);
          }
          const auto rebuilt = decode_via_option(*code, stripe, opt, lost);
          ASSERT_TRUE(rebuilt.has_value()) << spec << " lost=" << lost;
          EXPECT_EQ(rebuilt->front(), stripe[static_cast<std::size_t>(lost)])
              << spec << " lost=" << lost;
        }
      }
    }
  }
}

TEST(Registry, ProducedCodesRoundTrip) {
  util::Rng rng(33);
  for (const char* spec : {"rs:6,4", "crs:6,4", "lrc:4,2,1", "xor:4"}) {
    const auto code = make_code_from_spec(spec);
    ASSERT_NE(code, nullptr) << spec;
    const auto data = random_shards(rng, code->k(), 32);
    const auto stripe = full_stripe(*code, data);
    std::vector<std::pair<int, const Shard*>> present;
    for (int i = 1; i < code->n(); ++i) {
      present.emplace_back(i, &stripe[static_cast<std::size_t>(i)]);
    }
    const auto rebuilt = code->reconstruct(present, {0});
    ASSERT_TRUE(rebuilt.has_value()) << spec;
    EXPECT_EQ(rebuilt->front(), stripe[0]) << spec;
  }
}

// --- gf256 region-kernel backends ------------------------------------------
// Every compiled-and-supported backend must be bit-identical to a scalar
// oracle computed straight from gf256::mul (not through the dispatcher), over
// lengths that stress each kernel's vector body, head/tail handling, and the
// strip loop, at unaligned offsets, including exact-alias calls.

void oracle_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) dst[i] = gf256::mul(c, src[i]);
}

void oracle_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ gf256::mul(c, src[i]));
  }
}

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return v;
}

std::vector<gf256::Backend> usable_backends() {
  std::vector<gf256::Backend> out;
  for (auto b : gf256::compiled_backends()) {
    if (gf256::backend_supported(b)) out.push_back(b);
  }
  return out;
}

// Lengths covering: empty, sub-vector, one vector block, off-by-one around
// the 16/32/64-byte SIMD steps, and around the 8 KiB strip boundary.
const std::size_t kKernelLens[] = {0,  1,  2,    3,    15,   16,   17,
                                   31, 32, 33,   63,   64,   65,   100,
                                   1000,   8191, 8192, 8193, 20000};
const std::size_t kKernelOffsets[] = {0, 1, 5, 15};
const std::uint8_t kKernelCoeffs[] = {0, 1, 2, 0x53, 0x8e, 0xff};

class GfKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { gf256::reset_backend(); }
};

TEST_F(GfKernelTest, ScalarAndTableAlwaysCompiled) {
  EXPECT_TRUE(gf256::backend_compiled(gf256::Backend::kScalar));
  EXPECT_TRUE(gf256::backend_compiled(gf256::Backend::kTable));
  EXPECT_TRUE(gf256::backend_supported(gf256::Backend::kScalar));
  EXPECT_TRUE(gf256::backend_supported(gf256::Backend::kTable));
}

TEST_F(GfKernelTest, SetBackendMatchesSupport) {
  for (int i = 0; i < gf256::kBackendCount; ++i) {
    const auto b = static_cast<gf256::Backend>(i);
    EXPECT_EQ(gf256::set_backend(b), gf256::backend_supported(b))
        << gf256::backend_name(b);
    if (gf256::backend_supported(b)) {
      EXPECT_EQ(gf256::active_backend(), b) << gf256::backend_name(b);
    }
  }
}

TEST_F(GfKernelTest, BackendNamesRoundTrip) {
  EXPECT_STREQ(gf256::backend_name(gf256::Backend::kScalar), "scalar");
  EXPECT_STREQ(gf256::backend_name(gf256::Backend::kTable), "table");
  EXPECT_STREQ(gf256::backend_name(gf256::Backend::kSsse3), "ssse3");
  EXPECT_STREQ(gf256::backend_name(gf256::Backend::kAvx2), "avx2");
}

TEST_F(GfKernelTest, SingleSourceKernelsMatchOracle) {
  util::Rng rng(77);
  for (const auto b : usable_backends()) {
    ASSERT_TRUE(gf256::set_backend(b));
    for (const std::size_t len : kKernelLens) {
      for (const std::size_t off : kKernelOffsets) {
        const auto src = random_bytes(rng, off + len);
        const auto dst0 = random_bytes(rng, off + len);
        const std::uint8_t c =
            kKernelCoeffs[rng.uniform_int(0, 5)];

        auto got = dst0;
        gf256::mul_add_region(got.data() + off, src.data() + off, c, len);
        auto want = dst0;
        oracle_mul_add(want.data() + off, src.data() + off, c, len);
        ASSERT_EQ(got, want) << gf256::backend_name(b) << " mul_add len="
                             << len << " off=" << off << " c=" << int{c};

        got = dst0;
        gf256::mul_region(got.data() + off, src.data() + off, c, len);
        want = dst0;
        oracle_mul(want.data() + off, src.data() + off, c, len);
        ASSERT_EQ(got, want) << gf256::backend_name(b) << " mul len=" << len
                             << " off=" << off << " c=" << int{c};

        got = dst0;
        gf256::xor_region(got.data() + off, src.data() + off, len);
        want = dst0;
        for (std::size_t i = 0; i < len; ++i) {
          want[off + i] = static_cast<std::uint8_t>(want[off + i] ^
                                                    src[off + i]);
        }
        ASSERT_EQ(got, want) << gf256::backend_name(b) << " xor len=" << len
                             << " off=" << off;
      }
    }
  }
}

TEST_F(GfKernelTest, ExactAliasingAllowed) {
  util::Rng rng(78);
  for (const auto b : usable_backends()) {
    ASSERT_TRUE(gf256::set_backend(b));
    for (const std::size_t len : {std::size_t{1}, std::size_t{33},
                                  std::size_t{8193}}) {
      for (const std::uint8_t c : kKernelCoeffs) {
        const auto orig = random_bytes(rng, len);

        auto buf = orig;
        gf256::mul_region(buf.data(), buf.data(), c, len);
        auto want = std::vector<std::uint8_t>(len);
        oracle_mul(want.data(), orig.data(), c, len);
        ASSERT_EQ(buf, want) << gf256::backend_name(b) << " alias mul c="
                             << int{c};

        buf = orig;
        gf256::mul_add_region(buf.data(), buf.data(), c, len);
        want = orig;
        for (std::size_t i = 0; i < len; ++i) {
          want[i] = static_cast<std::uint8_t>(want[i] ^
                                              gf256::mul(c, orig[i]));
        }
        ASSERT_EQ(buf, want) << gf256::backend_name(b) << " alias mul_add c="
                             << int{c};

        buf = orig;
        gf256::xor_region(buf.data(), buf.data(), len);
        ASSERT_TRUE(std::all_of(buf.begin(), buf.end(),
                                [](std::uint8_t v) { return v == 0; }))
            << gf256::backend_name(b) << " alias xor";
      }
    }
  }
}

TEST_F(GfKernelTest, MultiSourceKernelsMatchSequentialOracle) {
  util::Rng rng(79);
  for (const auto b : usable_backends()) {
    ASSERT_TRUE(gf256::set_backend(b));
    for (const std::size_t len : kKernelLens) {
      for (const std::size_t count :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{6}}) {
        std::vector<std::vector<std::uint8_t>> src_bufs;
        std::vector<const std::uint8_t*> srcs;
        std::vector<std::uint8_t> coeffs;
        for (std::size_t j = 0; j < count; ++j) {
          src_bufs.push_back(random_bytes(rng, len));
          srcs.push_back(src_bufs.back().data());
          // Bias toward interesting coefficients: 0 and 1 hit skip/xor paths.
          coeffs.push_back(kKernelCoeffs[rng.uniform_int(0, 5)]);
        }
        const auto dst0 = random_bytes(rng, len);

        auto got = dst0;
        gf256::mul_add_region_multi(got.data(), srcs.data(), coeffs.data(),
                                    count, len);
        auto want = dst0;
        for (std::size_t j = 0; j < count; ++j) {
          oracle_mul_add(want.data(), srcs[j], coeffs[j], len);
        }
        ASSERT_EQ(got, want) << gf256::backend_name(b) << " mul_add_multi len="
                             << len << " count=" << count;

        got = dst0;
        gf256::xor_region_multi(got.data(), srcs.data(), count, len);
        want = dst0;
        for (std::size_t j = 0; j < count; ++j) {
          for (std::size_t i = 0; i < len; ++i) {
            want[i] = static_cast<std::uint8_t>(want[i] ^ srcs[j][i]);
          }
        }
        ASSERT_EQ(got, want) << gf256::backend_name(b) << " xor_multi len="
                             << len << " count=" << count;
      }
    }
  }
}

TEST_F(GfKernelTest, BackendsAgreeOnEncode) {
  // End-to-end cross-check: a full RS encode must produce byte-identical
  // parity under every backend (GF arithmetic is exact, so a backend switch
  // can never change stored bytes).
  util::Rng rng(80);
  const auto data = random_shards(rng, 4, 4096 + 24);
  std::vector<std::vector<Shard>> outs;
  for (const auto b : usable_backends()) {
    ASSERT_TRUE(gf256::set_backend(b));
    ReedSolomonCode code(6, 4);
    outs.push_back(code.encode(data));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[i], outs[0]);
  }
}

TEST_F(GfKernelTest, EnvOverrideHonoredByReset) {
#if defined(_WIN32)
  GTEST_SKIP() << "setenv not available";
#else
  ASSERT_EQ(setenv("DFS_GF_BACKEND", "scalar", 1), 0);
  gf256::reset_backend();
  EXPECT_EQ(gf256::active_backend(), gf256::Backend::kScalar);
  ASSERT_EQ(setenv("DFS_GF_BACKEND", "nonsense", 1), 0);
  gf256::reset_backend();  // warns, falls back to auto — just must not crash
  EXPECT_TRUE(gf256::backend_supported(gf256::active_backend()));
  ASSERT_EQ(unsetenv("DFS_GF_BACKEND"), 0);
#endif
}

// --- gf65536 region kernels --------------------------------------------------
// The pair-table fast path (bytes >= kPairTableMinBytes) must agree with the
// per-symbol log/exp path, and the multi kernel with a sequential oracle.

TEST(Gf65536Kernels, PairTablePathMatchesLogExp) {
  util::Rng rng(81);
  // Odd symbol counts straddling the kPairTableMinBytes threshold.
  for (const std::size_t bytes :
       {std::size_t{2}, std::size_t{100}, gf65536::kPairTableMinBytes - 2,
        gf65536::kPairTableMinBytes, gf65536::kPairTableMinBytes + 2,
        std::size_t{20002}}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto c =
          static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      const auto src = random_bytes(rng, bytes);
      const auto dst0 = random_bytes(rng, bytes);

      auto got = dst0;
      gf65536::mul_add_region(got.data(), src.data(), c, bytes);
      auto want = dst0;
      for (std::size_t i = 0; i < bytes; i += 2) {
        std::uint16_t s, d;
        std::memcpy(&s, src.data() + i, 2);
        std::memcpy(&d, want.data() + i, 2);
        d = static_cast<std::uint16_t>(d ^ gf65536::mul(c, s));
        std::memcpy(want.data() + i, &d, 2);
      }
      ASSERT_EQ(got, want) << "mul_add bytes=" << bytes << " c=" << c;

      got = dst0;
      gf65536::mul_region(got.data(), src.data(), c, bytes);
      want.assign(bytes, 0);
      for (std::size_t i = 0; i < bytes; i += 2) {
        std::uint16_t s;
        std::memcpy(&s, src.data() + i, 2);
        const std::uint16_t p = gf65536::mul(c, s);
        std::memcpy(want.data() + i, &p, 2);
      }
      ASSERT_EQ(got, want) << "mul bytes=" << bytes << " c=" << c;
    }
  }
}

TEST(Gf65536Kernels, MultiSourceMatchesSequential) {
  util::Rng rng(82);
  for (const std::size_t bytes :
       {std::size_t{2}, std::size_t{4096}, std::size_t{8192 + 18}}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                    std::size_t{5}}) {
      std::vector<std::vector<std::uint8_t>> src_bufs;
      std::vector<const std::uint8_t*> srcs;
      std::vector<std::uint16_t> coeffs;
      for (std::size_t j = 0; j < count; ++j) {
        src_bufs.push_back(random_bytes(rng, bytes));
        srcs.push_back(src_bufs.back().data());
        coeffs.push_back(j == 0 ? std::uint16_t{1}
                                : static_cast<std::uint16_t>(
                                      rng.uniform_int(0, 65535)));
      }
      const auto dst0 = random_bytes(rng, bytes);

      auto got = dst0;
      gf65536::mul_add_region_multi(got.data(), srcs.data(), coeffs.data(),
                                    count, bytes);
      auto want = dst0;
      for (std::size_t j = 0; j < count; ++j) {
        gf65536::mul_add_region(want.data(), srcs[j], coeffs[j], bytes);
      }
      ASSERT_EQ(got, want) << "bytes=" << bytes << " count=" << count;
    }
  }
}

}  // namespace
}  // namespace dfs::ec
