#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dfs/cluster/simulation.h"
#include "dfs/core/locality_first.h"
#include "dfs/core/scheduler.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/mapreduce/master.h"
#include "dfs/mapreduce/trace.h"
#include "dfs/storage/layout.h"

namespace dfs::mapreduce {
namespace {

/// The cluster_test online harness with the compute-failure fault layer
/// switched on. Tests tweak cfg.fault and then call build(); kill_node()
/// takes a node's storage *and* its TaskTracker, the way LifecycleDriver
/// does when compute_failures is set.
struct FaultHarness {
  ClusterConfig cfg;
  JobInput job;
  util::Rng rng{99};
  sim::Simulator sim;
  storage::FailureScenario failure;
  core::LocalityFirstScheduler lf;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Master> master;

  FaultHarness() {
    cfg.topology = net::Topology(4, 5);
    cfg.links.rack_up = 1000.0;  // bytes/sec; block = 1000 bytes -> 1 s
    cfg.links.rack_down = 1000.0;
    cfg.map_slots_per_node = 2;
    cfg.reduce_slots_per_node = 1;
    cfg.block_size = 1000.0;
    cfg.heartbeat_interval = 1.0;
    cfg.fault.compute_failures = true;

    util::Rng placement(7);
    job.spec.map_time = {5.0, 0.5};
    job.spec.reduce_time = {4.0, 0.4};
    job.spec.num_reducers = 5;
    job.spec.shuffle_ratio = 0.01;
    job.layout = std::make_shared<storage::StorageLayout>(
        storage::random_rack_constrained_layout(120, 8, 6, cfg.topology,
                                                placement));
    job.code = ec::make_reed_solomon(8, 6);
  }

  /// Call after the test has finished tweaking cfg.fault.
  void build() {
    net = std::make_unique<net::Network>(sim, cfg.topology, cfg.links,
                                         cfg.contention);
    master = std::make_unique<Master>(sim, *net, cfg, failure, lf, rng);
  }

  void kill_node(NodeId n) {
    failure.fail(n);
    master->on_node_failed(n);
    master->on_compute_failed(n);
  }
};

// --- guard rails ---------------------------------------------------------------

TEST(FaultTolerance, ComputeFailureRequiresTheFaultLayer) {
  FaultHarness h;
  h.cfg.fault.compute_failures = false;
  h.build();
  EXPECT_THROW(h.master->on_compute_failed(3), std::logic_error);
}

// --- slave death mid-job -------------------------------------------------------

TEST(FaultTolerance, SlaveDeathIsDetectedByHeartbeatExpiryAndJobCompletes) {
  FaultHarness h;
  h.build();
  h.master->submit(h.job);
  const util::Seconds fail_at = 2.5;
  h.sim.schedule_at(fail_at, [&h] { h.kill_node(3); });
  h.master->start();
  h.sim.run();

  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].failed);
  EXPECT_GE(r.jobs[0].finish_time, 0.0);
  EXPECT_FALSE(r.data_loss);

  // The node had attempts in flight at the failure; all of them were killed
  // and their tasks re-executed elsewhere, so the job still finished.
  EXPECT_GT(r.count_map_attempts(AttemptOutcome::kKilled), 0);
  for (const auto& t : r.map_tasks) {
    if (t.outcome == AttemptOutcome::kKilled) EXPECT_EQ(t.exec_node, 3);
    if (t.assign_time > fail_at) EXPECT_NE(t.exec_node, 3) << t.id;
  }

  // Death is noticed only when the heartbeat goes stale: the detection
  // lands expiry_multiplier intervals after the last beat, which was at
  // most one interval before the failure.
  ASSERT_EQ(r.detections.size(), 1u);
  const auto& d = r.detections.front();
  EXPECT_EQ(d.node, 3);
  EXPECT_DOUBLE_EQ(d.fail_time, fail_at);
  const double expiry =
      h.cfg.fault.expiry_multiplier * h.cfg.heartbeat_interval;
  EXPECT_GE(d.latency(), expiry - h.cfg.heartbeat_interval);
  EXPECT_LE(d.latency(), expiry);
  EXPECT_DOUBLE_EQ(r.mean_detection_latency(), d.latency());
}

// --- lost map outputs ----------------------------------------------------------

TEST(FaultTolerance, LostMapOutputsAreReExecutedBeforeTheShuffleCompletes) {
  FaultHarness h;
  // More reducers than reduce slots (20): some reducers are still waiting
  // for a slot when the node dies, so every map output on it is still
  // needed and the lost ones must be recomputed.
  h.job.spec.num_reducers = 25;
  h.build();
  h.master->submit(h.job);
  const util::Seconds fail_at = 12.0;  // after the first map wave completed
  h.sim.schedule_at(fail_at, [&h] { h.kill_node(3); });
  h.master->start();
  h.sim.run();

  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_FALSE(r.jobs[0].failed);

  // Maps that had completed on the dead node lost their outputs and were
  // re-executed: the reverted record is flagged, and a fresh winner for the
  // same map index later succeeded on a live node.
  int reverted = 0;
  for (const auto& t : r.map_tasks) {
    if (!t.output_lost) continue;
    ++reverted;
    EXPECT_EQ(t.exec_node, 3);
    const bool reexecuted = std::any_of(
        r.map_tasks.begin(), r.map_tasks.end(), [&t](const auto& u) {
          return u.map_index == t.map_index && !u.output_lost && u.winner &&
                 u.outcome == AttemptOutcome::kSuccess && u.exec_node != 3 &&
                 u.finish_time > t.finish_time;
        });
    EXPECT_TRUE(reexecuted) << "map " << t.map_index;
  }
  EXPECT_GT(reverted, 0);
}

// --- attempt exhaustion --------------------------------------------------------

TEST(FaultTolerance, MaxAttemptsAbortsJobsWithoutWedgingTheFifoQueue) {
  FaultHarness h;
  h.cfg.fault.attempt_failure_prob = 1.0;  // every attempt crashes mid-run
  h.cfg.fault.max_attempts = 2;
  h.cfg.fault.retry_backoff = 0.5;
  h.cfg.fault.blacklist_threshold = 0;  // isolate the retry/abort path
  h.build();
  h.master->submit(h.job);
  JobInput second = h.job;
  second.spec.id = 1;
  h.master->submit(second);
  h.master->start();
  h.sim.run();

  // Both jobs abort (nothing can ever finish at prob = 1), and the abort
  // unblocks FIFO: the second job still activates, runs, and aborts too
  // instead of waiting forever behind the first.
  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs_failed(), 2);
  for (const auto& j : r.jobs) {
    EXPECT_TRUE(j.failed);
    EXPECT_GE(j.finish_time, 0.0);
  }
  EXPECT_GT(r.count_map_attempts(AttemptOutcome::kFailed), 0);
  // No task ever got more than max_attempts tries.
  for (const auto& t : r.map_tasks) EXPECT_LT(t.attempt, 2) << t.id;
}

// --- blacklisting --------------------------------------------------------------

TEST(FaultTolerance, FlakySlaveIsBlacklistedAndStopsReceivingWork) {
  FaultHarness h;
  h.cfg.fault.attempt_failure_prob = 1.0;
  h.cfg.fault.flaky_nodes = {3};  // only node 3 misbehaves
  h.cfg.fault.blacklist_threshold = 2;
  h.cfg.fault.blacklist_duration = 300.0;
  h.cfg.fault.max_attempts = 6;
  h.cfg.fault.retry_backoff = 0.5;
  h.build();
  h.master->set_admission_open(true);
  h.master->submit(h.job);
  // A second job arrives after the blacklist window has expired: the slave
  // must be a first-class worker again by then.
  JobInput second = h.job;
  second.spec.id = 1;
  second.spec.submit_time = 400.0;
  h.sim.schedule_at(second.spec.submit_time,
                    [&h, second] { h.master->submit(second); });
  h.sim.schedule_at(401.0, [&h] { h.master->finish_admission(); });
  bool blacklisted_mid_run = false;
  h.sim.schedule_at(15.0, [&] {
    blacklisted_mid_run = h.master->blacklisted(3);
  });
  h.master->start();
  h.sim.run();

  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_FALSE(r.jobs[0].failed);
  EXPECT_FALSE(r.jobs[1].failed);
  EXPECT_TRUE(blacklisted_mid_run);

  // Every injected failure happened on the flaky node; after the
  // threshold-th one the first job never put another attempt there (it
  // ends well inside the blacklist window).
  std::vector<double> failure_times;
  for (const auto& t : r.map_tasks) {
    if (t.outcome == AttemptOutcome::kFailed) {
      EXPECT_EQ(t.exec_node, 3);
      if (t.job == 0) failure_times.push_back(t.finish_time);
    }
  }
  ASSERT_GE(failure_times.size(), 2u);
  std::sort(failure_times.begin(), failure_times.end());
  const double blacklist_time = failure_times[1];
  for (const auto& t : r.map_tasks) {
    if (t.job == 0 && t.exec_node == 3) {
      EXPECT_LE(t.assign_time, blacklist_time) << t.id;
    }
  }
  for (const auto& t : r.reduce_tasks) {
    if (t.job == 0 && t.exec_node == 3) {
      EXPECT_LE(t.assign_time, blacklist_time) << t.id;
    }
  }

  // Unblacklisted after 300 s: the second job uses node 3 again, its
  // attempts there fail again, and the slave is re-blacklisted — the
  // time-based window resets the failure count rather than exiling the
  // node forever.
  const bool reused = std::any_of(
      r.map_tasks.begin(), r.map_tasks.end(),
      [](const auto& t) { return t.job == 1 && t.exec_node == 3; });
  EXPECT_TRUE(reused);
  EXPECT_EQ(r.blacklist_events, 2);
}

// --- hedged reads racing node death --------------------------------------------

TEST(FaultTolerance, HedgedDegradedReadsSurviveHelperDeathMidFlight) {
  // Node 2's storage is down from the start, so its blocks run as supervised
  // degraded reads; node 7 then dies mid-run while hedged fetches are in
  // flight. Every read must resolve — fetches from the dead helper fall back
  // to alternative sources — and the job completes without data loss.
  FaultHarness h;
  h.cfg.hedge.enabled = true;
  h.cfg.hedge.extra_sources = 2;
  h.cfg.fetch.timeout = 30.0;
  h.cfg.straggler.service_mean = 0.2;  // jitter keeps fetches in flight
  h.failure.fail(2);
  h.build();
  h.master->submit(h.job);
  h.sim.schedule_at(2.0, [&h] { h.kill_node(7); });
  h.master->start();
  h.sim.run();

  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].failed);
  EXPECT_FALSE(r.data_loss);
  EXPECT_GT(r.hedge.reads_started, 0u);
  // Every supervised read resolved one way: completed, declared
  // unrecoverable, or cancelled with its doomed attempt.
  EXPECT_EQ(r.hedge.reads_started, r.hedge.reads_completed +
                                       r.hedge.reads_failed +
                                       r.hedge.reads_cancelled);
  EXPECT_EQ(r.hedge.reads_failed, 0u);
  EXPECT_FALSE(r.degraded_fetches.empty());
  // No fetch was ever planned against node 2 — dead before any read began.
  // (Node 7 may legitimately appear as a source of fetches that completed
  // before its death delivered the bytes.)
  for (const auto& f : r.degraded_fetches) EXPECT_NE(f.src, 2);
}

// --- determinism ---------------------------------------------------------------

TEST(FaultTolerance, SameSeedFaultInjectionRunsAreByteIdentical) {
  cluster::ClusterOptions opts;
  opts.horizon = 1800.0;
  opts.warmup = 300.0;
  opts.lifecycle.node_mttf_hours = 1.0;
  opts.config.fault.compute_failures = true;
  opts.config.fault.attempt_failure_prob = 0.02;
  opts.config.fault.max_attempts = 6;
  const auto scheduler = core::make_scheduler("BDF");

  std::ostringstream jsonl1, jsonl2, csv1, csv2;
  {
    cluster::ClusterSimulation simulation(opts, *scheduler, 5);
    const auto result = simulation.run();
    cluster::write_cluster_jsonl(jsonl1, result);
    write_attempt_csv(csv1, result.run);
  }
  {
    cluster::ClusterSimulation simulation(opts, *scheduler, 5);
    const auto result = simulation.run();
    cluster::write_cluster_jsonl(jsonl2, result);
    write_attempt_csv(csv2, result.run);
  }
  ASSERT_FALSE(jsonl1.str().empty());
  EXPECT_EQ(jsonl1.str(), jsonl2.str());
  EXPECT_EQ(csv1.str(), csv2.str());
}


// The fault supervisor drops a dead helper's in-flight partition fetches in
// one queue-order pass over a tombstoned slab. The cancellation order is
// observable (each cancel frees link capacity and can reschedule flows), so
// it must match the original erase-loop order — ascending launch order —
// regardless of how many tombstones earlier removals left behind, and
// survive slab compaction.
TEST(FaultTolerance, InflightKillSweepCancelsInLaunchOrder) {
  ReduceTaskState rt;
  // Launch fetches from two sources, interleaved: even map indices from the
  // doomed node 3, odd ones from the healthy node 5. Flow ids are 1-based
  // (flow 0 is the tombstone marker and never allocated by the network).
  for (int i = 0; i < 24; ++i) {
    rt.inflight_add(InflightFetch{static_cast<net::FlowId>(i + 1), i,
                                  i % 2 == 0 ? NodeId{3} : NodeId{5}});
  }
  // Individual completions punch tombstones ahead of the sweep; removing 16
  // of 24 crosses the live*2 <= size compaction threshold, so the sweep
  // below also runs over a freshly compacted slab.
  for (int i = 0; i < 16; ++i) rt.inflight_remove(i);
  ASSERT_EQ(rt.inflight_count(), 8);

  std::vector<net::FlowId> cancelled;
  rt.inflight_remove_if(
      [](const InflightFetch& f) { return f.src == NodeId{3}; },
      [&](const InflightFetch& f) { cancelled.push_back(f.flow); });
  EXPECT_EQ(cancelled, (std::vector<net::FlowId>{17, 19, 21, 23}));
  EXPECT_EQ(rt.inflight_count(), 4);

  // The survivors still iterate in launch order and stay individually
  // addressable by map index.
  std::vector<net::FlowId> survivors;
  rt.inflight_for_each(
      [&](const InflightFetch& f) { survivors.push_back(f.flow); });
  EXPECT_EQ(survivors, (std::vector<net::FlowId>{18, 20, 22, 24}));
  rt.inflight_remove(19);
  EXPECT_EQ(rt.inflight_count(), 3);
  rt.inflight_clear();
  EXPECT_EQ(rt.inflight_count(), 0);
  rt.inflight_for_each([](const InflightFetch&) { FAIL(); });
}

}  // namespace
}  // namespace dfs::mapreduce
