#include <gtest/gtest.h>

#include <memory>

#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/ec/cauchy.h"
#include "dfs/ec/lrc.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/registry.h"
#include "dfs/engine/block_store.h"
#include "dfs/engine/runner.h"
#include "dfs/engine/text_jobs.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"
#include "dfs/workload/text.h"

namespace dfs::engine {
namespace {

// --- text jobs ---------------------------------------------------------------

TEST(TextJobs, WordCountCountsWords) {
  const auto job = make_word_count();
  const KeyCounts c = job->map("the cat and the dog\nthe end\n");
  EXPECT_EQ(c.at("the"), 3);
  EXPECT_EQ(c.at("cat"), 1);
  EXPECT_EQ(c.at("end"), 1);
  EXPECT_EQ(c.size(), 5u);
}

TEST(TextJobs, WordCountHandlesWhitespaceRuns) {
  const auto job = make_word_count();
  const KeyCounts c = job->map("  a\t b \n\n c  ");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at("a"), 1);
}

TEST(TextJobs, WordCountEmptyInput) {
  const auto job = make_word_count();
  EXPECT_TRUE(job->map("").empty());
  EXPECT_TRUE(job->map("\n\n  \n").empty());
}

TEST(TextJobs, GrepMatchesLines) {
  const auto job = make_grep("cat");
  const KeyCounts c = job->map("the cat sat\ndog only\nconcatenate this\n");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.count("the cat sat"), 1u);
  EXPECT_EQ(c.count("concatenate this"), 1u);
}

TEST(TextJobs, GrepCountsDuplicateLines) {
  const auto job = make_grep("x");
  const KeyCounts c = job->map("x marks\nx marks\n");
  EXPECT_EQ(c.at("x marks"), 2);
}

TEST(TextJobs, LineCountCountsLines) {
  const auto job = make_line_count();
  const KeyCounts c = job->map("alpha\nbeta\nalpha\n");
  EXPECT_EQ(c.at("alpha"), 2);
  EXPECT_EQ(c.at("beta"), 1);
}

TEST(TextJobs, MergeCountsSums) {
  KeyCounts a{{"x", 1}, {"y", 2}};
  const KeyCounts b{{"y", 3}, {"z", 4}};
  merge_counts(a, b);
  EXPECT_EQ(a.at("x"), 1);
  EXPECT_EQ(a.at("y"), 5);
  EXPECT_EQ(a.at("z"), 4);
}

// --- block store -----------------------------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  StoreTest()
      : topo_(2, 3),
        rng_(21),
        layout_(storage::random_rack_constrained_layout(12, 4, 2, topo_,
                                                        rng_)),
        code_(ec::make_reed_solomon(4, 2)),
        text_(workload::generate_text(rng_, 12 * 256)),
        store_((text_.resize(12 * 256), text_), layout_, *code_, 256) {}

  net::Topology topo_;
  util::Rng rng_;
  storage::StorageLayout layout_;
  std::unique_ptr<ec::ErasureCode> code_;
  std::string text_;
  ByteBlockStore store_;
};

TEST_F(StoreTest, NativeBlocksHoldTheFileBytes) {
  std::string reassembled;
  for (int i = 0; i < layout_.num_native_blocks(); ++i) {
    const auto& shard = store_.native(i);
    reassembled.append(reinterpret_cast<const char*>(shard.data()),
                       shard.size());
  }
  // The file's bytes come back in order (tail padded with '\n').
  EXPECT_EQ(reassembled.substr(0, text_.size()), text_);
  for (std::size_t i = text_.size(); i < reassembled.size(); ++i) {
    EXPECT_EQ(reassembled[i], '\n');
  }
}

TEST_F(StoreTest, ParityShardsVerifyAgainstReencode) {
  // Every stripe's parity equals a fresh encode of its natives.
  for (int s = 0; s < layout_.num_stripes(); ++s) {
    std::vector<ec::Shard> natives;
    for (int b = 0; b < layout_.k(); ++b) {
      natives.push_back(store_.shard({s, b}));
    }
    const auto parity = code_->encode(natives);
    for (int p = 0; p < layout_.n() - layout_.k(); ++p) {
      EXPECT_EQ(parity[static_cast<std::size_t>(p)],
                store_.shard({s, layout_.k() + p}));
    }
  }
}

TEST_F(StoreTest, ReconstructFromPlannedSources) {
  const storage::DegradedReadPlanner planner(
      layout_, topo_, *code_, storage::SourceSelection::kRandom);
  const net::NodeId victim = layout_.node_of({0, 0});
  const storage::FailureScenario failure({victim});
  const auto sources = planner.plan({0, 0}, (victim + 1) % 6, failure, rng_);
  ASSERT_TRUE(sources.has_value());
  const ec::Shard rebuilt = store_.reconstruct({0, 0}, *sources);
  EXPECT_EQ(rebuilt, store_.shard({0, 0}));
}

TEST_F(StoreTest, RejectsMisalignedBlockSize) {
  EXPECT_THROW(ByteBlockStore(text_, layout_, *code_, 100),
               std::invalid_argument);
}

TEST_F(StoreTest, RejectsCrossStripeSources) {
  std::vector<storage::DegradedSource> bad = {
      {{1, 1}, layout_.node_of({1, 1})}};
  EXPECT_THROW(store_.reconstruct({0, 0}, bad), std::invalid_argument);
}

// --- end-to-end functional runs ----------------------------------------------------

struct FunctionalFixture {
  net::Topology topo{2, 3};
  mapreduce::ClusterConfig cfg;
  mapreduce::JobInput job;
  util::Rng rng{77};
  std::string text;
  std::unique_ptr<ec::ErasureCode> code = ec::make_reed_solomon(4, 2);
  std::unique_ptr<ByteBlockStore> store;

  FunctionalFixture() {
    cfg.topology = topo;
    cfg.links.rack_up = 1000.0;
    cfg.links.rack_down = 1000.0;
    cfg.map_slots_per_node = 2;
    cfg.block_size = 1000.0;
    cfg.heartbeat_interval = 1.0;

    job.spec.map_time = {2.0, 0.2};
    job.spec.reduce_time = {2.0, 0.2};
    job.spec.num_reducers = 3;
    job.spec.shuffle_ratio = 0.05;
    job.layout = std::make_shared<storage::StorageLayout>(
        storage::random_rack_constrained_layout(24, 4, 2, topo, rng));
    job.code = ec::make_reed_solomon(4, 2);

    text = workload::generate_text(rng, 24 * 512);
    store = std::make_unique<ByteBlockStore>(text, *job.layout, *code, 512);
  }
};

TEST(FunctionalRun, NormalModeMatchesReference) {
  FunctionalFixture f;
  const auto wc = make_word_count();
  core::LocalityFirstScheduler lf;
  const auto result = run_functional_job(f.cfg, f.job, *f.store, *wc,
                                         storage::no_failure(), lf, 5);
  EXPECT_EQ(result.degraded_reconstructions, 0);
  EXPECT_TRUE(result.reconstruction_verified);
  EXPECT_EQ(result.totals, reference_run(*f.store, *wc));
}

TEST(FunctionalRun, FailureModeStillProducesExactOutput) {
  FunctionalFixture f;
  const auto wc = make_word_count();
  auto edf = core::DegradedFirstScheduler::enhanced();
  const storage::FailureScenario failure({0});
  const auto result =
      run_functional_job(f.cfg, f.job, *f.store, *wc, failure, edf, 6);
  EXPECT_GT(result.degraded_reconstructions, 0);
  EXPECT_TRUE(result.reconstruction_verified);
  // Word counts are bit-identical despite the lost node: degraded reads
  // really reconstructed the lost blocks.
  EXPECT_EQ(result.totals, reference_run(*f.store, *wc));
}

TEST(FunctionalRun, SchedulerDoesNotChangeOutput) {
  FunctionalFixture f;
  const auto lc = make_line_count();
  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();
  const storage::FailureScenario failure({2});
  const auto a = run_functional_job(f.cfg, f.job, *f.store, *lc, failure, lf, 7);
  const auto b =
      run_functional_job(f.cfg, f.job, *f.store, *lc, failure, edf, 7);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_TRUE(a.reconstruction_verified);
  EXPECT_TRUE(b.reconstruction_verified);
}

TEST(FunctionalRun, GrepFindsPlantedLines) {
  FunctionalFixture f;
  const auto grep = make_grep(workload::vocabulary_word(0));
  core::LocalityFirstScheduler lf;
  const storage::FailureScenario failure({1});
  const auto result =
      run_functional_job(f.cfg, f.job, *f.store, *grep, failure, lf, 8);
  EXPECT_EQ(result.totals, reference_run(*f.store, *grep));
  EXPECT_FALSE(result.totals.empty());  // rank-1 word appears somewhere
}

TEST(FunctionalRun, WorksWithCauchyReedSolomon) {
  FunctionalFixture f;
  f.job.code = ec::make_cauchy_reed_solomon(4, 2);
  const auto crs = ec::make_cauchy_reed_solomon(4, 2);
  ByteBlockStore store(f.text, *f.job.layout, *crs, 512);
  const auto wc = make_word_count();
  auto edf = core::DegradedFirstScheduler::enhanced();
  const storage::FailureScenario failure({3});
  const auto result =
      run_functional_job(f.cfg, f.job, store, *wc, failure, edf, 9);
  EXPECT_GT(result.degraded_reconstructions, 0);
  EXPECT_TRUE(result.reconstruction_verified);
  EXPECT_EQ(result.totals, reference_run(store, *wc));
}

TEST(FunctionalRun, WorksWithLrc) {
  // LRC(4, 2, 1): n = 7; use a wider cluster so placement is feasible.
  FunctionalFixture f;
  f.cfg.topology = net::Topology(3, 3);
  util::Rng rng(31);
  auto lrc_for_layout = ec::make_lrc(4, 2, 1);
  f.job.layout = std::make_shared<storage::StorageLayout>(
      storage::random_rack_constrained_layout(24, 7, 4, f.cfg.topology, rng));
  f.job.code = ec::make_lrc(4, 2, 1);
  ByteBlockStore store(f.text, *f.job.layout, *lrc_for_layout, 512);
  const auto wc = make_word_count();
  auto edf = core::DegradedFirstScheduler::enhanced();
  const storage::FailureScenario failure({0});
  const auto result =
      run_functional_job(f.cfg, f.job, store, *wc, failure, edf, 10);
  EXPECT_TRUE(result.reconstruction_verified);
  EXPECT_EQ(result.totals, reference_run(store, *wc));
  // LRC degraded reads fetch only the locality group (2 shards + parity...
  // group size k/l = 2, so 2 sources when the group is intact).
  for (const auto& t : result.timing.map_tasks) {
    if (t.kind == mapreduce::MapTaskKind::kDegraded) {
      EXPECT_LE(t.sources.size(), 4u);
      EXPECT_GE(t.sources.size(), 2u);
    }
  }
}

TEST(FunctionalRun, MapOnlyJobAccumulatesDirectly) {
  FunctionalFixture f;
  f.job.spec.num_reducers = 0;
  f.job.spec.shuffle_ratio = 0.0;
  const auto wc = make_word_count();
  core::LocalityFirstScheduler lf;
  const auto result = run_functional_job(f.cfg, f.job, *f.store, *wc,
                                         storage::no_failure(), lf, 11);
  EXPECT_EQ(result.totals, reference_run(*f.store, *wc));
}

// --- parameterized functional sweep: every code family x scheduler ------------------

using FunctionalParam = std::tuple<std::string, std::string>;

class FunctionalSweep : public ::testing::TestWithParam<FunctionalParam> {};

TEST_P(FunctionalSweep, OutputIdenticalToReference) {
  const auto& [code_spec, sched_name] = GetParam();
  mapreduce::ClusterConfig cfg;
  // Three racks of three nodes: wide enough for every swept code's
  // rack-placement rule (LRC(4,2,1) has n = 7).
  cfg.topology = net::Topology(3, 3);
  cfg.links.rack_up = 1000.0;
  cfg.links.rack_down = 1000.0;
  cfg.map_slots_per_node = 2;
  cfg.block_size = 1000.0;
  cfg.heartbeat_interval = 1.0;

  util::Rng rng(101);
  auto code = ec::make_code_from_spec(code_spec);
  ASSERT_NE(code, nullptr);
  mapreduce::JobInput job;
  job.spec.map_time = {2.0, 0.2};
  job.spec.reduce_time = {2.0, 0.2};
  job.spec.num_reducers = 3;
  job.spec.shuffle_ratio = 0.05;
  const int blocks = 6 * code->k();
  job.layout = std::make_shared<storage::StorageLayout>(
      storage::random_rack_constrained_layout(blocks, code->n(), code->k(),
                                              cfg.topology, rng));
  job.code = code;

  std::string text = workload::generate_text(rng, blocks * 512);
  text.resize(static_cast<std::size_t>(blocks) * 512);
  const ByteBlockStore store(text, *job.layout, *code, 512);
  const auto wc = make_word_count();
  const KeyCounts expected = reference_run(store, *wc);

  const auto scheduler = core::make_scheduler(sched_name);
  const storage::FailureScenario failure({1});
  const auto result =
      run_functional_job(cfg, job, store, *wc, failure, *scheduler, 7);
  EXPECT_TRUE(result.reconstruction_verified);
  EXPECT_EQ(result.totals, expected)
      << code_spec << " under " << sched_name;
}

INSTANTIATE_TEST_SUITE_P(
    CodesAndSchedulers, FunctionalSweep,
    ::testing::Combine(::testing::Values("rs:6,4", "crs:6,4", "lrc:4,2,1",
                                         "rs16:6,4"),
                       ::testing::Values("LF", "EDF", "BDF")),
    [](const ::testing::TestParamInfo<FunctionalParam>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == ':' || c == ',' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dfs::engine
