#include <gtest/gtest.h>

#include <vector>

#include "dfs/net/network.h"
#include "dfs/net/topology.h"
#include "dfs/net/utilization.h"
#include "dfs/sim/simulator.h"
#include "dfs/util/rng.h"

namespace dfs::net {
namespace {

// --- topology ----------------------------------------------------------------

TEST(Topology, UniformRacks) {
  const Topology t(4, 10);
  EXPECT_EQ(t.num_nodes(), 40);
  EXPECT_EQ(t.num_racks(), 4);
  EXPECT_EQ(t.rack_of(0), 0);
  EXPECT_EQ(t.rack_of(9), 0);
  EXPECT_EQ(t.rack_of(10), 1);
  EXPECT_EQ(t.rack_of(39), 3);
  EXPECT_TRUE(t.same_rack(11, 19));
  EXPECT_FALSE(t.same_rack(9, 10));
}

TEST(Topology, UnevenRacks) {
  // The motivating example's cluster: rack 0 has 3 nodes, rack 1 has 2.
  const Topology t(std::vector<int>{3, 2});
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_racks(), 2);
  EXPECT_EQ(t.rack_of(2), 0);
  EXPECT_EQ(t.rack_of(3), 1);
  EXPECT_EQ(t.nodes_in_rack(1), (std::vector<NodeId>{3, 4}));
}

// --- network helpers -----------------------------------------------------------

struct Fixture {
  sim::Simulator sim;
  Topology topo{2, 2};  // nodes 0,1 in rack 0; nodes 2,3 in rack 1
  LinkConfig links;

  Fixture() {
    links.node_up = util::kUnlimitedBandwidth;
    links.node_down = util::kUnlimitedBandwidth;
    links.rack_up = 100.0;    // bytes/sec — small numbers for easy math
    links.rack_down = 100.0;
  }
};

TEST(Network, IsolatedTransferTimeCrossRack) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  EXPECT_DOUBLE_EQ(net.isolated_transfer_time(0, 2, 1000.0), 10.0);
}

TEST(Network, IsolatedTransferTimeIntraRackUncontended) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  // Node links unlimited: intra-rack transfers cost no simulated time.
  EXPECT_DOUBLE_EQ(net.isolated_transfer_time(0, 1, 1000.0), 0.0);
}

TEST(Network, IsolatedTimeUsesBottleneck) {
  Fixture f;
  f.links.node_down = 50.0;  // slower than the rack links
  Network net(f.sim, f.topo, f.links);
  EXPECT_DOUBLE_EQ(net.isolated_transfer_time(0, 2, 1000.0), 20.0);
}

TEST(Network, SingleTransferCompletesAtIsolatedTime) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  double done = -1.0;
  net.transfer(0, 2, 1000.0, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(done, 10.0);
  EXPECT_EQ(net.flows_completed(), 1u);
  EXPECT_DOUBLE_EQ(net.bytes_delivered(), 1000.0);
}

TEST(Network, FairShareTwoFlowsSameRackDownlinkDouble) {
  // The paper's motivating contention: two degraded reads into one rack
  // double the download time (10 s -> 20 s).
  Fixture f;
  Network net(f.sim, f.topo, f.links, ContentionModel::kMaxMinFairShare);
  std::vector<double> done;
  net.transfer(0, 2, 1000.0, [&] { done.push_back(f.sim.now()); });
  net.transfer(1, 3, 1000.0, [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(Network, ExclusiveFifoSerializes) {
  Fixture f;
  Network net(f.sim, f.topo, f.links, ContentionModel::kExclusiveFifo);
  std::vector<double> done;
  net.transfer(0, 2, 1000.0, [&] { done.push_back(f.sim.now()); });
  net.transfer(1, 3, 1000.0, [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(Network, FairShareLateArrival) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  double done_a = -1, done_b = -1;
  net.transfer(0, 2, 1000.0, [&] { done_a = f.sim.now(); });
  f.sim.schedule_in(5.0, [&] {
    net.transfer(1, 3, 1000.0, [&] { done_b = f.sim.now(); });
  });
  f.sim.run();
  // A alone 0-5 (500 B done), shared 5-15 (remaining 500 at 50 B/s),
  // then B alone 15-20.
  EXPECT_NEAR(done_a, 15.0, 1e-6);
  EXPECT_NEAR(done_b, 20.0, 1e-6);
}

TEST(Network, OppositeDirectionsDoNotContend) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  std::vector<double> done;
  net.transfer(0, 2, 1000.0, [&] { done.push_back(f.sim.now()); });
  net.transfer(2, 0, 1000.0, [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(Network, SameNodeTransferInstant) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  double done = -1;
  net.transfer(1, 1, 12345.0, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_DOUBLE_EQ(net.bytes_delivered(), 12345.0);
}

TEST(Network, ZeroByteTransferCompletes) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  bool done = false;
  net.transfer(0, 2, 0.0, [&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Network, CompletionCallbackCanStartNewFlow) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  double second_done = -1;
  net.transfer(0, 2, 1000.0, [&] {
    net.transfer(0, 2, 1000.0, [&] { second_done = f.sim.now(); });
  });
  f.sim.run();
  EXPECT_NEAR(second_done, 20.0, 1e-6);
}

TEST(Network, NodeLinkContentionAtDestination) {
  // k source blocks converging on one reader saturate its node downlink.
  Fixture f;
  f.links.node_down = 100.0;
  Network net(f.sim, f.topo, f.links);
  int finished = 0;
  double last = 0.0;
  // Two intra-rack transfers into node 1: share node 1's downlink.
  net.transfer(0, 1, 1000.0, [&] { ++finished; last = f.sim.now(); });
  f.sim.schedule_in(0.0, [&] {
    net.transfer(0, 1, 1000.0, [&] { ++finished; last = f.sim.now(); });
  });
  f.sim.run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(last, 20.0, 1e-6);
}

TEST(Network, ManyFlowsConservation) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    net.transfer(i % 2, 2 + (i % 2), 100.0, [&] { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 50);
  EXPECT_DOUBLE_EQ(net.bytes_delivered(), 5000.0);
  // 5000 bytes through a 100 B/s rack downlink: exactly 50 s busy.
  EXPECT_NEAR(net.rack_down_busy_time(1), 50.0, 1e-6);
}

TEST(Network, FifoSkipsBlockedAndRunsDisjoint) {
  Fixture f;
  Network net(f.sim, f.topo, f.links, ContentionModel::kExclusiveFifo);
  std::vector<int> order;
  net.transfer(0, 2, 1000.0, [&] { order.push_back(0); });  // rack0->rack1
  net.transfer(1, 3, 1000.0, [&] { order.push_back(1); });  // blocked (same links)
  net.transfer(2, 0, 1000.0, [&] { order.push_back(2); });  // reverse: disjoint
  f.sim.run();
  ASSERT_EQ(order.size(), 3u);
  // Flow 2 uses the opposite-direction links and runs concurrently with 0.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(Network, FairShareRatesRespectEveryLink) {
  // Three flows into rack 1: two from rack 0 (share rack0 uplink AND rack1
  // downlink) plus one intra-rack... with node links enabled.
  Fixture f;
  f.links.node_up = 100.0;
  f.links.node_down = 100.0;
  Network net(f.sim, f.topo, f.links);
  std::vector<double> done(3, -1);
  net.transfer(0, 2, 1000.0, [&] { done[0] = f.sim.now(); });
  net.transfer(1, 2, 1000.0, [&] { done[1] = f.sim.now(); });
  net.transfer(3, 2, 1000.0, [&] { done[2] = f.sim.now(); });
  f.sim.run();
  // Node 2's downlink (100 B/s) carries all 3000 bytes: last finishes at 30.
  const double latest = std::max({done[0], done[1], done[2]});
  EXPECT_NEAR(latest, 30.0, 1e-6);
}

// --- utilization sampler --------------------------------------------------------------

TEST(Utilization, MeasuresBusyFraction) {
  sim::Simulator sim;
  const Topology topo(2, 2);
  LinkConfig links;
  links.rack_up = 100.0;
  links.rack_down = 100.0;
  Network net(sim, topo, links);
  // One 1000-byte flow into rack 1: its downlink is busy for 10 s.
  net.transfer(0, 2, 1000.0, [] {});
  bool keep = true;
  UtilizationSampler sampler(sim, net, 5.0, [&keep] { return keep; });
  sampler.start();
  sim.schedule_at(40.0, [&keep] { keep = false; });
  sim.run();
  ASSERT_GE(sampler.samples().size(), 8u);
  // First two intervals: rack 1's downlink busy -> mean over 2 racks = 0.5.
  EXPECT_NEAR(sampler.samples()[0].utilization, 0.5, 1e-9);
  EXPECT_NEAR(sampler.samples()[1].utilization, 0.5, 1e-9);
  // After t=10 the network is idle.
  EXPECT_NEAR(sampler.samples()[3].utilization, 0.0, 1e-9);
  EXPECT_NEAR(sampler.mean_utilization(0.0, 10.0), 0.5, 1e-9);
  EXPECT_NEAR(sampler.mean_utilization(10.0, 40.0), 0.0, 1e-9);
}

TEST(Utilization, StopsWhenPredicateFalse) {
  sim::Simulator sim;
  const Topology topo(2, 2);
  Network net(sim, topo, LinkConfig{});
  int allowed = 3;
  UtilizationSampler sampler(sim, net, 1.0, [&allowed] { return --allowed > 0; });
  sampler.start();
  sim.run();
  EXPECT_EQ(sampler.samples().size(), 3u);
}

// --- property sweep over both contention models -------------------------------------

class ContentionParamTest
    : public ::testing::TestWithParam<ContentionModel> {};

TEST_P(ContentionParamTest, RandomFlowsConserveBytesAndRespectPhysics) {
  sim::Simulator sim;
  const Topology topo(3, 4);
  LinkConfig links;
  links.node_up = 500.0;
  links.node_down = 500.0;
  links.rack_up = 1000.0;
  links.rack_down = 1000.0;
  Network net(sim, topo, links, GetParam());

  struct Probe {
    double start = 0, end = -1, size = 0;
    NodeId src = 0, dst = 0;
  };
  std::vector<Probe> probes(200);
  util::Rng rng(77);
  double total = 0;
  for (auto& p : probes) {
    p.src = rng.uniform_int(0, 11);
    p.dst = rng.uniform_int(0, 11);
    p.size = rng.uniform(100.0, 5000.0);
    p.start = rng.uniform(0.0, 50.0);
    total += p.size;
    sim.schedule_at(p.start, [&net, &sim, &p] {
      net.transfer(p.src, p.dst, p.size, [&sim, &p] { p.end = sim.now(); });
    });
  }
  sim.run();

  EXPECT_EQ(net.flows_completed(), 200u);
  EXPECT_NEAR(net.bytes_delivered(), total, 1e-6);
  for (const auto& p : probes) {
    ASSERT_GE(p.end, 0.0) << "flow never completed";
    // No flow can beat the uncontended bottleneck transfer time.
    const double isolated = net.isolated_transfer_time(p.src, p.dst, p.size);
    EXPECT_GE(p.end - p.start, isolated - 1e-6);
  }
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST_P(ContentionParamTest, SequentialEqualsIsolated) {
  // Back-to-back transfers on an otherwise idle network complete at the sum
  // of their isolated times under either discipline.
  sim::Simulator sim;
  const Topology topo(2, 2);
  LinkConfig links;
  links.rack_up = 100.0;
  links.rack_down = 100.0;
  Network net(sim, topo, links, GetParam());
  double done = -1;
  net.transfer(0, 2, 500.0, [&] {
    net.transfer(0, 2, 500.0, [&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

// --- fair-share fast paths vs full water-filling ----------------------------

TEST(Network, FairShareFastPathsMatchFullRecomputeUnderChurn) {
  // Randomized flow churn with the debug cross-check on: every fast-path
  // allocation decision (isolated-flow add, idle-links removal) is re-derived
  // by a full water-filling pass inside the Network, which throws
  // std::logic_error if the rates diverge. The workload mixes contended and
  // isolated flows plus mid-flight cancellations so both fast paths and the
  // full pass are exercised.
  sim::Simulator sim;
  const Topology topo(4, 10);
  LinkConfig links;
  links.rack_up = util::megabits_per_sec(800.0);
  links.rack_down = util::megabits_per_sec(800.0);
  links.node_up = util::megabits_per_sec(400.0);
  links.node_down = util::megabits_per_sec(400.0);
  Network net(sim, topo, links);
  net.set_fair_share_cross_check(true);

  util::Rng rng(12345);
  int done = 0;
  std::vector<FlowId> started;
  for (int i = 0; i < 160; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 39));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, 39));
    const double size = rng.uniform(1e5, 5e6);
    const double at = rng.uniform(0.0, 40.0);
    sim.schedule_in(at, [&net, &done, &started, src, dst, size] {
      started.push_back(net.transfer(src, dst, size, [&done] { ++done; }));
    });
    if (i % 5 == 0) {
      // Cancel some random earlier flow mid-flight (whichever is still
      // active by then; cancel() returning false is fine).
      sim.schedule_in(at + rng.uniform(0.1, 5.0), [&net, &started, i] {
        if (!started.empty()) {
          net.cancel(started[static_cast<std::size_t>(i) % started.size()]);
        }
      });
    }
  }
  sim.run();

  EXPECT_EQ(net.active_flow_count(), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(done) + net.flows_cancelled(),
            net.flows_started());
  // The whole point of the cross-check run: both strategies actually ran.
  EXPECT_GT(net.fair_share_fast_paths(), 0u);
  EXPECT_GT(net.fair_share_full_recomputes(), 0u);
}

// --- batched / aggregated fair-share engine vs the naive per-flow pass -------

TEST(Network, FairShareCancelHeavyChurnMatchesNaive) {
  // Cancel-heavy randomized churn with the cross-check on: after every
  // batched recompute the Network re-derives all rates with the naive
  // per-flow water-filling pass and throws std::logic_error on divergence.
  // Roughly half the flows are cancelled mid-flight, so class membership
  // counts shrink through every path (completion and cancellation) and
  // classes are torn down while their component is still contended.
  sim::Simulator sim;
  const Topology topo(3, 4);
  LinkConfig links;
  links.rack_up = util::megabits_per_sec(400.0);
  links.rack_down = util::megabits_per_sec(400.0);
  links.node_up = util::megabits_per_sec(200.0);
  links.node_down = util::megabits_per_sec(200.0);
  Network net(sim, topo, links);
  net.set_fair_share_cross_check(true);

  util::Rng rng(987654);
  int done = 0;
  std::vector<FlowId> started;
  for (int i = 0; i < 120; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 11));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, 11));
    const double size = rng.uniform(1e5, 8e6);
    const double at = rng.uniform(0.0, 30.0);
    sim.schedule_in(at, [&net, &done, &started, src, dst, size] {
      started.push_back(net.transfer(src, dst, size, [&done] { ++done; }));
    });
    // Every other flow triggers a cancellation attempt against whatever flow
    // started most recently — short delays so the target is usually still
    // mid-flight; cancel() returning false for finished flows is fine.
    if (i % 2 == 0) {
      sim.schedule_in(at + rng.uniform(0.01, 0.3), [&net, &started] {
        if (!started.empty()) net.cancel(started.back());
      });
    }
  }
  sim.run();

  EXPECT_EQ(net.active_flow_count(), 0);
  EXPECT_GT(net.flows_cancelled(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(done) + net.flows_cancelled(),
            net.flows_started());
  // Both engines ran: the naive reference pass (full recomputes) verified
  // every batched decision, and multi-class components were water-filled.
  EXPECT_GT(net.fair_share_full_recomputes(), 0u);
  EXPECT_GT(net.fair_share_component_recomputes(), 0u);
  EXPECT_EQ(net.fair_share_classes_active(), 0);
}

TEST(Network, FairShareSameTimestampBurstsCoalesce) {
  // A k-fan-out burst started inside one event — the shape of a degraded
  // read fetching k blocks at once — must coalesce into a single zero-delay
  // recompute, and identical contended paths must collapse into one class.
  sim::Simulator sim;
  const Topology topo(2, 8);  // nodes 0-7 rack 0, 8-15 rack 1
  LinkConfig links;           // node links unlimited: only rack links contend
  links.rack_up = 100.0;
  links.rack_down = 100.0;
  Network net(sim, topo, links);
  net.set_fair_share_cross_check(true);

  int done = 0;
  sim.schedule_in(0.0, [&] {
    for (NodeId i = 0; i < 8; ++i) {
      net.transfer(i, static_cast<NodeId>(8 + i), 1000.0,
                   [&done] { ++done; });
    }
    // Runs at the same timestamp but after the coalesced recompute (FIFO
    // tie-break): all eight adds were folded into one batch, and the eight
    // identical paths [rack0 up, rack1 down] form a single class, so the
    // component pass took the single-class fast path.
    sim.schedule_in(0.0, [&net] {
      EXPECT_EQ(net.fair_share_batched_recomputes(), 1u);
      EXPECT_EQ(net.fair_share_classes_active(), 1);
      EXPECT_EQ(net.fair_share_fast_paths(), 1u);
      EXPECT_EQ(net.fair_share_component_recomputes(), 0u);
    });
  });
  sim.run();

  // 8 equal flows share the 100 B/s rack links: 12.5 B/s each, done at 80 s.
  EXPECT_EQ(done, 8);
  EXPECT_NEAR(sim.now(), 80.0, 1e-6);
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.flows_started, 8u);
  EXPECT_EQ(s.flows_completed, 8u);
  // The simultaneous completion of all eight flows was itself one batch.
  EXPECT_EQ(s.batched_recomputes, 2u);
  EXPECT_EQ(s.classes_active, 0);
  EXPECT_DOUBLE_EQ(s.bytes_delivered, 8000.0);
}

TEST(Network, FairShareSingleFlowComponentsUseFastPath) {
  // Flows on disjoint link sets form single-class components; each add and
  // removal must resolve through the O(links) fast path without ever
  // water-filling a multi-class component.
  sim::Simulator sim;
  const Topology topo(3, 2);  // nodes 0,1 / 2,3 / 4,5
  LinkConfig links;
  links.rack_up = 100.0;
  links.rack_down = 100.0;
  Network net(sim, topo, links);
  net.set_fair_share_cross_check(true);

  int done = 0;
  // Pairwise disjoint rings: rack0->rack1, rack1->rack2, rack2->rack0 use
  // six distinct directed links. Staggered starts so every add is its own
  // batch.
  net.transfer(0, 2, 1000.0, [&done] { ++done; });
  sim.schedule_in(1.0, [&] { net.transfer(2, 4, 1000.0, [&done] { ++done; }); });
  sim.schedule_in(2.0, [&] { net.transfer(4, 0, 1000.0, [&done] { ++done; }); });
  sim.run();

  EXPECT_EQ(done, 3);
  // Each flow ran uncontended at 100 B/s for its full 1000 bytes.
  EXPECT_NEAR(sim.now(), 12.0, 1e-6);
  EXPECT_EQ(net.fair_share_component_recomputes(), 0u);
  EXPECT_GE(net.fair_share_fast_paths(), 3u);
  EXPECT_EQ(net.fair_share_classes_active(), 0);
}

// --- cancel: idempotence and same-batch races --------------------------------

TEST(Network, CancelIsIdempotentAcrossLifecycle) {
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  bool done = false;
  const FlowId id = net.transfer(0, 2, 1000.0, [&] { done = true; });
  // Mid-flight: first cancel wins, the second is a no-op.
  f.sim.schedule_in(5.0, [&] {
    EXPECT_TRUE(net.cancel(id));
    EXPECT_FALSE(net.cancel(id));
  });
  f.sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(net.flows_cancelled(), 1u);

  // After completion: cancel must refuse (the flow already delivered).
  bool done2 = false;
  const FlowId id2 = net.transfer(0, 2, 1000.0, [&] { done2 = true; });
  f.sim.run();
  EXPECT_TRUE(done2);
  EXPECT_FALSE(net.cancel(id2));
  EXPECT_FALSE(net.cancel(id2));
  EXPECT_EQ(net.flows_cancelled(), 1u);
}

TEST(Network, CancelFromSameBatchCompletionSuppressesDelivery) {
  // Two contended flows on identical paths finish in the same fair-share
  // completion batch, and each one's completion callback cancels the other —
  // the exact shape of cancel-on-quorum, where the winning fetch's callback
  // reconstructs the block and cancels the losers. Whichever flow the batch
  // dispatches first must win: its cancel suppresses the other's queued
  // delivery (and a repeat cancel is a no-op), and the victim's callback
  // never fires. The test is agnostic to the batch's internal order.
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  net.set_fair_share_cross_check(true);
  FlowId a = 0, b = 0;
  int fired = 0;
  bool a_suppressed_b = false, b_suppressed_a = false;
  double batch_at = -1.0;
  a = net.transfer(0, 2, 1000.0, [&] {
    ++fired;
    batch_at = f.sim.now();
    a_suppressed_b = net.cancel(b);
    EXPECT_FALSE(net.cancel(b));  // idempotent on the suppressed victim
  });
  b = net.transfer(1, 3, 1000.0, [&] {
    ++fired;
    batch_at = f.sim.now();
    b_suppressed_a = net.cancel(a);
    EXPECT_FALSE(net.cancel(a));
  });
  f.sim.run();
  // Both shared rack0-up/rack1-down at 50 B/s each: the batch fires at 20 s.
  EXPECT_NEAR(batch_at, 20.0, 1e-6);
  EXPECT_EQ(fired, 1);
  EXPECT_NE(a_suppressed_b, b_suppressed_a);  // exactly one cancel landed
  EXPECT_EQ(net.flows_completed(), 1u);
  EXPECT_EQ(net.flows_cancelled(), 1u);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(Network, CancelAfterDeliveryFromLaterBatchReturnsFalse) {
  // The cancel target completed in an earlier batch: cancel() must report
  // failure instead of double-counting the flow as cancelled.
  Fixture f;
  Network net(f.sim, f.topo, f.links);
  net.set_fair_share_cross_check(true);
  FlowId early = 0;
  bool early_done = false;
  bool late_saw_cancel = true;
  early = net.transfer(0, 2, 500.0, [&] { early_done = true; });  // 5 s
  // Opposite direction: disjoint links, finishes alone at 10 s.
  net.transfer(2, 0, 1000.0, [&] { late_saw_cancel = net.cancel(early); });
  f.sim.run();
  EXPECT_TRUE(early_done);
  EXPECT_FALSE(late_saw_cancel);
  EXPECT_EQ(net.flows_completed(), 2u);
  EXPECT_EQ(net.flows_cancelled(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModels, ContentionParamTest,
                         ::testing::Values(ContentionModel::kMaxMinFairShare,
                                           ContentionModel::kExclusiveFifo),
                         [](const auto& info) {
                           return info.param ==
                                          ContentionModel::kMaxMinFairShare
                                      ? "FairShare"
                                      : "ExclusiveFifo";
                         });

}  // namespace
}  // namespace dfs::net
