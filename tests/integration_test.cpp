#include <gtest/gtest.h>

#include <algorithm>

#include "dfs/analysis/model.h"
#include "dfs/core/degraded_first.h"
#include "dfs/core/locality_first.h"
#include "dfs/mapreduce/simulation.h"
#include "dfs/storage/failure.h"
#include "dfs/workload/scenarios.h"

namespace dfs {
namespace {

using mapreduce::RunResult;
using mapreduce::simulate;

// --- the §III motivating example, replayed through the full stack -----------------

TEST(Integration, MotivatingExampleLocalityFirstDelaysDegradedTasks) {
  // The paper's Fig. 3(a) hand-assigns one degraded task per node and gets a
  // 40 s map phase. The organic heartbeat-driven LF is *worse* than that
  // idealization: the first node to heartbeat takes two degraded tasks on
  // its two slots, serializing four block downloads on its downlink, so the
  // map phase lands in the 50-65 s range. (bench/fig3_motivating also
  // replays the paper's exact lock-step schedule, which yields 40 s.)
  const auto ex = workload::motivating_example();
  core::LocalityFirstScheduler lf;
  const RunResult r =
      simulate(ex.cluster, {ex.job}, ex.failure, lf, 1,
               storage::SourceSelection::kPreferSameRack);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_GT(r.jobs[0].map_phase_end, 40.0);
  EXPECT_LT(r.jobs[0].map_phase_end, 70.0);
  EXPECT_EQ(r.count_map_tasks(mapreduce::MapTaskKind::kDegraded), 4);
  // All degraded tasks launch only after every local task has launched.
  double last_local = 0, first_degraded = 1e18;
  for (const auto& t : r.map_tasks) {
    if (t.kind == mapreduce::MapTaskKind::kDegraded) {
      first_degraded = std::min(first_degraded, t.assign_time);
    } else {
      last_local = std::max(last_local, t.assign_time);
    }
  }
  EXPECT_GE(first_degraded, last_local);
}

TEST(Integration, MotivatingExampleSaving) {
  const auto ex = workload::motivating_example();
  core::LocalityFirstScheduler lf;
  auto bdf = core::DegradedFirstScheduler::basic();
  double lf_sum = 0, df_sum = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    lf_sum += simulate(ex.cluster, {ex.job}, ex.failure, lf, seed,
                       storage::SourceSelection::kPreferSameRack)
                  .jobs[0]
                  .map_phase_end;
    df_sum += simulate(ex.cluster, {ex.job}, ex.failure, bdf, seed,
                       storage::SourceSelection::kPreferSameRack)
                  .jobs[0]
                  .map_phase_end;
  }
  // Fig. 3 reports a 25% saving for the idealized schedules; the organic
  // schedulers must show a clear saving too.
  const double saving = (lf_sum - df_sum) / lf_sum * 100.0;
  EXPECT_GT(saving, 8.0);
  EXPECT_LT(saving, 45.0);
}

// --- reduced-scale Fig. 7-style comparison ----------------------------------------

struct ReducedSim {
  mapreduce::ClusterConfig cfg = workload::default_sim_cluster();
  workload::SimJobOptions opts;

  ReducedSim() {
    // One third of the paper's block count keeps the test under a second
    // while preserving all the contention structure.
    opts.num_blocks = 480;
    opts.num_reducers = 10;
  }

  RunResult run(core::Scheduler& s, std::uint64_t seed, bool fail) {
    util::Rng rng(seed);
    auto job = workload::make_sim_job(0, opts, cfg.topology, rng);
    const auto failure = fail ? storage::single_node_failure(cfg.topology, rng)
                              : storage::no_failure();
    return simulate(cfg, {job}, failure, s, seed + 1000);
  }
};

TEST(Integration, NormalizedRuntimeEdfBeatsLf) {
  ReducedSim sim;
  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();
  double lf_norm = 0, edf_norm = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const double normal = sim.run(lf, seed, false).single_job_runtime();
    lf_norm += sim.run(lf, seed, true).single_job_runtime() / normal;
    edf_norm += sim.run(edf, seed, true).single_job_runtime() / normal;
  }
  EXPECT_LT(edf_norm, lf_norm);
  // Failure mode is never faster than normal mode.
  EXPECT_GE(lf_norm / 3.0, 1.0);
  EXPECT_GE(edf_norm / 3.0, 0.98);
}

TEST(Integration, DegradedReadTimesMuchShorterUnderEdf) {
  ReducedSim sim;
  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();
  double lf_drt = 0, edf_drt = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    lf_drt += sim.run(lf, seed, true).mean_degraded_read_time();
    edf_drt += sim.run(edf, seed, true).mean_degraded_read_time();
  }
  // Fig. 8(b): the degraded read time collapses (~80%+ reduction in the
  // paper); require at least a 40% cut to stay robust at reduced scale.
  EXPECT_LT(edf_drt, 0.6 * lf_drt);
}

TEST(Integration, BdfCreatesMoreRemoteTasksEdfFewer) {
  // Full paper scale (1440 blocks): the remote-task effect of Fig. 8(a) is a
  // tail-of-phase phenomenon and only shows reliably at real scale.
  const auto cfg = workload::default_sim_cluster();
  core::LocalityFirstScheduler lf;
  auto bdf = core::DegradedFirstScheduler::basic();
  auto edf = core::DegradedFirstScheduler::enhanced();
  long lf_remote = 0, bdf_remote = 0, edf_remote = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    util::Rng rng(seed);
    const auto job =
        workload::make_sim_job(0, workload::SimJobOptions{}, cfg.topology, rng);
    const auto failure = storage::single_node_failure(cfg.topology, rng);
    lf_remote += simulate(cfg, {job}, failure, lf, seed + 1).jobs[0].remote_tasks;
    bdf_remote +=
        simulate(cfg, {job}, failure, bdf, seed + 1).jobs[0].remote_tasks;
    edf_remote +=
        simulate(cfg, {job}, failure, edf, seed + 1).jobs[0].remote_tasks;
  }
  // Fig. 8(a): BDF steals locality (more remote tasks than LF); EDF's
  // locality preservation brings the count back below LF's.
  EXPECT_GT(bdf_remote, lf_remote);
  EXPECT_LT(edf_remote, bdf_remote);
  EXPECT_LE(edf_remote, lf_remote);
}

TEST(Integration, MultiJobEdfStillWins) {
  auto cfg = workload::default_sim_cluster();
  workload::SimJobOptions opts;
  opts.num_blocks = 240;
  opts.num_reducers = 8;
  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();

  double lf_total = 0, edf_total = 0;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    util::Rng rng(seed);
    const auto jobs =
        workload::make_multi_job_workload(3, 60.0, opts, cfg.topology, rng);
    const auto failure = storage::single_node_failure(cfg.topology, rng);
    const RunResult a = simulate(cfg, jobs, failure, lf, seed + 50);
    const RunResult b = simulate(cfg, jobs, failure, edf, seed + 50);
    for (const auto& j : a.jobs) lf_total += j.runtime();
    for (const auto& j : b.jobs) edf_total += j.runtime();
  }
  EXPECT_LT(edf_total, lf_total);
}

TEST(Integration, ExtremeCaseEdfBeatsBdf) {
  // §V-C: five bad nodes; BDF's blind degraded placement loses most of its
  // advantage, EDF keeps it.
  auto cfg = workload::extreme_sim_cluster(5);
  std::vector<net::NodeId> bad;
  for (net::NodeId n = 0; n < cfg.topology.num_nodes(); ++n) {
    if (cfg.time_scale(n) > 1.0) bad.push_back(n);
  }
  core::LocalityFirstScheduler lf;
  auto bdf = core::DegradedFirstScheduler::basic();
  auto edf = core::DegradedFirstScheduler::enhanced();
  double lf_t = 0, bdf_t = 0, edf_t = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    auto job = workload::make_extreme_case_job(0, cfg.topology, rng);
    const auto failure =
        storage::single_node_failure_excluding(cfg.topology, rng, bad);
    lf_t += simulate(cfg, {job}, failure, lf, seed).single_job_runtime();
    bdf_t += simulate(cfg, {job}, failure, bdf, seed).single_job_runtime();
    edf_t += simulate(cfg, {job}, failure, edf, seed).single_job_runtime();
  }
  EXPECT_LT(edf_t, lf_t);
  EXPECT_LT(edf_t, bdf_t);
}

// --- analysis model vs simulator --------------------------------------------------

TEST(Integration, SimulatorTracksAnalysisTrends) {
  // The closed-form model and the simulator must agree on the *direction*
  // of the (n,k) sweep: LF degrades as k grows, DF barely moves.
  auto cfg = workload::default_sim_cluster();
  core::LocalityFirstScheduler lf;
  auto edf = core::DegradedFirstScheduler::enhanced();

  auto run_norm = [&](core::Scheduler& s, int n, int k, std::uint64_t seed) {
    workload::SimJobOptions opts;
    opts.num_blocks = 360;
    opts.n = n;
    opts.k = k;
    opts.num_reducers = 0;
    opts.shuffle_ratio = 0.0;
    util::Rng rng(seed);
    auto job = workload::make_sim_job(0, opts, cfg.topology, rng);
    const auto failure = storage::single_node_failure(cfg.topology, rng);
    const double failed =
        simulate(cfg, {job}, failure, s, seed).single_job_runtime();
    const double normal =
        simulate(cfg, {job}, storage::no_failure(), s, seed)
            .single_job_runtime();
    return failed / normal;
  };

  const double lf_small = run_norm(lf, 8, 6, 3);
  const double lf_large = run_norm(lf, 20, 15, 3);
  const double edf_large = run_norm(edf, 20, 15, 3);
  EXPECT_GT(lf_large, lf_small);   // LF hurt by larger k
  EXPECT_LT(edf_large, lf_large);  // EDF beats LF at large k
}

}  // namespace
}  // namespace dfs
