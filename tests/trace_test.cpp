#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dfs/mapreduce/trace.h"

namespace dfs::mapreduce {
namespace {

/// A two-task, one-job result small enough to check the exporters' output
/// line by line.
RunResult small_result() {
  RunResult r;
  MapTaskRecord m;
  m.id = 0;
  m.job = 0;
  m.block = {0, 2};
  m.exec_node = 3;
  m.source_node = 3;
  m.kind = MapTaskKind::kNodeLocal;
  m.assign_time = 1.0;
  m.fetch_done_time = 1.0;
  m.finish_time = 6.5;
  r.map_tasks.push_back(m);
  m.id = 1;
  m.block = {1, 0};
  m.exec_node = 4;
  m.source_node = -1;
  m.kind = MapTaskKind::kDegraded;
  m.fetch_done_time = 3.0;
  m.finish_time = 8.0;
  r.map_tasks.push_back(m);

  ReduceTaskRecord red;
  red.id = 0;
  red.job = 0;
  red.exec_node = 1;
  red.assign_time = 2.0;
  red.shuffle_done_time = 9.0;
  red.process_start_time = 9.0;
  red.finish_time = 13.0;
  r.reduce_tasks.push_back(red);

  JobMetrics j;
  j.id = 0;
  j.submit_time = 0.0;
  j.first_map_launch = 1.0;
  j.map_phase_end = 8.0;
  j.finish_time = 13.0;
  j.local_tasks = 1;
  j.degraded_tasks = 1;
  r.jobs.push_back(j);
  r.makespan = 13.0;
  return r;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- header-row stability -----------------------------------------------------
// External tooling keys on these column names; changing them is a breaking
// change that must show up as a test diff, not a silent analysis bug.

TEST(Trace, MapTaskCsvHeaderIsStable) {
  std::ostringstream os;
  write_map_task_csv(os, RunResult{});
  EXPECT_EQ(os.str(),
            "task_id,job_id,stripe,block_index,kind,exec_node,source_node,"
            "assign_time,fetch_done_time,finish_time,runtime,"
            "degraded_sources,unrecoverable\n");
}

TEST(Trace, ReduceTaskCsvHeaderIsStable) {
  std::ostringstream os;
  write_reduce_task_csv(os, RunResult{});
  EXPECT_EQ(os.str(),
            "task_id,job_id,exec_node,assign_time,shuffle_done_time,"
            "process_start_time,finish_time,runtime\n");
}

TEST(Trace, JobCsvHeaderIsStable) {
  std::ostringstream os;
  write_job_csv(os, RunResult{});
  EXPECT_EQ(os.str(),
            "job_id,submit_time,first_map_launch,map_phase_end,finish_time,"
            "runtime,latency,local_tasks,remote_tasks,degraded_tasks\n");
}

TEST(Trace, CsvRowsMatchRecordCountAndColumnCount) {
  const RunResult r = small_result();
  std::ostringstream os;
  write_map_task_csv(os, r);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + r.map_tasks.size());
  const auto columns = static_cast<long>(
      std::count(lines[0].begin(), lines[0].end(), ',') + 1);
  for (const auto& line : lines) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ',') + 1, columns) << line;
  }
}

// --- field escaping -----------------------------------------------------------

TEST(Trace, CsvEscapePassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("node-local"), "node-local");
  EXPECT_EQ(csv_escape("42.5"), "42.5");
}

TEST(Trace, CsvEscapeQuotesSeparatorsQuotesAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(",\"\n"), "\",\"\"\n\"");
}

TEST(Trace, MapTaskKindFieldSurvivesEscaping) {
  // Today's kind names are bare identifiers; escaping must not alter them.
  std::ostringstream os;
  write_map_task_csv(os, small_result());
  EXPECT_NE(os.str().find(",node-local,"), std::string::npos);
  EXPECT_NE(os.str().find(",degraded,"), std::string::npos);
  EXPECT_EQ(os.str().find('"'), std::string::npos);
}

// --- JSONL well-formedness ----------------------------------------------------

TEST(Trace, EventsJsonlEmitsOneObjectPerLine) {
  const RunResult r = small_result();
  std::ostringstream os;
  write_events_jsonl(os, r);
  ASSERT_FALSE(os.str().empty());
  EXPECT_EQ(os.str().back(), '\n');
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(),
            r.map_tasks.size() + r.reduce_tasks.size() + r.jobs.size());
  for (const auto& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    // No nested objects and balanced quoting: every brace is the outer pair
    // and quotes come in pairs.
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'), 1) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '}'), 1) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '"') % 2, 0) << line;
    EXPECT_NE(line.find("\"type\":"), std::string::npos) << line;
  }
}

TEST(Trace, EventsJsonlTypeFieldsDiscriminate) {
  std::ostringstream os;
  write_events_jsonl(os, small_result());
  const auto lines = lines_of(os.str());
  int maps = 0, reduces = 0, jobs = 0;
  for (const auto& line : lines) {
    if (line.find("\"type\":\"map\"") != std::string::npos) ++maps;
    if (line.find("\"type\":\"reduce\"") != std::string::npos) ++reduces;
    if (line.find("\"type\":\"job\"") != std::string::npos) ++jobs;
  }
  EXPECT_EQ(maps, 2);
  EXPECT_EQ(reduces, 1);
  EXPECT_EQ(jobs, 1);
}

}  // namespace
}  // namespace dfs::mapreduce
