#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "dfs/cluster/simulation.h"
#include "dfs/core/locality_first.h"
#include "dfs/core/scheduler.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/registry.h"
#include "dfs/mapreduce/master.h"
#include "dfs/storage/layout.h"

namespace dfs::cluster {
namespace {

using mapreduce::MapTaskKind;

/// A small online cluster under direct control: the tests drive failure and
/// repair at exact times instead of drawing them from MTTF clocks.
struct OnlineHarness {
  mapreduce::ClusterConfig cfg;
  mapreduce::JobInput job;
  util::Rng rng{99};
  sim::Simulator sim;
  storage::FailureScenario failure;
  core::LocalityFirstScheduler lf;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<mapreduce::Master> master;

  OnlineHarness() {
    cfg.topology = net::Topology(4, 5);
    cfg.links.rack_up = 1000.0;  // bytes/sec; block = 1000 bytes -> 1 s
    cfg.links.rack_down = 1000.0;
    cfg.map_slots_per_node = 2;
    cfg.reduce_slots_per_node = 1;
    cfg.block_size = 1000.0;
    cfg.heartbeat_interval = 1.0;

    util::Rng placement(7);
    job.spec.map_time = {5.0, 0.5};
    job.spec.reduce_time = {4.0, 0.4};
    job.spec.num_reducers = 5;
    job.spec.shuffle_ratio = 0.01;
    job.layout = std::make_shared<storage::StorageLayout>(
        storage::random_rack_constrained_layout(120, 8, 6, cfg.topology,
                                                placement));
    job.code = ec::make_reed_solomon(8, 6);

    net = std::make_unique<net::Network>(sim, cfg.topology, cfg.links,
                                         cfg.contention);
    master = std::make_unique<mapreduce::Master>(sim, *net, cfg, failure, lf,
                                                 rng);
  }
};

// --- mid-run failure injection ------------------------------------------------

TEST(Cluster, MidRunFailureReclassifiesPendingTasksAsDegraded) {
  OnlineHarness h;
  h.master->submit(h.job);
  const util::Seconds fail_at = 2.5;
  h.sim.schedule_at(fail_at, [&h] {
    h.failure.fail(3);
    h.master->on_node_failed(3);
  });
  h.master->start();
  h.sim.run();
  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();

  // The cluster was healthy at submission, yet tasks ran degraded: only the
  // mid-run reclassification can have produced them.
  EXPECT_GT(r.count_map_tasks(MapTaskKind::kDegraded), 0);
  EXPECT_FALSE(r.data_loss);
  // The failed node stops receiving work; tasks assigned to it earlier are
  // allowed to finish (the failure takes its storage, not its progress).
  for (const auto& t : r.map_tasks) {
    if (t.assign_time > fail_at) EXPECT_NE(t.exec_node, 3) << t.id;
  }
  for (const auto& t : r.map_tasks) {
    if (t.kind == MapTaskKind::kDegraded) {
      for (const auto& src : t.sources) EXPECT_NE(src.node, 3);
    }
  }
}

// --- repair completion restores locality --------------------------------------

TEST(Cluster, RepairRestoresFullLocality) {
  OnlineHarness h;
  h.failure.fail(3);
  h.master->on_node_failed(3);
  h.master->set_admission_open(true);
  h.master->submit(h.job);  // activates at t=0, while node 3 is down

  h.sim.schedule_at(2.5, [&h] {
    h.failure.restore(3);
    h.master->on_node_repaired(3);
  });
  mapreduce::JobInput job2 = h.job;
  job2.spec.id = 1;
  job2.spec.submit_time = 40.0;  // healthy cluster by then
  h.sim.schedule_at(job2.spec.submit_time,
                    [&h, job2] { h.master->submit(job2); });
  h.sim.schedule_at(41.0, [&h] { h.master->finish_admission(); });

  h.master->start();
  h.sim.run();
  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 2u);

  // Job 0's tasks on node 3 were degraded at activation; the repair at
  // t=2.5 re-promoted every one still pending, and locality-first had no
  // reason to launch any of them degraded that early.
  EXPECT_EQ(r.jobs[0].degraded_tasks, 0);
  // Job 1 never saw a failure, and node 3 is a first-class slave again:
  // it executes map tasks and serves reads.
  EXPECT_EQ(r.jobs[1].degraded_tasks, 0);
  const bool node3_worked =
      std::any_of(r.map_tasks.begin(), r.map_tasks.end(), [](const auto& t) {
        return t.job == 1 && t.exec_node == 3;
      });
  EXPECT_TRUE(node3_worked);
  EXPECT_EQ(r.count_map_tasks(MapTaskKind::kDegraded), 0);
}

TEST(Cluster, RepairReclassifiesReplicatedLayouts) {
  // The k == 1 branch of reclassify_after_repair: with a replicated layout
  // the repaired node holds whole copies, not stripe shards, so membership
  // is decided by scanning the stripe's replica list.
  const auto make_job = [](const OnlineHarness& h) {
    mapreduce::JobInput job = h.job;
    util::Rng placement(11);
    job.layout = std::make_shared<storage::StorageLayout>(
        storage::replicated_layout(60, 2, h.cfg.topology, placement));
    job.code = ec::make_code_from_spec("rep:2");
    return job;
  };

  // Fail both replica holders of stripe 0 before the job activates, then
  // bring one back before any task launches: every pending task regains a
  // readable copy, so nothing runs degraded and nothing is lost.
  OnlineHarness h;
  const mapreduce::JobInput job = make_job(h);
  const auto a = job.layout->node_of(storage::BlockId{0, 0});
  const auto b = job.layout->node_of(storage::BlockId{0, 1});
  ASSERT_NE(a, b);
  h.failure.fail(a);
  h.master->on_node_failed(a);
  h.failure.fail(b);
  h.master->on_node_failed(b);
  h.master->set_admission_open(true);
  h.master->submit(job);
  h.sim.schedule_at(0.5, [&h, a] {
    h.failure.restore(a);
    h.master->on_node_repaired(a);
  });
  h.sim.schedule_at(1.5, [&h] { h.master->finish_admission(); });
  h.master->start();
  h.sim.run();
  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  EXPECT_FALSE(r.data_loss);
  EXPECT_EQ(r.count_map_tasks(MapTaskKind::kDegraded), 0);

  // Control: without the repair, stripe 0 has no readable copy at all and a
  // 2-way replicated block cannot be rebuilt from survivors.
  OnlineHarness h2;
  const mapreduce::JobInput job2 = make_job(h2);
  h2.failure.fail(a);
  h2.master->on_node_failed(a);
  h2.failure.fail(b);
  h2.master->on_node_failed(b);
  h2.master->set_admission_open(true);
  h2.master->submit(job2);
  h2.sim.schedule_at(1.5, [&h2] { h2.master->finish_admission(); });
  h2.master->start();
  h2.sim.run();
  ASSERT_TRUE(h2.master->all_jobs_done());
  EXPECT_TRUE(h2.master->take_result().data_loss);
}

// --- the full lifecycle simulation --------------------------------------------

ClusterOptions fast_options() {
  ClusterOptions opts;
  opts.horizon = 1800.0;
  opts.warmup = 300.0;
  opts.lifecycle.node_mttf_hours = 1.0;  // several failures in half an hour
  return opts;
}

TEST(Cluster, LifecycleInjectsFailuresAndRepairsThemAll) {
  const auto scheduler = core::make_scheduler("BDF");
  ClusterSimulation simulation(fast_options(), *scheduler, 11);
  const ClusterResult result = simulation.run();

  EXPECT_GT(result.summary.failures_injected, 0);
  EXPECT_GT(result.summary.blocks_repaired, 0);
  EXPECT_EQ(result.summary.blocks_unrecoverable, 0);
  // Every failure happened mid-run and was fully repaired: the cluster ends
  // with all nodes healthy.
  for (const auto& f : result.failures) {
    EXPECT_GE(f.fail_time, 0.0);
    EXPECT_GE(f.repair_start, f.fail_time);
    EXPECT_GE(f.restore_time, f.repair_start);
  }
  EXPECT_TRUE(simulation.failure().failed_nodes().empty());
  EXPECT_EQ(simulation.lifecycle().failed_node_count(), 0);
  EXPECT_EQ(simulation.lifecycle().repair_backlog(), 0);
  // The open-loop stream kept submitting while failures were in flight, and
  // everything drained.
  EXPECT_GT(result.summary.jobs_measured, 0);
  EXPECT_EQ(result.summary.jobs_submitted, result.summary.jobs_completed);
  EXPECT_GT(result.summary.degraded_task_fraction, 0.0);
}

TEST(Cluster, RackFailuresFireAndStayRecoverable) {
  ClusterOptions opts = fast_options();
  opts.lifecycle.rack_failure_fraction = 1.0;  // every event takes a rack
  const auto scheduler = core::make_scheduler("BDF");
  ClusterSimulation simulation(opts, *scheduler, 21);
  const ClusterResult result = simulation.run();
  EXPECT_GT(result.summary.rack_failures, 0);
  // The §III placement rule caps one rack's share of a stripe at n - k, so
  // a lone rack failure never loses data.
  EXPECT_EQ(result.summary.blocks_unrecoverable, 0);
  EXPECT_TRUE(simulation.failure().failed_nodes().empty());
}

TEST(Cluster, DegradedFirstTailLatencyNoWorseThanLocalityFirst) {
  const auto lf = core::make_scheduler("LF");
  const auto df = core::make_scheduler("BDF");
  ClusterSimulation lf_sim(ClusterOptions{}, *lf, 1);
  ClusterSimulation df_sim(ClusterOptions{}, *df, 1);
  const double lf_p99 = lf_sim.run().summary.latency_p99;
  const double df_p99 = df_sim.run().summary.latency_p99;
  EXPECT_GT(lf_p99, 0.0);
  EXPECT_GT(df_p99, 0.0);
  EXPECT_LE(df_p99, lf_p99);
}

// --- hedged reads racing repair -------------------------------------------------

TEST(Cluster, RepairCompletionRacesInFlightHedgedReads) {
  // Node 3 is down at submission, so its tasks start as supervised hedged
  // reads; the repair lands at t=2.5 while fetches are still in flight.
  // Restoring the node must not wedge or corrupt the outstanding reads:
  // they run to completion against the sources they already hold.
  OnlineHarness h;
  h.cfg.hedge.enabled = true;
  h.cfg.hedge.extra_sources = 1;
  h.cfg.straggler.service_mean = 0.5;  // keeps fetches in flight at t=2.5
  // The harness built its Master before the hedging knobs were set: rebuild
  // it — and schedule degraded-first, so the hedged reads are guaranteed to
  // be in flight when the repair lands (locality-first would defer them
  // until after the restore).
  const auto bdf = core::make_scheduler("BDF");
  h.net = std::make_unique<net::Network>(h.sim, h.cfg.topology, h.cfg.links,
                                         h.cfg.contention);
  h.master = std::make_unique<mapreduce::Master>(h.sim, *h.net, h.cfg,
                                                 h.failure, *bdf, h.rng);

  h.failure.fail(3);
  h.master->on_node_failed(3);
  h.master->submit(h.job);
  h.sim.schedule_at(2.5, [&h] {
    h.failure.restore(3);
    h.master->on_node_repaired(3);
  });
  h.master->start();
  h.sim.run();

  ASSERT_TRUE(h.master->all_jobs_done());
  const auto r = h.master->take_result();
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].failed);
  EXPECT_FALSE(r.data_loss);
  // Hedged reads actually ran before the repair, and every one resolved.
  EXPECT_GT(r.hedge.reads_started, 0u);
  EXPECT_EQ(r.hedge.reads_started, r.hedge.reads_completed +
                                       r.hedge.reads_failed +
                                       r.hedge.reads_cancelled);
  EXPECT_EQ(r.hedge.reads_failed, 0u);
}

TEST(Cluster, HedgedLifecycleRunsAreByteIdenticalJsonl) {
  // Full lifecycle determinism with the whole robustness layer on: hedging,
  // timeouts, straggler jitter (heavy-tailed), and transient failures.
  ClusterOptions opts = fast_options();
  opts.config.hedge.enabled = true;
  opts.config.hedge.extra_sources = 1;
  opts.config.fetch.timeout = 120.0;
  opts.config.straggler.fraction = 0.1;
  opts.config.straggler.slowdown = 4.0;
  opts.config.straggler.service_mean = 0.5;
  opts.config.straggler.pareto_alpha = 1.5;
  opts.config.straggler.fail_prob = 0.05;
  const auto scheduler = core::make_scheduler("BDF");
  std::ostringstream first, second;
  {
    ClusterSimulation simulation(opts, *scheduler, 5);
    write_cluster_jsonl(first, simulation.run());
  }
  {
    ClusterSimulation simulation(opts, *scheduler, 5);
    write_cluster_jsonl(second, simulation.run());
  }
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
  // The hedging record is present and carries the tail percentiles.
  EXPECT_NE(first.str().find("\"type\":\"hedging\""), std::string::npos);
  EXPECT_NE(first.str().find("degraded_read_p999"), std::string::npos);
  EXPECT_NE(first.str().find("latency_samples"), std::string::npos);
}

TEST(Cluster, SameSeedProducesByteIdenticalJsonl) {
  const auto scheduler = core::make_scheduler("BDF");
  std::ostringstream first, second;
  {
    ClusterSimulation simulation(fast_options(), *scheduler, 5);
    write_cluster_jsonl(first, simulation.run());
  }
  {
    ClusterSimulation simulation(fast_options(), *scheduler, 5);
    write_cluster_jsonl(second, simulation.run());
  }
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

// --- exporters ----------------------------------------------------------------

TEST(Cluster, JsonlIsOneObjectPerLine) {
  const auto scheduler = core::make_scheduler("BDF");
  ClusterSimulation simulation(fast_options(), *scheduler, 3);
  std::ostringstream os;
  write_cluster_jsonl(os, simulation.run());
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"type\":"), std::string::npos) << line;
    ++lines;
  }
  EXPECT_GT(lines, 1);
  EXPECT_EQ(os.str().substr(0, 17), "{\"type\":\"summary\"");
}

TEST(Cluster, TimelineCsvHeaderIsStable) {
  std::ostringstream os;
  write_timeline_csv(os, ClusterResult{});
  EXPECT_EQ(os.str(),
            "time,jobs_in_system,failed_nodes,repair_backlog,"
            "rack_down_utilization\n");
}

// --- steady-state summary -----------------------------------------------------

TEST(Cluster, SummaryMeasuresOnlyJobsSubmittedInsideTheWindow) {
  mapreduce::RunResult run;
  const auto add_job = [&run](int id, double submit, double finish) {
    mapreduce::JobMetrics j;
    j.id = id;
    j.submit_time = submit;
    j.first_map_launch = submit;
    j.finish_time = finish;
    j.local_tasks = 8;
    j.degraded_tasks = 2;
    run.jobs.push_back(j);
  };
  add_job(0, 10.0, 50.0);     // before warm-up: excluded
  add_job(1, 150.0, 160.0);   // latency 10
  add_job(2, 200.0, 220.0);   // latency 20
  add_job(3, 250.0, 280.0);   // latency 30
  add_job(4, 600.0, 700.0);   // after the horizon: excluded
  add_job(5, 300.0, -1.0);    // never finished: excluded

  const SteadyStateSummary s =
      summarize_steady_state(run, {}, {}, /*warmup=*/100.0, /*horizon=*/500.0);
  EXPECT_EQ(s.jobs_submitted, 6);
  EXPECT_EQ(s.jobs_completed, 5);
  EXPECT_EQ(s.jobs_measured, 3);
  EXPECT_DOUBLE_EQ(s.latency_p50, 20.0);
  EXPECT_DOUBLE_EQ(s.latency_mean, 20.0);
  EXPECT_DOUBLE_EQ(s.degraded_task_fraction, 0.2);
}

// --- arrival models -----------------------------------------------------------

TEST(Cluster, ArrivalModelNamesRoundTrip) {
  for (const auto model : {ArrivalModel::kPoisson, ArrivalModel::kPareto,
                           ArrivalModel::kDiurnal}) {
    EXPECT_EQ(parse_arrival_model(to_string(model)), model);
  }
  EXPECT_THROW(parse_arrival_model("weibull"), std::invalid_argument);
}

TEST(Cluster, ArrivalOptionsAreValidated) {
  OnlineHarness h;
  ArrivalOptions bad;
  bad.mean_interarrival = 0.0;
  EXPECT_THROW(ArrivalProcess(h.sim, *h.master, h.cfg.topology, bad,
                              util::Rng(1)),
               std::invalid_argument);
  bad = ArrivalOptions{};
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(ArrivalProcess(h.sim, *h.master, h.cfg.topology, bad,
                              util::Rng(1)),
               std::invalid_argument);
  bad = ArrivalOptions{};
  bad.diurnal_amplitude = 1.0;
  EXPECT_THROW(ArrivalProcess(h.sim, *h.master, h.cfg.topology, bad,
                              util::Rng(1)),
               std::invalid_argument);
  bad = ArrivalOptions{};
  bad.tenants.push_back({.arrival_share = 0.0});
  EXPECT_THROW(ArrivalProcess(h.sim, *h.master, h.cfg.topology, bad,
                              util::Rng(1)),
               std::invalid_argument);
  bad = ArrivalOptions{};
  bad.tenants.push_back({.arrival_share = 1.0, .job_scale = -0.5});
  EXPECT_THROW(ArrivalProcess(h.sim, *h.master, h.cfg.topology, bad,
                              util::Rng(1)),
               std::invalid_argument);
}

// --- multi-tenant streams and admission ---------------------------------------

/// Small multi-tenant stream: tenant 0 submits 3x as often; tenant 1's jobs
/// are a quarter of the template size.
ClusterOptions tenant_options() {
  ClusterOptions opts = fast_options();
  opts.arrivals.tenants = {{.arrival_share = 3.0, .job_scale = 1.0},
                           {.arrival_share = 1.0, .job_scale = 0.25}};
  return opts;
}

TEST(Cluster, TenantTaggingFollowsSharesAndScales) {
  const auto scheduler = core::make_scheduler("BDF");
  ClusterSimulation simulation(tenant_options(), *scheduler, 7);
  const ClusterResult result = simulation.run();

  long count[2] = {0, 0};
  long maps[2] = {0, 0};
  for (const auto& j : result.run.jobs) {
    ASSERT_GE(j.tenant, 0);
    ASSERT_LE(j.tenant, 1);
    ++count[j.tenant];
    maps[j.tenant] += j.local_tasks + j.remote_tasks + j.degraded_tasks;
  }
  ASSERT_GT(count[0], 0);
  ASSERT_GT(count[1], 0);
  // Largest-deficit round-robin holds the 3:1 share exactly over any
  // window (within rounding of the total).
  EXPECT_NEAR(static_cast<double>(count[0]),
              3.0 * static_cast<double>(count[1]), 3.0);
  // job_scale 0.25 on a 240-block template with k=15: 60 native blocks.
  EXPECT_EQ(maps[0] / count[0], 240);
  EXPECT_EQ(maps[1] / count[1], 60);
  // The summary grew a per-class block and the JSONL gate is armed.
  EXPECT_TRUE(result.report_tenants);
  ASSERT_EQ(result.summary.tenants.size(), 2u);
  EXPECT_EQ(result.summary.tenants[0].tenant, 0);
  EXPECT_EQ(result.summary.tenants[1].tenant, 1);
  EXPECT_EQ(result.summary.tenants[0].jobs_measured +
                result.summary.tenants[1].jobs_measured,
            result.summary.jobs_measured);
}

TEST(Cluster, TenantJsonlRecordsAreGatedAndPresent) {
  const auto scheduler = core::make_scheduler("BDF");
  std::ostringstream with, without;
  {
    ClusterSimulation simulation(tenant_options(), *scheduler, 9);
    write_cluster_jsonl(with, simulation.run());
  }
  {
    ClusterSimulation simulation(fast_options(), *scheduler, 9);
    write_cluster_jsonl(without, simulation.run());
  }
  EXPECT_NE(with.str().find("\"type\":\"tenant\""), std::string::npos);
  EXPECT_EQ(without.str().find("\"type\":\"tenant\""), std::string::npos);
  EXPECT_EQ(without.str().find("\"tenant\""), std::string::npos);
}

TEST(Cluster, SingleTenantFairAdmissionIsByteIdenticalToFifo) {
  // With one tenant every job shares one usage key, so the fair policy's
  // stable sort must reproduce FIFO exactly — the whole run, byte for byte.
  // This pins the refactor's inertness beyond the default (no-policy) path.
  const auto scheduler = core::make_scheduler("BDF");
  std::ostringstream fifo, fair;
  {
    ClusterSimulation simulation(fast_options(), *scheduler, 5);
    write_cluster_jsonl(fifo, simulation.run());
  }
  {
    ClusterOptions opts = fast_options();
    opts.admission = "fair";
    ClusterSimulation simulation(opts, *scheduler, 5);
    write_cluster_jsonl(fair, simulation.run());
  }
  ASSERT_FALSE(fifo.str().empty());
  EXPECT_EQ(fifo.str(), fair.str());
}

TEST(Cluster, FairAdmissionRunsDeterministically) {
  const auto scheduler = core::make_scheduler("BDF");
  ClusterOptions opts = tenant_options();
  opts.admission = "fair:3,1";
  std::ostringstream first, second;
  {
    ClusterSimulation simulation(opts, *scheduler, 6);
    write_cluster_jsonl(first, simulation.run());
  }
  {
    ClusterSimulation simulation(opts, *scheduler, 6);
    write_cluster_jsonl(second, simulation.run());
  }
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(Cluster, SpeedProfileMaterializesIntoClusterRun) {
  const auto scheduler = core::make_scheduler("BDF");
  ClusterOptions slow = fast_options();
  slow.speed = mapreduce::SpeedModel::parse("bimodal:0.5,3");
  ClusterSimulation fast_sim(fast_options(), *scheduler, 4);
  ClusterSimulation slow_sim(slow, *scheduler, 4);
  const ClusterResult fast_result = fast_sim.run();
  const ClusterResult slow_result = slow_sim.run();
  // Half the slaves at 3x slower processing must push mean latency up.
  EXPECT_GT(slow_result.summary.latency_mean,
            fast_result.summary.latency_mean);
}

TEST(Cluster, PerTenantSummaryAggregatesByClass) {
  mapreduce::RunResult run;
  const auto add_job = [&run](int id, int tenant, double submit,
                              double finish) {
    mapreduce::JobMetrics j;
    j.id = id;
    j.tenant = tenant;
    j.submit_time = submit;
    j.first_map_launch = submit;
    j.finish_time = finish;
    j.local_tasks = 4;
    run.jobs.push_back(j);
  };
  add_job(0, 0, 150.0, 160.0);  // latency 10
  add_job(1, 0, 200.0, 230.0);  // latency 30
  add_job(2, 1, 250.0, 350.0);  // latency 100
  add_job(3, 1, 10.0, 20.0);    // before warm-up: excluded everywhere

  const SteadyStateSummary s =
      summarize_steady_state(run, {}, {}, /*warmup=*/100.0, /*horizon=*/500.0);
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_EQ(s.tenants[0].jobs_measured, 2);
  EXPECT_EQ(s.tenants[0].latency_samples, 2);
  EXPECT_DOUBLE_EQ(s.tenants[0].latency_p50, 20.0);
  EXPECT_DOUBLE_EQ(s.tenants[0].latency_mean, 20.0);
  EXPECT_EQ(s.tenants[1].jobs_measured, 1);
  EXPECT_DOUBLE_EQ(s.tenants[1].latency_p99, 100.0);
  // The overall percentiles still pool every measured job.
  EXPECT_EQ(s.jobs_measured, 3);
  EXPECT_DOUBLE_EQ(s.latency_p50, 30.0);
}

// Smoke leg for the CI admission matrix: when DFS_ADMISSION is set (the CI
// scheduler/cluster re-run exports DFS_ADMISSION=fair), drive a short
// multi-tenant run through that policy spec end to end.
TEST(Cluster, AdmissionEnvSmoke) {
  const char* spec = std::getenv("DFS_ADMISSION");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "DFS_ADMISSION not set; smoke leg runs in CI only";
  }
  ClusterOptions opts = tenant_options();
  opts.admission = spec;
  const auto scheduler = core::make_scheduler("BDF");
  ClusterSimulation simulation(opts, *scheduler, 3);
  const ClusterResult result = simulation.run();
  EXPECT_GT(result.summary.jobs_completed, 0);
  EXPECT_EQ(result.summary.tenants.size(), 2u);
  std::ostringstream os;
  write_cluster_jsonl(os, result);
  EXPECT_NE(os.str().find("\"type\":\"tenant\""), std::string::npos);
}

}  // namespace
}  // namespace dfs::cluster
