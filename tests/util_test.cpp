#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include <sstream>

#include "dfs/util/args.h"
#include "dfs/util/epoch.h"
#include "dfs/util/jsonl.h"
#include "dfs/util/rng.h"
#include "dfs/util/stale_queue.h"
#include "dfs/util/stats.h"
#include "dfs/util/streaming_quantile.h"
#include "dfs/util/table.h"
#include "dfs/util/units.h"

namespace dfs::util {
namespace {

// --- units -------------------------------------------------------------------

TEST(Units, ByteConversions) {
  EXPECT_DOUBLE_EQ(kilobytes(1), 1e3);
  EXPECT_DOUBLE_EQ(megabytes(2), 2e6);
  EXPECT_DOUBLE_EQ(gigabytes(1.5), 1.5e9);
  EXPECT_DOUBLE_EQ(mebibytes(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gibibytes(1), 1024.0 * 1024.0 * 1024.0);
}

TEST(Units, BandwidthConversions) {
  // 1 Gbps = 125 MB/s.
  EXPECT_DOUBLE_EQ(gigabits_per_sec(1), 125e6);
  EXPECT_DOUBLE_EQ(megabits_per_sec(100), 12.5e6);
}

TEST(Units, PaperBlockTransferTime) {
  // §III: a 128 MB block over 100 Mbps takes "around 10s".
  const double t = mebibytes(128) / megabits_per_sec(100);
  EXPECT_NEAR(t, 10.7, 0.1);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NormalMeanAndClamp) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.normal(20.0, 1.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 20.0, 0.1);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng r(7);
  EXPECT_DOUBLE_EQ(r.normal(10.0, 0.0), 10.0);
}

TEST(Rng, NormalClampsAtFloor) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal(0.0, 5.0, 0.5), 0.5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += r.exponential(120.0);
  EXPECT_NEAR(sum / 50000, 120.0, 3.0);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = r.sample_indices(10, 4);
    ASSERT_EQ(s.size(), 4u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (auto v : s) EXPECT_LT(v, 10u);
  }
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng r(5);
  std::vector<int> hits(21, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto z = r.zipf(20, 1.0);
    ASSERT_GE(z, 1u);
    ASSERT_LE(z, 20u);
    ++hits[z];
  }
  EXPECT_GT(hits[1], hits[2]);
  EXPECT_GT(hits[2], hits[10]);
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(9);
  (void)parent_copy.fork();
  EXPECT_DOUBLE_EQ(parent.uniform(0, 1), parent_copy.uniform(0, 1));
  (void)child;
}

// --- stats -------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile({5}, 37), 5.0);
}

TEST(Stats, BoxplotQuartilesAndOutliers) {
  std::vector<double> xs;
  for (int i = 1; i <= 29; ++i) xs.push_back(i);
  xs.push_back(1000.0);  // a clear outlier
  const BoxPlot b = boxplot(xs);
  EXPECT_NEAR(b.median, 15.5, 1e-9);
  EXPECT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers.front(), 1000.0);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 29.0);  // whisker excludes the outlier
}

TEST(Stats, ReductionPercent) {
  EXPECT_DOUBLE_EQ(reduction_percent(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(reduction_percent(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(reduction_percent(100, 125), -25.0);
}

// --- streaming_quantile ------------------------------------------------------

TEST(StreamingQuantile, ExactRegimeMatchesPercentileBitForBit) {
  // Below the exact limit the accumulator must reproduce the
  // materialize-and-sort path exactly — the cluster summaries feed golden
  // byte-identity tests.
  Rng r(17);
  std::vector<double> xs;
  StreamingQuantile q({50.0, 95.0, 99.0}, 1000);
  for (int i = 0; i < 997; ++i) {
    const double v = r.exponential(30.0);
    xs.push_back(v);
    q.add(v);
  }
  EXPECT_EQ(q.count(), xs.size());
  EXPECT_EQ(q.quantile(50.0), percentile(xs, 50.0));
  EXPECT_EQ(q.quantile(95.0), percentile(xs, 95.0));
  EXPECT_EQ(q.quantile(99.0), percentile(xs, 99.0));
  // Any percentile is queryable in the exact regime, tracked or not.
  EXPECT_EQ(q.quantile(12.5), percentile(xs, 12.5));
  EXPECT_EQ(q.mean(), summarize(xs).mean);
}

TEST(StreamingQuantile, EstimatorRegimeTracksLargeSamples) {
  // Past the limit the P-squared markers take over: bounded memory, small
  // relative error. Exercise with 200k exponential draws (heavy tail).
  Rng r(23);
  std::vector<double> xs;
  StreamingQuantile q({50.0, 99.0}, 1024);
  for (int i = 0; i < 200000; ++i) {
    const double v = r.exponential(10.0);
    xs.push_back(v);
    q.add(v);
  }
  const double exact_p50 = percentile(xs, 50.0);
  const double exact_p99 = percentile(xs, 99.0);
  EXPECT_NEAR(q.quantile(50.0), exact_p50, 0.05 * exact_p50);
  EXPECT_NEAR(q.quantile(99.0), exact_p99, 0.05 * exact_p99);
  // The mean stays exact in either regime (plain running sum).
  EXPECT_DOUBLE_EQ(q.mean(), summarize(xs).mean);
}

TEST(StreamingQuantile, TinySamplesAndEmptyBehave) {
  StreamingQuantile q({50.0});
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.mean(), 0.0);
  q.add(7.0);
  EXPECT_EQ(q.quantile(50.0), 7.0);  // single sample: every percentile is it
  q.add(9.0);
  q.add(8.0);
  EXPECT_EQ(q.quantile(50.0), 8.0);
  EXPECT_DOUBLE_EQ(q.mean(), 8.0);
}

// --- table -------------------------------------------------------------------

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.2345, 2)});
  t.add_row({"b", Table::pct(27.04, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("27.0%"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

// --- stale_queue -------------------------------------------------------------

TEST(StaleQueue, FifoOrderAndExactCount) {
  StaleQueue<int> q;
  q.push(3);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.live_count(), 3);
  EXPECT_TRUE(q.contains(1));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.live_count(), 0);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(StaleQueue, InvalidateIsLazyAndIdempotent) {
  StaleQueue<int> q;
  q.push(10);
  q.push(11);
  EXPECT_TRUE(q.invalidate(10));
  EXPECT_FALSE(q.invalidate(10));  // already stale: no-op
  EXPECT_FALSE(q.invalidate(99));  // never queued: no-op
  EXPECT_EQ(q.live_count(), 1);
  EXPECT_FALSE(q.contains(10));
  // The stale entry is still physically queued until a pop scans past it.
  EXPECT_EQ(q.queued_entries(), 2u);
  EXPECT_EQ(q.pop(), std::optional<int>(11));
  EXPECT_EQ(q.queued_entries(), 0u);
}

TEST(StaleQueue, AbaReentryJoinsAtTheBack) {
  // The queue-jump bug the generation tag exists to kill: a key that leaves
  // the pool and re-enters must queue behind everyone, not revive its old
  // (earlier) entry.
  StaleQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_TRUE(q.invalidate(1));
  q.push(1);  // re-entry: fresh generation, at the back
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_FALSE(q.pop().has_value());
  // The superseded generation-1 entry for key 1 must not double-deliver.
  EXPECT_EQ(q.live_count(), 0);
}

TEST(StaleQueue, RepushDeliversEarliestSurvivingEntry) {
  // Predicate semantics: invalidation is revocable, so a repush makes the
  // key's *original* entry deliverable again — it does not lose its place.
  StaleQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_TRUE(q.invalidate(1));
  q.repush(1);  // duplicate at the back; the front entry is live again
  EXPECT_EQ(q.queued_entries(), 3u);
  EXPECT_EQ(q.live_count(), 2);
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // front position, not the back
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  // The latent duplicate for 1 must not double-deliver.
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.queued_entries(), 0u);
}

TEST(StaleQueue, RepushAfterScanDiscardStartsOverAtTheBack) {
  StaleQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_TRUE(q.invalidate(1));
  // Pop scans past the dead entry for 1, physically discarding it.
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  q.repush(1);  // nothing left to resurrect: lands behind 3
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
}

TEST(StaleQueue, RepushRoundTripsPreserveOnePositionAtATime) {
  // Several invalidate/repush round trips: each consumes one surviving
  // duplicate, earliest first — mirroring a pending task that is assigned,
  // requeued, and reassigned through the same node queue.
  StaleQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // assigned
  q.repush(1);                                // requeued: behind 2 now
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.live_count(), 0);
}

TEST(StaleQueue, PopConsumesThenInvalidateIsNoOp) {
  // The master pops a key, assigns it, then retires it from *every* queue it
  // might still sit in — including the one just popped. That second retire
  // must not corrupt the count.
  StaleQueue<int> q;
  q.push(5);
  EXPECT_EQ(q.pop(), std::optional<int>(5));
  EXPECT_FALSE(q.invalidate(5));
  EXPECT_EQ(q.live_count(), 0);
}

TEST(StaleQueue, PeekSkipsStalePrefixWithoutConsuming) {
  StaleQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_TRUE(q.invalidate(1));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), 2);
  EXPECT_EQ(q.live_count(), 1);          // peek consumed nothing
  EXPECT_EQ(q.queued_entries(), 2u);     // stale prefix left in place
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(StaleQueue, ManyGenerationsOfSameKey) {
  StaleQueue<int> q;
  for (int round = 0; round < 5; ++round) {
    q.push(7);
    EXPECT_TRUE(q.invalidate(7));
  }
  q.push(7);
  EXPECT_EQ(q.live_count(), 1);
  // Only the newest generation is delivered; the five stale entries are
  // silently discarded on the way.
  EXPECT_EQ(q.pop(), std::optional<int>(7));
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.queued_entries(), 0u);
}

// --- epoch -------------------------------------------------------------------

TEST(Epoch, TicketsValidUntilBumped) {
  Epoch e;
  const Epoch::Ticket t = e.ticket();
  EXPECT_TRUE(e.valid(t));
  e.bump();
  EXPECT_FALSE(e.valid(t));
  EXPECT_TRUE(e.valid(e.ticket()));
}

TEST(Epoch, BumpReturnsTheNewEpoch) {
  Epoch e;
  const Epoch::Ticket t1 = e.bump();
  EXPECT_TRUE(e.valid(t1));
  const Epoch::Ticket t2 = e.bump();
  EXPECT_NE(t1, t2);
  EXPECT_FALSE(e.valid(t1));
  EXPECT_TRUE(e.valid(t2));
}

TEST(Epoch, StaleCallbackGuardIdiom) {
  // The armed-callback pattern: capture a ticket, bump on teardown, and the
  // late-firing closure must see itself invalidated.
  Epoch e;
  int fired = 0;
  const Epoch::Ticket armed = e.ticket();
  auto callback = [&] {
    if (!e.valid(armed)) return;
    ++fired;
  };
  callback();
  EXPECT_EQ(fired, 1);
  e.bump();  // world torn down and rebuilt
  callback();
  EXPECT_EQ(fired, 1);  // neutralized, not re-fired
}

// --- args --------------------------------------------------------------------

std::vector<const char*> argv_of(std::initializer_list<const char*> parts) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), parts);
  return v;
}

TEST(Args, ParsesSpaceAndEqualsForms) {
  const auto v = argv_of({"--seeds", "12", "--code=rs:6,4", "file.txt"});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("seeds", 0), 12);
  EXPECT_EQ(args.get_or("code", ""), "rs:6,4");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.txt");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto v = argv_of({});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("seeds", 30), 30);
  EXPECT_DOUBLE_EQ(args.get_double("shuffle", 0.01), 0.01);
  EXPECT_FALSE(args.get("anything").has_value());
  EXPECT_FALSE(args.has("flag"));
}

TEST(Args, BooleanFlagWithoutValue) {
  const auto v = argv_of({"--normalize", "--seeds", "3"});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_TRUE(args.has("normalize"));
  EXPECT_EQ(args.get_int("seeds", 0), 3);
}

TEST(Args, UnrecognizedReportsUnqueriedFlags) {
  const auto v = argv_of({"--seeds", "3", "--tpyo", "x"});
  const Args args(static_cast<int>(v.size()), v.data());
  (void)args.get_int("seeds", 0);
  const auto unknown = args.unrecognized();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(Args, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("lone", ','), (std::vector<std::string>{"lone"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(split("x,,y", ','), (std::vector<std::string>{"x", "", "y"}));
}

TEST(Jsonl, RecordShapeMatchesInlineStreaming) {
  std::ostringstream os;
  JsonlWriter w(os);
  w.begin("job").field("id", 3).field("runtime", 12.5).end();
  w.flush();
  EXPECT_EQ(os.str(), "{\"type\":\"job\",\"id\":3,\"runtime\":12.5}\n");
}

TEST(Jsonl, DestructorFlushesBufferedRecords) {
  std::ostringstream os;
  {
    JsonlWriter w(os);
    w.begin("job").field("id", 1).end();
    // Small output sits in the writer's buffer until a flush boundary.
    EXPECT_EQ(os.str(), "");
  }
  EXPECT_EQ(os.str(), "{\"type\":\"job\",\"id\":1}\n");
}

TEST(Jsonl, FlushDrainsPartialRecordBeforeDirectStreamUse) {
  std::ostringstream os;
  JsonlWriter w(os);
  w.begin("t").field("a", 1);
  w.flush();  // contract: flush before writing to the stream directly
  os << "|";
  w.field("b", 2).end();
  w.flush();
  EXPECT_EQ(os.str(), "{\"type\":\"t\",\"a\":1|,\"b\":2}\n");
}

TEST(Jsonl, CapturesStreamFormattingStateAtConstruction) {
  // Values must render exactly as `os << v` would have at the time the
  // writer was created, even though they are formatted internally now.
  std::ostringstream os;
  os.precision(10);
  JsonlWriter w(os);
  w.begin("t").field("v", 0.1234567891234).end();
  w.flush();
  EXPECT_EQ(os.str(), "{\"type\":\"t\",\"v\":0.1234567891}\n");
}

TEST(Jsonl, ManyRecordsMatchInlineStreamingByteForByte) {
  // Regression for the buffered rewrite: a multi-flush-window stream of
  // records must be byte-identical to the unbuffered inline chains.
  std::ostringstream inline_os;
  std::ostringstream os;
  {
    JsonlWriter w(os);
    for (int i = 0; i < 20000; ++i) {
      const double t = i * 0.137;
      w.begin("map").field("id", i).field("finish", t).end();
      inline_os << "{\"type\":\"map\",\"id\":" << i << ",\"finish\":" << t
                << "}\n";
    }
    // A 20k-record run crosses the flush threshold several times; some of
    // it must already have drained before destruction.
    EXPECT_NE(os.str(), "");
  }
  EXPECT_EQ(os.str(), inline_os.str());
}

TEST(Jsonl, NumbersUseDefaultStreamFormatting) {
  // The golden-corpus tests diff tool output byte-for-byte, so the writer
  // must not alter the ostream defaults (6 significant digits, no forced
  // decimal point) that the inline chains relied on.
  std::ostringstream inline_os;
  inline_os << 0.1 + 0.2 << ',' << 1234567.0 << ',' << 3.0;
  std::ostringstream os;
  JsonlWriter w(os);
  w.begin("t")
      .field("a", 0.1 + 0.2)
      .field("b", 1234567.0)
      .field("c", 3.0)
      .end();
  w.flush();
  EXPECT_EQ(os.str(),
            "{\"type\":\"t\",\"a\":0.3,\"b\":1.23457e+06,\"c\":3}\n");
  EXPECT_EQ(inline_os.str(), "0.3,1.23457e+06,3");
}

TEST(Jsonl, TextFieldsAreQuotedAndEscaped) {
  std::ostringstream os;
  JsonlWriter w(os);
  w.begin("t").text("kind", "deg\"raded\\x\n").end();
  w.flush();
  EXPECT_EQ(os.str(), "{\"type\":\"t\",\"kind\":\"deg\\\"raded\\\\x\\n\"}\n");
}

TEST(Jsonl, ArraysAndConditionalFieldsCompose) {
  std::ostringstream os;
  JsonlWriter w(os);
  const std::vector<int> nodes{4, 7};
  const std::vector<int> none;
  w.begin("failure").array("nodes", nodes).field("rack", 0);
  const int jobs_failed = 2;
  if (jobs_failed > 0) w.field("jobs_failed", jobs_failed);
  w.end();
  w.begin("failure").array("nodes", none).end();
  w.flush();
  EXPECT_EQ(os.str(),
            "{\"type\":\"failure\",\"nodes\":[4,7],\"rack\":0,"
            "\"jobs_failed\":2}\n"
            "{\"type\":\"failure\",\"nodes\":[]}\n");
}

}  // namespace
}  // namespace dfs::util
