#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dfs/util/args.h"
#include "dfs/util/rng.h"
#include "dfs/util/stats.h"
#include "dfs/util/table.h"
#include "dfs/util/units.h"

namespace dfs::util {
namespace {

// --- units -------------------------------------------------------------------

TEST(Units, ByteConversions) {
  EXPECT_DOUBLE_EQ(kilobytes(1), 1e3);
  EXPECT_DOUBLE_EQ(megabytes(2), 2e6);
  EXPECT_DOUBLE_EQ(gigabytes(1.5), 1.5e9);
  EXPECT_DOUBLE_EQ(mebibytes(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gibibytes(1), 1024.0 * 1024.0 * 1024.0);
}

TEST(Units, BandwidthConversions) {
  // 1 Gbps = 125 MB/s.
  EXPECT_DOUBLE_EQ(gigabits_per_sec(1), 125e6);
  EXPECT_DOUBLE_EQ(megabits_per_sec(100), 12.5e6);
}

TEST(Units, PaperBlockTransferTime) {
  // §III: a 128 MB block over 100 Mbps takes "around 10s".
  const double t = mebibytes(128) / megabits_per_sec(100);
  EXPECT_NEAR(t, 10.7, 0.1);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NormalMeanAndClamp) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.normal(20.0, 1.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 20.0, 0.1);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng r(7);
  EXPECT_DOUBLE_EQ(r.normal(10.0, 0.0), 10.0);
}

TEST(Rng, NormalClampsAtFloor) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal(0.0, 5.0, 0.5), 0.5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += r.exponential(120.0);
  EXPECT_NEAR(sum / 50000, 120.0, 3.0);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = r.sample_indices(10, 4);
    ASSERT_EQ(s.size(), 4u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (auto v : s) EXPECT_LT(v, 10u);
  }
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng r(5);
  std::vector<int> hits(21, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto z = r.zipf(20, 1.0);
    ASSERT_GE(z, 1u);
    ASSERT_LE(z, 20u);
    ++hits[z];
  }
  EXPECT_GT(hits[1], hits[2]);
  EXPECT_GT(hits[2], hits[10]);
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(9);
  (void)parent_copy.fork();
  EXPECT_DOUBLE_EQ(parent.uniform(0, 1), parent_copy.uniform(0, 1));
  (void)child;
}

// --- stats -------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile({5}, 37), 5.0);
}

TEST(Stats, BoxplotQuartilesAndOutliers) {
  std::vector<double> xs;
  for (int i = 1; i <= 29; ++i) xs.push_back(i);
  xs.push_back(1000.0);  // a clear outlier
  const BoxPlot b = boxplot(xs);
  EXPECT_NEAR(b.median, 15.5, 1e-9);
  EXPECT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers.front(), 1000.0);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 29.0);  // whisker excludes the outlier
}

TEST(Stats, ReductionPercent) {
  EXPECT_DOUBLE_EQ(reduction_percent(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(reduction_percent(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(reduction_percent(100, 125), -25.0);
}

// --- table -------------------------------------------------------------------

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.2345, 2)});
  t.add_row({"b", Table::pct(27.04, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("27.0%"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

// --- args --------------------------------------------------------------------

std::vector<const char*> argv_of(std::initializer_list<const char*> parts) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), parts);
  return v;
}

TEST(Args, ParsesSpaceAndEqualsForms) {
  const auto v = argv_of({"--seeds", "12", "--code=rs:6,4", "file.txt"});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("seeds", 0), 12);
  EXPECT_EQ(args.get_or("code", ""), "rs:6,4");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.txt");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto v = argv_of({});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("seeds", 30), 30);
  EXPECT_DOUBLE_EQ(args.get_double("shuffle", 0.01), 0.01);
  EXPECT_FALSE(args.get("anything").has_value());
  EXPECT_FALSE(args.has("flag"));
}

TEST(Args, BooleanFlagWithoutValue) {
  const auto v = argv_of({"--normalize", "--seeds", "3"});
  const Args args(static_cast<int>(v.size()), v.data());
  EXPECT_TRUE(args.has("normalize"));
  EXPECT_EQ(args.get_int("seeds", 0), 3);
}

TEST(Args, UnrecognizedReportsUnqueriedFlags) {
  const auto v = argv_of({"--seeds", "3", "--tpyo", "x"});
  const Args args(static_cast<int>(v.size()), v.data());
  (void)args.get_int("seeds", 0);
  const auto unknown = args.unrecognized();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(Args, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("lone", ','), (std::vector<std::string>{"lone"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(split("x,,y", ','), (std::vector<std::string>{"x", "", "y"}));
}

}  // namespace
}  // namespace dfs::util
