#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dfs/ec/hitchhiker.h"
#include "dfs/ec/lrc.h"
#include "dfs/ec/reed_solomon.h"
#include "dfs/ec/registry.h"
#include "dfs/storage/degraded.h"
#include "dfs/storage/failure.h"
#include "dfs/storage/layout.h"

namespace dfs::storage {
namespace {

// --- layout -------------------------------------------------------------------

TEST(Layout, NativeBlockIndexing) {
  const StorageLayout l = round_robin_layout(20, 4, 2, 8);
  EXPECT_EQ(l.num_stripes(), 10);
  EXPECT_EQ(l.num_native_blocks(), 20);
  EXPECT_EQ(l.native_block(0), (BlockId{0, 0}));
  EXPECT_EQ(l.native_block(1), (BlockId{0, 1}));
  EXPECT_EQ(l.native_block(2), (BlockId{1, 0}));
  EXPECT_EQ(l.native_block(19), (BlockId{9, 1}));
}

TEST(Layout, RoundRobinPlacesEvenly) {
  // §VI testbed: 240 native blocks, (12,10), 12 nodes -> 20 native/slave.
  const StorageLayout l = round_robin_layout(240, 12, 10, 12);
  const auto load = l.node_load(12);
  // 24 stripes * 12 blocks / 12 nodes = 24 blocks per node in total.
  for (int n = 0; n < 12; ++n) EXPECT_EQ(load[static_cast<std::size_t>(n)], 24);
  int native_on_node0 = 0;
  for (const BlockId b : l.blocks_on_node(0)) {
    if (b.index < 10) ++native_on_node0;
  }
  EXPECT_EQ(native_on_node0, 20);
}

TEST(Layout, RoundRobinDistinctNodesPerStripe) {
  const StorageLayout l = round_robin_layout(100, 10, 5, 15);
  for (int s = 0; s < l.num_stripes(); ++s) {
    std::set<NodeId> nodes;
    for (int b = 0; b < l.n(); ++b) nodes.insert(l.node_of(BlockId{s, b}));
    EXPECT_EQ(nodes.size(), 10u);
  }
}

TEST(Layout, RejectsIndivisibleBlockCount) {
  EXPECT_THROW(round_robin_layout(21, 4, 2, 8), std::invalid_argument);
}

TEST(Layout, RandomRackConstrainedSatisfiesRule) {
  const net::Topology topo(4, 10);
  util::Rng rng(42);
  const StorageLayout l =
      random_rack_constrained_layout(1440, 20, 15, topo, rng);
  EXPECT_TRUE(l.satisfies_placement_rule(topo, 5));
}

TEST(Layout, RandomRackConstrainedBalanced) {
  const net::Topology topo(4, 10);
  util::Rng rng(43);
  const StorageLayout l =
      random_rack_constrained_layout(720, 16, 12, topo, rng);
  const auto load = l.node_load(40);
  // 60 stripes * 16 blocks = 960 blocks over 40 nodes: 24 each, exactly,
  // because the greedy chooses least-loaded first.
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_GE(*mn, 23);
  EXPECT_LE(*mx, 25);
}

TEST(Layout, RandomRackConstrainedInfeasibleThrows) {
  // A single-rack cluster can hold at most n-k=2 blocks of any stripe.
  const net::Topology topo(1, 10);
  util::Rng rng(1);
  EXPECT_THROW(random_rack_constrained_layout(4, 4, 2, topo, rng),
               std::invalid_argument);
}

TEST(Layout, MotivatingExampleTopologyFeasible) {
  // §III example: 5 nodes in racks of 3+2, (4,2): <= 2 blocks per rack.
  const net::Topology topo(std::vector<int>{3, 2});
  util::Rng rng(7);
  const StorageLayout l = random_rack_constrained_layout(12, 4, 2, topo, rng);
  EXPECT_TRUE(l.satisfies_placement_rule(topo, 2));
}

TEST(Layout, ZipfSkewedSatisfiesRule) {
  const net::Topology topo(4, 10);
  util::Rng rng(42);
  const StorageLayout l =
      zipf_rack_skewed_layout(1440, 20, 15, topo, rng, 1.2);
  EXPECT_TRUE(l.satisfies_placement_rule(topo, 5));
  EXPECT_EQ(l.num_native_blocks(), 1440);
}

TEST(Layout, ZipfSkewConcentratesLoadOnRackZero) {
  // 8 racks with a per-stripe quota of n-k=2: each stripe needs only 4 of
  // the 8 racks, so the Zipf draw has real freedom to favor low rack ids.
  // (A saturated topology — quota * racks == n — would force perfect
  // balance whatever the exponent.)
  const net::Topology topo(8, 5);
  util::Rng rng(7);
  const StorageLayout l = zipf_rack_skewed_layout(480, 8, 6, topo, rng, 1.5);
  const auto load = l.node_load(40);
  std::vector<long> rack_load(8, 0);
  for (int n = 0; n < 40; ++n) {
    rack_load[static_cast<std::size_t>(n / 5)] +=
        load[static_cast<std::size_t>(n)];
  }
  EXPECT_GT(rack_load[0], rack_load[7]);
  EXPECT_EQ(rack_load[0], *std::max_element(rack_load.begin(),
                                            rack_load.end()));
}

TEST(Layout, ZipfSkewZeroStillLegalJustUnskewed) {
  // Exponent 0 degenerates to a uniform rack draw — still a valid layout,
  // without the rack-0 pile-up.
  const net::Topology topo(4, 10);
  util::Rng rng(11);
  const StorageLayout l = zipf_rack_skewed_layout(480, 16, 12, topo, rng, 0.0);
  EXPECT_TRUE(l.satisfies_placement_rule(topo, 4));
}

TEST(Layout, ZipfSkewedRejectsBadArguments) {
  const net::Topology topo(4, 10);
  util::Rng rng(1);
  EXPECT_THROW(zipf_rack_skewed_layout(100, 16, 12, topo, rng, -0.5),
               std::invalid_argument);
  EXPECT_THROW(zipf_rack_skewed_layout(121, 16, 12, topo, rng, 1.0),
               std::invalid_argument);  // not a whole number of stripes
  const net::Topology tiny(1, 10);
  EXPECT_THROW(zipf_rack_skewed_layout(4, 4, 2, tiny, rng, 1.0),
               std::invalid_argument);  // one rack cannot hold a stripe
}

TEST(Layout, PlacementRuleDetectsViolations) {
  // Two blocks of a stripe on one node.
  StorageLayout bad(4, 2, {{0, 0, 1, 2}});
  const net::Topology topo(2, 2);
  EXPECT_FALSE(bad.satisfies_placement_rule(topo, 2));
  // Three blocks of a stripe in rack 0 (> n-k = 2).
  StorageLayout bad2(4, 2, {{0, 1, 2, 3}});
  const net::Topology topo2(std::vector<int>{3, 2});
  EXPECT_FALSE(bad2.satisfies_placement_rule(topo2, 2));
}

TEST(Layout, ReplicatedPlacementRules) {
  const net::Topology topo(3, 4);
  util::Rng rng(11);
  const StorageLayout l = replicated_layout(200, 3, topo, rng);
  EXPECT_EQ(l.k(), 1);
  EXPECT_EQ(l.n(), 3);
  EXPECT_EQ(l.num_stripes(), 200);
  for (int b = 0; b < 200; ++b) {
    const NodeId first = l.node_of(BlockId{b, 0});
    const NodeId second = l.node_of(BlockId{b, 1});
    const NodeId third = l.node_of(BlockId{b, 2});
    // Copies 2 and 3 share one rack, different from copy 1's rack.
    EXPECT_NE(topo.rack_of(first), topo.rack_of(second));
    EXPECT_EQ(topo.rack_of(second), topo.rack_of(third));
    EXPECT_NE(second, third);
  }
  // Survives any double-node failure and any single-rack failure.
  EXPECT_TRUE(l.satisfies_placement_rule(topo, 2));
}

TEST(Layout, ReplicatedRejectsBadTopologies) {
  util::Rng rng(1);
  EXPECT_THROW(replicated_layout(10, 3, net::Topology(1, 10), rng),
               std::invalid_argument);
  EXPECT_THROW(replicated_layout(10, 4, net::Topology(4, 2), rng),
               std::invalid_argument);
  EXPECT_THROW(replicated_layout(10, 1, net::Topology(2, 4), rng),
               std::invalid_argument);
}

// --- failure ------------------------------------------------------------------

TEST(Failure, SingleNode) {
  const net::Topology topo(4, 10);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const FailureScenario f = single_node_failure(topo, rng);
    EXPECT_EQ(f.failed_nodes().size(), 1u);
    EXPECT_TRUE(f.any());
    EXPECT_TRUE(f.is_failed(f.failed_nodes()[0]));
  }
}

TEST(Failure, DoubleNodeDistinct) {
  const net::Topology topo(4, 10);
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const FailureScenario f = double_node_failure(topo, rng);
    ASSERT_EQ(f.failed_nodes().size(), 2u);
    EXPECT_NE(f.failed_nodes()[0], f.failed_nodes()[1]);
  }
}

TEST(Failure, RackFailureKillsWholeRack) {
  const net::Topology topo(4, 10);
  util::Rng rng(3);
  const FailureScenario f = rack_failure(topo, rng);
  ASSERT_EQ(f.failed_nodes().size(), 10u);
  const net::RackId r = topo.rack_of(f.failed_nodes()[0]);
  for (const NodeId n : f.failed_nodes()) EXPECT_EQ(topo.rack_of(n), r);
}

TEST(Failure, NoFailureIsEmpty) {
  const FailureScenario f = no_failure();
  EXPECT_FALSE(f.any());
  EXPECT_FALSE(f.is_failed(0));
}

TEST(Failure, DeduplicatesNodes) {
  const FailureScenario f(std::vector<NodeId>{3, 1, 3});
  EXPECT_EQ(f.failed_nodes().size(), 2u);
  EXPECT_TRUE(f.is_failed(1));
  EXPECT_TRUE(f.is_failed(3));
  EXPECT_FALSE(f.is_failed(2));
}

TEST(Failure, ExclusionRespected) {
  const net::Topology topo(2, 3);
  util::Rng rng(4);
  const std::vector<NodeId> exclude = {0, 1, 2, 3, 4};
  for (int i = 0; i < 20; ++i) {
    const FailureScenario f =
        single_node_failure_excluding(topo, rng, exclude);
    EXPECT_EQ(f.failed_nodes()[0], 5);
  }
}

// --- degraded read planning ------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : topo_(4, 10),
        rng_(99),
        layout_(random_rack_constrained_layout(720, 16, 12, topo_, rng_)),
        code_(16, 12) {}

  net::Topology topo_;
  util::Rng rng_;
  StorageLayout layout_;
  ec::ReedSolomonCode code_;
};

TEST_F(PlannerTest, PlansKSurvivingSources) {
  const DegradedReadPlanner planner(layout_, topo_, code_,
                                    SourceSelection::kRandom);
  const FailureScenario failure({0});
  for (const BlockId b : layout_.blocks_on_node(0)) {
    if (b.index >= layout_.k()) continue;
    const auto plan = planner.plan(b, 5, failure, rng_);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->size(), 12u);
    for (const auto& src : *plan) {
      EXPECT_EQ(src.block.stripe, b.stripe);
      EXPECT_NE(src.block.index, b.index);
      EXPECT_NE(src.node, 0);  // never reads from the failed node
      EXPECT_EQ(src.node, layout_.node_of(src.block));
    }
  }
}

TEST_F(PlannerTest, RandomSelectionVariesSources) {
  const DegradedReadPlanner planner(layout_, topo_, code_,
                                    SourceSelection::kRandom);
  const FailureScenario failure({0});
  BlockId lost{-1, -1};
  for (const BlockId b : layout_.blocks_on_node(0)) {
    if (b.index < layout_.k()) {
      lost = b;
      break;
    }
  }
  ASSERT_GE(lost.stripe, 0);
  std::set<std::vector<int>> distinct;
  for (int i = 0; i < 20; ++i) {
    const auto plan = planner.plan(lost, 5, failure, rng_);
    ASSERT_TRUE(plan.has_value());
    std::vector<int> ids;
    for (const auto& s : *plan) ids.push_back(s.block.index);
    std::sort(ids.begin(), ids.end());
    distinct.insert(ids);
  }
  // Choosing 12 of 15 survivors at random should produce several distinct picks.
  EXPECT_GT(distinct.size(), 3u);
}

TEST_F(PlannerTest, PreferSameRackMaximizesLocalSources) {
  const DegradedReadPlanner random_planner(layout_, topo_, code_,
                                           SourceSelection::kRandom);
  const DegradedReadPlanner local_planner(layout_, topo_, code_,
                                          SourceSelection::kPreferSameRack);
  const FailureScenario failure({0});
  const NodeId reader = 5;
  int local_src_pref = 0;
  int local_src_rand = 0;
  for (const BlockId b : layout_.blocks_on_node(0)) {
    if (b.index >= layout_.k()) continue;
    const auto p1 = local_planner.plan(b, reader, failure, rng_);
    const auto p2 = random_planner.plan(b, reader, failure, rng_);
    ASSERT_TRUE(p1 && p2);
    for (const auto& s : *p1) {
      if (topo_.same_rack(s.node, reader)) ++local_src_pref;
    }
    for (const auto& s : *p2) {
      if (topo_.same_rack(s.node, reader)) ++local_src_rand;
    }
  }
  EXPECT_GT(local_src_pref, local_src_rand);
}

TEST_F(PlannerTest, UnrecoverableStripeReturnsNullopt) {
  // Kill the nodes holding the first n-k+1 blocks of stripe 0.
  std::vector<NodeId> failed;
  for (int b = 0; b <= layout_.n() - layout_.k(); ++b) {
    failed.push_back(layout_.node_of(BlockId{0, b}));
  }
  const FailureScenario failure(failed);
  const DegradedReadPlanner planner(layout_, topo_, code_,
                                    SourceSelection::kRandom);
  BlockId lost{-1, -1};
  for (int b = 0; b < layout_.k(); ++b) {
    if (failure.is_failed(layout_.node_of(BlockId{0, b}))) {
      lost = BlockId{0, b};
      break;
    }
  }
  ASSERT_GE(lost.stripe, 0);
  NodeId reader = 0;
  while (failure.is_failed(reader)) ++reader;
  EXPECT_FALSE(planner.plan(lost, reader, failure, rng_).has_value());
}

TEST_F(PlannerTest, ExpectedCrossRackBlocksMatchesFormula) {
  const DegradedReadPlanner planner(layout_, topo_, code_,
                                    SourceSelection::kRandom);
  // (R-1)/R * k = 3/4 * 12 = 9.
  EXPECT_DOUBLE_EQ(planner.expected_cross_rack_blocks(), 9.0);
}

TEST(PlannerLrc, LocalGroupReadCost) {
  // LRC(12, 3, 2): a single lost data block reads its 3 surviving group
  // members + the local parity = 4 blocks instead of 12 (footnote 1).
  const net::Topology topo(4, 10);
  util::Rng rng(17);
  const ec::LocalReconstructionCode code(12, 3, 2);
  const StorageLayout layout =
      random_rack_constrained_layout(120, code.n(), code.k(), topo, rng);
  const DegradedReadPlanner planner(layout, topo, code,
                                    SourceSelection::kRandom);
  const FailureScenario failure({layout.node_of(BlockId{0, 0})});
  NodeId reader = 0;
  while (failure.is_failed(reader)) ++reader;
  const auto plan = planner.plan(BlockId{0, 0}, reader, failure, rng);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->size(), 4u);
  EXPECT_DOUBLE_EQ(planner.expected_cross_rack_blocks(), 0.75 * 4.0);
}

TEST(PlannerCostModel, SubShardOptionWinsForHitchhiker) {
  // With neutral weights the planner must take Hitchhiker's cheaper
  // sub-shard option: (k + |G|) / 2 block equivalents, half-shards from
  // every source outside the lost shard's piggyback group.
  const net::Topology topo(4, 10);
  util::Rng rng(31);
  const ec::HitchhikerXorCode code(14, 10);
  const StorageLayout layout =
      random_rack_constrained_layout(100, code.n(), code.k(), topo, rng);
  const DegradedReadPlanner planner(layout, topo, code,
                                    SourceSelection::kRandom);
  const FailureScenario failure({layout.node_of(BlockId{0, 0})});
  NodeId reader = 0;
  while (failure.is_failed(reader)) ++reader;
  const auto plan = planner.plan(BlockId{0, 0}, reader, failure, rng);
  ASSERT_TRUE(plan.has_value());
  double fetched = 0.0;
  bool any_half = false;
  for (const auto& src : *plan) {
    fetched += src.fraction;
    any_half |= src.fraction == 0.5;
  }
  // Shard 0 of hh:14,10 sits in a piggyback group of 4: cost (10 + 4) / 2.
  EXPECT_DOUBLE_EQ(fetched, 7.0);
  EXPECT_TRUE(any_half);
  // Expectation over all 10 data shards: groups of 4, 3, 3 give
  // (4*7.0 + 6*6.5) / 10.
  EXPECT_DOUBLE_EQ(planner.expected_single_failure_blocks(), 6.7);
}

TEST(PlannerCostModel, AllowSubshardFalseForcesFullShards) {
  const net::Topology topo(4, 10);
  util::Rng rng(31);
  const ec::HitchhikerXorCode code(14, 10);
  const StorageLayout layout =
      random_rack_constrained_layout(100, code.n(), code.k(), topo, rng);
  RecoveryCostModel cm;
  cm.allow_subshard = false;
  const DegradedReadPlanner planner(layout, topo, code,
                                    SourceSelection::kRandom, cm);
  const FailureScenario failure({layout.node_of(BlockId{0, 0})});
  NodeId reader = 0;
  while (failure.is_failed(reader)) ++reader;
  const auto plan = planner.plan(BlockId{0, 0}, reader, failure, rng);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->size(), 10u);
  for (const auto& src : *plan) {
    EXPECT_DOUBLE_EQ(src.fraction, 1.0);
    EXPECT_EQ(src.substripes, code.full_substripe_mask());
  }
  EXPECT_DOUBLE_EQ(planner.expected_single_failure_blocks(), 10.0);
}

TEST(PlannerCostModel, CrossRackWeightSteersOptionChoice) {
  // Hitchhiker offers two competing options per lost data shard (sub-shard
  // vs any-k full shards), so rack weights can actually flip the choice.
  // Pricing cross-rack bytes at 8x must never fetch *more* weighted cost
  // than the neutral model would under the same 8x pricing.
  const net::Topology topo(4, 10);
  util::Rng rng(77);
  const ec::HitchhikerXorCode code(14, 10);
  const StorageLayout layout =
      random_rack_constrained_layout(100, code.n(), code.k(), topo, rng);
  RecoveryCostModel expensive;
  expensive.cross_rack_weight = 8.0;
  const DegradedReadPlanner neutral(layout, topo, code,
                                    SourceSelection::kPreferSameRack);
  const DegradedReadPlanner weighted(layout, topo, code,
                                     SourceSelection::kPreferSameRack,
                                     expensive);
  const FailureScenario failure({0});
  const NodeId reader = 5;
  const auto priced = [&](const std::vector<DegradedSource>& plan) {
    double cost = 0.0;
    for (const auto& src : plan) {
      cost += src.fraction *
              (topo.same_rack(src.node, reader) ? 1.0 : 8.0);
    }
    return cost;
  };
  int plans = 0;
  for (const BlockId b : layout.blocks_on_node(0)) {
    if (b.index >= layout.k()) continue;
    const auto p_neutral = neutral.plan(b, reader, failure, rng);
    const auto p_weighted = weighted.plan(b, reader, failure, rng);
    ASSERT_TRUE(p_neutral.has_value());
    ASSERT_TRUE(p_weighted.has_value());
    EXPECT_LE(priced(*p_weighted), priced(*p_neutral));
    ++plans;
  }
  EXPECT_GT(plans, 0);
}

// --- planner/code consistency property sweep ------------------------------------------

class PlannerCodeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerCodeProperty, EveryPlanIsActuallyDecodable) {
  // Whatever the planner picks must suffice to rebuild the lost block —
  // across codes, random failures, and both source-selection policies.
  const auto code = ec::make_code_from_spec(GetParam());
  ASSERT_NE(code, nullptr);
  // Six racks of two: enough rack capacity even for xor:5 (n-k = 1 allows
  // at most one block of a stripe per rack).
  const net::Topology topo(6, 2);
  util::Rng rng(55);
  const StorageLayout layout = random_rack_constrained_layout(
      10 * code->k(), code->n(), code->k(), topo, rng);
  for (const auto selection :
       {SourceSelection::kRandom, SourceSelection::kPreferSameRack}) {
    const DegradedReadPlanner planner(layout, topo, *code, selection);
    for (int trial = 0; trial < 10; ++trial) {
      const FailureScenario failure = single_node_failure(topo, rng);
      const NodeId victim = failure.failed_nodes().front();
      NodeId reader = 0;
      while (failure.is_failed(reader)) ++reader;
      for (const BlockId lost : layout.blocks_on_node(victim)) {
        if (lost.index >= layout.k()) continue;  // map tasks read natives
        const auto plan = planner.plan(lost, reader, failure, rng);
        ASSERT_TRUE(plan.has_value());
        // The chosen generator rows must span the lost block's row: verify
        // by asking the code to decode zero-filled shards of that shape.
        std::vector<ec::Shard> bytes(plan->size(), ec::Shard(16, 0));
        std::vector<std::pair<int, const ec::Shard*>> present;
        for (std::size_t i = 0; i < plan->size(); ++i) {
          present.emplace_back((*plan)[i].block.index, &bytes[i]);
        }
        EXPECT_TRUE(code->reconstruct(present, {lost.index}).has_value())
            << GetParam() << " lost=" << lost.stripe << "," << lost.index;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, PlannerCodeProperty,
                         ::testing::Values("rs:6,4", "crs:6,4", "lrc:4,2,1",
                                           "rs16:8,6", "xor:5"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == ',') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dfs::storage
